"""Ablation A3 — storage co-optimization (Sec. 4).

Three studies:

* accuracy-aware block deduplication across a family of fine-tuned model
  variants (exact + epsilon-approximate sharing, space saving vs the
  resulting accuracy perturbation);
* multi-version models: quantized/pruned versions and SLA-driven
  selection;
* data/model co-partitioning: shuffle bytes avoided for the first-layer
  matmul join.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.dedup import (
    BlockDedupStore,
    CoPartitioner,
    ModelVersionManager,
)
from repro.models import fraud_fc_256

from _util import emit, fmt_bytes, fmt_seconds, render_table


def _finetuned_family(base_model, n_variants: int, noise: float, rng):
    """Models fine-tuned from one base: most weights barely move."""
    variants = [base_model]
    for __ in range(n_variants):
        clone = copy.deepcopy(base_model)
        for layer in clone.layers:
            for param in layer.parameters().values():
                # Fine-tuning touches a few rows hard, the rest barely.
                mask = rng.uniform(size=param.data.shape) < 0.05
                param.data = param.data + noise * mask * rng.normal(
                    size=param.data.shape
                )
        variants.append(clone)
    return variants


def test_ablation_block_dedup(benchmark, capsys, rng):
    base = fraud_fc_256()
    variants = _finetuned_family(base, n_variants=4, noise=0.02, rng=rng)
    rows = []
    reports = {}
    for epsilon in (0.0, 1e-4, 5e-2):
        store = BlockDedupStore((16, 16), epsilon=epsilon, seed=81)
        for variant in variants:
            for layer in variant.layers:
                params = layer.parameters()
                if "weight" in params:
                    store.put_matrix(params["weight"].data)
        report = store.report()
        reports[epsilon] = report
        rows.append(
            [
                f"eps={epsilon:g}",
                report.logical_blocks,
                report.stored_blocks,
                report.exact_hits,
                report.approximate_hits,
                f"{report.space_saving:.0%}",
            ]
        )
    benchmark.pedantic(
        lambda: BlockDedupStore((16, 16), epsilon=1e-4).put_matrix(
            base.layers[0].weight.data
        ),
        rounds=3,
        iterations=1,
    )
    emit(
        capsys,
        render_table(
            "Ablation A3a: accuracy-aware block dedup over 5 fine-tuned "
            "fraud-fc-256 variants",
            ["epsilon", "logical", "stored", "exact hits", "approx hits", "saved"],
            rows,
        ),
    )
    # Exact dedup already shares the untouched blocks across variants;
    # looser epsilon strictly increases sharing.
    assert reports[0.0].space_saving >= 0.0
    assert reports[5e-2].stored_blocks <= reports[1e-4].stored_blocks
    assert reports[5e-2].space_saving > reports[0.0].space_saving


def test_ablation_model_versions(benchmark, capsys, rng):
    model = fraud_fc_256()
    x = rng.normal(size=(500, 28))
    truth = model.predict(x)

    def accuracy(m):
        return float((m.predict(x) == truth).mean())

    manager = ModelVersionManager(model, accuracy)
    manager.add_quantized(8)
    manager.add_quantized(4)
    manager.add_quantized(2)
    manager.add_pruned(0.5)
    manager.add_pruned(0.9)
    rows = [
        [v.name, v.kind, fmt_bytes(v.size_bytes), f"{v.accuracy:.2%}"]
        for v in manager.versions.values()
    ]
    strict = manager.select(min_accuracy=0.99)
    relaxed = benchmark.pedantic(
        lambda: manager.select(min_accuracy=0.90), rounds=5, iterations=1
    )
    emit(
        capsys,
        render_table(
            "Ablation A3b: model versions and SLA-driven selection",
            ["version", "kind", "size", "accuracy vs full"],
            rows,
        )
        + f"SLA >=99%: chose {strict.name} ({fmt_bytes(strict.size_bytes)}); "
        f"SLA >=90%: chose {relaxed.name} ({fmt_bytes(relaxed.size_bytes)})\n",
    )
    assert strict.accuracy >= 0.99
    assert relaxed.size_bytes <= strict.size_bytes


def test_ablation_copartitioning(benchmark, capsys):
    partitioner = CoPartitioner(num_partitions=8, block_rows=128)
    co = benchmark.pedantic(
        lambda: partitioner.report(num_features=4096, num_rows=100_000),
        rounds=5,
        iterations=1,
    )
    independent = partitioner.report(
        num_features=4096, num_rows=100_000, co_partitioned=False
    )
    emit(
        capsys,
        render_table(
            "Ablation A3c: data/model co-partitioning for the first-layer "
            "matmul join (4096 features, 100k rows, 8 partitions)",
            ["layout", "join locality", "shuffle avoided"],
            [
                ["co-partitioned", f"{co.locality:.0%}", fmt_bytes(co.shuffle_bytes_avoided)],
                [
                    "independent random",
                    f"{independent.locality:.0%}",
                    fmt_bytes(0),
                ],
            ],
        ),
    )
    assert co.locality == 1.0
    assert independent.locality < 0.5
    assert co.shuffle_bytes_avoided > 0
