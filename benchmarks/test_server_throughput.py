"""Serving-front-end throughput: dynamic micro-batching vs batch=1.

The acceptance benchmark for the concurrent serving tier: 8 client
threads submit single-row fraud PREDICT requests through
:meth:`repro.Database.serve`.  With ``max_batch_size=1`` every request
pays a full engine invocation; with dynamic batching the micro-batcher
coalesces the concurrent backlog, amortising the per-invocation cost.
Dynamic batching must deliver at least 2x the req/s of batch=1.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Database
from repro.models import fraud_fc_256

from _util import emit, record, render_table

CLIENTS = 8
REQUESTS_PER_CLIENT = 40
FEATURE_DIM = 28


@pytest.fixture(scope="module")
def fraud_db():
    db = Database()
    db.register_model(fraud_fc_256(), name="fraud")
    yield db
    db.close()


def run_clients(server, feats) -> float:
    """All clients submit-and-wait their slice; returns wall seconds."""
    errors: list[BaseException] = []
    start_gate = threading.Barrier(CLIENTS + 1)

    def client(cid: int):
        try:
            start_gate.wait()
            lo = cid * REQUESTS_PER_CLIENT
            futures = [
                server.submit("fraud", feats[i])
                for i in range(lo, lo + REQUESTS_PER_CLIENT)
            ]
            for future in futures:
                future.result(timeout=60.0)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(CLIENTS)]
    for t in threads:
        t.start()
    start_gate.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return elapsed


def serve_once(db, rng, **knobs) -> tuple[float, dict]:
    total = CLIENTS * REQUESTS_PER_CLIENT
    feats = rng.normal(size=(total, FEATURE_DIM))
    with db.serve(workers=2, queue_capacity=total, **knobs) as server:
        server.predict("fraud", feats[:1])  # warm the compiled plan path
        elapsed = run_clients(server, feats)
        stats = dict(server.stats_rows())
    return elapsed, stats


def test_dynamic_batching_throughput(fraud_db, rng, capsys):
    total = CLIENTS * REQUESTS_PER_CLIENT

    batch1_seconds, batch1_stats = serve_once(
        fraud_db, rng, max_batch_size=1, max_queue_delay_ms=0.0
    )
    dynamic_seconds, dynamic_stats = serve_once(
        fraud_db, rng, max_batch_size=64, max_queue_delay_ms=2.0
    )

    batch1_rps = total / batch1_seconds
    dynamic_rps = total / dynamic_seconds
    speedup = dynamic_rps / batch1_rps

    emit(
        capsys,
        render_table(
            f"Serving throughput: {CLIENTS} clients x "
            f"{REQUESTS_PER_CLIENT} requests (fraud FC)",
            ["mode", "wall", "req/s", "mean batch rows"],
            [
                [
                    "batch=1",
                    f"{batch1_seconds:.3f}s",
                    f"{batch1_rps:.0f}",
                    batch1_stats["server.model.fraud.mean_batch_rows"],
                ],
                [
                    "dynamic (<=64, 2ms)",
                    f"{dynamic_seconds:.3f}s",
                    f"{dynamic_rps:.0f}",
                    dynamic_stats["server.model.fraud.mean_batch_rows"],
                ],
                ["speedup", "-", f"{speedup:.2f}x", "-"],
            ],
        ),
    )

    record(
        "serve-batch1",
        latency_seconds=batch1_seconds,
        requests=total,
        clients=CLIENTS,
        requests_per_second=round(batch1_rps, 1),
    )
    record(
        "serve-dynamic-batching",
        latency_seconds=dynamic_seconds,
        requests=total,
        clients=CLIENTS,
        requests_per_second=round(dynamic_rps, 1),
        speedup_vs_batch1=round(speedup, 2),
    )

    # total client requests plus the one warm-up request per serve_once
    # (the batcher's own stats are per-server; the registry counters are
    # shared across both runs).
    assert batch1_stats["server.model.fraud.rows_dispatched"] == total + 1
    assert dynamic_stats["server.model.fraud.rows_dispatched"] == total + 1
    # batch=1 must not batch; dynamic must actually coalesce.
    assert batch1_stats["server.model.fraud.largest_batch_rows"] == 1
    assert dynamic_stats["server.model.fraud.largest_batch_rows"] > 1
    # The acceptance criterion: >=2x req/s from dynamic micro-batching.
    assert speedup >= 2.0, (
        f"dynamic batching reached only {speedup:.2f}x over batch=1 "
        f"({dynamic_rps:.0f} vs {batch1_rps:.0f} req/s)"
    )
