"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark prints the table/figure it reproduces in the paper's own
row format (bypassing pytest's capture so the tables appear in the run
log), and registers a representative measurement with pytest-benchmark.

Benchmarks that should gate CI additionally :func:`record` a scenario
(latency and/or peak memory); the session hook in ``conftest.py`` writes
everything recorded to a machine-readable ``BENCH_RESULTS.json`` which
``compare_results.py`` diffs against a checked-in baseline.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Callable

OOM = "OOM"

RESULTS_VERSION = 1

# scenario -> {"latency_seconds": float|None, "memory_bytes": int|None,
#              "meta": {...}} — populated by record(), drained by
# write_results() at session end.
RESULTS: dict[str, dict] = {}


def fmt_seconds(value: object) -> str:
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    v = float(value)
    if v < 1e-3:
        return f"{v * 1e6:.0f}µs"
    if v < 1.0:
        return f"{v * 1e3:.1f}ms"
    return f"{v:.2f}s"


def fmt_bytes(nbytes: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if nbytes < 1024 or unit == "GiB":
            return f"{nbytes:.1f}{unit}"
        nbytes /= 1024
    return f"{nbytes:.1f}GiB"


def render_table(title: str, headers: list[str], rows: list[list[object]]) -> str:
    """A fixed-width table, matching the paper's row layout."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"\n== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def emit(capsys, text: str) -> None:
    """Print past pytest's capture so tables land in the run log."""
    with capsys.disabled():
        print(text)


def measure(fn: Callable[[], object]) -> tuple[object, float]:
    """Run once, returning (result, seconds).

    Single-shot numbers are fine for the printed tables; anything fed to
    :func:`record` for regression comparison should use
    :func:`measure_stable` instead.
    """
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure_stable(
    fn: Callable[[], object], repeats: int = 3, warmup: int = 1
) -> tuple[object, float]:
    """Run ``warmup`` discarded passes then ``repeats`` timed ones.

    Returns (result of the last timed pass, median seconds).  The median
    over a few repeats is what the comparator diffs, so it must not be a
    single cold-cache sample.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for __ in range(warmup):
        fn()
    result: object = None
    samples: list[float] = []
    for __ in range(repeats):
        result, seconds = measure(fn)
        samples.append(seconds)
    return result, statistics.median(samples)


def measure_or_oom(fn: Callable[[], object]) -> tuple[object | None, object]:
    """Run once; on OutOfMemoryError return (None, "OOM")."""
    from repro.errors import OutOfMemoryError

    try:
        return measure(fn)
    except OutOfMemoryError:
        return None, OOM


# -- machine-readable results -------------------------------------------------


def record(
    scenario: str,
    latency_seconds: float | None = None,
    memory_bytes: int | None = None,
    **meta: object,
) -> None:
    """Register a scenario's numbers for the results file.

    Re-recording a scenario overwrites it (last writer wins), so a
    parametrized benchmark can record once per parameter under distinct
    scenario names.
    """
    RESULTS[scenario] = {
        "latency_seconds": None if latency_seconds is None else float(latency_seconds),
        "memory_bytes": None if memory_bytes is None else int(memory_bytes),
        "meta": {k: v for k, v in meta.items()},
    }


def write_results(path: str) -> int:
    """Write everything recorded so far to ``path``; returns the count."""
    payload = {"version": RESULTS_VERSION, "results": dict(sorted(RESULTS.items()))}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return len(RESULTS)


def load_results(path: str) -> dict[str, dict]:
    """Read a results file, validating the schema version."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    version = payload.get("version")
    if version != RESULTS_VERSION:
        raise ValueError(
            f"{path}: unsupported results version {version!r} "
            f"(expected {RESULTS_VERSION})"
        )
    results = payload.get("results")
    if not isinstance(results, dict):
        raise ValueError(f"{path}: 'results' must be an object")
    return results


def compare_results(
    baseline: dict[str, dict],
    current: dict[str, dict],
    latency_tolerance: float = 4.0,
    memory_tolerance: float = 0.25,
) -> list[str]:
    """Diff two result sets; returns a list of human-readable problems.

    ``latency_tolerance`` is a *ratio* slack (current may be up to
    ``(1 + tol)×`` the baseline — wall time on shared CI runners is
    noisy, so the default is deliberately loose).  ``memory_tolerance``
    is a fractional slack on deterministic peak-bytes accounting, so it
    can be tight.  Scenarios present in the baseline but missing from
    the current run are failures; new scenarios in the current run are
    fine (the baseline just hasn't caught up).
    """
    problems: list[str] = []
    for scenario, base in sorted(baseline.items()):
        cur = current.get(scenario)
        if cur is None:
            problems.append(f"{scenario}: missing from current results")
            continue
        base_latency = base.get("latency_seconds")
        cur_latency = cur.get("latency_seconds")
        if base_latency is not None:
            if cur_latency is None:
                problems.append(f"{scenario}: latency no longer recorded")
            elif cur_latency > base_latency * (1.0 + latency_tolerance):
                problems.append(
                    f"{scenario}: latency {fmt_seconds(cur_latency)} exceeds "
                    f"baseline {fmt_seconds(base_latency)} "
                    f"by more than {latency_tolerance:.0%}"
                )
        base_memory = base.get("memory_bytes")
        cur_memory = cur.get("memory_bytes")
        if base_memory is not None:
            if cur_memory is None:
                problems.append(f"{scenario}: memory no longer recorded")
            elif cur_memory > base_memory * (1.0 + memory_tolerance):
                problems.append(
                    f"{scenario}: peak memory {fmt_bytes(cur_memory)} exceeds "
                    f"baseline {fmt_bytes(base_memory)} "
                    f"by more than {memory_tolerance:.0%}"
                )
    return problems
