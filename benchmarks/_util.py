"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark prints the table/figure it reproduces in the paper's own
row format (bypassing pytest's capture so the tables appear in the run
log), and registers a representative measurement with pytest-benchmark.
"""

from __future__ import annotations

import time
from typing import Callable

OOM = "OOM"


def fmt_seconds(value: object) -> str:
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    v = float(value)
    if v < 1e-3:
        return f"{v * 1e6:.0f}µs"
    if v < 1.0:
        return f"{v * 1e3:.1f}ms"
    return f"{v:.2f}s"


def fmt_bytes(nbytes: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if nbytes < 1024 or unit == "GiB":
            return f"{nbytes:.1f}{unit}"
        nbytes /= 1024
    return f"{nbytes:.1f}GiB"


def render_table(title: str, headers: list[str], rows: list[list[object]]) -> str:
    """A fixed-width table, matching the paper's row layout."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"\n== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def emit(capsys, text: str) -> None:
    """Print past pytest's capture so tables land in the run log."""
    with capsys.disabled():
        print(text)


def measure(fn: Callable[[], object]) -> tuple[object, float]:
    """Run once, returning (result, seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure_or_oom(fn: Callable[[], object]) -> tuple[object | None, object]:
    """Run once; on OutOfMemoryError return (None, "OOM")."""
    from repro.errors import OutOfMemoryError

    try:
        return measure(fn)
    except OutOfMemoryError:
        return None, OOM
