"""Table 1 — the fully connected model zoo.

Reproduces the paper's Table 1 inventory (feature / hidden / output sizes)
and benchmarks a single-batch forward pass of each model through the
UDF-centric engine.  Amazon-14k-FC runs at 1/100 scale (its full-size
weight matrix is 4.6 GB; see DESIGN.md for the scaling argument).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import mb
from repro.dlruntime import MemoryBudget
from repro.engines import UdfCentricEngine
from repro.models import MODEL_ZOO, amazon_14k_fc, build_model

from _util import emit, fmt_seconds, render_table

BATCH = 256

CASES = {
    "fraud-fc-256": dict(),
    "fraud-fc-512": dict(),
    "encoder-fc": dict(),
    "amazon-14k-fc": dict(scale=0.01),
}


@pytest.fixture(scope="module")
def models():
    return {key: build_model(key, **kwargs) for key, kwargs in CASES.items()}


@pytest.mark.parametrize("key", list(CASES))
def test_table1_forward_latency(benchmark, models, key, rng):
    model = models[key]
    x = rng.normal(size=(BATCH,) + model.input_shape)
    engine = UdfCentricEngine(MemoryBudget(mb(2048)))
    result = benchmark(lambda: engine.run_model(model, x))
    assert result.outputs.shape == (BATCH,) + model.output_shape
    np.testing.assert_allclose(result.outputs.sum(axis=1), np.ones(BATCH))


def test_table1_inventory(benchmark, models, capsys):
    """Print Table 1 with our per-model stats next to the paper's shapes."""
    rows = []
    for key, model in models.items():
        entry = MODEL_ZOO[key]
        fc1 = model.layers[0]
        rows.append(
            [
                key,
                entry.paper_shape,
                f"{fc1.in_features}/{fc1.out_features}/{model.output_shape[0]}",
                f"{model.param_count:,}",
            ]
        )
    # Validate that the unscaled builder reproduces the paper's exact shape.
    full = benchmark.pedantic(amazon_14k_fc, rounds=1, iterations=1)
    assert full.layers[0].in_features == 597_540
    assert full.output_shape == (14_588,)
    emit(
        capsys,
        render_table(
            "Table 1: Fully Connected (FC) Models (one hidden layer)",
            ["model", "paper features/hidden/outputs", "built (scaled)", "params"],
            rows,
        ),
    )
