"""Table 2 — the convolutional model zoo.

Reproduces Table 2's inventory (input and kernel shapes, stride 1, no
padding) and benchmarks a forward pass of each conv model.  DeepBench-
CONV1 runs at full scale; LandCover runs at 320×320×256 (the full
2500×2500×2048 output is 51 GB more than this host holds; DESIGN.md
documents the scaling).
"""

from __future__ import annotations

import pytest

from repro.config import gb
from repro.dlruntime import MemoryBudget
from repro.engines import UdfCentricEngine
from repro.data import deepbench_inputs, landcover_tiles
from repro.models import MODEL_ZOO, deepbench_conv1, landcover

from _util import emit, render_table

LC_SPATIAL = 320
LC_CHANNELS = 256


def test_table2_deepbench_conv1(benchmark, rng):
    model = deepbench_conv1()  # full paper scale: 112×112×64, 64×64×1×1
    x = deepbench_inputs(1, side=112, channels=64, seed=1)
    engine = UdfCentricEngine(MemoryBudget(gb(2)))
    result = benchmark.pedantic(
        lambda: engine.run_model(model, x), rounds=3, iterations=1
    )
    assert result.outputs.shape == (1, 112, 112, 64)


def test_table2_landcover(benchmark):
    model = landcover(spatial=LC_SPATIAL, out_channels=LC_CHANNELS)
    tiles = landcover_tiles(1, spatial=LC_SPATIAL, seed=2)
    engine = UdfCentricEngine(MemoryBudget(gb(2)))
    result = benchmark.pedantic(
        lambda: engine.run_model(model, tiles), rounds=2, iterations=1
    )
    assert result.outputs.shape == (1, LC_SPATIAL, LC_SPATIAL, LC_CHANNELS)


def test_table2_inventory(benchmark, capsys):
    full_deepbench = deepbench_conv1()
    scaled_landcover = benchmark.pedantic(
        lambda: landcover(spatial=LC_SPATIAL, out_channels=LC_CHANNELS),
        rounds=1,
        iterations=1,
    )
    full_landcover = landcover()
    assert full_landcover.input_shape == (2500, 2500, 3)
    assert full_landcover.layers[0].kernels.data.shape == (2048, 1, 1, 3)
    rows = [
        [
            "DeepBench-CONV1",
            MODEL_ZOO["deepbench-conv1"].paper_shape,
            f"{full_deepbench.input_shape}, kernels "
            f"{full_deepbench.layers[0].kernels.data.shape}",
        ],
        [
            "LandCover",
            MODEL_ZOO["landcover"].paper_shape,
            f"{scaled_landcover.input_shape}, kernels "
            f"{scaled_landcover.layers[0].kernels.data.shape} (scaled)",
        ],
    ]
    emit(
        capsys,
        render_table(
            "Table 2: Convolutional Models (stride 1, padding 0)",
            ["model", "paper shapes", "built"],
            rows,
        ),
    )
