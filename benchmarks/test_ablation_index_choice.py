"""Ablation A5 — index family for the inference-result cache (Sec. 5.1).

The paper lists HNSW, LSH, IVF, and product quantization as the candidate
in-RDBMS indexes for result caching.  This ablation compares all four
(plus the exact flat scan) on one corpus: build time, per-query lookup
latency, and recall@1 against the exact baseline — the trade each family
offers the cache.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.indexes import FlatIndex, HnswIndex, IvfIndex, LshIndex, PqIndex

from _util import emit, fmt_seconds, render_table

CORPUS = 3_000
DIM = 64
QUERIES = 200


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(101)
    centers = rng.normal(scale=3.0, size=(40, DIM))
    labels = rng.integers(0, 40, size=CORPUS)
    base = centers[labels] + rng.normal(scale=0.15, size=(CORPUS, DIM))
    queries = base[rng.choice(CORPUS, QUERIES, replace=False)] + rng.normal(
        scale=0.01, size=(QUERIES, DIM)
    )
    return base, queries


def build_indexes():
    return {
        "flat (exact)": FlatIndex(DIM),
        "hnsw": HnswIndex(DIM, m=12, ef_construction=80, ef_search=24, seed=1),
        "lsh": LshIndex(DIM, num_tables=10, num_bits=12, seed=2),
        "ivf": IvfIndex(DIM, num_lists=32, nprobe=4, seed=3),
        "pq": PqIndex(DIM, num_subspaces=8, bits=6, rerank=16, seed=4),
    }


def test_ablation_index_choice(benchmark, corpus, capsys):
    base, queries = corpus
    exact = FlatIndex(DIM)
    exact.add(base)
    truth = [exact.search(q, k=1).nearest_id for q in queries]

    rows = []
    recalls = {}
    lookup_times = {}
    for name, index in build_indexes().items():
        start = time.perf_counter()
        index.add(base)
        build_seconds = time.perf_counter() - start
        start = time.perf_counter()
        hits = sum(
            index.search(q, k=1).nearest_id == t for q, t in zip(queries, truth)
        )
        lookup_seconds = (time.perf_counter() - start) / QUERIES
        recall = hits / QUERIES
        recalls[name] = recall
        lookup_times[name] = lookup_seconds
        rows.append(
            [
                name,
                fmt_seconds(build_seconds),
                fmt_seconds(lookup_seconds),
                f"{recall:.1%}",
            ]
        )
    hnsw = HnswIndex(DIM, m=12, ef_construction=80, ef_search=24, seed=1)
    hnsw.add(base)
    benchmark.pedantic(
        lambda: hnsw.search(queries[0], k=1), rounds=20, iterations=5
    )
    emit(
        capsys,
        render_table(
            f"Ablation A5: ANN index family for the result cache "
            f"({CORPUS:,} cached entries, dim {DIM}, {QUERIES} lookups)",
            ["index", "build", "per-lookup", "recall@1"],
            rows,
        ),
    )
    # Near-duplicate lookups (the cache's workload) must be near-perfect
    # for the graph index, and every ANN index must beat the exact scan.
    assert recalls["hnsw"] >= 0.95
    assert recalls["ivf"] >= 0.9
    for name in ("hnsw", "lsh", "ivf", "pq"):
        assert lookup_times[name] < lookup_times["flat (exact)"]
