"""Ablation A7 — telemetry overhead on the serving path.

The telemetry layer instruments every query (spans, counters, per-query
stats).  Its budget is <5% added latency on the quickstart-style fraud
workload; the disabled path replaces registry and tracer with shared
no-op objects and must be indistinguishable from uninstrumented code.

We run the same PREDICT workload on two otherwise-identical databases —
``telemetry_enabled=True`` and ``False`` — taking the min of several
repeats so scheduler noise doesn't drown the (small) effect being
measured.
"""

from __future__ import annotations

import json
import os
import statistics
import time

import pytest

from repro import Database
from repro.data import fraud_transactions
from repro.models import fraud_fc_256
from repro.telemetry import NULL_RECORDER

from _util import emit, fmt_seconds, render_table

ROWS = 400
QUERIES = 6
REPEATS = 5
FEATURES = ", ".join(f"f{i}" for i in range(28))
PREDICT_SQL = f"SELECT PREDICT(fraud, {FEATURES}) FROM tx"


def make_db(telemetry_enabled: bool) -> Database:
    db = Database(telemetry_enabled=telemetry_enabled)
    __, __, rows = fraud_transactions(ROWS, seed=17)
    columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
    db.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
    db.load_rows("tx", rows)
    db.register_model(fraud_fc_256(), name="fraud")
    return db


def run_workload(db: Database) -> None:
    for __ in range(QUERIES):
        cur = db.execute(PREDICT_SQL)
        assert len(cur) == ROWS


def min_workload_seconds(db: Database) -> float:
    run_workload(db)  # warm the buffer pool and plan cache
    best = float("inf")
    for __ in range(REPEATS):
        start = time.perf_counter()
        run_workload(db)
        best = min(best, time.perf_counter() - start)
    return best


def test_ablation_telemetry_overhead(benchmark, capsys):
    db_on = make_db(telemetry_enabled=True)
    db_off = make_db(telemetry_enabled=False)
    try:
        off_s = min_workload_seconds(db_off)
        on_s = min_workload_seconds(db_on)
        on_s = min(
            on_s,
            benchmark.pedantic(
                lambda: min_workload_seconds(db_on), rounds=1, iterations=1
            ),
        )
        overhead = on_s / off_s - 1.0
        spans = len(db_on.telemetry.tracer.finished)
        metrics = len(db_on.execute("SHOW METRICS").rows)
        emit(
            capsys,
            render_table(
                f"Ablation A7: telemetry overhead "
                f"({QUERIES}x PREDICT over {ROWS} rows, min of {REPEATS})",
                ["telemetry", "workload time", "overhead", "spans", "metrics"],
                [
                    ["off", fmt_seconds(off_s), "-", 0, 0],
                    ["on", fmt_seconds(on_s), f"{overhead * 100:+.1f}%", spans, metrics],
                ],
            ),
        )
        # Telemetry must actually observe the workload...
        assert spans > 0 and metrics > 0
        assert db_off.execute("SHOW METRICS").rows == []
        # ...within its latency budget (<5% nominal; asserted with slack
        # because single-digit-ms workloads jitter under CI schedulers).
        assert on_s <= off_s * 1.25, (
            f"telemetry overhead {overhead * 100:.1f}% blows the budget"
        )
    finally:
        db_on.close()
        db_off.close()


#: Checked-in disabled-path p50, regenerated with
#: ``REPRO_WRITE_BASELINES=1 pytest benchmarks/test_ablation_telemetry.py``.
BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "baselines",
    "telemetry_overhead.json",
)

#: The flight recorder's budget on the disabled fast path: its no-op
#: emit hooks may add at most 2% to p50 query latency.  CI runners can
#: override the jitter allowance without loosening the local contract.
P50_BUDGET = 0.02
P50_JITTER = float(os.environ.get("REPRO_P50_JITTER", "0.10"))


def p50_query_seconds(db: Database, repeats: int = 7) -> float:
    """Stable p50 of per-query latency: median within a pass, min across
    passes (the min filters scheduler noise, the median smooths GC)."""
    run_workload(db)  # warm
    best = float("inf")
    for __ in range(repeats):
        samples = []
        for __q in range(QUERIES):
            start = time.perf_counter()
            cur = db.execute(PREDICT_SQL)
            samples.append(time.perf_counter() - start)
            assert len(cur) == ROWS
        best = min(best, statistics.median(samples))
    return best


def test_ablation_events_disabled_p50_budget(capsys):
    """Flight-recorder hooks must not tax the telemetry-disabled path.

    With ``telemetry_enabled=False`` every recorder reference is the
    shared :data:`NULL_RECORDER` (one no-op method call per hook), so
    the disabled p50 must stay within 2% of the checked-in baseline
    (plus a CI-tunable jitter allowance — wall clocks are noisy, the 2%
    budget is the contract being tracked).
    """
    db = make_db(telemetry_enabled=False)
    try:
        assert db.telemetry.events is NULL_RECORDER
        assert not db.telemetry.events.enabled
        p50 = p50_query_seconds(db)
        assert db.execute("SHOW EVENTS").rows == []

        if os.environ.get("REPRO_WRITE_BASELINES") == "1":
            with open(BASELINE_PATH, "w", encoding="utf-8") as f:
                json.dump(
                    {
                        "version": 1,
                        "p50_seconds": p50,
                        "meta": {"rows": ROWS, "queries": QUERIES},
                    },
                    f,
                    indent=2,
                )
            pytest.skip("baseline regenerated; rerun to compare")

        with open(BASELINE_PATH, encoding="utf-8") as f:
            baseline = json.load(f)["p50_seconds"]
        overhead = p50 / baseline - 1.0
        emit(
            capsys,
            render_table(
                "Ablation A7b: flight-recorder overhead, telemetry disabled",
                ["p50", "baseline p50", "overhead", "budget"],
                [
                    [
                        fmt_seconds(p50),
                        fmt_seconds(baseline),
                        f"{overhead * 100:+.1f}%",
                        f"{P50_BUDGET * 100:.0f}% (+{P50_JITTER * 100:.0f}% jitter)",
                    ]
                ],
            ),
        )
        assert p50 <= baseline * (1.0 + P50_BUDGET + P50_JITTER), (
            f"disabled-path p50 {fmt_seconds(p50)} exceeds baseline "
            f"{fmt_seconds(baseline)} by {overhead * 100:.1f}% "
            f"(budget {P50_BUDGET * 100:.0f}%)"
        )
    finally:
        db.close()


#: The sampling profiler's whole point is rate-independent cost: one
#: dict write per stage while running, one attribute check while stopped.
#: Budget: running may add at most 15% to p50 on this single-digit-ms
#: workload (the dominant term is the sampler thread waking at 5ms).
PROFILER_BUDGET = 0.15


def test_ablation_profiler_overhead(capsys):
    """Ablation A7c — stage-profiler overhead while sampling vs stopped.

    Three p50s on one telemetry-enabled database: before the sampler
    starts, while it runs, and after it stops.  Running must stay within
    ``PROFILER_BUDGET`` (+ the shared jitter allowance) of the baseline,
    and stopping must return to it — the enter/exit hooks leave no
    residual cost.
    """
    db = make_db(telemetry_enabled=True)
    try:
        before = p50_query_seconds(db)
        assert db.start_profiler()
        running = p50_query_seconds(db)
        assert db.stop_profiler()
        after = p50_query_seconds(db)
        running_overhead = running / before - 1.0
        stopped_overhead = after / before - 1.0
        emit(
            capsys,
            render_table(
                "Ablation A7c: stage-profiler overhead on the query path",
                ["profiler", "p50", "overhead", "budget"],
                [
                    ["stopped (before)", fmt_seconds(before), "-", "-"],
                    [
                        "running",
                        fmt_seconds(running),
                        f"{running_overhead * 100:+.1f}%",
                        f"{PROFILER_BUDGET * 100:.0f}% "
                        f"(+{P50_JITTER * 100:.0f}% jitter)",
                    ],
                    [
                        "stopped (after)",
                        fmt_seconds(after),
                        f"{stopped_overhead * 100:+.1f}%",
                        f"(+{P50_JITTER * 100:.0f}% jitter)",
                    ],
                ],
            ),
        )
        assert running <= before * (1.0 + PROFILER_BUDGET + P50_JITTER), (
            f"profiler adds {running_overhead * 100:.1f}% while sampling"
        )
        assert after <= before * (1.0 + P50_JITTER), (
            f"stopped profiler leaves {stopped_overhead * 100:.1f}% residue"
        )
    finally:
        db.close()
