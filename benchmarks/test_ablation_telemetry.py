"""Ablation A7 — telemetry overhead on the serving path.

The telemetry layer instruments every query (spans, counters, per-query
stats).  Its budget is <5% added latency on the quickstart-style fraud
workload; the disabled path replaces registry and tracer with shared
no-op objects and must be indistinguishable from uninstrumented code.

We run the same PREDICT workload on two otherwise-identical databases —
``telemetry_enabled=True`` and ``False`` — taking the min of several
repeats so scheduler noise doesn't drown the (small) effect being
measured.
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.data import fraud_transactions
from repro.models import fraud_fc_256

from _util import emit, fmt_seconds, render_table

ROWS = 400
QUERIES = 6
REPEATS = 5
FEATURES = ", ".join(f"f{i}" for i in range(28))
PREDICT_SQL = f"SELECT PREDICT(fraud, {FEATURES}) FROM tx"


def make_db(telemetry_enabled: bool) -> Database:
    db = Database(telemetry_enabled=telemetry_enabled)
    __, __, rows = fraud_transactions(ROWS, seed=17)
    columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
    db.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
    db.load_rows("tx", rows)
    db.register_model(fraud_fc_256(), name="fraud")
    return db


def run_workload(db: Database) -> None:
    for __ in range(QUERIES):
        cur = db.execute(PREDICT_SQL)
        assert len(cur) == ROWS


def min_workload_seconds(db: Database) -> float:
    run_workload(db)  # warm the buffer pool and plan cache
    best = float("inf")
    for __ in range(REPEATS):
        start = time.perf_counter()
        run_workload(db)
        best = min(best, time.perf_counter() - start)
    return best


def test_ablation_telemetry_overhead(benchmark, capsys):
    db_on = make_db(telemetry_enabled=True)
    db_off = make_db(telemetry_enabled=False)
    try:
        off_s = min_workload_seconds(db_off)
        on_s = min_workload_seconds(db_on)
        on_s = min(
            on_s,
            benchmark.pedantic(
                lambda: min_workload_seconds(db_on), rounds=1, iterations=1
            ),
        )
        overhead = on_s / off_s - 1.0
        spans = len(db_on.telemetry.tracer.finished)
        metrics = len(db_on.execute("SHOW METRICS").rows)
        emit(
            capsys,
            render_table(
                f"Ablation A7: telemetry overhead "
                f"({QUERIES}x PREDICT over {ROWS} rows, min of {REPEATS})",
                ["telemetry", "workload time", "overhead", "spans", "metrics"],
                [
                    ["off", fmt_seconds(off_s), "-", 0, 0],
                    ["on", fmt_seconds(on_s), f"{overhead * 100:+.1f}%", spans, metrics],
                ],
            ),
        )
        # Telemetry must actually observe the workload...
        assert spans > 0 and metrics > 0
        assert db_off.execute("SHOW METRICS").rows == []
        # ...within its latency budget (<5% nominal; asserted with slack
        # because single-digit-ms workloads jitter under CI schedulers).
        assert on_s <= off_s * 1.25, (
            f"telemetry overhead {overhead * 100:.1f}% blows the budget"
        )
    finally:
        db_on.close()
        db_off.close()
