#!/usr/bin/env python
"""Diff two BENCH_RESULTS.json files within tolerances.

Usage::

    python benchmarks/compare_results.py baseline.json current.json \
        [--latency-tolerance 4.0] [--memory-tolerance 0.25]

Exits 1 (after listing every problem) when a scenario regresses beyond
tolerance or disappears from the current run.  Latency tolerance is a
ratio (4.0 = current may be up to 5x the baseline — CI runners are
noisy); memory tolerance is fractional slack on the deterministic
peak-bytes accounting, so keep it tight.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _util import compare_results, fmt_bytes, fmt_seconds, load_results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_RESULTS.json")
    parser.add_argument("current", help="current BENCH_RESULTS.json")
    parser.add_argument(
        "--latency-tolerance",
        type=float,
        default=4.0,
        metavar="RATIO",
        help="allowed latency growth as a ratio of baseline (default: 4.0)",
    )
    parser.add_argument(
        "--memory-tolerance",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="allowed peak-memory growth as a fraction (default: 0.25)",
    )
    args = parser.parse_args(argv)

    baseline = load_results(args.baseline)
    current = load_results(args.current)
    for scenario, entry in sorted(current.items()):
        latency = entry.get("latency_seconds")
        memory = entry.get("memory_bytes")
        parts = [f"latency={fmt_seconds(latency)}" if latency is not None else None]
        parts.append(f"peak={fmt_bytes(memory)}" if memory is not None else None)
        tag = " (new)" if scenario not in baseline else ""
        print(f"{scenario}: {', '.join(p for p in parts if p)}{tag}")

    problems = compare_results(
        baseline,
        current,
        latency_tolerance=args.latency_tolerance,
        memory_tolerance=args.memory_tolerance,
    )
    if problems:
        print(f"\n{len(problems)} regression(s) beyond tolerance:", file=sys.stderr)
        for problem in problems:
            print(f"  FAIL {problem}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} baseline scenario(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
