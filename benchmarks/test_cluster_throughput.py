"""Process-parallel serving throughput: cluster workers vs one process.

The acceptance benchmark for the cluster tier (Sec. 6 scale-out): 8
client threads stream fraud PREDICT batches through
``Database.serve``.  The engine is pinned to the relation-centric path
(``memory_threshold_bytes=1``), whose per-block Python execution holds
the GIL — so thread-mode throughput is capped at roughly one core no
matter how many server threads run, while 4 worker *processes* behind
the shared-memory transport scale with the cores.

On >=4-core hosts (CI) the cluster must deliver at least 2x the req/s
of the thread path.  On smaller hosts the speedup physically cannot
appear, so only the correctness invariants are asserted there; both
scenarios are still recorded for the baseline diff.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro import Database
from repro.config import SystemConfig
from repro.models import fraud_fc_256

from _util import emit, record, render_table

CLIENTS = 8
REQUESTS_PER_CLIENT = 10
ROWS_PER_REQUEST = 16
FEATURE_DIM = 28
CLUSTER_WORKERS = 4

#: The >=2x bar only applies where the hardware can show it.
MULTICORE = (os.cpu_count() or 1) >= CLUSTER_WORKERS


@pytest.fixture(scope="module")
def cpu_bound_db():
    # memory_threshold_bytes=1 forces every tensor operator down the
    # relation-centric path: Python-loop-heavy, GIL-holding — the
    # workload processes help with and threads cannot.
    config = SystemConfig(memory_threshold_bytes=1)
    db = Database(config=config)
    db.register_model(fraud_fc_256(), name="fraud")
    yield db
    db.close()


def run_clients(server, feats, expected) -> float:
    errors: list[BaseException] = []
    start_gate = threading.Barrier(CLIENTS + 1)

    def client(cid: int):
        try:
            start_gate.wait()
            lo = cid * REQUESTS_PER_CLIENT
            futures = [
                server.submit(
                    "fraud",
                    feats[(lo + i) * ROWS_PER_REQUEST:
                          (lo + i + 1) * ROWS_PER_REQUEST],
                )
                for i in range(REQUESTS_PER_CLIENT)
            ]
            for i, future in enumerate(futures):
                got = future.result(timeout=120.0)
                lo_row = (lo + i) * ROWS_PER_REQUEST
                np.testing.assert_array_equal(
                    got, expected[lo_row:lo_row + ROWS_PER_REQUEST]
                )
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(CLIENTS)]
    for t in threads:
        t.start()
    start_gate.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return elapsed


def serve_once(db, feats, expected, cluster_workers: int) -> tuple[float, dict]:
    total = CLIENTS * REQUESTS_PER_CLIENT
    with db.serve(
        workers=CLUSTER_WORKERS,
        cluster_workers=cluster_workers,
        queue_capacity=total * ROWS_PER_REQUEST,
        max_batch_size=ROWS_PER_REQUEST,
        max_queue_delay_ms=0.0,
    ) as server:
        server.predict("fraud", feats[:1])  # warm plans (and the pool)
        elapsed = run_clients(server, feats, expected)
        stats = dict(server.stats_rows())
    return elapsed, stats


def test_cluster_throughput(cpu_bound_db, rng, capsys):
    total_requests = CLIENTS * REQUESTS_PER_CLIENT
    feats = rng.normal(size=(total_requests * ROWS_PER_REQUEST, FEATURE_DIM))
    expected = cpu_bound_db.predict_labels("fraud", feats)

    thread_seconds, thread_stats = serve_once(
        cpu_bound_db, feats, expected, cluster_workers=0
    )
    cluster_seconds, cluster_stats = serve_once(
        cpu_bound_db, feats, expected, cluster_workers=CLUSTER_WORKERS
    )

    thread_rps = total_requests / thread_seconds
    cluster_rps = total_requests / cluster_seconds
    speedup = cluster_rps / thread_rps

    emit(
        capsys,
        render_table(
            f"Cluster throughput: {CLIENTS} clients x {REQUESTS_PER_CLIENT} "
            f"requests x {ROWS_PER_REQUEST} rows (relation-centric fraud FC, "
            f"{os.cpu_count()} cores)",
            ["mode", "wall", "req/s"],
            [
                [f"threads={CLUSTER_WORKERS}", f"{thread_seconds:.3f}s",
                 f"{thread_rps:.0f}"],
                [f"cluster={CLUSTER_WORKERS} procs",
                 f"{cluster_seconds:.3f}s", f"{cluster_rps:.0f}"],
                ["speedup", "-", f"{speedup:.2f}x"],
            ],
        ),
    )

    record(
        "cluster-thread-mode",
        latency_seconds=thread_seconds,
        requests=total_requests,
        clients=CLIENTS,
        rows_per_request=ROWS_PER_REQUEST,
        requests_per_second=round(thread_rps, 1),
    )
    record(
        "cluster-process-mode",
        latency_seconds=cluster_seconds,
        requests=total_requests,
        clients=CLIENTS,
        rows_per_request=ROWS_PER_REQUEST,
        workers=CLUSTER_WORKERS,
        requests_per_second=round(cluster_rps, 1),
        speedup_vs_threads=round(speedup, 2),
        cores=os.cpu_count(),
    )

    # Correctness invariants hold on any host: all requests completed on
    # both paths, and the cluster actually served them (not a silent
    # fallback to the in-process engine).
    assert thread_stats["server.requests.completed"] >= total_requests
    assert cluster_stats["server.requests.completed"] >= total_requests
    assert any(
        name.startswith("server.worker.") for name in cluster_stats
    ), "cluster stats must carry worker-process rows"
    if MULTICORE:
        # The tentpole acceptance bar: >=2x req/s from 4 worker
        # processes over the GIL-bound thread path.
        assert speedup >= 2.0, (
            f"cluster reached only {speedup:.2f}x over thread mode "
            f"({cluster_rps:.0f} vs {thread_rps:.0f} req/s)"
        )
    else:  # pragma: no cover - exercised only on small hosts
        emit(
            capsys,
            f"[cluster-throughput] {os.cpu_count()} core(s) < "
            f"{CLUSTER_WORKERS}: speedup assertion skipped "
            f"(measured {speedup:.2f}x)",
        )
