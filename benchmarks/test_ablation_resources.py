"""Ablation A2 — unified resource management (Sec. 3).

Two studies:

* thread configuration: the successive-halving tuner versus the naive
  "give everything all cores" configuration that oversubscribes (the
  paper's RDBMS-threads × OpenMP-threads problem);
* device allocation: the producer-transfer-consumer model's CPU/GPU
  crossover per operator — small operators stay on CPU because transfer
  outweighs the GPU's compute advantage (the paper's decision-forest
  observation).
"""

from __future__ import annotations

import pytest

from repro.core import lower_model
from repro.dlruntime import Linear, Model, cpu_device, gpu_device
from repro.resources import DeviceAllocator, ThreadConfig, ThreadTuner, throughput_model
from repro.resources.allocator import modeled_latency

from _util import emit, fmt_seconds, render_table

CORES = 8


def _matmul_node(in_features: int, out_features: int):
    model = Model(
        "probe", [Linear(in_features, out_features, name="fc")], (in_features,)
    )
    return lower_model(model)[0]


def test_ablation_thread_tuning(benchmark, capsys):
    tuner = ThreadTuner(CORES, rng_seed=71)
    result = benchmark.pedantic(
        lambda: tuner.tune(initial_candidates=32, rounds=3), rounds=1, iterations=1
    )
    naive = ThreadConfig(db_threads=CORES, blas_threads=CORES)
    single = ThreadConfig(db_threads=1, blas_threads=1)
    rows = [
        [
            "naive (8 DB x 8 BLAS)",
            naive.total_threads,
            f"{throughput_model(naive, CORES):.2f}",
        ],
        [
            "single-threaded",
            single.total_threads,
            f"{throughput_model(single, CORES):.2f}",
        ],
        [
            f"tuned ({result.best.db_threads} DB x {result.best.blas_threads} BLAS)",
            result.best.total_threads,
            f"{throughput_model(result.best, CORES):.2f}",
        ],
    ]
    emit(
        capsys,
        render_table(
            f"Ablation A2a: thread configuration on {CORES} cores "
            f"({result.evaluations} tuner evaluations)",
            ["configuration", "total threads", "relative throughput"],
            rows,
        ),
    )
    tuned = throughput_model(result.best, CORES)
    assert tuned > throughput_model(naive, CORES) * 1.2
    assert tuned > throughput_model(single, CORES) * 1.5


def test_ablation_device_allocation(benchmark, capsys):
    cpu, gpu = cpu_device(), gpu_device()
    allocator = DeviceAllocator([cpu, gpu])
    operators = {
        "fraud-fc-like (28x256)": _matmul_node(28, 256),
        "encoder-like (76x3072)": _matmul_node(76, 3072),
        "wide (2048x2048)": _matmul_node(2048, 2048),
        "huge (8192x8192)": _matmul_node(8192, 8192),
    }
    rows = []
    decisions = {}
    for name, node in operators.items():
        decision = allocator.place(node, batch_size=64)
        crossover = allocator.crossover_batch(node, cpu, gpu, max_batch=1 << 18)
        decisions[name] = decision.device.kind
        rows.append(
            [
                name,
                fmt_seconds(decision.estimates["cpu0"]),
                fmt_seconds(decision.estimates["gpu0"]),
                decision.device.name,
                crossover if crossover is not None else ">262144",
            ]
        )
    benchmark.pedantic(
        lambda: allocator.place(operators["wide (2048x2048)"], 64),
        rounds=5,
        iterations=1,
    )
    emit(
        capsys,
        render_table(
            "Ablation A2b: device allocation at batch 64 "
            "(producer-transfer-consumer model)",
            ["operator", "CPU est.", "GPU est.", "chosen", "GPU crossover batch"],
            rows,
        ),
    )
    assert decisions["fraud-fc-like (28x256)"] == "cpu"
    assert decisions["huge (8192x8192)"] == "gpu"
