"""Figure 2 — latency reduction for FFNN inference over RDBMS data.

The paper's setup: samples live in the RDBMS; the proposed architecture
runs small FC models in-database (the rule-based optimizer picks the
UDF-centric representation), while the DL-centric baselines pull the rows
through a ConnectorX-style connector into TensorFlow / PyTorch stand-ins.

Expected shape: in-database serving wins for these small models because
the cross-system transfer, not the inference compute, dominates the
baselines — and the gap grows with the number of rows transferred.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.config import mb
from repro.data import feature_column_names, fraud_schema, fraud_transactions
from repro.dlruntime import Connector, ExternalRuntime, MemoryBudget
from repro.engines import DlCentricEngine
from repro.models import encoder_fc, fraud_fc_256, fraud_fc_512
from repro.relational.expressions import ColumnRef
from repro.relational.operators import Project, SeqScan
from repro.relational.schema import ColumnType, Schema

from _util import emit, fmt_seconds, measure, render_table

FRAUD_ROWS = 20_000
ENCODER_ROWS = 6_000


@pytest.fixture(scope="module")
def db():
    # Threshold scaled from the paper's 2 GB-on-61 GB setup: with batch
    # 1024, every Table 1 "small" model stays under 64 MB and fuses into a
    # single UDF, exactly as in Sec. 7.1.
    database = Database(
        buffer_pool_bytes=mb(128),
        memory_threshold_bytes=mb(64),
        dl_memory_limit_bytes=mb(512),
    )
    # Fraud transactions: 28 features.
    __, __, rows = fraud_transactions(FRAUD_ROWS, seed=11)
    database.create_table("tx", fraud_schema())
    database.load_rows("tx", rows)
    # Encoder inputs: 76 features.
    enc_schema = Schema.of(
        ("id", ColumnType.INT),
        *[(f"e{i}", ColumnType.DOUBLE) for i in range(76)],
    )
    enc_rng = np.random.default_rng(12)
    enc_rows = [
        (i, *map(float, enc_rng.normal(size=76))) for i in range(ENCODER_ROWS)
    ]
    database.create_table("enc", enc_schema)
    database.load_rows("enc", enc_rows)
    database.register_model(fraud_fc_256(), name="fraud256")
    database.register_model(fraud_fc_512(), name="fraud512")
    database.register_model(encoder_fc(), name="encoder")
    yield database
    database.close()


WORKLOADS = {
    "fraud-fc-256": ("fraud256", "tx", feature_column_names()),
    "fraud-fc-512": ("fraud512", "tx", feature_column_names()),
    "encoder-fc": ("encoder", "enc", [f"e{i}" for i in range(76)]),
}


def _ours_sql(db: Database, model: str, table: str, cols: list[str]):
    feature_list = ", ".join(cols)
    return db.execute(
        f"SELECT id, PREDICT({model}, {feature_list}) AS pred FROM {table}"
    )


def _dl_centric(db: Database, flavor: str, model_name: str, table: str, cols: list[str]):
    info = db.catalog.get_table(table)
    source = Project(SeqScan(info), [(ColumnRef(c), c) for c in cols])
    engine = DlCentricEngine(
        Connector(db.config.connector),
        ExternalRuntime(flavor, MemoryBudget(mb(2048))),
    )
    model = db.catalog.get_model(model_name).model
    return engine.run_from_source(model, source, cols)


@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_fig2_ours_in_database(benchmark, db, workload):
    """The benchmarked quantity: our adaptive in-database serving."""
    model, table, cols = WORKLOADS[workload]
    plan = db.inference_plan(model, 1024)
    assert plan.is_single_udf  # small models fuse to one UDF (Sec. 7.1)
    cursor = benchmark.pedantic(
        lambda: _ours_sql(db, model, table, cols), rounds=3, iterations=1
    )
    assert len(cursor) == db.catalog.get_table(table).row_count


def test_fig2_comparison_table(db, benchmark, capsys):
    """Reproduce Figure 2's comparison across all three FFNN models."""
    rows = []
    speedups = {}
    trials = 3  # median-of-3 damps scheduler noise on borderline cells
    for workload, (model, table, cols) in WORKLOADS.items():
        ours = sorted(
            measure(lambda: _ours_sql(db, model, table, cols))[1]
            for __ in range(trials)
        )[trials // 2]
        tf_runs = sorted(
            (_dl_centric(db, "tensorflow-sim", model, table, cols) for __ in range(trials)),
            key=lambda r: r.measured_seconds,
        )
        pt_runs = sorted(
            (_dl_centric(db, "pytorch-sim", model, table, cols) for __ in range(trials)),
            key=lambda r: r.measured_seconds,
        )
        tf = tf_runs[trials // 2]
        pt = pt_runs[trials // 2]
        speedups[workload] = (
            tf.measured_seconds / ours,
            pt.measured_seconds / ours,
        )
        rows.append(
            [
                workload,
                fmt_seconds(ours),
                fmt_seconds(tf.measured_seconds),
                fmt_seconds(tf.modeled_total_seconds),
                fmt_seconds(pt.measured_seconds),
                fmt_seconds(pt.modeled_total_seconds),
                f"{speedups[workload][0]:.1f}x / {speedups[workload][1]:.1f}x",
            ]
        )
    benchmark.pedantic(
        lambda: _ours_sql(db, "fraud256", "tx", feature_column_names()),
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        render_table(
            "Figure 2: FFNN inference latency over RDBMS data "
            f"({FRAUD_ROWS:,} fraud rows / {ENCODER_ROWS:,} encoder rows)",
            [
                "model",
                "ours (in-DB)",
                "TF-sim measured",
                "TF-sim modeled",
                "PT-sim measured",
                "PT-sim modeled",
                "speedup (TF/PT)",
            ],
            rows,
        ),
    )
    # The paper's claim: in-database serving reduces latency for small
    # models because cross-system transfer dominates the baselines.
    for workload, (tf_speedup, pt_speedup) in speedups.items():
        assert tf_speedup > 1.0, f"{workload}: DL-centric TF beat in-database"
        assert pt_speedup > 1.0, f"{workload}: DL-centric PT beat in-database"


def test_fig2_gap_grows_with_rows(db, benchmark, capsys):
    """The paper's bars widen with data volume: transfer scales with rows
    while the in-database path only pays scan + compute."""
    model, table, cols = WORKLOADS["fraud-fc-256"]
    info = db.catalog.get_table(table)
    full = info.row_count
    results = []
    for fraction in (0.25, 0.5, 1.0):
        limit = int(full * fraction)
        feature_list = ", ".join(cols)

        def ours():
            return db.execute(
                f"SELECT id, PREDICT({model}, {feature_list}) AS p "
                f"FROM {table} LIMIT {limit}"
            )

        __, ours_seconds = measure(ours)
        from repro.relational.operators import Limit, Project, SeqScan
        from repro.relational.expressions import ColumnRef
        from repro.dlruntime import Connector, ExternalRuntime, MemoryBudget
        from repro.engines import DlCentricEngine

        source = Limit(
            Project(SeqScan(info), [(ColumnRef(c), c) for c in cols]), limit
        )
        engine = DlCentricEngine(
            Connector(db.config.connector),
            ExternalRuntime("tensorflow-sim", MemoryBudget(mb(2048))),
        )
        dl = engine.run_from_source(
            db.catalog.get_model(model).model, source, cols
        )
        results.append((limit, ours_seconds, dl.measured_seconds))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        capsys,
        render_table(
            "Figure 2 (scaling): in-DB vs DL-centric as rows grow "
            "(fraud-fc-256)",
            ["rows", "ours", "TF-sim", "speedup"],
            [
                [n, fmt_seconds(o), fmt_seconds(d), f"{d / o:.2f}x"]
                for n, o, d in results
            ],
        ),
    )
    # Absolute advantage (seconds saved) grows with transferred volume.
    saved = [d - o for __, o, d in results]
    assert saved[-1] > saved[0]
