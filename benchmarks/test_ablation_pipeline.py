"""Ablation A4 — pipelined DL execution across devices (Sec. 5.2).

A deep FFNN is partitioned into stages under per-device memory limits;
we compare (a) the analytic pipelined makespan against sequential
stage-at-a-time execution on the device cost model, and (b) a real
threaded streaming run against a real sequential run for wall-clock
overlap on this host.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dlruntime import Linear, Model, ReLU, gpu_device
from repro.serving import (
    PipelineExecutor,
    partition_layers,
    simulate_pipeline_makespan,
    simulate_sequential_time,
)

from _util import emit, fmt_seconds, measure, render_table

WIDTH = 512
DEPTH = 8
TOTAL_ROWS = 4096
MICRO_BATCH = 256


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(91)
    layers = []
    for i in range(DEPTH):
        layers.append(Linear(WIDTH, WIDTH, rng=rng, name=f"fc{i}"))
        layers.append(ReLU())
    return Model("pipeline-deep", layers, input_shape=(WIDTH,))


@pytest.fixture(scope="module")
def stages(model):
    # Each device holds about two Linear layers' weights plus working
    # activations, forcing a ~4-stage partition.
    per_stage = 2 * (WIDTH * WIDTH * 8 + WIDTH * 8)
    activations = 2 * MICRO_BATCH * WIDTH * 8
    devices = [
        gpu_device(name=f"g{i}", memory_bytes=per_stage + activations + 512 * 1024)
        for i in range(6)
    ]
    stages = partition_layers(model, devices, micro_batch=MICRO_BATCH)
    assert len(stages) >= 3
    return stages


def test_ablation_pipeline_simulated(benchmark, stages, capsys):
    pipelined = benchmark.pedantic(
        lambda: simulate_pipeline_makespan(stages, TOTAL_ROWS, MICRO_BATCH),
        rounds=5,
        iterations=1,
    )
    sequential = simulate_sequential_time(stages, TOTAL_ROWS, MICRO_BATCH)
    speedup = sequential / pipelined
    emit(
        capsys,
        render_table(
            f"Ablation A4a: simulated pipeline schedule ({len(stages)} stages, "
            f"{TOTAL_ROWS // MICRO_BATCH} micro-batches)",
            ["schedule", "modeled time", "speedup"],
            [
                ["sequential", fmt_seconds(sequential), "1.0x"],
                ["pipelined", fmt_seconds(pipelined), f"{speedup:.2f}x"],
            ],
        ),
    )
    assert speedup > 1.5
    assert speedup <= len(stages) + 1e-9  # cannot beat the stage count


def test_ablation_pipeline_threaded(benchmark, model, stages, capsys):
    executor = PipelineExecutor(stages)
    x = np.random.default_rng(92).normal(size=(TOTAL_ROWS, WIDTH))
    (outputs, streamed), __total = measure(lambda: executor.run(x, MICRO_BATCH))

    def sequential():
        out = x
        for stage in stages:
            out = stage.forward(out)
        return out

    reference, sequential_seconds = measure(sequential)
    np.testing.assert_allclose(outputs, reference, atol=1e-9)
    benchmark.pedantic(lambda: executor.run(x, MICRO_BATCH), rounds=1, iterations=1)
    emit(
        capsys,
        render_table(
            "Ablation A4b: threaded streaming execution (real wall clock)",
            ["mode", "latency"],
            [
                ["sequential whole-batch", fmt_seconds(sequential_seconds)],
                ["pipelined micro-batches", fmt_seconds(streamed)],
            ],
        )
        + "(numpy releases the GIL inside matmul, so stages genuinely overlap;"
        " the simulated schedule above isolates the scheduling effect)\n",
    )
    # Real threading on one host is noisy; require only sanity, not a
    # specific speedup.
    assert streamed < sequential_seconds * 3
