"""Section 7.2.2 — HNSW-backed inference result caching.

The paper caches inference results behind a Faiss HNSW index and reports:

* simple CNN (conv 32·3×3, conv 16·3×3, fc 64, fc 10): 10.3× speedup,
  accuracy 98.75% → 93.65%;
* FFNN (128/1024/2048/64): 7.3× speedup, accuracy 97.74% → 95.26%.

We train both Table-equivalent models on the synthetic-MNIST substitute
(DESIGN.md) with the in-repo autodiff + Adam, then serve a Zipf-skewed
near-duplicate query stream (each arrival perturbs a popular base image)
one query at a time — the paper's online-serving setting.  Expected
shape: order-of-magnitude-ish speedup at high hit rates, bought with a
few points of accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import synthetic_mnist, zipf_query_stream
from repro.dlruntime import Adam
from repro.indexes import HnswIndex
from repro.models import cache_cnn, cache_ffnn
from repro.serving import InferenceResultCache, monte_carlo_error_bound

from _util import emit, fmt_seconds, measure, render_table

N_TRAIN = 1_200
N_TEST = 300
N_QUERIES = 1_000
EPOCHS = 4
CACHE_THRESHOLD = 5.0  # L2 in 784-dim pixel space: admits same-digit variants


def _train(model, x, y, epochs=EPOCHS, batch=64, lr=2e-3, seed=0):
    params = [p for __, p in model.parameters()]
    optimizer = Adam(params, lr=lr)
    order_rng = np.random.default_rng(seed)
    for __ in range(epochs):
        perm = order_rng.permutation(x.shape[0])
        for lo in range(0, x.shape[0], batch):
            idx = perm[lo : lo + batch]
            optimizer.zero_grad()
            logits = model.forward_ad(x[idx])
            logits.softmax_cross_entropy(y[idx]).backward()
            optimizer.step()
    return model


@pytest.fixture(scope="module")
def data():
    return synthetic_mnist(N_TRAIN, N_TEST, seed=51)


@pytest.fixture(scope="module")
def trained_cnn(data):
    x_train, y_train, __, __t = data
    return _train(cache_cnn(seed=52), x_train, y_train)


@pytest.fixture(scope="module")
def trained_ffnn(data):
    x_train, y_train, __, __t = data
    flat = x_train.reshape(N_TRAIN, -1)
    return _train(cache_ffnn(seed=53), flat, y_train)


def _serve_stream(model, queries, labels, cached: bool, warm_items=None):
    """Serve queries one at a time (the paper's online setting).

    The paper's cache "records the features of frequent inference
    requests": the index is built over those ahead of serving
    (``warm_items``), exactly like its Faiss HNSW setup.  Warm-up cost is
    excluded from the serving measurement (it is amortised across the
    cache's lifetime).
    """
    if cached:
        cache = InferenceResultCache(
            model,
            HnswIndex(
                queries.shape[1] if queries.ndim == 2 else 784,
                m=8,
                ef_search=8,
                seed=54,
            ),
            distance_threshold=CACHE_THRESHOLD,
            insert_on_miss=False,
        )
        if warm_items is not None:
            cache.warm(warm_items)

        def run():
            predictions = np.empty(len(queries), dtype=np.int64)
            for i in range(len(queries)):
                preds, __ = cache.serve(queries[i : i + 1])
                predictions[i] = preds[0]
            return predictions

        predictions, seconds = measure(run)
        accuracy = float((predictions == labels).mean())
        return accuracy, seconds, cache.stats.hit_rate
    else:

        def run():
            predictions = np.empty(len(queries), dtype=np.int64)
            for i in range(len(queries)):
                predictions[i] = model.predict(queries[i : i + 1])[0]
            return predictions

        predictions, seconds = measure(run)
        accuracy = float((predictions == labels).mean())
        return accuracy, seconds, 0.0


def _query_stream(x_test, y_test, image_shaped: bool):
    base = x_test.reshape(N_TEST, -1)
    queries, indices = zipf_query_stream(
        base, N_QUERIES, skew=1.2, jitter=0.01, seed=55
    )
    labels = y_test[indices]
    if image_shaped:
        queries = queries.reshape(N_QUERIES, 28, 28, 1)
    return queries, labels


def test_sec722_models_learn(benchmark, data, trained_cnn, trained_ffnn):
    __, __, x_test, y_test = data
    cnn_acc = benchmark.pedantic(
        lambda: float((trained_cnn.predict(x_test) == y_test).mean()),
        rounds=1,
        iterations=1,
    )
    ffnn_acc = float(
        (trained_ffnn.predict(x_test.reshape(N_TEST, -1)) == y_test).mean()
    )
    assert cnn_acc > 0.9, f"CNN only reached {cnn_acc:.2%}"
    assert ffnn_acc > 0.9, f"FFNN only reached {ffnn_acc:.2%}"


def test_sec722_cache_speedup_table(
    benchmark, data, trained_cnn, trained_ffnn, capsys
):
    __, __, x_test, y_test = data
    rows = []
    results = {}
    for name, model, image_shaped in (
        ("cache-cnn", trained_cnn, True),
        ("cache-ffnn", trained_ffnn, False),
    ):
        queries, labels = _query_stream(x_test, y_test, image_shaped)
        warm_items = x_test if image_shaped else x_test.reshape(N_TEST, -1)
        exact_acc, exact_s, __ = _serve_stream(model, queries, labels, cached=False)
        cached_acc, cached_s, hit_rate = _serve_stream(
            model, queries, labels, cached=True, warm_items=warm_items
        )
        speedup = exact_s / cached_s
        results[name] = (speedup, exact_acc, cached_acc, hit_rate)
        rows.append(
            [
                name,
                fmt_seconds(exact_s),
                fmt_seconds(cached_s),
                f"{speedup:.1f}x",
                f"{exact_acc:.2%}",
                f"{cached_acc:.2%}",
                f"{hit_rate:.0%}",
            ]
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        capsys,
        render_table(
            f"Sec. 7.2.2: HNSW inference-result caching ({N_QUERIES:,} "
            "Zipf-skewed online queries)",
            [
                "model",
                "exact",
                "cached",
                "speedup",
                "exact acc",
                "cached acc",
                "hit rate",
            ],
            rows,
        )
        + "paper: CNN 10.3x (98.75% -> 93.65%), FFNN 7.3x (97.74% -> 95.26%)\n",
    )
    for name, (speedup, exact_acc, cached_acc, hit_rate) in results.items():
        assert speedup > 1.5, f"{name}: speedup only {speedup:.2f}x"
        assert hit_rate > 0.5, f"{name}: hit rate only {hit_rate:.0%}"
        assert cached_acc > exact_acc - 0.15  # bounded accuracy loss


def test_sec722_error_bound_supports_adaptive_policy(
    benchmark, data, trained_ffnn, capsys
):
    """The Monte-Carlo bound the paper proposes for SLA-driven caching."""
    __, __, x_test, y_test = data
    base = x_test.reshape(N_TEST, -1)
    cache = InferenceResultCache(
        trained_ffnn,
        HnswIndex(784, m=8, ef_search=8, seed=56),
        distance_threshold=CACHE_THRESHOLD,
    )
    cache.warm(base)
    queries, __ = zipf_query_stream(base, 400, skew=1.2, jitter=0.01, seed=57)
    estimate = benchmark.pedantic(
        lambda: monte_carlo_error_bound(cache, queries, confidence=0.95),
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        f"Monte-Carlo bound: observed disagreement "
        f"{estimate.observed_disagreement:.2%}, Hoeffding upper "
        f"{estimate.hoeffding_upper:.2%}, Clopper-Pearson upper "
        f"{estimate.clopper_pearson_upper:.2%} (95% confidence)\n",
    )
    assert estimate.hoeffding_upper < 0.35
