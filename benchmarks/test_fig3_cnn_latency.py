"""Figure 3 — latency reduction for CNN inference over RDBMS data.

DeepBench-CONV1 at the paper's full scale (112×112×64 inputs, 64×64×1×1
kernels).  Image tensors live as BLOB columns in the RDBMS; the proposed
architecture runs the convolution in-database (UDF-centric — the operator
fits), while the DL-centric baselines ship every image through the
connector to the framework stand-ins.  Each 112×112×64 float64 image is
6.1 MiB on the wire, so transfer dominates the baselines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import mb
from repro.core import Representation, RuleBasedOptimizer
from repro.data import deepbench_inputs
from repro.dlruntime import Connector, ExternalRuntime, MemoryBudget
from repro.engines import DlCentricEngine, UdfCentricEngine
from repro.models import deepbench_conv1
from repro.relational.operators import SeqScan
from repro.relational.schema import ColumnType, Schema
from repro.storage import BufferPool, Catalog, FileDiskManager
from repro.config import SystemConfig

from _util import emit, fmt_seconds, measure, render_table

NUM_IMAGES = 8
SHAPE = (112, 112, 64)


@pytest.fixture(scope="module")
def setup():
    config = SystemConfig(
        page_size=64 * 1024,
        buffer_pool_bytes=mb(64),
        memory_threshold_bytes=mb(512),
    )
    disk = FileDiskManager(config.page_size)
    pool = BufferPool(disk, config.buffer_pool_pages)
    catalog = Catalog(pool)
    images = deepbench_inputs(NUM_IMAGES, side=112, channels=64, seed=21)
    info = catalog.create_table(
        "conv_inputs",
        Schema.of(("id", ColumnType.INT), ("image", ColumnType.BLOB)),
    )
    for i in range(NUM_IMAGES):
        info.heap.insert((i, np.ascontiguousarray(images[i]).tobytes()))
        info.row_count += 1
    model = deepbench_conv1()
    yield config, catalog, info, model, images
    disk.close()


def _ours_in_database(catalog, info, model):
    """Scan BLOB rows from the buffer pool and run the conv in-process."""
    engine = UdfCentricEngine(MemoryBudget(mb(2048)))
    arrays = [
        np.frombuffer(row[1], dtype=np.float64).reshape(SHAPE)
        for __, row in info.heap.scan()
    ]
    return engine.run_model(model, np.stack(arrays))


def _dl_centric(config, info, model, flavor):
    engine = DlCentricEngine(
        Connector(config.connector),
        ExternalRuntime(flavor, MemoryBudget(mb(4096))),
    )
    return engine.run_on_blobs(model, SeqScan(info), "image", SHAPE)


def test_fig3_optimizer_chooses_udf_centric(benchmark, setup):
    config, catalog, info, model, __ = setup
    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=NUM_IMAGES)
    assert plan.representations == [Representation.UDF_CENTRIC]
    result = benchmark.pedantic(
        lambda: _ours_in_database(catalog, info, model), rounds=3, iterations=1
    )
    assert result.outputs.shape == (NUM_IMAGES, 112, 112, 64)


def test_fig3_comparison_table(benchmark, setup, capsys):
    config, catalog, info, model, images = setup
    ours_result, ours = measure(lambda: _ours_in_database(catalog, info, model))
    tf = _dl_centric(config, info, model, "tensorflow-sim")
    pt = _dl_centric(config, info, model, "pytorch-sim")
    np.testing.assert_allclose(tf.outputs, ours_result.outputs, atol=1e-9)
    benchmark.pedantic(
        lambda: _ours_in_database(catalog, info, model), rounds=1, iterations=1
    )
    rows = [
        [
            "deepbench-conv1",
            fmt_seconds(ours),
            fmt_seconds(tf.measured_seconds),
            fmt_seconds(tf.modeled_total_seconds),
            fmt_seconds(pt.measured_seconds),
            fmt_seconds(pt.modeled_total_seconds),
            f"{tf.measured_seconds / ours:.1f}x / {pt.measured_seconds / ours:.1f}x",
        ]
    ]
    emit(
        capsys,
        render_table(
            f"Figure 3: CNN inference latency over RDBMS data ({NUM_IMAGES} "
            "images of 112×112×64)",
            [
                "model",
                "ours (in-DB)",
                "TF-sim measured",
                "TF-sim modeled",
                "PT-sim measured",
                "PT-sim modeled",
                "speedup (TF/PT)",
            ],
            rows,
        ),
    )
    assert tf.measured_seconds > ours
    assert pt.measured_seconds > ours
    # Transfer dominates the baseline: its transfer component alone
    # outweighs our whole in-database run.
    assert tf.detail["transfer_measured_s"] > 0.3 * ours
