"""Section 7.2.1 — model decomposition and push-down (paper: 5.7×).

The Bosch-style wide table (968 features) is vertically partitioned into
two halves stored as separate tables.  The inference pipeline similarity-
joins the halves on their most-correlated column pair, then runs the
968/256/2 FFNN over the joined features.

The decompose-push-down rule rewrites ``model(D1 ⋈ D2)`` so each half's
partial first-layer matmul runs *below* the join: the join then carries
256-dimensional partial activations instead of 968 raw features.
Expected shape: the rewritten plan wins by a large factor, growing with
the join fan-out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import mb
from repro.core.rules import DecomposePushDownRule, decompose_first_layer
from repro.data import bosch_wide_table, most_correlated_pair, vertical_split
from repro.models import bosch_ffnn
from repro.relational.operators import SeqScan, collect
from repro.relational.schema import ColumnType, Schema
from repro.storage import BufferPool, Catalog, InMemoryDiskManager

from _util import emit, fmt_seconds, measure, render_table

N_ROWS = 6_000
N_FEATURES = 968
HALF = N_FEATURES // 2
EPSILON = 0.015  # on the planted key pair (noise 0.01): a few matches/row


@pytest.fixture(scope="module")
def setup():
    features, __, __rows = bosch_wide_table(N_ROWS, n_features=N_FEATURES, seed=41)
    left_feats, right_feats = vertical_split(features)
    key_left, key_right, corr = most_correlated_pair(left_feats, right_feats)
    assert corr > 0.99  # the planted pair was found

    pool = BufferPool(InMemoryDiskManager(64 * 1024), capacity_pages=2048)
    catalog = Catalog(pool)
    left_schema = Schema.of(
        ("id", ColumnType.INT),
        *[(f"c{i}", ColumnType.DOUBLE) for i in range(HALF)],
    )
    right_schema = Schema.of(
        ("rid", ColumnType.INT),
        *[(f"d{i}", ColumnType.DOUBLE) for i in range(HALF)],
    )
    d1 = catalog.create_table("d1", left_schema)
    d2 = catalog.create_table("d2", right_schema)
    for i in range(N_ROWS):
        d1.heap.insert((i, *map(float, left_feats[i])))
        d2.heap.insert((i, *map(float, right_feats[i])))
    model = bosch_ffnn()
    rule = DecomposePushDownRule(
        model,
        left_feature_cols=[f"c{i}" for i in range(HALF)],
        right_feature_cols=[f"d{i}" for i in range(HALF)],
        left_key=f"c{key_left}",
        right_key=f"d{key_right}",
        epsilon=EPSILON,
    )
    return catalog, d1, d2, model, rule


def test_sec721_pipelines_agree(benchmark, setup):
    """Correctness: the rewrite is an algebraic identity."""
    catalog, d1, d2, model, rule = setup
    baseline = collect(rule.build_baseline(SeqScan(d1), SeqScan(d2)))
    pushed = benchmark.pedantic(
        lambda: collect(rule.build_pushed_down(SeqScan(d1), SeqScan(d2))),
        rounds=1,
        iterations=1,
    )
    assert len(baseline) == len(pushed)
    assert len(baseline) >= N_ROWS  # every row matches at least itself
    assert sorted(baseline.rows) == sorted(pushed.rows)


def test_sec721_pushdown_speedup(benchmark, setup, capsys):
    catalog, d1, d2, model, rule = setup
    __, baseline_seconds = measure(
        lambda: collect(rule.build_baseline(SeqScan(d1), SeqScan(d2)))
    )
    pushed_result, pushed_seconds = measure(
        lambda: collect(rule.build_pushed_down(SeqScan(d1), SeqScan(d2)))
    )
    benchmark.pedantic(
        lambda: collect(rule.build_pushed_down(SeqScan(d1), SeqScan(d2))),
        rounds=1,
        iterations=1,
    )
    speedup = baseline_seconds / pushed_seconds
    weights = decompose_first_layer(model, HALF)
    emit(
        capsys,
        render_table(
            "Sec. 7.2.1: model decomposition & push-down "
            f"({N_ROWS:,} rows × {N_FEATURES} features, eps={EPSILON})",
            ["plan", "join carries", "latency", "speedup"],
            [
                [
                    "baseline (join, then model)",
                    f"{N_FEATURES} raw features",
                    fmt_seconds(baseline_seconds),
                    "1.0x",
                ],
                [
                    "decomposed + pushed down",
                    f"{weights.w1.shape[1]} partial activations",
                    fmt_seconds(pushed_seconds),
                    f"{speedup:.1f}x",
                ],
            ],
        )
        + f"paper reports 5.7x on the full 1.18M-row Bosch dataset\n",
    )
    assert speedup > 1.5, f"push-down speedup only {speedup:.2f}x"
