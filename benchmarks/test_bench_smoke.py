"""CI benchmark smoke: a fast subset recorded to BENCH_RESULTS.json.

These scenarios run in seconds and exist to gate regressions, not to
reproduce a paper figure: latency is the median of a few warm repeats
(:func:`_util.measure_stable`) and memory is the engines' deterministic
peak-bytes accounting, so the comparator can hold tight memory
tolerances and loose latency ones.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.config import KB
from repro.data import fraud_transactions
from repro.models import fraud_fc_256

from _util import measure_stable, record

ROWS = 200
FEATURES = ", ".join(f"f{i}" for i in range(28))
PREDICT_SQL = f"SELECT id, PREDICT(fraud, {FEATURES}) FROM tx"


def make_fraud_db(**overrides) -> Database:
    db = Database(**overrides)
    __, __, rows = fraud_transactions(ROWS, seed=7)
    columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
    db.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
    db.load_rows("tx", rows)
    db.register_model(fraud_fc_256(), name="fraud")
    return db


@pytest.fixture(scope="module")
def fraud_db():
    db = make_fraud_db()
    yield db
    db.close()


def stage_peak_bytes(cursor) -> int:
    """Deterministic peak across the query's audited inference stages."""
    audits = cursor.stats.stage_audits if cursor.stats is not None else []
    return max((a.actual_peak_bytes for a in audits), default=0)


def test_smoke_relational_scan(fraud_db):
    cur, seconds = measure_stable(
        lambda: fraud_db.execute("SELECT id FROM tx WHERE f0 > 0.0 ORDER BY id")
    )
    assert 0 < len(cur) <= ROWS
    record("scan-filter-sort", latency_seconds=seconds, rows=len(cur))


def test_smoke_predict_sql(fraud_db):
    cur, seconds = measure_stable(lambda: fraud_db.execute(PREDICT_SQL))
    assert len(cur) == ROWS
    peak = stage_peak_bytes(cur)
    assert peak > 0, "audit should report engine peak bytes"
    record("predict-fraud-sql", latency_seconds=seconds, memory_bytes=peak, rows=ROWS)


def test_smoke_predict_lowered_threshold():
    """A threshold low enough to lower fraud-fc to relation-centric.

    The blockwise actual peak lands far under the threshold, so this is
    also the workload that must surface in SHOW AUDIT as a misprediction
    (acceptance criterion for the plan-quality audit).
    """
    db = make_fraud_db(memory_threshold_bytes=512 * KB)
    try:
        cur, seconds = measure_stable(lambda: db.execute(PREDICT_SQL))
        assert len(cur) == ROWS
        audit = db.execute("SHOW AUDIT")
        verdict_at = audit.columns.index("verdict")
        mispredicted = [r for r in audit.rows if r[verdict_at] != "ok"]
        assert mispredicted, "lowered run should record a misprediction"
        record(
            "predict-fraud-lowered",
            latency_seconds=seconds,
            memory_bytes=stage_peak_bytes(cur),
            rows=ROWS,
            threshold_bytes=512 * KB,
        )
    finally:
        db.close()


def test_smoke_explain_analyze(fraud_db):
    cur, seconds = measure_stable(
        lambda: fraud_db.execute(f"EXPLAIN ANALYZE {PREDICT_SQL}")
    )
    report = "\n".join(row[0] for row in cur)
    assert "inference stages (predict: fraud)" in report
    record("explain-analyze-predict", latency_seconds=seconds, rows=ROWS)
