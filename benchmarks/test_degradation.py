"""The degradation ladder: healthy fast path vs rescue vs steady state.

Runtime resilience trades latency for survival in three rungs:

1. **healthy** — the whole-tensor budget fits; the adaptive plan runs as
   one fused UDF (the paper's fast path).
2. **first rescue** — a tight budget OOMs the UDF stage; the executor
   pays the failed attempt, then re-lowers to the relation-centric
   pipeline and completes.
3. **steady state** — the recovery ledger has lowered the rescued
   operators up-front, so repeated queries take the bounded path
   directly, without paying the failed attempt again.

The benchmark prints the ladder and records each rung for the
regression comparator (``benchmarks/baselines/degradation.json``);
results across rungs must agree to float tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.config import mb
from repro.models import fraud_fc_256

from _util import (
    emit,
    fmt_bytes,
    fmt_seconds,
    measure_stable,
    record,
    render_table,
)

ROWS = 256
FEATURE_DIM = 28
#: Fraud-FC-256's weights (63,504 B) overflow a 40 KiB whole-tensor
#: budget on the first charge, while staying far under the 64 MiB
#: planning threshold — the estimate-was-wrong case recovery exists for.
TIGHT_BUDGET = 40 * 1024


def predict_once(db: Database, x: np.ndarray):
    return db.predict("fraud", x)


def test_degradation_ladder(rng, capsys):
    x = rng.normal(size=(ROWS, FEATURE_DIM))
    reference = fraud_fc_256().forward(x)

    # Rung 1: healthy adaptive plan, roomy budget.
    with Database(telemetry_enabled=True, memory_threshold_bytes=mb(64)) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        result, healthy_s = measure_stable(lambda: predict_once(db, x))
        healthy_peak = result.peak_memory_bytes
        assert "stage0.recovery" not in result.detail
        np.testing.assert_allclose(result.outputs, reference, atol=1e-9)

    # Rung 2: tight budget, fresh ledger — the first query pays the
    # failed UDF attempt plus the relation-centric re-run.
    with Database(
        telemetry_enabled=True,
        memory_threshold_bytes=mb(64),
        dl_memory_limit_bytes=TIGHT_BUDGET,
    ) as db:
        db.register_model(fraud_fc_256(), name="fraud")

        def rescued():
            db.recovery_ledger.clear()  # every pass replays the rescue
            return predict_once(db, x)

        result, rescue_s = measure_stable(rescued)
        rescue_peak = result.peak_memory_bytes
        assert result.detail.get("stage0.recovery") == 1.0
        np.testing.assert_allclose(result.outputs, reference, atol=1e-9)

        # Rung 3: same database, ledger warm — the plan is lowered
        # up-front and no recovery fires.
        predict_once(db, x)  # let one rescue land in the ledger
        result, steady_s = measure_stable(lambda: predict_once(db, x))
        steady_peak = result.peak_memory_bytes
        assert "stage0.recovery" not in result.detail
        np.testing.assert_allclose(result.outputs, reference, atol=1e-9)
        assert {row[0]: row[1] for row in db.execute("SHOW METRICS").rows}.get(
            'engine_recoveries_total{outcome="gave-up"}', 0
        ) == 0

    # The bounded path's stripe-at-a-time peak is a small fraction of the
    # fused UDF's whole-tensor peak — the property that makes re-lowering
    # a rescue rather than a different way to OOM.
    assert healthy_peak > TIGHT_BUDGET
    assert rescue_peak < healthy_peak / 4
    assert steady_peak < healthy_peak / 4

    rows = [
        ["healthy (fused UDF)", fmt_seconds(healthy_s), fmt_bytes(healthy_peak)],
        ["first rescue (OOM -> re-lower)", fmt_seconds(rescue_s), fmt_bytes(rescue_peak)],
        ["steady state (ledger-lowered)", fmt_seconds(steady_s), fmt_bytes(steady_peak)],
    ]
    emit(
        capsys,
        render_table(
            f"Degradation ladder — fraud-fc-256, {ROWS} rows, "
            f"{fmt_bytes(TIGHT_BUDGET)} whole-tensor budget",
            ["rung", "latency", "peak memory"],
            rows,
        ),
    )

    record(
        "degradation/healthy",
        latency_seconds=healthy_s,
        memory_bytes=healthy_peak,
        rows=ROWS,
    )
    record(
        "degradation/first_rescue",
        latency_seconds=rescue_s,
        memory_bytes=rescue_peak,
        rows=ROWS,
    )
    record(
        "degradation/steady_state",
        latency_seconds=steady_s,
        memory_bytes=steady_peak,
        rows=ROWS,
    )


def test_breaker_fast_fail_is_cheap(rng, capsys):
    """While a model's breaker is open, rejected submissions never touch
    a worker — fast-fail latency is orders of magnitude under execution
    latency, which is the point of failing fast."""
    from repro.errors import CircuitOpenError, InjectedFaultError

    features = rng.normal(size=(8, FEATURE_DIM))
    with Database(
        telemetry_enabled=True,
        breaker_min_samples=2,
        breaker_window=4,
        breaker_cooldown_requests=1000,  # stay open for the whole measure
    ) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        with db.serve(workers=1, max_queue_delay_ms=0.0) as server:
            baseline, executed_s = measure_stable(
                lambda: server.predict("fraud", features), repeats=3
            )
            db.faults.arm(
                site="server.batch", transient=False, one_shot=False, max_fires=2
            )
            for __ in range(2):
                with pytest.raises(InjectedFaultError):
                    server.submit("fraud", features).result(timeout=30.0)

            def fast_fail():
                with pytest.raises(CircuitOpenError):
                    server.submit("fraud", features)

            __, fast_fail_s = measure_stable(fast_fail, repeats=5)
    emit(
        capsys,
        render_table(
            "Breaker fast-fail vs execution",
            ["path", "latency"],
            [
                ["executed request", fmt_seconds(executed_s)],
                ["fast-fail (breaker open)", fmt_seconds(fast_fail_s)],
            ],
        ),
    )
    assert fast_fail_s < executed_s
    record("degradation/breaker_fast_fail", latency_seconds=fast_fail_s)
