"""Table 3 — large-scale model inference: latency and OOM behaviour.

The paper's grid (r4.2xlarge, 61 GB RAM, 2 GB optimizer threshold)::

    Model          Batch   Ours    UDF-centric  TensorFlow  PyTorch
    Amazon-14k-FC  1000    58.6    60.4         34.6        22.6
                   8000    407.2   OOM          OOM         OOM
    LandCover      1       36.8    OOM          9.9         OOM
                   2       45.2    OOM          OOM         OOM

We reproduce the same grid at 1/100 scale with a 150 MB whole-tensor
budget (DESIGN.md derives the scaling; the OOM pattern is arithmetic over
operator sizes, so it is exact, not a timing accident).  Expected shape:

* where an engine OOMs in the paper, it OOMs here;
* "ours" (the adaptive optimizer → relation-centric for the oversized
  operators) completes every cell, spilling blocks through the buffer
  pool;
* where the whole-tensor engines fit, their *modeled* latency beats ours
  (the paper's observation that frameworks win when memory suffices).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig, mb
from repro.core import Representation, RuleBasedOptimizer
from repro.data import landcover_tiles
from repro.dlruntime import ExternalRuntime, MemoryBudget
from repro.engines import RelationCentricEngine, UdfCentricEngine
from repro.models import amazon_14k_fc, landcover

from _util import OOM, emit, fmt_seconds, measure_or_oom, render_table

# 1/100 of the paper's instance memory scale.
WHOLE_TENSOR_BUDGET = mb(150)
AMAZON_SCALE = 0.01  # 5975 features / 1024 hidden / 146 outputs
AMAZON_BATCHES = (1000, 8000)
LC_SPATIAL = 320
LC_CHANNELS = 256
LC_BATCHES = (1, 2)


@pytest.fixture(scope="module")
def config():
    return SystemConfig(
        buffer_pool_bytes=mb(48),
        memory_threshold_bytes=mb(24),
        dl_memory_limit_bytes=WHOLE_TENSOR_BUDGET,
        tensor_block_rows=128,
        tensor_block_cols=128,
    )


@pytest.fixture(scope="module")
def amazon_setup(config):
    from repro.storage import BufferPool, Catalog, FileDiskManager

    disk = FileDiskManager(config.page_size)
    catalog = Catalog(BufferPool(disk, config.buffer_pool_pages))
    model = amazon_14k_fc(scale=AMAZON_SCALE)
    info = catalog.register_model("amazon", model)
    rng = np.random.default_rng(31)
    features = rng.normal(size=(max(AMAZON_BATCHES), model.input_shape[0]))
    yield config, catalog, model, info, features
    disk.close()


@pytest.fixture(scope="module")
def landcover_setup(config):
    from repro.storage import BufferPool, Catalog, FileDiskManager

    disk = FileDiskManager(config.page_size)
    catalog = Catalog(BufferPool(disk, config.buffer_pool_pages))
    model = landcover(spatial=LC_SPATIAL, out_channels=LC_CHANNELS)
    info = catalog.register_model("lc", model)
    tiles = landcover_tiles(max(LC_BATCHES), spatial=LC_SPATIAL, seed=32)
    yield config, catalog, model, info, tiles
    disk.close()


def _framework(flavor, model, x):
    runtime = ExternalRuntime(flavor, MemoryBudget(WHOLE_TENSOR_BUDGET))
    handle = runtime.load_model(model)

    def run():
        return runtime.run(handle, x)

    result, seconds = measure_or_oom(run)
    if result is None:
        return OOM, OOM
    return seconds, result.modeled_seconds


def _udf(model, x):
    engine = UdfCentricEngine(MemoryBudget(WHOLE_TENSOR_BUDGET), eager_free=False)
    result, seconds = measure_or_oom(lambda: engine.run_model(model, x))
    return seconds if result is not None else OOM


def test_table3_optimizer_picks_relation_centric(config, benchmark):
    """The 1/100-scale weights still trip the (scaled) threshold."""
    model = amazon_14k_fc(scale=AMAZON_SCALE)
    plan = benchmark.pedantic(
        lambda: RuleBasedOptimizer(config).plan_model(model, batch_size=1000),
        rounds=1,
        iterations=1,
    )
    assert plan.stages[0].representation is Representation.RELATION_CENTRIC
    lc_plan = RuleBasedOptimizer(config).plan_model(
        landcover(spatial=LC_SPATIAL, out_channels=LC_CHANNELS), batch_size=1
    )
    assert lc_plan.stages[0].representation is Representation.RELATION_CENTRIC


@pytest.mark.parametrize("batch", AMAZON_BATCHES)
def test_table3_amazon_ours_completes(benchmark, amazon_setup, batch):
    config, catalog, model, info, features = amazon_setup
    engine = RelationCentricEngine(catalog, config, stripe_rows=1024)
    x = features[:batch]
    result = benchmark.pedantic(
        lambda: engine.run_vector_stage(model.layers, x, info),
        rounds=1,
        iterations=1,
    )
    assert result.outputs.shape == (batch, model.output_shape[0])
    assert result.peak_memory_bytes < WHOLE_TENSOR_BUDGET


def test_table3_grid(amazon_setup, landcover_setup, benchmark, capsys):
    config, catalog, model, info, features = amazon_setup
    rows = []
    expectations = {}
    for batch in AMAZON_BATCHES:
        x = features[:batch]
        engine = RelationCentricEngine(catalog, config, stripe_rows=1024)
        ours_result, ours = measure_or_oom(
            lambda: engine.run_vector_stage(model.layers, x, info)
        )
        udf = _udf(model, x)
        tf, tf_model = _framework("tensorflow-sim", model, x)
        pt, pt_model = _framework("pytorch-sim", model, x)
        rows.append(
            [
                "Amazon-14k-FC (1/100)",
                batch,
                fmt_seconds(ours),
                fmt_seconds(udf),
                f"{fmt_seconds(tf)} ({fmt_seconds(tf_model)})",
                f"{fmt_seconds(pt)} ({fmt_seconds(pt_model)})",
            ]
        )
        expectations[("amazon", batch)] = (ours, udf, tf, pt)

    lc_config, lc_catalog, lc_model, lc_info, tiles = landcover_setup
    conv = lc_model.layers[0]
    for batch in LC_BATCHES:
        x = tiles[:batch]
        engine = RelationCentricEngine(lc_catalog, lc_config, stripe_rows=2048)
        ours_result, ours = measure_or_oom(
            lambda: engine.run_conv_stage(
                conv, x, lc_info, result_table=f"lc_out_b{batch}"
            )
        )
        udf = _udf(lc_model, x)
        tf, tf_model = _framework("tensorflow-sim", lc_model, x)
        pt, pt_model = _framework("pytorch-sim", lc_model, x)
        rows.append(
            [
                f"LandCover ({LC_SPATIAL}²×{LC_CHANNELS})",
                batch,
                fmt_seconds(ours),
                fmt_seconds(udf),
                f"{fmt_seconds(tf)} ({fmt_seconds(tf_model)})",
                f"{fmt_seconds(pt)} ({fmt_seconds(pt_model)})",
            ]
        )
        expectations[("landcover", batch)] = (ours, udf, tf, pt)

    pool_stats = lc_catalog.pool.stats
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        capsys,
        render_table(
            "Table 3: Large-scale model inference (whole-tensor budget "
            f"{WHOLE_TENSOR_BUDGET // mb(1)} MB; framework cells show "
            "measured (modeled))",
            ["model", "batch", "ours", "UDF-centric", "TF-sim", "PT-sim"],
            rows,
        )
        + f"buffer pool: {pool_stats.evictions} evictions, "
        f"{pool_stats.dirty_writebacks} dirty writebacks (relation-centric "
        "spilling)\n",
    )

    # The paper's OOM pattern, cell for cell.
    ours, udf, tf, pt = expectations[("amazon", 1000)]
    assert ours != OOM and udf != OOM and tf != OOM and pt != OOM
    ours, udf, tf, pt = expectations[("amazon", 8000)]
    assert ours != OOM
    assert (udf, tf, pt) == (OOM, OOM, OOM)
    ours, udf, tf, pt = expectations[("landcover", 1)]
    assert ours != OOM and tf != OOM
    assert (udf, pt) == (OOM, OOM)
    ours, udf, tf, pt = expectations[("landcover", 2)]
    assert ours != OOM
    assert (udf, tf, pt) == (OOM, OOM, OOM)
    # Relation-centric execution spilled through the buffer pool.
    assert pool_stats.evictions > 0
