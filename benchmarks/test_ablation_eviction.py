"""Ablation A6 — buffer-pool replacement under mixed workloads (Sec. 5.1).

The paper notes the buffer pool must coordinate "the disparate access
patterns of the vector data, the relational data, and various indexes".
This ablation runs the canonical mixed workload — a hot relational
working set probed between large one-shot tensor-block sweeps — under
LRU, Clock, and scan-resistant 2Q, and reports the hot-page hit rate each
policy preserves.
"""

from __future__ import annotations

import pytest

from repro.storage import (
    BufferPool,
    ClockPolicy,
    InMemoryDiskManager,
    LruPolicy,
    TwoQueuePolicy,
)

from _util import emit, render_table

CAPACITY = 32
HOT_PAGES = 8
SWEEP_PAGES = 200
ROUNDS = 6


def run_mixed_workload(policy) -> float:
    """Alternate hot-set probes with block sweeps; return hot hit rate."""
    pool = BufferPool(InMemoryDiskManager(4096), capacity_pages=CAPACITY, policy=policy)
    hot = []
    for __ in range(HOT_PAGES):
        page = pool.new_page()
        pool.unpin_page(page.page_id, dirty=True)
        hot.append(page.page_id)
    # Establish the working set.
    for __ in range(3):
        for page_id in hot:
            pool.unpin_page(pool.fetch_page(page_id).page_id)
    sweep = []
    for __ in range(SWEEP_PAGES):
        page = pool.new_page()
        pool.unpin_page(page.page_id, dirty=True)
        sweep.append(page.page_id)

    hot_hits = hot_accesses = 0
    for round_idx in range(ROUNDS):
        # One-shot sweep (a relation-centric matmul scanning block pages).
        for page_id in sweep:
            pool.unpin_page(pool.fetch_page(page_id).page_id)
        # Latency-critical relational probes in between.
        for page_id in hot:
            before = pool.stats.misses
            pool.unpin_page(pool.fetch_page(page_id).page_id)
            hot_accesses += 1
            hot_hits += pool.stats.misses == before
    return hot_hits / hot_accesses


def test_ablation_eviction_policies(benchmark, capsys):
    results = {
        "lru": run_mixed_workload(LruPolicy()),
        "clock": run_mixed_workload(ClockPolicy()),
        "2q": run_mixed_workload(TwoQueuePolicy()),
    }
    benchmark.pedantic(
        lambda: run_mixed_workload(TwoQueuePolicy()), rounds=3, iterations=1
    )
    emit(
        capsys,
        render_table(
            f"Ablation A6: hot-page hit rate under {SWEEP_PAGES}-page sweeps "
            f"({HOT_PAGES} hot pages, pool of {CAPACITY})",
            ["policy", "hot hit rate"],
            [[name, f"{rate:.0%}"] for name, rate in results.items()],
        ),
    )
    assert results["2q"] > results["lru"]
    assert results["2q"] >= 0.9  # the working set survives the sweeps
    assert results["lru"] <= 0.1  # LRU loses it every sweep
