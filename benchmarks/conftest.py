"""Benchmark fixtures and the results-file session hook."""

from __future__ import annotations

import os

import numpy as np
import pytest

import _util


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def pytest_sessionfinish(session, exitstatus):
    """Write recorded scenarios to $BENCH_RESULTS_PATH, if set."""
    path = os.environ.get("BENCH_RESULTS_PATH")
    if not path or not _util.RESULTS:
        return
    count = _util.write_results(path)
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line(f"wrote {count} benchmark scenario(s) to {path}")
