"""Ablation A1 — the optimizer's memory-threshold rule (Sec. 7.1).

Sweeps the threshold for Encoder-FC at batch 1024 and shows (a) where
each operator flips from UDF-centric to relation-centric and (b) the
measured latency cliff: relation-centric execution of cache-resident
operators pays block chunking overhead, which is exactly why the paper's
optimizer keeps small operators in the UDF representation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig, mb
from repro.core import Representation, RuleBasedOptimizer
from repro.engines import HybridExecutor
from repro.models import encoder_fc
from repro.storage import BufferPool, Catalog, InMemoryDiskManager

from _util import emit, fmt_seconds, measure_stable, render_table

BATCH = 1024
THRESHOLDS_MB = (1, 8, 26, 64)
# Encoder-FC operator estimates at batch 1024: matmul1 ≈ 27.7 MB,
# relu ≈ 50.3 MB... the sweep crosses them one by one.


@pytest.fixture(scope="module")
def setup():
    catalog = Catalog(
        BufferPool(InMemoryDiskManager(64 * 1024), capacity_pages=1024)
    )
    model = encoder_fc()
    info = catalog.register_model("encoder", model)
    x = np.random.default_rng(61).normal(size=(BATCH, 76))
    return catalog, model, info, x


def test_ablation_threshold_sweep(benchmark, setup, capsys):
    catalog, model, info, x = setup
    rows = []
    latencies = {}
    for threshold_mb in THRESHOLDS_MB:
        config = SystemConfig(
            memory_threshold_bytes=mb(threshold_mb),
            dl_memory_limit_bytes=mb(1024),
            buffer_pool_bytes=mb(64),
        )
        plan = RuleBasedOptimizer(config).plan_model(model, BATCH)
        executor = HybridExecutor(catalog, config)
        # Median-of-3 with a warmup pass: the sweep *asserts* on the
        # latency ordering below, so single-shot noise would flake.
        result, seconds = measure_stable(
            lambda: executor.execute(plan, x, info), repeats=3, warmup=1
        )
        relation_ops = sum(
            1
            for stage in plan.stages
            for __ in stage.nodes
            if stage.representation is Representation.RELATION_CENTRIC
        )
        latencies[threshold_mb] = seconds
        rows.append(
            [
                f"{threshold_mb} MB",
                " | ".join(s.representation.value for s in plan.stages),
                relation_ops,
                fmt_seconds(seconds),
            ]
        )
        np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-8)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(
        capsys,
        render_table(
            f"Ablation A1: memory-threshold sweep (Encoder-FC, batch {BATCH})",
            ["threshold", "stage representations", "relation ops", "latency"],
            rows,
        ),
    )
    # Tiny threshold = everything relational = slowest; huge = single UDF.
    assert latencies[max(THRESHOLDS_MB)] < latencies[min(THRESHOLDS_MB)]
    big_plan = RuleBasedOptimizer(
        SystemConfig(memory_threshold_bytes=mb(max(THRESHOLDS_MB)))
    ).plan_model(model, BATCH)
    assert big_plan.is_single_udf
    small_plan = RuleBasedOptimizer(
        SystemConfig(memory_threshold_bytes=mb(min(THRESHOLDS_MB)))
    ).plan_model(model, BATCH)
    assert all(
        s.representation is Representation.RELATION_CENTRIC
        for s in small_plan.stages
    )
