"""SystemConfig validation and helpers."""

import pytest

from repro.config import ConnectorCostModel, SystemConfig, gb, mb
from repro.errors import ConfigError


def test_unit_helpers():
    assert mb(1) == 1 << 20
    assert gb(2) == 2 << 30
    assert mb(0.5) == 1 << 19


def test_defaults_are_valid():
    config = SystemConfig()
    assert config.buffer_pool_pages == config.buffer_pool_bytes // config.page_size
    assert config.buffer_pool_pages >= 4


def test_with_options_revalidates():
    config = SystemConfig()
    bigger = config.with_options(memory_threshold_bytes=mb(100))
    assert bigger.memory_threshold_bytes == mb(100)
    assert config.memory_threshold_bytes != mb(100)  # original untouched
    with pytest.raises(ConfigError):
        config.with_options(memory_threshold_bytes=0)


@pytest.mark.parametrize(
    "overrides",
    [
        {"page_size": 1024},
        {"buffer_pool_bytes": 1024, "page_size": 4096},
        {"dl_memory_limit_bytes": 0},
        {"tensor_block_rows": 0},
        {"default_batch_size": -1},
        {"num_cores": 0},
        {"framework_compute_efficiency": 0.0},
        {"eviction_policy": "fifo"},
    ],
)
def test_invalid_configs_rejected(overrides):
    with pytest.raises(ConfigError):
        SystemConfig(**overrides)


def test_connector_cost_model_components():
    model = ConnectorCostModel(
        bandwidth_bytes_per_s=1e9,
        per_row_overhead_s=1e-6,
        per_batch_latency_s=1e-3,
    )
    t = model.wire_time(nbytes=1_000_000, nrows=1000, nbatches=2)
    assert t == pytest.approx(0.001 + 0.001 + 0.002)


def test_config_is_frozen():
    config = SystemConfig()
    with pytest.raises(Exception):
        config.page_size = 1  # type: ignore[misc]
