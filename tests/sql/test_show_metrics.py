"""SQL-visible telemetry: SHOW METRICS, SHOW STATS, per-query stats,
trace export, and the disabled fast path."""

import json

import pytest

from repro import Database
from repro.data import fraud_transactions
from repro.errors import SqlError
from repro.models import fraud_fc_256
from repro.sql.ast import Show
from repro.sql.parser import parse

FEATURES = ", ".join(f"f{i}" for i in range(28))


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


@pytest.fixture
def fraud_db(db):
    __, __, rows = fraud_transactions(200, seed=7)
    columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
    db.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
    db.load_rows("tx", rows)
    db.register_model(fraud_fc_256(), name="fraud")
    return db


def metrics(db) -> dict[str, float]:
    return {row[0]: row[1] for row in db.execute("SHOW METRICS").rows}


def test_show_metrics_and_stats_parse_as_show():
    assert parse("SHOW METRICS") == Show("metrics")
    assert parse("show stats") == Show("stats")
    with pytest.raises(SqlError):
        parse("SHOW NONSENSE")


def test_metrics_and_stats_stay_usable_as_identifiers(db):
    # METRICS/STATS are soft keywords: only special directly after SHOW.
    db.execute("CREATE TABLE metrics (id INT)")
    db.execute("CREATE TABLE stats (metrics INT)")
    db.execute("INSERT INTO stats VALUES (1)")
    assert db.execute("SELECT metrics FROM stats").rows == [(1,)]


def test_show_metrics_counts_queries(db):
    db.execute("CREATE TABLE t (id INT)")
    before = metrics(db)["queries_total"]
    db.execute("INSERT INTO t VALUES (1)")
    db.execute("SELECT * FROM t")
    after = metrics(db)
    assert after["queries_total"] >= before + 2
    assert after["query_seconds_count"] == after["queries_total"]


def test_predict_increments_bufferpool_and_optimizer_metrics(fraud_db):
    before = metrics(fraud_db)
    cur = fraud_db.execute(f"SELECT PREDICT(fraud, {FEATURES}) FROM tx")
    assert len(cur) == 200
    after = metrics(fraud_db)
    # The scan faulted/served pages through the buffer pool...
    assert after["bufferpool_hits_total"] > before["bufferpool_hits_total"]
    # ...the optimizer made decisions at compile time (register_model)...
    decisions = sum(
        v for k, v in after.items() if k.startswith("optimizer_decisions_total")
    )
    assert decisions > 0
    # ...and query time selected plan stages and ran engine stages.
    selections = {
        k: v - before.get(k, 0)
        for k, v in after.items()
        if k.startswith("optimizer_plan_selections_total") and v > before.get(k, 0)
    }
    assert selections, "PREDICT should select at least one plan stage"
    stage_runs = sum(
        v - before.get(k, 0)
        for k, v in after.items()
        if k.startswith("engine_stage_runs_total")
    )
    assert stage_runs >= 1


def test_metrics_change_across_queries(fraud_db):
    first = metrics(fraud_db)
    fraud_db.execute(f"SELECT PREDICT(fraud, {FEATURES}) FROM tx")
    second = metrics(fraud_db)
    fraud_db.execute(f"SELECT PREDICT(fraud, {FEATURES}) FROM tx")
    third = metrics(fraud_db)
    assert second["queries_total"] > first["queries_total"]
    assert third["queries_total"] > second["queries_total"]
    assert third["bufferpool_hits_total"] > second["bufferpool_hits_total"]


def test_cursor_stats_populated(fraud_db):
    cur = fraud_db.execute(f"SELECT PREDICT(fraud, {FEATURES}) FROM tx")
    stats = cur.stats
    assert stats is not None
    assert stats.statement == "Select"
    assert stats.rows == 200
    assert stats.elapsed_seconds > 0
    assert stats.pool_hits + stats.pool_misses > 0
    assert stats.representations, "engine stages should be attributed"
    text = stats.render()
    assert "200 rows" in text
    assert "buffer pool" in text


def test_show_stats_reports_system_state(fraud_db):
    rows = dict(fraud_db.execute("SHOW STATS").rows)
    assert rows["catalog.tables"] == 1
    assert rows["catalog.models"] == 1
    assert rows["bufferpool.capacity_pages"] > 0
    assert rows["config.telemetry_enabled"] is True
    assert "telemetry.spans_recorded" in rows


def test_export_trace_has_nested_query_spans(fraud_db, tmp_path):
    fraud_db.execute(f"SELECT PREDICT(fraud, {FEATURES}) FROM tx")
    path = tmp_path / "trace.json"
    count = fraud_db.export_trace(str(path))
    assert count > 0
    events = json.loads(path.read_text())["traceEvents"]
    by_name = {e["name"]: e for e in events}
    for name in ("query", "parse", "plan", "execute", "predict:fraud-fc-256"):
        assert name in by_name, f"missing span {name!r}"
    query_id = by_name["query"]["args"]["span_id"]
    assert by_name["parse"]["args"]["parent_id"] == query_id
    assert by_name["plan"]["args"]["parent_id"] == query_id
    assert by_name["execute"]["args"]["parent_id"] == query_id
    predict = by_name["predict:fraud-fc-256"]
    assert predict["args"]["parent_id"] == by_name["execute"]["args"]["span_id"]
    stage_names = [n for n in by_name if n.startswith("stage")]
    assert stage_names, "engine stages should appear as spans"
    for name in stage_names:
        assert by_name[name]["args"]["parent_id"] == predict["args"]["span_id"]


def test_zero_observation_histogram_quantiles_render_null(db):
    # A histogram that never observed anything has no distribution: its
    # SHOW METRICS quantile columns must be SQL NULL, not 0.0.
    db.telemetry.registry.histogram("ghost_seconds", "never observed")
    db.telemetry.registry.histogram("busy_seconds", "observed").observe(0.25)
    cur = db.execute("SHOW METRICS")
    assert cur.columns == ("name", "value", "p50", "p95", "p99")
    summary = {r[0]: r for r in cur.rows}
    assert summary["ghost_seconds"][1:] == (0.0, None, None, None)
    # A populated histogram keeps real quantiles on the same cursor.
    populated = summary["busy_seconds"]
    assert populated[1] == 1.0
    assert all(isinstance(q, float) for q in populated[2:])


def test_metrics_text_renders_prometheus(fraud_db):
    fraud_db.execute("SELECT id FROM tx")
    text = fraud_db.metrics_text()
    assert "# TYPE queries_total counter" in text
    assert "# TYPE query_seconds histogram" in text
    assert 'query_seconds_bucket{le="+Inf"}' in text


def test_disabled_telemetry_path():
    db = Database(telemetry_enabled=False)
    try:
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        cur = db.execute("SELECT * FROM t")
        assert cur.rows == [(1,), (2,)]
        assert cur.stats is None
        assert db.execute("SHOW METRICS").rows == []
        assert db.metrics_text() == ""
    finally:
        db.close()


def test_disabled_trace_export_is_valid_empty(tmp_path):
    db = Database(telemetry_enabled=False)
    try:
        db.execute("CREATE TABLE t (id INT)")
        path = tmp_path / "trace.json"
        assert db.export_trace(str(path)) == 0
        assert json.loads(path.read_text())["traceEvents"] == []
    finally:
        db.close()


def test_explain_rejects_non_select(db):
    db.execute("CREATE TABLE t (id INT)")
    with pytest.raises(SqlError):
        db.explain("SHOW TABLES")
    with pytest.raises(SqlError):
        db.explain("INSERT INTO t VALUES (1)")
