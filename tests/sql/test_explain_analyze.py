"""EXPLAIN ANALYZE: per-operator row counts and timings."""

import pytest

from repro import Database
from repro.errors import SqlError
from repro.relational import ColumnRef, ColumnType, Comparison, Literal, Schema
from repro.relational.operators import Filter, Limit, ValuesScan, collect
from repro.relational.operators.instrument import instrument


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INT, v DOUBLE)")
    database.execute(
        "INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0), (5, 5.0)"
    )
    yield database
    database.close()


def test_instrument_counts_rows_per_node():
    schema = Schema.of(("x", ColumnType.INT))
    scan = ValuesScan(schema, [(i,) for i in range(10)])
    filtered = Filter(scan, Comparison(">", ColumnRef("x"), Literal(4)))
    limited = Limit(filtered, 3)
    report = instrument(limited)
    rows = collect(limited).rows
    assert rows == [(5,), (6,), (7,)]
    assert report.for_node(limited).rows == 3
    assert report.for_node(filtered).rows == 3  # limit stops pulling
    # The scan produced up to x=7 before the limit stopped it.
    assert 8 <= report.for_node(scan).rows <= 10
    text = report.render(limited)
    assert "Limit" in text and "rows=3" in text


def test_explain_analyze_through_session(db):
    cursor, report = db.explain_analyze("SELECT id FROM t WHERE v > 2.5")
    assert [r[0] for r in cursor] == [3, 4, 5]
    assert "SeqScan(t)  [rows=5" in report
    assert "Filter" in report
    assert "rows=3" in report
    assert "ms]" in report


def test_explain_analyze_with_join(db):
    db.execute("CREATE TABLE u (tid INT, w TEXT)")
    db.execute("INSERT INTO u VALUES (1, 'a'), (1, 'b'), (9, 'z')")
    cursor, report = db.explain_analyze(
        "SELECT t.id, u.w FROM t JOIN u ON t.id = u.tid"
    )
    assert len(cursor) == 2
    assert "HashJoin" in report


def test_explain_analyze_rejects_non_select(db):
    with pytest.raises(SqlError):
        db.explain_analyze("CREATE TABLE x (a INT)")


def test_instrumented_plan_is_re_runnable():
    schema = Schema.of(("x", ColumnType.INT))
    scan = ValuesScan(schema, [(1,), (2,)])
    report = instrument(scan)
    assert list(scan) == [(1,), (2,)]
    assert list(scan) == [(1,), (2,)]
    assert report.for_node(scan).rows == 4
    assert report.for_node(scan).opened == 2
