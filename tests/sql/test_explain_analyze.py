"""EXPLAIN ANALYZE: per-operator row counts and timings.

Covers both entry points: the Python ``db.explain_analyze(sql)`` method
(returns ``(cursor, report)``) and the SQL statement ``EXPLAIN ANALYZE
SELECT ...`` (returns the report as a one-column cursor), including the
per-stage estimate-vs-actual section for PREDICT queries.
"""

import pytest

from repro import Database
from repro.data import fraud_transactions
from repro.errors import SqlError
from repro.models import fraud_fc_256
from repro.relational import ColumnRef, ColumnType, Comparison, Literal, Schema
from repro.relational.operators import Filter, Limit, ValuesScan, collect
from repro.relational.operators.instrument import instrument
from repro.sql.ast import ExplainAnalyze, Select
from repro.sql.parser import parse


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INT, v DOUBLE)")
    database.execute(
        "INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0), (5, 5.0)"
    )
    yield database
    database.close()


def test_instrument_counts_rows_per_node():
    schema = Schema.of(("x", ColumnType.INT))
    scan = ValuesScan(schema, [(i,) for i in range(10)])
    filtered = Filter(scan, Comparison(">", ColumnRef("x"), Literal(4)))
    limited = Limit(filtered, 3)
    report = instrument(limited)
    rows = collect(limited).rows
    assert rows == [(5,), (6,), (7,)]
    assert report.for_node(limited).rows == 3
    assert report.for_node(filtered).rows == 3  # limit stops pulling
    # The scan produced up to x=7 before the limit stopped it.
    assert 8 <= report.for_node(scan).rows <= 10
    text = report.render(limited)
    assert "Limit" in text and "rows=3" in text


def test_explain_analyze_through_session(db):
    cursor, report = db.explain_analyze("SELECT id FROM t WHERE v > 2.5")
    assert [r[0] for r in cursor] == [3, 4, 5]
    assert "SeqScan(t)  [rows=5" in report
    assert "Filter" in report
    assert "rows=3" in report
    assert "ms]" in report


def test_explain_analyze_with_join(db):
    db.execute("CREATE TABLE u (tid INT, w TEXT)")
    db.execute("INSERT INTO u VALUES (1, 'a'), (1, 'b'), (9, 'z')")
    cursor, report = db.explain_analyze(
        "SELECT t.id, u.w FROM t JOIN u ON t.id = u.tid"
    )
    assert len(cursor) == 2
    assert "HashJoin" in report


def test_explain_analyze_rejects_non_select(db):
    with pytest.raises(SqlError):
        db.explain_analyze("CREATE TABLE x (a INT)")


def test_explain_analyze_parses_as_statement():
    stmt = parse("EXPLAIN ANALYZE SELECT id FROM t")
    assert isinstance(stmt, ExplainAnalyze)
    assert isinstance(stmt.query, Select)
    # ANALYZE is a soft keyword: plain EXPLAIN still parses, and the
    # word stays usable as an identifier.
    assert not isinstance(parse("EXPLAIN SELECT id FROM t"), ExplainAnalyze)
    assert parse("SELECT analyze FROM t")


def test_explain_analyze_sql_statement(db):
    cur = db.execute("EXPLAIN ANALYZE SELECT id FROM t WHERE v > 2.5")
    assert cur.columns == ("plan",)
    report = "\n".join(row[0] for row in cur)
    assert "SeqScan(t)  [rows=5" in report
    assert "Filter" in report
    assert "rows=3" in report


def test_explain_analyze_sql_statement_with_join(db):
    db.execute("CREATE TABLE u (tid INT, w TEXT)")
    db.execute("INSERT INTO u VALUES (1, 'a'), (1, 'b'), (9, 'z')")
    cur = db.execute(
        "EXPLAIN ANALYZE SELECT t.id, u.w FROM t JOIN u ON t.id = u.tid"
    )
    report = "\n".join(row[0] for row in cur)
    assert "HashJoin" in report
    assert "rows=2" in report


@pytest.fixture
def fraud_db():
    database = Database()
    __, __, rows = fraud_transactions(120, seed=7)
    columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
    database.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
    database.load_rows("tx", rows)
    database.register_model(fraud_fc_256(), name="fraud")
    yield database
    database.close()


def test_explain_analyze_predict_reports_inference_stages(fraud_db):
    features = ", ".join(f"f{i}" for i in range(28))
    cur = fraud_db.execute(
        f"EXPLAIN ANALYZE SELECT id, PREDICT(fraud, {features}) FROM tx"
    )
    report = "\n".join(row[0] for row in cur)
    assert "inference stages (predict: fraud):" in report
    stage_lines = [
        line
        for line in report.split("\n")
        if line.strip().startswith("fraud-fc-256 stage")
    ]
    assert stage_lines, "each executed stage should get a report line"
    for line in stage_lines:
        # representation, rows, wall time, estimated and actual bytes.
        assert "[rows=120" in line
        assert "time=" in line
        assert "est=" in line and "actual=" in line
        assert "verdict=" in line
        assert any(
            rep in line for rep in ("udf-centric", "relation-centric", "dl-centric")
        )


def test_explain_analyze_predict_disabled_telemetry_note():
    db = Database(telemetry_enabled=False)
    try:
        __, __, rows = fraud_transactions(30, seed=7)
        columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
        db.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
        db.load_rows("tx", rows)
        db.register_model(fraud_fc_256(), name="fraud")
        features = ", ".join(f"f{i}" for i in range(28))
        __, report = db.explain_analyze(
            f"SELECT PREDICT(fraud, {features}) FROM tx"
        )
        assert "telemetry disabled" in report
    finally:
        db.close()


def test_instrumented_plan_is_re_runnable():
    schema = Schema.of(("x", ColumnType.INT))
    scan = ValuesScan(schema, [(1,), (2,)])
    report = instrument(scan)
    assert list(scan) == [(1,), (2,)]
    assert list(scan) == [(1,), (2,)]
    assert report.for_node(scan).rows == 4
    assert report.for_node(scan).opened == 2
