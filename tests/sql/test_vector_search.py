"""Session-level ANN retrieval over BLOB vector columns (Sec. 6.3)."""

import numpy as np
import pytest

from repro import Database
from repro.errors import CatalogError, SqlError


@pytest.fixture
def db(rng):
    database = Database()
    database.execute("CREATE TABLE docs (id INT, title TEXT, embedding BLOB)")
    centers = rng.normal(scale=3.0, size=(5, 16))
    vectors = []
    for i in range(100):
        vec = centers[i % 5] + rng.normal(scale=0.05, size=16)
        vectors.append(vec)
        database.load_rows(
            "docs", [(i, f"doc-{i}", np.ascontiguousarray(vec).tobytes())]
        )
    yield database, np.array(vectors)
    database.close()


@pytest.mark.parametrize("kind", ["flat", "hnsw", "lsh", "ivf"])
def test_vector_search_finds_nearest_row(db, kind, rng):
    database, vectors = db
    count = database.create_vector_index(f"idx_{kind}", "docs", "embedding", kind=kind)
    assert count == 100
    probe = 37
    result = database.vector_search(
        f"idx_{kind}", vectors[probe] + rng.normal(scale=1e-4, size=16), k=3
    )
    assert result.columns[-1] == "__distance"
    assert result.rows[0][0] == probe
    assert result.rows[0][1] == f"doc-{probe}"
    distances = result.column("__distance")
    assert distances == sorted(distances)


def test_refresh_picks_up_new_rows(db, rng):
    database, vectors = db
    database.create_vector_index("idx", "docs", "embedding", kind="flat")
    new_vec = rng.normal(size=16) + 50.0  # far from everything else
    database.load_rows("docs", [(999, "fresh", np.ascontiguousarray(new_vec).tobytes())])
    # Before refresh, the snapshot index does not know the new row.
    before = database.vector_search("idx", new_vec, k=1)
    assert before.rows[0][0] != 999
    assert database.refresh_vector_index("idx") == 101
    after = database.vector_search("idx", new_vec, k=1)
    assert after.rows[0][0] == 999


def test_vector_index_validation(db):
    database, __ = db
    with pytest.raises(SqlError):
        database.create_vector_index("bad", "docs", "title")  # TEXT column
    database.create_vector_index("idx", "docs", "embedding")
    with pytest.raises(CatalogError):
        database.create_vector_index("idx", "docs", "embedding")
    with pytest.raises(CatalogError):
        database.vector_search("ghost", np.zeros(16))
    with pytest.raises(SqlError):
        database.create_vector_index("weird", "docs", "embedding", kind="btree")


def test_mixed_dimensions_rejected():
    with Database() as database:
        database.execute("CREATE TABLE v (id INT, e BLOB)")
        database.load_rows(
            "v",
            [
                (1, np.zeros(4).tobytes()),
                (2, np.zeros(8).tobytes()),
            ],
        )
        with pytest.raises(SqlError):
            database.create_vector_index("idx", "v", "e")


def test_empty_table_rejected():
    with Database() as database:
        database.execute("CREATE TABLE v (id INT, e BLOB)")
        with pytest.raises(SqlError):
            database.create_vector_index("idx", "v", "e")
