"""SQL PREDICT served through session-managed result caches (Sec. 5.1)."""

import numpy as np
import pytest

from repro import Database
from repro.config import mb
from repro.data import feature_column_names, fraud_schema, fraud_transactions
from repro.errors import SqlError
from repro.models import fraud_fc_256


@pytest.fixture
def db():
    database = Database(memory_threshold_bytes=mb(64))
    features, __, rows = fraud_transactions(200, seed=61)
    database.create_table("tx", fraud_schema())
    database.load_rows("tx", rows)
    database.register_model(fraud_fc_256(), name="fraud")
    yield database, features
    database.close()


FEATURES = ", ".join(feature_column_names())
QUERY = f"SELECT id, PREDICT(fraud, {FEATURES}) AS p FROM tx"


def test_cached_predict_matches_exact(db):
    database, features = db
    exact = database.execute(QUERY).column("p")
    database.enable_result_cache("fraud", distance_threshold=1e-9, index="flat")
    cached_first = database.execute(QUERY).column("p")
    cached_second = database.execute(QUERY).column("p")
    assert cached_first == exact
    assert cached_second == exact
    cache = database.result_cache("fraud")
    assert cache.stats.hits >= 200  # the second pass hit for every row


def test_cache_entries_become_a_catalog_table(db):
    database, __ = db
    database.enable_result_cache("fraud", distance_threshold=0.1, index="hnsw")
    database.execute(QUERY)
    table = database.catalog.get_table("__cache_fraud")
    assert table.row_count == len(database.result_cache("fraud"))
    # The cache relation is an ordinary table: queryable through SQL.
    cur = database.execute(
        "SELECT COUNT(*) AS n, MIN(prediction) AS lo, MAX(prediction) AS hi "
        "FROM __cache_fraud"
    )
    n, lo, hi = cur.fetchone()
    assert n == table.row_count
    assert 0 <= lo <= hi <= 1


def test_exact_cache_mode(db):
    database, features = db
    database.enable_result_cache("fraud", distance_threshold=0.0, exact=True)
    first = database.execute(QUERY).column("p")
    second = database.execute(QUERY).column("p")
    assert first == second
    cache = database.result_cache("fraud")
    assert cache.stats.hits == 200
    assert cache.stats.misses == 200


def test_disable_restores_exact_serving(db):
    database, __ = db
    database.enable_result_cache("fraud", distance_threshold=5.0, index="flat")
    database.execute(QUERY)
    database.disable_result_cache("fraud")
    assert database.result_cache("fraud") is None
    exact = database.execute(QUERY).column("p")
    assert len(exact) == 200


def test_unknown_index_rejected(db):
    database, __ = db
    with pytest.raises(SqlError):
        database.enable_result_cache("fraud", distance_threshold=1.0, index="btree")
