"""UPDATE, IS NULL, and LIKE."""

import pytest

from repro import Database
from repro.errors import BindError, SqlParseError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE items (id INT, price DOUBLE, name TEXT)")
    database.execute(
        "INSERT INTO items VALUES "
        "(1, 10.0, 'apple'), (2, 20.0, 'apricot'), "
        "(3, NULL, 'banana'), (4, 40.0, NULL)"
    )
    yield database
    database.close()


def test_update_with_predicate(db):
    cur = db.execute("UPDATE items SET price = price * 2 WHERE id <= 2")
    assert cur.fetchone() == (2,)
    prices = dict(db.execute("SELECT id, price FROM items").rows)
    assert prices == {1: 20.0, 2: 40.0, 3: None, 4: 40.0}


def test_update_multiple_columns(db):
    db.execute("UPDATE items SET price = 0.0, name = 'sold' WHERE id = 1")
    assert db.execute("SELECT price, name FROM items WHERE id = 1").fetchone() == (
        0.0,
        "sold",
    )


def test_update_all_rows(db):
    cur = db.execute("UPDATE items SET price = 1.0")
    assert cur.fetchone() == (4,)
    assert set(db.execute("SELECT price FROM items").column("price")) == {1.0}


def test_update_references_old_values(db):
    # Assignments read the pre-update row, standard SQL semantics.
    db.execute("UPDATE items SET price = id + 0.5 WHERE id IN (1, 2)")
    prices = dict(db.execute("SELECT id, price FROM items WHERE id <= 2").rows)
    assert prices == {1: 1.5, 2: 2.5}


def test_update_unknown_column_rejected(db):
    with pytest.raises(Exception):
        db.execute("UPDATE items SET ghost = 1")


def test_update_parse_errors(db):
    with pytest.raises(SqlParseError):
        db.execute("UPDATE items SET price 1.0")


def test_is_null_and_is_not_null(db):
    assert db.execute("SELECT id FROM items WHERE price IS NULL").rows == [(3,)]
    assert sorted(
        db.execute("SELECT id FROM items WHERE price IS NOT NULL").column("id")
    ) == [1, 2, 4]
    assert db.execute("SELECT id FROM items WHERE name IS NULL").rows == [(4,)]


def test_is_null_composes_with_logic(db):
    cur = db.execute(
        "SELECT id FROM items WHERE price IS NULL OR name IS NULL ORDER BY id"
    )
    assert cur.column("id") == [3, 4]


def test_like_patterns(db):
    assert sorted(
        db.execute("SELECT id FROM items WHERE name LIKE 'ap%'").column("id")
    ) == [1, 2]
    assert db.execute("SELECT id FROM items WHERE name LIKE '_anana'").rows == [(3,)]
    assert db.execute("SELECT id FROM items WHERE name LIKE 'apple'").rows == [(1,)]
    # NULL names neither match nor anti-match.
    assert sorted(
        db.execute("SELECT id FROM items WHERE name NOT LIKE 'ap%'").column("id")
    ) == [3]


def test_like_requires_text(db):
    with pytest.raises(BindError):
        db.execute("SELECT id FROM items WHERE price LIKE '1%'")


def test_like_escapes_regex_metacharacters():
    with Database() as db:
        db.execute("CREATE TABLE t (s TEXT)")
        db.execute("INSERT INTO t VALUES ('a.c'), ('abc')")
        assert db.execute("SELECT s FROM t WHERE s LIKE 'a.c'").rows == [("a.c",)]
