"""SHOW TABLES / SHOW MODELS and UNION ALL."""

import pytest

from repro import Database
from repro.errors import PlanError, SqlParseError
from repro.models import fraud_fc_256


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE a (x INT, label TEXT)")
    database.execute("CREATE TABLE b (x INT, label TEXT)")
    database.execute("INSERT INTO a VALUES (1, 'a1'), (2, 'a2')")
    database.execute("INSERT INTO b VALUES (2, 'b2'), (3, 'b3')")
    yield database
    database.close()


def test_show_tables(db):
    cur = db.execute("SHOW TABLES")
    assert cur.columns == ("name", "columns", "rows")
    assert cur.rows == [("a", 2, 2), ("b", 2, 2)]


def test_show_models(db):
    db.register_model(fraud_fc_256(), name="fraud")
    cur = db.execute("SHOW MODELS")
    assert cur.rows == [("fraud", "fraud-fc-256", 7938)]


def test_show_garbage_rejected(db):
    with pytest.raises(SqlParseError):
        db.execute("SHOW INDEXES")


def test_union_all_keeps_duplicates(db):
    cur = db.execute("SELECT x FROM a UNION ALL SELECT x FROM b")
    assert sorted(r[0] for r in cur) == [1, 2, 2, 3]


def test_union_all_with_predicates_and_expressions(db):
    cur = db.execute(
        "SELECT x * 10 AS v FROM a WHERE x = 1 "
        "UNION ALL SELECT x FROM b WHERE x = 3"
    )
    assert sorted(r[0] for r in cur) == [3, 10]


def test_union_all_three_way(db):
    cur = db.execute(
        "SELECT x FROM a UNION ALL SELECT x FROM a UNION ALL SELECT x FROM a"
    )
    assert len(cur) == 6


def test_union_all_arity_mismatch_rejected(db):
    with pytest.raises(PlanError):
        db.execute("SELECT x, label FROM a UNION ALL SELECT x FROM b")


def test_union_requires_all(db):
    with pytest.raises(SqlParseError):
        db.execute("SELECT x FROM a UNION SELECT x FROM b")
