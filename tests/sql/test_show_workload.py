"""``SHOW WORKLOAD``: grammar, cursor shape, and end-to-end accounting."""

from __future__ import annotations

import threading

import pytest

from repro import Database
from repro.errors import SqlParseError
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.unparse import unparse
from repro.telemetry.workload import WORKLOAD_COLUMNS


# -- grammar -------------------------------------------------------------


def test_parse_forms():
    assert parse("SHOW WORKLOAD") == ast.ShowWorkload()
    assert parse("show workload top 5 by latency") == ast.ShowWorkload(
        top=5, by="latency"
    )
    assert parse("SHOW WORKLOAD TOP 1 BY count") == ast.ShowWorkload(
        top=1, by="count"
    )
    assert parse("SHOW WORKLOAD TOP 3 BY bytes") == ast.ShowWorkload(
        top=3, by="bytes"
    )
    assert parse("SHOW WORKLOAD 'abc123def456'") == ast.ShowWorkload(
        fingerprint="abc123def456"
    )


def test_unparse_round_trips():
    for sql in (
        "SHOW WORKLOAD",
        "SHOW WORKLOAD TOP 5 BY latency",
        "SHOW WORKLOAD TOP 2 BY bytes",
        "SHOW WORKLOAD 'deadbeef1234'",
    ):
        stmt = parse(sql)
        assert parse(unparse(stmt)) == stmt


def test_parse_errors():
    with pytest.raises(SqlParseError):
        parse("SHOW WORKLOAD TOP")  # missing count
    with pytest.raises(SqlParseError):
        parse("SHOW WORKLOAD TOP 0 BY latency")  # count < 1
    with pytest.raises(SqlParseError):
        parse("SHOW WORKLOAD TOP 5 latency")  # BY required
    with pytest.raises(SqlParseError):
        parse("SHOW WORKLOAD TOP 5 BY vibes")  # unknown ordering


def test_soft_keywords_stay_usable_as_identifiers():
    # WORKLOAD / SLO / PROFILE are soft keywords: still valid table and
    # column names outside the SHOW position.
    stmt = parse("SELECT workload, slo FROM profile WHERE workload = 1")
    assert isinstance(stmt, ast.Select)
    assert stmt.table.name == "profile"


# -- end-to-end ----------------------------------------------------------


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


def seed(db, rows=6):
    db.execute("CREATE TABLE t (x INT, name TEXT)")
    for i in range(rows):
        db.execute(f"INSERT INTO t VALUES ({i}, 'n{i}')")


def test_workload_counts_sum_to_executed_queries(db):
    seed(db, rows=6)
    for i in range(10):
        db.execute(f"SELECT * FROM t WHERE x = {i}")
    for i in range(4):
        db.execute(f"SELECT name FROM t LIMIT {i + 1}")
    rows = db.execute("SHOW WORKLOAD TOP 50 BY count").fetchall()
    executed = 1 + 6 + 10 + 4  # create + inserts + two select shapes
    assert sum(r[WORKLOAD_COLUMNS.index("calls")] for r in rows) == executed
    # Literal-insensitive: 10 point lookups fold into one fingerprint.
    calls = {r[WORKLOAD_COLUMNS.index("sql")]: r[2] for r in rows}
    assert 10 in calls.values()
    assert 6 in calls.values()


def test_show_workload_under_concurrency(db):
    """Acceptance: with 8 concurrent clients, SHOW WORKLOAD counts still
    sum exactly to the number of executed statements."""
    seed(db, rows=4)
    per_thread = 12
    errors = []

    def client(k):
        try:
            for i in range(per_thread):
                db.execute(f"SELECT * FROM t WHERE x = {k * 100 + i}")
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(k,)) for k in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    rows = db.execute("SHOW WORKLOAD TOP 5 BY latency").fetchall()
    lookup = next(
        r for r in rows if "WHERE" in r[WORKLOAD_COLUMNS.index("sql")]
    )
    assert lookup[WORKLOAD_COLUMNS.index("calls")] == 8 * per_thread


def test_top_k_and_ordering(db):
    seed(db)
    for __ in range(5):
        db.execute("SELECT * FROM t")
    rows = db.execute("SHOW WORKLOAD TOP 1 BY count").fetchall()
    assert len(rows) == 1
    assert rows[0][WORKLOAD_COLUMNS.index("calls")] >= 5


def test_fingerprint_detail_view(db):
    seed(db)
    db.execute("SELECT * FROM t WHERE x = 7")
    summary = db.execute("SHOW WORKLOAD TOP 50 BY count").fetchall()
    target = next(
        r for r in summary if "WHERE" in r[WORKLOAD_COLUMNS.index("sql")]
    )
    fp = target[WORKLOAD_COLUMNS.index("fingerprint")]
    detail = dict(db.execute(f"SHOW WORKLOAD '{fp}'").fetchall())
    assert detail["fingerprint"] == fp
    assert detail["calls"] == 1
    assert db.execute("SHOW WORKLOAD 'ffffffffffff'").fetchall() == []


def test_show_workload_records_itself_shape_normalized(db):
    # SHOW WORKLOAD is a statement like any other (pg_stat_statements
    # semantics): it appears in the store, with TOP k normalized so all
    # variants fold into one fingerprint.
    seed(db, rows=1)
    db.execute("SHOW WORKLOAD TOP 3 BY count")
    db.execute("SHOW WORKLOAD TOP 9 BY count")
    rows = db.execute("SHOW WORKLOAD TOP 50 BY count").fetchall()
    show_rows = [
        r for r in rows if r[WORKLOAD_COLUMNS.index("statement")] == "ShowWorkload"
    ]
    assert len(show_rows) == 1
    assert show_rows[0][WORKLOAD_COLUMNS.index("calls")] == 2


def test_disabled_telemetry_returns_empty(tmp_path):
    db = Database(telemetry_enabled=False)
    try:
        db.execute("CREATE TABLE t (x INT)")
        db.execute("SELECT * FROM t")
        assert db.execute("SHOW WORKLOAD").fetchall() == []
        assert db.execute("SHOW WORKLOAD TOP 5 BY latency").fetchall() == []
    finally:
        db.close()
