import numpy as np
import pytest

from repro import Database, Representation
from repro.data import fraud_transactions
from repro.errors import CatalogError, PlanError, SchemaError, SqlError
from repro.models import fraud_fc_256


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


@pytest.fixture
def people_db(db):
    db.execute("CREATE TABLE people (id INT, age INT, name TEXT)")
    db.execute(
        "INSERT INTO people VALUES (1, 30, 'ann'), (2, 25, 'bob'), "
        "(3, 30, 'cat'), (4, NULL, 'dee')"
    )
    return db


def test_create_insert_select_star(people_db):
    cur = people_db.execute("SELECT * FROM people")
    assert cur.columns == ("id", "age", "name")
    assert len(cur) == 4


def test_where_and_expressions(people_db):
    cur = people_db.execute(
        "SELECT name, age + 1 AS age1 FROM people WHERE age >= 30"
    )
    assert sorted(cur.rows) == [("ann", 31), ("cat", 31)]


def test_order_by_limit_offset(people_db):
    cur = people_db.execute(
        "SELECT name FROM people ORDER BY age DESC, name LIMIT 2 OFFSET 1"
    )
    # Postgres semantics: NULLS FIRST under DESC, then ties break on name:
    # dee(NULL), ann(30), cat(30), bob(25); OFFSET 1 LIMIT 2 -> ann, cat.
    assert [r[0] for r in cur] == ["ann", "cat"]


def test_group_by_aggregates(people_db):
    cur = people_db.execute(
        "SELECT age, COUNT(*) AS n, MIN(name) AS first FROM people GROUP BY age"
    )
    result = {row[0]: (row[1], row[2]) for row in cur}
    assert result[30] == (2, "ann")
    assert result[25] == (1, "bob")
    assert result[None] == (1, "dee")


def test_global_aggregate(people_db):
    cur = people_db.execute("SELECT COUNT(*) AS n, AVG(age) AS a FROM people")
    assert cur.fetchone() == (4, (30 + 25 + 30) / 3)


def test_join_between_tables(db):
    db.execute("CREATE TABLE a (id INT, v TEXT)")
    db.execute("CREATE TABLE b (aid INT, w DOUBLE)")
    db.execute("INSERT INTO a VALUES (1, 'x'), (2, 'y')")
    db.execute("INSERT INTO b VALUES (1, 1.5), (1, 2.5), (3, 9.0)")
    cur = db.execute(
        "SELECT a.v, b.w FROM a JOIN b ON a.id = b.aid ORDER BY b.w"
    )
    assert cur.rows == [("x", 1.5), ("x", 2.5)]


def test_left_join_preserves_unmatched(db):
    db.execute("CREATE TABLE a (id INT)")
    db.execute("CREATE TABLE b (aid INT)")
    db.execute("INSERT INTO a VALUES (1), (2)")
    db.execute("INSERT INTO b VALUES (1)")
    cur = db.execute("SELECT a.id, b.aid FROM a LEFT JOIN b ON a.id = b.aid")
    assert sorted(cur.rows, key=lambda r: r[0]) == [(1, 1), (2, None)]


def test_non_equi_join_falls_back_to_nested_loop(db):
    db.execute("CREATE TABLE a (x INT)")
    db.execute("CREATE TABLE b (y INT)")
    db.execute("INSERT INTO a VALUES (1), (5)")
    db.execute("INSERT INTO b VALUES (3)")
    cur = db.execute("SELECT a.x, b.y FROM a JOIN b ON a.x < b.y")
    assert cur.rows == [(1, 3)]


def test_insert_type_validation(db):
    db.execute("CREATE TABLE t (id INT, name TEXT)")
    with pytest.raises(SchemaError):
        db.execute("INSERT INTO t VALUES ('not-an-int', 'x')")


def test_predict_in_sql_matches_direct_inference(db):
    features, __, rows = fraud_transactions(300, seed=3)
    columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
    db.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
    db.load_rows("tx", rows)
    model = fraud_fc_256()
    db.register_model(model, name="fraud")
    feature_list = ", ".join(f"f{i}" for i in range(28))
    cur = db.execute(
        f"SELECT id, PREDICT(fraud, {feature_list}) AS pred FROM tx"
    )
    assert cur.columns == ("id", "pred")
    expected = model.predict(features)
    got = np.array(cur.column("pred"))
    np.testing.assert_array_equal(got, expected)


def test_predict_with_where_filter(db):
    features, __, rows = fraud_transactions(100, seed=4)
    columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
    db.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
    db.load_rows("tx", rows)
    model = fraud_fc_256()
    db.register_model(model, name="fraud")
    feature_list = ", ".join(f"f{i}" for i in range(28))
    cur = db.execute(
        f"SELECT id, PREDICT(fraud, {feature_list}) AS pred FROM tx WHERE f0 > 0.0"
    )
    mask = features[:, 0] > 0.0
    assert len(cur) == int(mask.sum())
    np.testing.assert_array_equal(
        np.array(cur.column("pred")), model.predict(features[mask])
    )


def test_predict_unknown_model_rejected(db):
    db.execute("CREATE TABLE t (x DOUBLE)")
    with pytest.raises(Exception) as exc:
        db.execute("SELECT PREDICT(ghost, x) FROM t")
    assert "ghost" in str(exc.value)


def test_explain_shows_representations(db):
    features, __, rows = fraud_transactions(10, seed=5)
    columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
    db.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
    db.load_rows("tx", rows)
    db.register_model(fraud_fc_256(), name="fraud")
    feature_list = ", ".join(f"f{i}" for i in range(28))
    text = db.explain(f"SELECT PREDICT(fraud, {feature_list}) FROM tx")
    assert "MapRows" in text
    assert "udf-centric" in text  # the adaptive plan for this small model


def test_predict_api_force_representation(db, rng):
    model = fraud_fc_256()
    db.register_model(model, name="fraud")
    x = rng.normal(size=(50, 28))
    adaptive = db.predict("fraud", x)
    forced = db.predict("fraud", x, force="relation-centric")
    np.testing.assert_allclose(adaptive.outputs, forced.outputs, atol=1e-9)
    np.testing.assert_allclose(adaptive.outputs, model.forward(x), atol=1e-12)


def test_set_option_recompiles_plans(db):
    model = fraud_fc_256()
    db.register_model(model, name="fraud")
    plan_before = db.inference_plan("fraud", 256)
    assert plan_before.is_single_udf
    db.set_option("memory_threshold_bytes", 1024)
    plan_after = db.inference_plan("fraud", 256)
    assert Representation.RELATION_CENTRIC in plan_after.representations


def test_aggregate_mixed_with_predict_rejected(db):
    db.execute("CREATE TABLE t (x DOUBLE)")
    db.register_model(fraud_fc_256(), name="fraud")
    with pytest.raises(PlanError):
        db.execute("SELECT COUNT(*), PREDICT(fraud, x) FROM t")


def test_duplicate_table_rejected(db):
    db.execute("CREATE TABLE t (x INT)")
    with pytest.raises(CatalogError):
        db.execute("CREATE TABLE t (x INT)")


def test_unsupported_statement_type(db):
    with pytest.raises(SqlError):
        db.explain("CREATE TABLE t (x INT)")


def test_database_persists_to_file(tmp_path):
    path = str(tmp_path / "db.pages")
    with Database(path=path) as db:
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (42)")
        cur = db.execute("SELECT x FROM t")
        assert cur.rows == [(42,)]
    import os

    assert os.path.getsize(path) > 0


def test_database_with_each_eviction_policy():
    for policy in ("lru", "clock", "2q"):
        with Database(eviction_policy=policy) as db:
            db.execute("CREATE TABLE t (x INT)")
            db.execute("INSERT INTO t VALUES (1), (2)")
            assert db.execute("SELECT COUNT(*) AS n FROM t").fetchone() == (2,)


def test_invalid_eviction_policy_rejected():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        Database(eviction_policy="mru")
