"""Property test: SQL arithmetic/comparison agrees with Python semantics.

Random expression trees are rendered to SQL text, parsed back, bound, and
evaluated over a one-row table; the result must match direct evaluation
of the same tree in Python.  This pins the whole lexer → parser → binder
→ evaluator chain.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.relational import ColumnType, Schema
from repro.relational.operators import Project, ValuesScan, collect
from repro.sql.parser import parse

ROW = {"a": 3, "b": -7, "x": 2.5, "y": -0.5}
SCHEMA = Schema.of(
    ("a", ColumnType.INT),
    ("b", ColumnType.INT),
    ("x", ColumnType.DOUBLE),
    ("y", ColumnType.DOUBLE),
)
ROW_TUPLE = (3, -7, 2.5, -0.5)


class Node:
    """A tiny expression AST mirrored in SQL text and Python semantics."""

    def __init__(self, sql: str, value: object):
        self.sql = sql
        self.value = value


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.sampled_from(["a", "b", "x", "y", "int", "float"]))
        if choice == "int":
            v = draw(st.integers(-20, 20))
            return Node(str(v) if v >= 0 else f"(0 - {abs(v)})", v)
        if choice == "float":
            v = draw(st.floats(-20, 20, allow_nan=False))
            return Node(repr(abs(v)) if v >= 0 else f"(0 - {abs(v)!r})", v)
        return Node(choice, ROW[choice])
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    if op == "/":
        assume(right.value != 0)
        value = left.value / right.value
    elif op == "+":
        value = left.value + right.value
    elif op == "-":
        value = left.value - right.value
    else:
        value = left.value * right.value
    assume(abs(value) < 1e12)
    return Node(f"({left.sql} {op} {right.sql})", value)


def evaluate_sql_expression(sql_expr: str) -> object:
    stmt = parse(f"SELECT {sql_expr} AS out FROM t")
    expr = stmt.items[0].expr
    scan = ValuesScan(SCHEMA, [ROW_TUPLE])
    return collect(Project(scan, [(expr, "out")])).rows[0][0]


@settings(max_examples=200, deadline=None)
@given(node=expressions())
def test_property_arithmetic_matches_python(node):
    got = evaluate_sql_expression(node.sql)
    assert got == pytest.approx(node.value, rel=1e-9, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    left=expressions(),
    right=expressions(),
    op=st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
)
def test_property_comparisons_match_python(left, right, op):
    got = evaluate_sql_expression(f"({left.sql}) {op} ({right.sql})")
    python_op = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
    }[op]
    assert got == python_op(left.value, right.value)


@settings(max_examples=50, deadline=None)
@given(node=expressions())
def test_property_abs_and_unary_minus(node):
    got = evaluate_sql_expression(f"abs(-({node.sql}))")
    assert got == pytest.approx(abs(node.value), rel=1e-9, abs=1e-9)
