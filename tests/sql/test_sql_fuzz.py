"""Property-based SQL round-trip fuzzing.

Two properties:

* **Round trip**: for randomly generated ASTs in the parser's canonical
  form, ``parse(unparse(ast)) == ast`` and unparsing is a fixed point.
* **Crash-freedom**: random byte mutations of valid SQL either parse or
  raise a :class:`~repro.errors.SqlError` subclass — never an
  ``AttributeError`` / ``IndexError`` / ``ValueError`` leaking from the
  parser's internals.

Canonical-form rules the strategies respect (the parser normalizes
these, so generating anything else could not round-trip):

* identifiers are lowercase and never (soft) keywords or aggregate names;
* expression-position literals are non-negative (``-5`` parses as
  ``UnaryOp("-", Literal(5))``; negatives appear only in INSERT VALUES);
* logical ops are uppercase, aggregate names uppercase, scalar function
  calls lowercase;
* HAVING only accompanies GROUP BY, OFFSET only accompanies LIMIT.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SqlError
from repro.relational.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    FunctionCall,
    IsNull,
    Like,
    Literal,
    LogicalOp,
    UnaryOp,
)
from repro.relational.schema import ColumnType
from repro.sql import parse, unparse
from repro.sql.ast import (
    AggregateCall,
    CreateTable,
    CreateTableAs,
    Delete,
    DropTable,
    Explain,
    ExplainAnalyze,
    Insert,
    InsertSelect,
    Join,
    PredictCall,
    Select,
    SelectItem,
    Show,
    Star,
    TableRef,
    UnionAll,
    Update,
)
from repro.sql.lexer import KEYWORDS, SOFT_KEYWORDS

RESERVED = (
    {k.lower() for k in KEYWORDS}
    | {k.lower() for k in SOFT_KEYWORDS}
    | {"sum", "avg", "min", "max", "count", "predict", "predict_proba"}
)

idents = st.from_regex(r"[a-z][a-z0-9_]{0,9}", fullmatch=True).filter(
    lambda s: s not in RESERVED
)

safe_strings = st.text(
    alphabet="abcXYZ 0123456789_%'.,!?-",
    max_size=12,
).filter(lambda s: "--" not in s)

# Expression-position literals: non-negative numbers only (see module doc).
literal_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=0, max_value=10**9),
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False),
    safe_strings,
)

CMP_OPS = ["=", "<", ">", "<=", ">=", "<>", "!="]
ARITH_OPS = ["+", "-", "*", "/", "%"]
SCALAR_FUNCS = ["abs", "sqrt", "exp", "ln", "floor", "ceil", "round", "sign"]


def expressions(max_leaves: int = 12):
    base = st.one_of(
        idents.map(ColumnRef),
        literal_values.map(Literal),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(ARITH_OPS), children, children).map(
                lambda t: BinaryOp(t[0], t[1], t[2])
            ),
            st.tuples(st.sampled_from(CMP_OPS), children, children).map(
                lambda t: Comparison(t[0], t[1], t[2])
            ),
            st.tuples(st.sampled_from(["AND", "OR"]), children, children).map(
                lambda t: LogicalOp(t[0], t[1], t[2])
            ),
            children.map(lambda e: UnaryOp("NOT", e)),
            children.map(lambda e: UnaryOp("-", e)),
            st.tuples(children, st.booleans()).map(
                lambda t: IsNull(t[0], negated=t[1])
            ),
            st.tuples(children, safe_strings, st.booleans()).map(
                lambda t: Like(t[0], t[1], negated=t[2])
            ),
            st.tuples(
                st.lists(st.tuples(children, children), min_size=1, max_size=2),
                st.one_of(st.none(), children),
            ).map(lambda t: CaseWhen(tuple(t[0]), t[1])),
            st.tuples(
                st.sampled_from(SCALAR_FUNCS),
                st.lists(children, min_size=1, max_size=2),
            ).map(lambda t: FunctionCall(t[0], tuple(t[1]))),
        )

    return st.recursive(base, extend, max_leaves=max_leaves)


aggregate_calls = st.one_of(
    st.just(AggregateCall("COUNT_STAR", None)),
    st.tuples(
        st.sampled_from(["SUM", "AVG", "MIN", "MAX", "COUNT"]), expressions(4)
    ).map(lambda t: AggregateCall(t[0], t[1])),
)

predict_calls = st.tuples(
    idents,
    st.lists(expressions(3), min_size=1, max_size=3),
    st.one_of(st.none(), st.integers(min_value=0, max_value=9)),
).map(lambda t: PredictCall(t[0], t[1], proba_class=t[2]))

select_items = st.one_of(
    st.just(SelectItem(Star())),
    st.tuples(
        st.one_of(expressions(6), aggregate_calls, predict_calls),
        st.one_of(st.none(), idents),
    ).map(lambda t: SelectItem(t[0], alias=t[1])),
)

table_refs = st.tuples(idents, st.one_of(st.none(), idents)).map(
    lambda t: TableRef(t[0], alias=t[1])
)

joins = st.tuples(
    table_refs, expressions(4), st.sampled_from(["inner", "left"])
).map(lambda t: Join(t[0], t[1], kind=t[2]))


@st.composite
def selects(draw):
    group_by = draw(st.lists(expressions(3), max_size=2))
    having = draw(st.one_of(st.none(), expressions(3))) if group_by else None
    limit = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=999)))
    offset = (
        draw(st.integers(min_value=0, max_value=99)) if limit is not None else 0
    )
    return Select(
        items=draw(st.lists(select_items, min_size=1, max_size=3)),
        table=draw(table_refs),
        joins=draw(st.lists(joins, max_size=2)),
        where=draw(st.one_of(st.none(), expressions(6))),
        group_by=group_by,
        order_by=draw(
            st.lists(st.tuples(expressions(3), st.booleans()), max_size=2)
        ),
        limit=limit,
        offset=offset,
        distinct=draw(st.booleans()),
        having=having,
    )


column_types = st.sampled_from(list(ColumnType))

# INSERT VALUES literals may be negative — the only negative-literal spot.
insert_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False),
    safe_strings,
)

statements = st.one_of(
    selects(),
    st.lists(selects(), min_size=2, max_size=3).map(UnionAll),
    selects().map(Explain),
    selects().map(ExplainAnalyze),
    st.tuples(idents, selects()).map(lambda t: CreateTableAs(t[0], t[1])),
    st.tuples(idents, selects()).map(lambda t: InsertSelect(t[0], t[1])),
    st.tuples(
        idents,
        st.lists(st.tuples(idents, column_types), min_size=1, max_size=4),
    ).map(lambda t: CreateTable(t[0], [list(c) for c in map(tuple, t[1])])),
    idents.map(DropTable),
    st.tuples(
        idents,
        st.lists(
            st.lists(insert_values, min_size=1, max_size=4),
            min_size=1,
            max_size=3,
        ),
    ).map(lambda t: Insert(t[0], t[1])),
    st.tuples(idents, st.one_of(st.none(), expressions(5))).map(
        lambda t: Delete(t[0], where=t[1])
    ),
    st.tuples(
        idents,
        st.lists(st.tuples(idents, expressions(4)), min_size=1, max_size=3),
        st.one_of(st.none(), expressions(4)),
    ).map(lambda t: Update(t[0], t[1], where=t[2])),
    st.sampled_from(
        [
            "tables",
            "models",
            "metrics",
            "stats",
            "server",
            "audit",
            "faults",
            "health",
        ]
    ).map(Show),
)

FUZZ_SETTINGS = settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def normalize(stmt):
    """Dataclass equality quirks: CreateTable holds lists of tuples/lists
    depending on producer; compare via a canonical form."""
    if isinstance(stmt, CreateTable):
        return CreateTable(stmt.name, [tuple(c) for c in stmt.columns])
    if isinstance(stmt, Insert):
        return Insert(stmt.table, [list(r) for r in stmt.rows])
    if isinstance(stmt, Update):
        return Update(stmt.table, [tuple(a) for a in stmt.assignments], stmt.where)
    return stmt


@FUZZ_SETTINGS
@given(statements)
def test_parse_unparse_round_trip(stmt):
    sql = unparse(stmt)
    reparsed = parse(sql)
    assert normalize(reparsed) == normalize(stmt), sql


@FUZZ_SETTINGS
@given(statements)
def test_unparse_is_a_fixed_point(stmt):
    sql = unparse(stmt)
    assert unparse(parse(sql)) == sql


SEED_CORPUS = [
    "SELECT id, PREDICT(fraud, f0, f1) AS score FROM tx WHERE f0 > 0.5",
    "SELECT COUNT(*) AS n, SUM(v) AS total FROM t GROUP BY k HAVING (SUM(v) > 1)",
    "CREATE TABLE t (id INT, name TEXT, score DOUBLE, ok BOOL)",
    "INSERT INTO t VALUES (1, 'a', -0.5, TRUE), (2, 'b', NULL, FALSE)",
    "SELECT a.x, b.y FROM a AS a JOIN b AS b ON (a.id = b.id) ORDER BY a.x DESC LIMIT 10 OFFSET 2",
    "UPDATE t SET v = (v + 1) WHERE (id BETWEEN 3 AND 9)",
    "DELETE FROM t WHERE name LIKE 'x%'",
    "EXPLAIN ANALYZE SELECT * FROM t",
    "SELECT CASE WHEN (x > 0) THEN 'pos' ELSE 'neg' END AS sign FROM t",
    "SELECT * FROM t WHERE x IN (1, 2, 3) UNION ALL SELECT * FROM u",
    "SHOW FAULTS",
    "SHOW HEALTH",
    "SHOW AUDIT",
    "SHOW SERVER",
    "show metrics",
]

MUTATION_BYTES = b"'\"();,.*=<>!%+-_ abcSELECT09\x00\xff"


@pytest.mark.parametrize("seed", range(4))
def test_mutated_sql_raises_only_sql_errors(seed):
    """Seeded random byte mutations: the parser may reject, never crash."""
    rng = random.Random(seed)
    for __ in range(400):
        text = bytearray(rng.choice(SEED_CORPUS).encode("utf-8"))
        for __ in range(rng.randint(1, 6)):
            action = rng.randrange(3)
            pos = rng.randrange(len(text)) if text else 0
            if action == 0 and text:
                text[pos] = rng.choice(MUTATION_BYTES)
            elif action == 1:
                text.insert(pos, rng.choice(MUTATION_BYTES))
            elif action == 2 and text:
                del text[pos]
        sql = text.decode("utf-8", errors="ignore")
        try:
            parse(sql)
        except SqlError:
            pass  # rejection with a typed grammar error is the contract
        except Exception as exc:  # pragma: no cover - the failure case
            pytest.fail(f"parser crashed with {type(exc).__name__}: {exc!r}\n  sql={sql!r}")


def test_seed_corpus_round_trips():
    for sql in SEED_CORPUS:
        ast = parse(sql)
        assert parse(unparse(ast)) == ast, sql
        assert unparse(parse(unparse(ast))) == unparse(ast), sql
