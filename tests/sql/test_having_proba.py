"""HAVING and PREDICT_PROBA."""

import numpy as np
import pytest

from repro import Database
from repro.config import mb
from repro.data import feature_column_names, fraud_schema, fraud_transactions
from repro.errors import SqlError, SqlParseError
from repro.models import fraud_fc_256

FEATURES = ", ".join(feature_column_names())


@pytest.fixture
def db():
    database = Database(memory_threshold_bytes=mb(64))
    features, __, rows = fraud_transactions(120, seed=81)
    database.create_table("tx", fraud_schema())
    database.load_rows("tx", rows)
    database.register_model(fraud_fc_256(), name="fraud")
    yield database, features
    database.close()


def test_having_filters_groups(db):
    database, __ = db
    cur = database.execute(
        "SELECT label, COUNT(*) AS n FROM tx GROUP BY label HAVING n > 10"
    )
    assert all(n > 10 for __, n in cur.rows)
    unfiltered = database.execute(
        "SELECT label, COUNT(*) AS n FROM tx GROUP BY label"
    )
    assert len(cur) < len(unfiltered) or all(n > 10 for __, n in unfiltered.rows)


def test_having_on_aggregate_alias(db):
    database, __ = db
    cur = database.execute(
        "SELECT label, AVG(f0) AS mean0 FROM tx GROUP BY label HAVING mean0 > -100.0"
    )
    assert len(cur) == 2  # both labels pass a trivially true HAVING


def test_predict_proba_matches_forward(db):
    database, features = db
    model = database.model_info("fraud").model
    cur = database.execute(
        f"SELECT PREDICT_PROBA(fraud, 0, {FEATURES}) AS p0, "
        f"PREDICT_PROBA(fraud, 1, {FEATURES}) AS p1 FROM tx"
    )
    p0 = np.array(cur.column("p0"))
    p1 = np.array(cur.column("p1"))
    probs = model.forward(features)
    np.testing.assert_allclose(p0, probs[:, 0], atol=1e-12)
    np.testing.assert_allclose(p1, probs[:, 1], atol=1e-12)
    np.testing.assert_allclose(p0 + p1, np.ones(len(cur)), atol=1e-12)


def test_predict_proba_thresholding_in_where_style_filter(db):
    database, features = db
    cur = database.execute(
        f"SELECT id, PREDICT_PROBA(fraud, 1, {FEATURES}) AS risk FROM tx "
        "ORDER BY risk DESC LIMIT 5"
    )
    risks = cur.column("risk")
    assert risks == sorted(risks, reverse=True)
    assert all(0.0 <= r <= 1.0 for r in risks)


def test_predict_proba_class_out_of_range(db):
    database, __ = db
    with pytest.raises(SqlError):
        database.execute(f"SELECT PREDICT_PROBA(fraud, 7, {FEATURES}) FROM tx")


def test_predict_proba_requires_integer_class(db):
    database, __ = db
    with pytest.raises(SqlParseError):
        database.execute(f"SELECT PREDICT_PROBA(fraud, 0.5, {FEATURES}) FROM tx")


def test_predict_proba_bypasses_label_cache(db):
    database, features = db
    database.enable_result_cache("fraud", distance_threshold=100.0, index="flat")
    model = database.model_info("fraud").model
    cur = database.execute(
        f"SELECT PREDICT_PROBA(fraud, 1, {FEATURES}) AS p1 FROM tx"
    )
    np.testing.assert_allclose(
        np.array(cur.column("p1")), model.forward(features)[:, 1], atol=1e-12
    )


def test_case_when_expression(db):
    database, __ = db
    cur = database.execute(
        "SELECT CASE WHEN f0 > 0 THEN 'pos' WHEN f0 < 0 THEN 'neg' "
        "ELSE 'zero' END AS sign, COUNT(*) AS n FROM tx GROUP BY "
        "CASE WHEN f0 > 0 THEN 'pos' WHEN f0 < 0 THEN 'neg' ELSE 'zero' END"
    )
    counts = dict(cur.rows)
    assert set(counts) <= {"pos", "neg", "zero"}
    assert sum(counts.values()) == 120


def test_case_when_numeric_widening(db):
    database, __ = db
    cur = database.execute(
        "SELECT CASE WHEN id > 5 THEN id ELSE f0 END AS v FROM tx LIMIT 10"
    )
    assert all(isinstance(v, float) for v in cur.column("v"))


def test_case_without_else_yields_null(db):
    database, __ = db
    cur = database.execute(
        "SELECT CASE WHEN id < 0 THEN 1 END AS v FROM tx LIMIT 3"
    )
    assert cur.column("v") == [None, None, None]


def test_case_incompatible_branches_rejected(db):
    from repro.errors import BindError

    database, __ = db
    with pytest.raises(BindError):
        database.execute(
            "SELECT CASE WHEN id > 0 THEN 'text' ELSE 1 END FROM tx"
        )
