"""Databases with a path persist tables AND models across sessions."""

import numpy as np
import pytest

from repro import Database
from repro.data import feature_column_names, fraud_schema, fraud_transactions
from repro.models import cache_cnn, fraud_fc_256


def test_tables_survive_reopen(tmp_path):
    path = str(tmp_path / "db.pages")
    with Database(path=path) as db:
        db.execute("CREATE TABLE t (id INT, name TEXT, score DOUBLE)")
        db.execute("INSERT INTO t VALUES (1, 'a', 0.5), (2, 'b', NULL)")
    with Database(path=path) as db:
        cur = db.execute("SELECT id, name, score FROM t ORDER BY id")
        assert cur.rows == [(1, "a", 0.5), (2, "b", None)]
        # The reopened table is writable.
        db.execute("INSERT INTO t VALUES (3, 'c', 1.5)")
        assert db.execute("SELECT COUNT(*) AS n FROM t").fetchone() == (3,)
    with Database(path=path) as db:
        assert db.execute("SELECT COUNT(*) AS n FROM t").fetchone() == (3,)


def test_models_survive_reopen_with_identical_predictions(tmp_path):
    path = str(tmp_path / "db.pages")
    features, __, rows = fraud_transactions(100, seed=71)
    model = fraud_fc_256()
    expected = model.predict(features)
    feature_list = ", ".join(feature_column_names())
    with Database(path=path) as db:
        db.create_table("tx", fraud_schema())
        db.load_rows("tx", rows)
        db.register_model(model, name="fraud")
    with Database(path=path) as db:
        info = db.model_info("fraud")
        np.testing.assert_array_equal(
            info.model.layers[0].weight.data, model.layers[0].weight.data
        )
        cur = db.execute(f"SELECT PREDICT(fraud, {feature_list}) AS p FROM tx")
        np.testing.assert_array_equal(np.array(cur.column("p")), expected)


def test_conv_model_round_trips(tmp_path):
    path = str(tmp_path / "db.pages")
    model = cache_cnn(seed=72)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 28, 28, 1))
    expected = model.forward(x)
    with Database(path=path) as db:
        db.register_model(model, name="cnn")
    with Database(path=path) as db:
        restored = db.model_info("cnn").model
        np.testing.assert_allclose(restored.forward(x), expected, atol=1e-12)
        assert restored.param_count == model.param_count


def test_reopened_models_are_aot_compiled(tmp_path):
    path = str(tmp_path / "db.pages")
    with Database(path=path) as db:
        db.register_model(fraud_fc_256(), name="fraud")
    with Database(path=path) as db:
        plan = db.inference_plan("fraud", 64)
        assert plan.is_single_udf


def test_fresh_path_has_no_sidecar_effects(tmp_path):
    path = str(tmp_path / "empty.pages")
    with Database(path=path) as db:
        assert list(db.catalog.tables()) == []
    # Reopen: sidecar exists but is empty of content.
    with Database(path=path) as db:
        assert list(db.catalog.tables()) == []
        assert list(db.catalog.models()) == []


def test_in_memory_database_does_not_write_sidecars(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with Database() as db:
        db.execute("CREATE TABLE t (x INT)")
    import os

    assert not any(p.endswith(".catalog") for p in os.listdir(tmp_path))
