"""INSERT INTO ... SELECT, CREATE TABLE AS, and DELETE."""

import pytest

from repro import Database
from repro.errors import SqlError, SqlParseError
from repro.sql import parse
from repro.sql.ast import CreateTableAs, Delete, InsertSelect


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE src (id INT, v DOUBLE)")
    database.execute(
        "INSERT INTO src VALUES (1, 1.5), (2, 2.5), (3, 3.5), (4, 4.5)"
    )
    yield database
    database.close()


def test_parse_new_statements():
    assert isinstance(parse("DELETE FROM t"), Delete)
    assert isinstance(parse("INSERT INTO t SELECT * FROM u"), InsertSelect)
    assert isinstance(parse("CREATE TABLE t AS SELECT 1 + 1 AS x FROM u"), CreateTableAs)
    with pytest.raises(SqlParseError):
        parse("DELETE src")


def test_insert_select_copies_rows(db):
    db.execute("CREATE TABLE dst (id INT, v DOUBLE)")
    db.execute("INSERT INTO dst SELECT id, v * 10 FROM src WHERE id > 2")
    cur = db.execute("SELECT id, v FROM dst ORDER BY id")
    assert cur.rows == [(3, 35.0), (4, 45.0)]
    assert db.catalog.get_table("dst").row_count == 2


def test_insert_select_arity_checked(db):
    db.execute("CREATE TABLE narrow (id INT)")
    with pytest.raises(SqlError):
        db.execute("INSERT INTO narrow SELECT id, v FROM src")


def test_create_table_as_select(db):
    db.execute(
        "CREATE TABLE summary AS SELECT id, v + 1 AS vplus FROM src WHERE v < 3"
    )
    cur = db.execute("SELECT * FROM summary ORDER BY id")
    assert cur.columns == ("id", "vplus")
    assert cur.rows == [(1, 2.5), (2, 3.5)]


def test_create_table_as_with_aggregate(db):
    db.execute("CREATE TABLE stats AS SELECT COUNT(*) AS n, AVG(v) AS mean FROM src")
    assert db.execute("SELECT n, mean FROM stats").fetchone() == (4, 3.0)


def test_delete_with_predicate(db):
    cur = db.execute("DELETE FROM src WHERE v > 2.0")
    assert cur.fetchone() == (3,)
    remaining = db.execute("SELECT id FROM src")
    assert remaining.rows == [(1,)]
    assert db.catalog.get_table("src").row_count == 1


def test_delete_all_rows(db):
    cur = db.execute("DELETE FROM src")
    assert cur.fetchone() == (4,)
    assert db.execute("SELECT COUNT(*) AS n FROM src").fetchone() == (0,)


def test_delete_then_insert_reuses_table(db):
    db.execute("DELETE FROM src WHERE id = 1")
    db.execute("INSERT INTO src VALUES (9, 9.5)")
    ids = sorted(r[0] for r in db.execute("SELECT id FROM src"))
    assert ids == [2, 3, 4, 9]


def test_delete_is_not_an_identifier(db):
    with pytest.raises(SqlParseError):
        db.execute("SELECT delete FROM src")
