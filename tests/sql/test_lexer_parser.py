import pytest

from repro.errors import SqlLexError, SqlParseError
from repro.relational.expressions import ColumnRef, Comparison, Literal, LogicalOp
from repro.relational.schema import ColumnType
from repro.sql import (
    AggregateCall,
    CreateTable,
    DropTable,
    Explain,
    Insert,
    PredictCall,
    Select,
    Star,
    TokenType,
    parse,
    tokenize,
)


def test_tokenize_basic():
    tokens = tokenize("SELECT a, b FROM t WHERE a >= 1.5")
    kinds = [t.type for t in tokens]
    assert kinds[0] is TokenType.KEYWORD
    assert tokens[0].value == "SELECT"
    assert tokens[-1].type is TokenType.EOF


def test_tokenize_string_with_escape():
    tokens = tokenize("SELECT 'it''s'")
    assert tokens[1].type is TokenType.STRING
    assert tokens[1].value == "it's"


def test_tokenize_comments_and_numbers():
    tokens = tokenize("1e3 -- a comment\n2.5")
    assert tokens[0].value == "1e3"
    assert tokens[1].value == "2.5"


def test_tokenize_rejects_garbage():
    with pytest.raises(SqlLexError):
        tokenize("SELECT @")
    with pytest.raises(SqlLexError):
        tokenize("SELECT 'unterminated")


def test_parse_create_table():
    stmt = parse("CREATE TABLE t (id INT, name TEXT, score DOUBLE, ok BOOL)")
    assert isinstance(stmt, CreateTable)
    assert stmt.name == "t"
    assert stmt.columns == [
        ("id", ColumnType.INT),
        ("name", ColumnType.TEXT),
        ("score", ColumnType.DOUBLE),
        ("ok", ColumnType.BOOL),
    ]


def test_parse_drop_and_insert():
    assert isinstance(parse("DROP TABLE t"), DropTable)
    stmt = parse("INSERT INTO t VALUES (1, 'a', -2.5, TRUE), (2, NULL, 0.0, FALSE)")
    assert isinstance(stmt, Insert)
    assert stmt.rows == [[1, "a", -2.5, True], [2, None, 0.0, False]]


def test_parse_select_full_clause_set():
    stmt = parse(
        "SELECT a, b AS bee FROM t WHERE a > 1 AND b < 2 "
        "ORDER BY a DESC, b LIMIT 10 OFFSET 5"
    )
    assert isinstance(stmt, Select)
    assert stmt.items[1].alias == "bee"
    assert isinstance(stmt.where, LogicalOp)
    assert stmt.order_by[0][1] is True
    assert stmt.order_by[1][1] is False
    assert stmt.limit == 10
    assert stmt.offset == 5


def test_parse_star():
    stmt = parse("SELECT * FROM t")
    assert isinstance(stmt.items[0].expr, Star)


def test_parse_join():
    stmt = parse("SELECT a.x FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.k = c.k")
    assert len(stmt.joins) == 2
    assert stmt.joins[0].kind == "inner"
    assert stmt.joins[1].kind == "left"
    cond = stmt.joins[0].condition
    assert isinstance(cond, Comparison)
    assert cond.left == ColumnRef("a.id")


def test_parse_aggregates():
    stmt = parse("SELECT label, COUNT(*), AVG(score) FROM t GROUP BY label")
    assert isinstance(stmt.items[1].expr, AggregateCall)
    assert stmt.items[1].expr.func == "COUNT_STAR"
    assert stmt.items[2].expr.func == "AVG"
    assert stmt.group_by == [ColumnRef("label")]


def test_parse_predict_call():
    stmt = parse("SELECT id, PREDICT(fraud, f0, f1 * 2) AS p FROM tx")
    call = stmt.items[1].expr
    assert isinstance(call, PredictCall)
    assert call.model == "fraud"
    assert len(call.args) == 2
    assert stmt.items[1].alias == "p"


def test_parse_explain():
    stmt = parse("EXPLAIN SELECT a FROM t")
    assert isinstance(stmt, Explain)
    assert isinstance(stmt.query, Select)


def test_parse_arithmetic_precedence():
    stmt = parse("SELECT 1 + 2 * 3 FROM t")
    expr = stmt.items[0].expr
    # (1 + (2 * 3)): top node is '+'
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_parse_parentheses_override_precedence():
    stmt = parse("SELECT (1 + 2) * 3 FROM t")
    assert stmt.items[0].expr.op == "*"


def test_parse_scalar_function():
    stmt = parse("SELECT abs(x) FROM t")
    expr = stmt.items[0].expr
    assert expr.name == "abs"


def test_parse_errors():
    with pytest.raises(SqlParseError):
        parse("SELECT FROM t")
    with pytest.raises(SqlParseError):
        parse("SELECT a FROM t WHERE")
    with pytest.raises(SqlParseError):
        parse("SELECT a FROM t LIMIT 1.5")
    with pytest.raises(SqlParseError):
        parse("SELECT a FROM t extra garbage ,")
    with pytest.raises(SqlParseError):
        parse("VACUUM t")


def test_literal_expression_values():
    stmt = parse("SELECT 'text', TRUE, NULL, -4 FROM t")
    values = [item.expr for item in stmt.items]
    assert values[0] == Literal("text")
    assert values[1] == Literal(True)
    assert values[2] == Literal(None)
