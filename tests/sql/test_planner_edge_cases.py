"""Planner edge cases: hidden group keys, aliases, expression outputs."""

import pytest

from repro import Database
from repro.errors import PlanError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE sales (region TEXT, year INT, amount DOUBLE)")
    database.execute(
        "INSERT INTO sales VALUES "
        "('east', 2023, 10.0), ('east', 2024, 20.0), "
        "('west', 2023, 5.0), ('west', 2024, 15.0), ('west', 2024, 1.0)"
    )
    yield database
    database.close()


def test_group_by_column_not_in_select(db):
    """Grouping key shapes the groups even when it is not projected."""
    cur = db.execute("SELECT SUM(amount) AS total FROM sales GROUP BY region")
    assert sorted(cur.column("total")) == [21.0, 30.0]


def test_group_by_multiple_keys(db):
    cur = db.execute(
        "SELECT region, year, SUM(amount) AS total FROM sales "
        "GROUP BY region, year ORDER BY region, year"
    )
    assert cur.rows == [
        ("east", 2023, 10.0),
        ("east", 2024, 20.0),
        ("west", 2023, 5.0),
        ("west", 2024, 16.0),
    ]


def test_group_by_expression(db):
    cur = db.execute(
        "SELECT year % 2 AS parity, COUNT(*) AS n FROM sales GROUP BY year % 2"
    )
    assert dict(cur.rows) == {0: 3, 1: 2}


def test_non_grouped_select_item_rejected(db):
    with pytest.raises(PlanError):
        db.execute("SELECT region, amount FROM sales GROUP BY region")


def test_star_with_aggregate_rejected(db):
    with pytest.raises(PlanError):
        db.execute("SELECT *, COUNT(*) FROM sales")


def test_order_by_output_alias(db):
    cur = db.execute(
        "SELECT region, SUM(amount) AS total FROM sales GROUP BY region "
        "ORDER BY total DESC"
    )
    assert [r[0] for r in cur] == ["east", "west"]


def test_order_by_dropped_column_in_plain_projection(db):
    cur = db.execute("SELECT region FROM sales ORDER BY amount DESC LIMIT 2")
    assert cur.rows == [("east",), ("west",)]


def test_scalar_functions_in_projection(db):
    cur = db.execute(
        "SELECT upper(region) AS r, abs(0 - amount) AS a FROM sales "
        "WHERE year = 2023 ORDER BY a"
    )
    assert cur.rows == [("WEST", 5.0), ("EAST", 10.0)]


def test_having_is_not_supported_but_subsetting_works(db):
    # No HAVING clause in the dialect; CREATE TABLE AS + WHERE composes it.
    db.execute(
        "CREATE TABLE totals AS SELECT region, SUM(amount) AS total "
        "FROM sales GROUP BY region"
    )
    cur = db.execute("SELECT region FROM totals WHERE total > 25")
    assert cur.rows == [("east",)]


def test_computed_join_key_falls_back_to_nested_loop(db):
    db.execute("CREATE TABLE years (y INT)")
    db.execute("INSERT INTO years VALUES (2023)")
    cur = db.execute(
        "SELECT sales.region FROM sales JOIN years ON sales.year = years.y + 0"
    )
    # `years.y + 0` is not a bare column, so the equi-key extraction fails
    # and the nested-loop join handles it.
    assert sorted(r[0] for r in cur) == ["east", "west"]


def test_alias_in_table_ref(db):
    cur = db.execute("SELECT s.region FROM sales AS s WHERE s.year = 2023")
    assert len(cur) == 2


def test_select_distinct(db):
    cur = db.execute("SELECT DISTINCT region FROM sales ORDER BY region")
    assert cur.rows == [("east",), ("west",)]
    cur = db.execute("SELECT DISTINCT region, year FROM sales")
    assert len(cur) == 4  # (west, 2024) deduplicated


def test_between_and_in_predicates(db):
    cur = db.execute(
        "SELECT amount FROM sales WHERE amount BETWEEN 5 AND 15 ORDER BY amount"
    )
    assert cur.column("amount") == [5.0, 10.0, 15.0]
    cur = db.execute(
        "SELECT amount FROM sales WHERE year IN (2023) ORDER BY amount"
    )
    assert cur.column("amount") == [5.0, 10.0]
    cur = db.execute(
        "SELECT COUNT(*) AS n FROM sales WHERE region NOT IN ('east')"
    )
    assert cur.fetchone() == (3,)
    cur = db.execute(
        "SELECT COUNT(*) AS n FROM sales WHERE amount NOT BETWEEN 5 AND 15"
    )
    assert cur.fetchone() == (2,)


def test_join_builds_on_smaller_table(db):
    # sales has 5 rows; lookup has 1: the planner should build on lookup.
    db.execute("CREATE TABLE lookup (region TEXT, manager TEXT)")
    db.execute("INSERT INTO lookup VALUES ('east', 'maria')")
    plan = db.explain(
        "SELECT sales.year, lookup.manager FROM sales "
        "JOIN lookup ON sales.region = lookup.region"
    )
    # The build (left) input of the swapped HashJoin is the small table.
    join_line = next(l for l in plan.splitlines() if "HashJoin" in l)
    after_join = plan[plan.index(join_line):].splitlines()
    first_scan = next(l for l in after_join if "SeqScan" in l)
    assert "lookup" in first_scan
    cur = db.execute(
        "SELECT sales.year, lookup.manager FROM sales "
        "JOIN lookup ON sales.region = lookup.region ORDER BY sales.year"
    )
    assert cur.rows == [(2023, "maria"), (2024, "maria")]


def test_swapped_join_preserves_column_order(db):
    db.execute("CREATE TABLE tiny (r TEXT, boss TEXT)")
    db.execute("INSERT INTO tiny VALUES ('west', 'kim')")
    cur = db.execute("SELECT * FROM sales JOIN tiny ON sales.region = tiny.r")
    # Column order follows the written join order despite the build swap.
    assert cur.columns == ("region", "year", "amount", "r", "boss")
    assert len(cur) == 3
    assert all(row[3] == "west" and row[4] == "kim" for row in cur)
