"""SHOW EVENTS / SHOW TIMELINE: the flight recorder as a relation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.config import SystemConfig
from repro.errors import SqlError, SqlParseError
from repro.models import fraud_fc_256
from repro.sql.ast import ShowEvents, ShowTimeline
from repro.sql.parser import parse
from repro.sql.unparse import unparse


@pytest.fixture
def db(rng):
    database = Database()
    database.register_model(fraud_fc_256(), name="fraud")
    yield database
    database.close()


def _serve_some(db, rng, n=6):
    with db.serve(workers=1, max_batch_size=4) as server:
        futures = [server.submit("fraud", rng.normal(size=28)) for __ in range(n)]
        for future in futures:
            future.result(timeout=10.0)
    return futures


# -- grammar -----------------------------------------------------------


def test_parse_show_events():
    assert parse("SHOW EVENTS") == ShowEvents(None)
    stmt = parse("SHOW EVENTS WHERE kind = 'batch.formed'")
    assert isinstance(stmt, ShowEvents)
    assert stmt.where is not None


def test_parse_show_timeline():
    assert parse("SHOW TIMELINE 42") == ShowTimeline(42)
    with pytest.raises(SqlParseError):
        parse("SHOW TIMELINE fraud")


def test_unparse_round_trips():
    for sql in (
        "SHOW events",
        "SHOW events WHERE (kind = 'cache.hit')",
        "SHOW timeline 7",
    ):
        stmt = parse(sql)
        assert unparse(stmt) == sql
        assert parse(unparse(stmt)) == stmt


def test_unknown_show_target_message_mentions_events():
    db = Database()
    try:
        with pytest.raises(SqlError, match="EVENTS"):
            db.execute("SHOW bogus")
    finally:
        db.close()


# -- execution ---------------------------------------------------------


def test_show_events_exposes_request_lifecycle(db, rng):
    _serve_some(db, rng)
    cursor = db.execute("SHOW EVENTS")
    assert cursor.columns == ("seq", "ts_ms", "kind", "trace_id", "detail")
    kinds = {row[2] for row in cursor.rows}
    assert {"request.admitted", "batch.formed", "batch.executed",
            "request.completed"} <= kinds
    seqs = [row[0] for row in cursor.rows]
    assert seqs == sorted(seqs)


def test_show_events_where_filters_relationally(db, rng):
    futures = _serve_some(db, rng)
    rows = db.execute("SHOW EVENTS WHERE kind = 'request.completed'").rows
    assert rows and all(row[2] == "request.completed" for row in rows)

    trace = futures[0].trace_id
    rows = db.execute(f"SHOW EVENTS WHERE trace_id = {trace}").rows
    assert rows and all(row[3] == trace for row in rows)

    rows = db.execute(
        "SHOW EVENTS WHERE kind LIKE 'batch.%' AND seq > 0"
    ).rows
    assert rows and all(row[2].startswith("batch.") for row in rows)

    assert db.execute("SHOW EVENTS WHERE seq < 0").rows == []


def test_show_timeline_unknown_trace_is_empty(db):
    assert db.execute("SHOW TIMELINE 999999").rows == []


def test_show_events_disabled_telemetry_is_empty():
    db = Database(config=SystemConfig(telemetry_enabled=False))
    try:
        assert db.execute("SHOW EVENTS").rows == []
        assert db.execute("SHOW TIMELINE 1").rows == []
    finally:
        db.close()


def test_query_stats_carry_trace_id_for_show_timeline(db):
    db.execute("CREATE TABLE t (x INT)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    cursor = db.execute("SELECT * FROM t")
    trace = cursor.stats.trace_id
    assert trace > 0
    rows = db.execute(f"SHOW TIMELINE {trace}").rows
    assert any(row[1] == "span" and row[2] == "query" for row in rows)
    assert dict(cursor.stats.as_rows())["trace_id"] == trace


# -- SHOW METRICS quantiles / SHOW STATS events ------------------------


def test_show_metrics_has_quantile_columns(db):
    db.execute("CREATE TABLE t (x INT)")
    db.execute("INSERT INTO t VALUES (1)")
    db.execute("SELECT * FROM t")
    cursor = db.execute("SHOW METRICS")
    assert cursor.columns == ("name", "value", "p50", "p95", "p99")
    rows = {row[0]: row for row in cursor.rows}
    # Scalar metrics pad the quantile columns with NULLs.
    scalar = rows["queries_total"]
    assert scalar[2:] == (None, None, None)
    # Histograms add one summary row: value is the observation count and
    # the quantiles are monotone.
    summary = rows["query_seconds"]
    assert summary[1] >= 3
    p50, p95, p99 = summary[2:]
    assert 0.0 < p50 <= p95 <= p99


def test_show_stats_reports_recorder_and_drop_counters(db, rng):
    _serve_some(db, rng, n=2)
    stats = {row[0]: row[1] for row in db.execute("SHOW STATS").rows}
    assert stats["telemetry.events_recorded"] > 0
    assert stats["telemetry.events_emitted"] >= stats["telemetry.events_recorded"]
    assert stats["telemetry.events_dropped"] == 0
    assert stats["telemetry.spans_dropped"] == 0


def test_tracer_drop_counter_surfaces_in_metrics():
    config = SystemConfig(telemetry_max_spans=4)
    db = Database(config=config)
    try:
        for __ in range(5):
            db.execute("SHOW STATS")
        metrics = {r[0]: r[1] for r in db.execute("SHOW METRICS").rows}
        assert metrics["tracer_spans_dropped_total"] > 0
        # The later SHOW STATS sees at least the drops the counter saw
        # (each statement keeps dropping spans once the ring is full).
        stats = {r[0]: r[1] for r in db.execute("SHOW STATS").rows}
        assert (
            stats["telemetry.spans_dropped"]
            >= metrics["tracer_spans_dropped_total"]
        )
    finally:
        db.close()
