"""ServiceTimeEstimator: the online service-time fit admission relies on."""

from __future__ import annotations

import threading

import pytest

from repro.errors import SlaViolationError
from repro.serving import ServiceTimeEstimator


def test_unobserved_estimator_predicts_zero_and_is_unconfident():
    est = ServiceTimeEstimator()
    assert not est.confident
    assert est.estimate_seconds(100) == 0.0
    assert est.estimate_wait_seconds(100, max_batch_size=8) == 0.0


def test_confidence_gate():
    est = ServiceTimeEstimator(min_observations=3)
    est.observe(1, 0.01)
    est.observe(2, 0.02)
    assert not est.confident
    est.observe(3, 0.03)
    assert est.confident


def test_learns_linear_service_time():
    # seconds = 5ms overhead + 1ms/row, varied batch sizes.
    est = ServiceTimeEstimator(alpha=0.5)
    for rows in [1, 4, 8, 16, 32, 16, 8, 4, 1, 32]:
        est.observe(rows, 0.005 + 0.001 * rows)
    predicted = est.estimate_seconds(10)
    assert predicted == pytest.approx(0.015, rel=0.5)
    # More rows must never be predicted cheaper.
    assert est.estimate_seconds(64) >= est.estimate_seconds(8)


def test_constant_batch_size_falls_back_to_mean_rate():
    est = ServiceTimeEstimator()
    for _ in range(5):
        est.observe(10, 0.020)  # 2ms/row, no size variance
    assert est.estimate_seconds(10) == pytest.approx(0.020, rel=0.05)
    assert est.estimate_seconds(20) == pytest.approx(0.040, rel=0.3)


def test_wait_accounts_for_batch_count():
    est = ServiceTimeEstimator()
    for _ in range(4):
        est.observe(8, 0.008)
    one_batch = est.estimate_wait_seconds(8, max_batch_size=8)
    three_batches = est.estimate_wait_seconds(24, max_batch_size=8)
    assert three_batches > one_batch


def test_invalid_observations_ignored():
    est = ServiceTimeEstimator()
    est.observe(0, 1.0)
    est.observe(5, -1.0)
    assert est.observations == 0


def test_invalid_alpha_rejected():
    with pytest.raises(SlaViolationError):
        ServiceTimeEstimator(alpha=0.0)


def test_concurrent_observe_keeps_count_consistent():
    est = ServiceTimeEstimator()
    per_thread = 200

    def work():
        for _ in range(per_thread):
            est.observe(4, 0.004)

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert est.observations == 4 * per_thread
    assert est.estimate_seconds(4) == pytest.approx(0.004, rel=0.05)
