"""MicroBatcher: dynamic coalescing, adaptive growth, deadline shedding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeadlineExceededError
from repro.server import MicroBatcher, RequestFuture, RequestState


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def request(rid: int, rows: int = 1, deadline: float | None = None) -> RequestFuture:
    return RequestFuture(rid, "m", np.zeros((rows, 4)), deadline, enqueued_at=0.0)


def test_collect_returns_queued_requests_fifo():
    batcher = MicroBatcher("m", max_batch_size=8, max_queue_delay_s=0.0)
    for rid in range(3):
        batcher.put(request(rid))
    batch = batcher.collect()
    assert [r.request_id for r in batch.requests] == [0, 1, 2]
    assert batch.rows == 3
    assert batcher.queued_requests == 0
    assert batcher.stats.batches == 1
    assert batcher.stats.rows_dispatched == 3


def test_nonblocking_collect_on_empty_queue():
    batcher = MicroBatcher("m", max_batch_size=8, max_queue_delay_s=0.0)
    assert batcher.collect(block=False) is None


def test_max_batch_size_splits_but_never_starves():
    batcher = MicroBatcher("m", max_batch_size=4, max_queue_delay_s=0.0)
    batcher.put(request(0, rows=3))
    batcher.put(request(1, rows=3))
    first = batcher.collect()
    # 3 + 3 > 4, so the second request waits for the next batch...
    assert [r.request_id for r in first.requests] == [0]
    second = batcher.collect()
    assert [r.request_id for r in second.requests] == [1]
    # ...and an oversized single request still dispatches alone.
    batcher.put(request(2, rows=9))
    assert batcher.collect().rows == 9


def test_adaptive_target_grows_under_backlog_and_decays_when_drained():
    batcher = MicroBatcher("m", max_batch_size=4, max_queue_delay_s=0.0)
    assert batcher.target_batch_size == 1
    for rid in range(6):
        batcher.put(request(rid))
    batcher.collect()  # backlog remains -> target doubles
    grown = batcher.target_batch_size
    assert grown > 1
    while batcher.queued_requests:
        batcher.collect()
    # Queue drained: the target decays back toward 1.
    for _ in range(8):
        batcher.put(request(99))
        batcher.collect()
    assert batcher.target_batch_size == 1


def test_delay_window_coalesces_late_arrivals():
    clock = FakeClock()
    batcher = MicroBatcher(
        "m", max_batch_size=8, max_queue_delay_s=10.0, clock=clock
    )
    batcher._target = 4  # make the window wait for more rows
    batcher.put(request(0))
    batcher.put(request(1))

    arrivals = iter(range(2, 6))

    def poll_arrival(*args, **kwargs):
        # Each condition-wait tick delivers one more request, then the
        # window closes by filling the target.
        try:
            batcher._pending.append(request(next(arrivals)))
            batcher._queued_rows += 1
        except StopIteration:
            clock.now += 20.0

    batcher._cond.wait = poll_arrival  # type: ignore[method-assign]
    batch = batcher.collect()
    assert len(batch.requests) >= 4


def test_front_insertion_fastpaths_tight_deadlines():
    batcher = MicroBatcher("m", max_batch_size=2, max_queue_delay_s=0.0)
    batcher.put(request(0))
    batcher.put(request(1), front=True)
    batch = batcher.collect()
    assert batch.requests[0].request_id == 1


def test_expired_requests_are_shed_not_dispatched():
    clock = FakeClock(now=5.0)
    batcher = MicroBatcher("m", max_batch_size=8, max_queue_delay_s=0.0, clock=clock)
    expired = request(0, deadline=1.0)
    alive = request(1, deadline=100.0)
    batcher.put(expired)
    batcher.put(alive)
    batch = batcher.collect()
    assert [r.request_id for r in batch.requests] == [1]
    assert batcher.stats.deadline_drops == 1
    assert expired.state is RequestState.SHED
    with pytest.raises(DeadlineExceededError):
        expired.result(timeout=0)


def test_close_returns_leftovers_and_stops_collect():
    batcher = MicroBatcher("m", max_batch_size=8, max_queue_delay_s=0.0)
    batcher.put(request(0))
    leftovers = batcher.close()
    assert [r.request_id for r in leftovers] == [0]
    assert batcher.collect() is None
    assert batcher.closed


def test_mean_batch_rows():
    batcher = MicroBatcher("m", max_batch_size=8, max_queue_delay_s=0.0)
    assert batcher.stats.mean_batch_rows == 0.0
    batcher.put(request(0, rows=2))
    batcher.collect()
    batcher.put(request(1, rows=4))
    batcher.collect()
    assert batcher.stats.mean_batch_rows == pytest.approx(3.0)
    assert batcher.stats.largest_batch_rows == 4
