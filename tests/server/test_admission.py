"""AdmissionController: bounded queues and deadline-feasibility shedding."""

from __future__ import annotations

import numpy as np

from repro import Database
from repro.models import fraud_fc_256
from repro.server import AdmissionController


class StubEstimator:
    """Fixed-rate service model: overhead + rows * per_row seconds."""

    def __init__(self, per_row: float = 0.01, overhead: float = 0.0, confident=True):
        self.per_row = per_row
        self.overhead = overhead
        self.confident = confident

    def estimate_seconds(self, rows: int, batches: int = 1) -> float:
        return batches * self.overhead + rows * self.per_row

    def estimate_wait_seconds(self, queued_rows: int, max_batch_size: int) -> float:
        batches = -(-queued_rows // max_batch_size) if queued_rows else 0
        return self.estimate_seconds(queued_rows, batches) if batches else 0.0


def controller(capacity: int = 4) -> AdmissionController:
    return AdmissionController(capacity, max_batch_size=8, clock=lambda: 100.0)


def test_reject_when_queue_full():
    decision = controller(capacity=2).decide(
        StubEstimator(), queued_requests=2, queued_rows=2, rows=1, deadline=None
    )
    assert decision.action == "reject"
    assert not decision.admitted


def test_admit_without_deadline():
    decision = controller().decide(
        StubEstimator(), queued_requests=0, queued_rows=0, rows=1, deadline=None
    )
    assert decision.action == "admit"
    assert decision.admitted


def test_admit_when_estimator_unconfident():
    # No shedding before the estimator has earned trust: an unmeetable
    # deadline is still admitted (and dropped later at batch formation).
    decision = controller().decide(
        StubEstimator(confident=False),
        queued_requests=0,
        queued_rows=0,
        rows=100,
        deadline=100.0001,
    )
    assert decision.action == "admit"
    assert decision.cold
    assert decision.reason == "estimator cold"


def test_warm_admissions_are_not_flagged_cold():
    decision = controller().decide(
        StubEstimator(per_row=0.001),
        queued_requests=0,
        queued_rows=0,
        rows=2,
        deadline=101.0,
    )
    assert decision.action == "admit"
    assert not decision.cold


def test_no_deadline_admission_is_not_flagged_cold():
    decision = controller().decide(
        StubEstimator(confident=False),
        queued_requests=0,
        queued_rows=0,
        rows=1,
        deadline=None,
    )
    assert decision.action == "admit"
    assert not decision.cold


def test_expired_deadline_sheds_even_while_cold():
    # An already-passed deadline needs no estimate to judge: shed it,
    # confident estimator or not.
    decision = controller().decide(
        StubEstimator(confident=False),
        queued_requests=0,
        queued_rows=0,
        rows=1,
        deadline=99.5,
    )
    assert decision.action == "shed"
    assert not decision.cold


def test_shed_when_deadline_already_passed():
    decision = controller().decide(
        StubEstimator(), queued_requests=0, queued_rows=0, rows=1, deadline=99.0
    )
    assert decision.action == "shed"


def test_shed_when_execution_alone_blows_the_deadline():
    # 100 rows at 10ms/row = 1s of execution vs 0.5s of slack.
    decision = controller().decide(
        StubEstimator(per_row=0.01),
        queued_requests=0,
        queued_rows=0,
        rows=100,
        deadline=100.5,
    )
    assert decision.action == "shed"
    assert decision.estimated_execute_s > 0.5


def test_fastpath_when_queue_wait_blows_a_meetable_deadline():
    # Execution fits the slack, but waiting behind 80 queued rows does not.
    decision = controller().decide(
        StubEstimator(per_row=0.01),
        queued_requests=3,
        queued_rows=80,
        rows=10,
        deadline=100.5,
    )
    assert decision.action == "fastpath"
    assert decision.admitted
    assert decision.estimated_wait_s + decision.estimated_execute_s > 0.5


def test_admit_when_deadline_feasible():
    decision = controller().decide(
        StubEstimator(per_row=0.001),
        queued_requests=1,
        queued_rows=4,
        rows=2,
        deadline=101.0,
    )
    assert decision.action == "admit"


def test_cold_admissions_are_counted_by_the_server():
    """The first deadline-carrying request lands before the estimator has
    any observations: it is admitted cold, and the gap is visible in
    ``server_cold_admissions_total`` / ``server.cold_admissions``."""
    with Database(telemetry_enabled=True) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        features = np.zeros((4, 28))
        with db.serve(workers=1) as server:
            server.submit("fraud", features, deadline_ms=60_000).result(
                timeout=30.0
            )
            cold_after_first = dict(server.stats_rows())["server.cold_admissions"]
            # The estimator trusts its fit after min_observations=3
            # batches; later deadline checks run warm.
            for __ in range(5):
                server.submit("fraud", features, deadline_ms=60_000).result(
                    timeout=30.0
                )
            stats = dict(server.stats_rows())
        assert cold_after_first == 1
        assert stats["server.cold_admissions"] == 3
        metrics = {row[0]: row[1] for row in db.execute("SHOW METRICS").rows}
        assert metrics["server_cold_admissions_total"] == 3
