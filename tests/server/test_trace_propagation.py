"""Trace-context propagation through the concurrent serving front-end.

The acceptance stress: under 8 concurrent clients, every finished span
carries the trace id of exactly one submitted request, parentage forms a
tree per trace, and ``SHOW TIMELINE <trace_id>`` reconstructs the full
admitted -> queued -> batched -> executed path across threads.
"""

from __future__ import annotations

import json
import threading

import numpy as np

from repro.server import RequestState


def _finished_spans(db):
    return db._telemetry.tracer.finished


def test_submit_mints_one_trace_per_request(db, features):
    with db.serve(workers=1) as server:
        futures = [server.submit("fraud", features[i]) for i in range(3)]
        for future in futures:
            future.result(timeout=10.0)
        trace_ids = [future.trace_id for future in futures]
        assert len(set(trace_ids)) == 3
        for future in futures:
            assert future.trace.trace_id == future.trace_id
            assert future.trace.get("model") == "fraud"
            assert future.trace.get("request_id") == future.request_id


def test_request_span_finishes_with_outcome(db, features):
    with db.serve(workers=1) as server:
        future = server.submit("fraud", features[0])
        future.result(timeout=10.0)
    roots = [s for s in _finished_spans(db) if s.name == "request:fraud"]
    assert roots, "the request's lifecycle span must finish"
    span = next(s for s in roots if s.trace_id == future.trace_id)
    assert span.args["outcome"] == "completed"
    assert span.args["queue_ms"] >= 0.0
    assert span.args["execute_ms"] >= 0.0


def test_batch_span_runs_under_first_member_and_links_the_rest(db, features):
    with db.serve(workers=1, max_batch_size=8, max_queue_delay_ms=50.0) as server:
        futures = [server.submit("fraud", features[i]) for i in range(4)]
        for future in futures:
            future.result(timeout=10.0)
    batches = [s for s in _finished_spans(db) if s.name.startswith("serve-batch:")]
    assert batches
    member_ids = {f.trace_id for f in futures}
    for batch in batches:
        assert batch.trace_id in member_ids  # runs under a member's trace
        for linked in batch.links:
            assert linked in member_ids
    # Every member is either the batch's own trace or linked from it.
    covered = set()
    for batch in batches:
        covered.add(batch.trace_id)
        covered.update(batch.links)
    assert member_ids <= covered


def test_stress_every_span_maps_to_exactly_one_request(db, rng):
    clients, per_client = 8, 12
    feats = rng.normal(size=(clients * per_client, 28))
    submitted: dict[int, object] = {}
    lock = threading.Lock()
    errors: list[BaseException] = []

    with db.serve(workers=3, max_batch_size=16, max_queue_delay_ms=2.0) as server:

        def client(cid: int):
            try:
                futures = [
                    server.submit("fraud", feats[i])
                    for i in range(cid * per_client, (cid + 1) * per_client)
                ]
                with lock:
                    for future in futures:
                        submitted[future.trace_id] = future
                for future in futures:
                    future.result(timeout=30.0)
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(c,)) for c in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors

    request_traces = set(submitted)
    assert len(request_traces) == clients * per_client

    spans = [s for s in _finished_spans(db) if s.category == "server"]
    assert spans
    by_id = {}
    for span in spans:
        # Every server-side span belongs to exactly one submitted request.
        assert span.trace_id in request_traces, span.name
        by_id[span.span_id] = span

    # Parentage forms a tree per trace: following parent pointers within
    # the server spans terminates at the request's root span, whose
    # span_id equals the trace_id, and never crosses traces.
    for span in spans:
        seen = set()
        node = span
        while node.parent_id is not None and node.parent_id in by_id:
            assert node.span_id not in seen  # no cycles
            seen.add(node.span_id)
            parent = by_id[node.parent_id]
            assert parent.trace_id == span.trace_id
            node = parent
        if node.span_id == node.trace_id:
            assert node.name == "request:fraud"

    # Each request contributed exactly one root lifecycle span.
    roots = [s for s in spans if s.span_id == s.trace_id]
    assert {s.trace_id for s in roots} == request_traces
    assert len(roots) == len(request_traces)
    for future in submitted.values():
        assert future.state is RequestState.DONE


def test_show_timeline_reconstructs_request_path(db, features):
    with db.serve(workers=1, max_batch_size=4, max_queue_delay_ms=5.0) as server:
        futures = [server.submit("fraud", features[i]) for i in range(4)]
        for future in futures:
            future.result(timeout=10.0)

    for future in futures:
        cursor = db.execute(f"SHOW TIMELINE {future.trace_id}")
        assert cursor.columns == ("at_ms", "source", "what", "detail")
        whats = {(row[1], row[2]) for row in cursor.rows}
        assert ("event", "request.admitted") in whats
        assert ("event", "batch.formed") in whats
        assert ("event", "batch.executed") in whats
        assert ("event", "request.completed") in whats
        assert ("span", "request:fraud") in whats
        summary = {
            row[2]: row[3] for row in cursor.rows if row[1] == "summary"
        }
        assert summary["outcome"] == "completed"
        assert float(summary["queue_ms"]) >= 0.0
        assert float(summary["execute_ms"]) >= 0.0


def test_chrome_export_links_batches_to_members(db, features, tmp_path):
    with db.serve(workers=1, max_batch_size=8, max_queue_delay_ms=50.0) as server:
        futures = [server.submit("fraud", features[i]) for i in range(4)]
        for future in futures:
            future.result(timeout=10.0)
    path = str(tmp_path / "trace.json")
    assert db.export_trace(path) > 0
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    phases = {e["ph"] for e in doc["traceEvents"]}
    if any(
        s.links for s in _finished_spans(db) if s.name.startswith("serve-batch:")
    ):
        assert "s" in phases and "f" in phases
