"""ReadWriteLock: the Database concurrency contract's primitive."""

from __future__ import annotations

import threading
import time

import pytest

from repro.server.locks import ReadWriteLock


def test_concurrent_readers_share_the_lock():
    lock = ReadWriteLock()
    inside = threading.Barrier(4, timeout=5.0)

    def reader():
        with lock.read():
            inside.wait()  # all four readers hold the lock simultaneously

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5.0)
    assert not any(t.is_alive() for t in threads)


def test_writer_excludes_readers_and_writers():
    lock = ReadWriteLock()
    order: list[str] = []
    writer_in = threading.Event()

    def writer():
        with lock.write():
            writer_in.set()
            time.sleep(0.05)
            order.append("writer")

    def reader():
        writer_in.wait(timeout=5.0)
        with lock.read():
            order.append("reader")

    w = threading.Thread(target=writer)
    r = threading.Thread(target=reader)
    w.start()
    r.start()
    w.join(timeout=5.0)
    r.join(timeout=5.0)
    assert order == ["writer", "reader"]


def test_writer_preference_blocks_new_readers():
    lock = ReadWriteLock()
    lock.acquire_read()
    got_write = threading.Event()

    def writer():
        with lock.write():
            got_write.set()

    w = threading.Thread(target=writer)
    w.start()
    time.sleep(0.02)  # let the writer start waiting

    got_read = threading.Event()

    def late_reader():
        with lock.read():
            got_read.set()

    r = threading.Thread(target=late_reader)
    r.start()
    time.sleep(0.02)
    # The late reader queues behind the waiting writer.
    assert not got_read.is_set()
    assert not got_write.is_set()
    lock.release_read()
    w.join(timeout=5.0)
    r.join(timeout=5.0)
    assert got_write.is_set() and got_read.is_set()


def test_read_reentrancy():
    lock = ReadWriteLock()
    with lock.read():
        with lock.read():
            pass
        # Still held once after the inner release.
        assert lock._active_readers == 1
    assert lock._active_readers == 0


def test_write_reentrancy():
    lock = ReadWriteLock()
    with lock.write():
        with lock.write():
            pass
        assert lock._writer is not None
    assert lock._writer is None


def test_read_under_write_is_noop():
    lock = ReadWriteLock()
    with lock.write():
        with lock.read():  # must not deadlock
            assert lock._active_readers == 0
    assert lock._writer is None


def test_upgrade_refused():
    lock = ReadWriteLock()
    with lock.read():
        with pytest.raises(RuntimeError, match="upgrade"):
            lock.acquire_write()


def test_unbalanced_releases_raise():
    lock = ReadWriteLock()
    with pytest.raises(RuntimeError):
        lock.release_read()
    with pytest.raises(RuntimeError):
        lock.release_write()
