"""ModelServer integration: concurrency, determinism, backpressure, SLAs."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import Database
from repro.errors import (
    CatalogError,
    DeadlineExceededError,
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.server import RequestState


def test_submit_resolves_single_row(db, features):
    with db.serve(workers=2) as server:
        future = server.submit("fraud", features[0])
        labels = future.result(timeout=10.0)
        assert labels.shape == (1,)
        assert future.state is RequestState.DONE
        assert future.queue_seconds is not None
        assert future.execute_seconds is not None


def test_sync_predict_convenience(db, features):
    with db.serve() as server:
        labels = server.predict("fraud", features[:4])
        assert labels.shape == (4,)


def test_unknown_model_rejected_at_submit(db, features):
    with db.serve() as server:
        with pytest.raises(CatalogError):
            server.submit("nope", features[0])


def test_stress_concurrent_clients_deterministic(db, rng):
    """The acceptance stress test: N client threads x M requests each.

    Every future resolves, and batched predictions are identical to the
    sequential per-request answers (row-independent FC inference).
    """
    clients, per_client = 8, 25
    feats = rng.normal(size=(clients * per_client, 28))
    expected = db.predict_labels("fraud", feats)

    with db.serve(workers=3, max_batch_size=32, max_queue_delay_ms=2.0) as server:
        results = np.full(len(feats), -1, dtype=np.int64)
        errors: list[BaseException] = []

        def client(cid: int):
            try:
                futures = [
                    (i, server.submit("fraud", feats[i]))
                    for i in range(cid * per_client, (cid + 1) * per_client)
                ]
                for i, future in futures:
                    results[i] = int(future.result(timeout=30.0)[0])
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(c,)) for c in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors
        assert np.array_equal(results, expected)

        rows = dict(server.stats_rows())
        assert rows["server.requests.completed"] == clients * per_client
        # Under 8 concurrent clients the batcher must actually coalesce.
        assert rows["server.model.fraud.largest_batch_rows"] > 1


def test_backpressure_raises_server_overloaded(db, features):
    real_predict = db.predict_labels

    def slow_predict(name, feats):
        time.sleep(0.05)
        return real_predict(name, feats)

    db.predict_labels = slow_predict
    try:
        with db.serve(workers=1, queue_capacity=2, max_queue_delay_ms=0.0) as server:
            futures, rejected = [], 0
            for i in range(12):
                try:
                    futures.append(server.submit("fraud", features[i]))
                except ServerOverloadedError as exc:
                    rejected += 1
                    assert exc.queue_depth >= exc.capacity == 2
            assert rejected > 0
            for future in futures:
                future.result(timeout=30.0)
            rows = dict(server.stats_rows())
            assert rows["server.requests.rejected"] == rejected
    finally:
        db.predict_labels = real_predict


def test_sla_shedding_visible_in_stats_and_metrics(db, features):
    real_predict = db.predict_labels

    def slow_predict(name, feats):
        time.sleep(0.05)
        return real_predict(name, feats)

    db.predict_labels = slow_predict
    try:
        with db.serve(workers=1, max_queue_delay_ms=0.0) as server:
            # Warm the estimator past its confidence gate (~50ms/batch).
            for i in range(4):
                server.submit("fraud", features[i]).result(timeout=30.0)
            # 1ms of slack against a learned ~50ms execution: shed.
            future = server.submit("fraud", features[0], deadline_ms=1.0)
            assert future.shed()
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=0)
            rows = dict(server.stats_rows())
            assert rows["server.requests.shed"] >= 1
    finally:
        db.predict_labels = real_predict
    snapshot = db.telemetry.registry.snapshot()
    shed = [v for k, v in snapshot.items() if "server_requests_total" in k and "shed" in k]
    assert shed and shed[0] >= 1


def test_queued_requests_expire_while_waiting(db, features):
    real_predict = db.predict_labels

    def slow_predict(name, feats):
        time.sleep(0.15)
        return real_predict(name, feats)

    db.predict_labels = slow_predict
    try:
        with db.serve(workers=1, max_queue_delay_ms=0.0) as server:
            first = server.submit("fraud", features[0])
            time.sleep(0.03)  # let the worker take the first request
            # Expires long before the 150ms in-flight batch finishes; the
            # estimator is not confident yet, so it queues rather than sheds.
            doomed = server.submit("fraud", features[1], deadline_ms=20.0)
            first.result(timeout=30.0)
            assert isinstance(
                doomed.exception(timeout=30.0), DeadlineExceededError
            )
            server.drain()
            rows = dict(server.stats_rows())
            assert rows["server.model.fraud.deadline_drops"] >= 1
            assert rows["server.requests.expired"] >= 1
    finally:
        db.predict_labels = real_predict


def test_show_server_sql(db, features):
    assert db.execute("SHOW SERVER").rows == []
    with db.serve(workers=1) as server:
        server.predict("fraud", features[:2])
        rows = dict(db.execute("SHOW SERVER").rows)
        assert rows["server.workers"] == 1
        assert rows["server.requests.completed"] >= 1
        assert "server.model.fraud.queue_depth" in rows
        stats = dict(db.execute("SHOW STATS").rows)
        assert "server.workers" in stats  # server section present while attached
    assert db.execute("SHOW SERVER").rows == []  # detached after close
    assert "server.workers" not in dict(db.execute("SHOW STATS").rows)


def test_server_metrics_exported(db, features):
    with db.serve() as server:
        server.predict("fraud", features[:4])
    names = {row[0] for row in db.execute("SHOW METRICS").rows}
    assert any(n.startswith("server_requests_total") for n in names)
    assert any(n.startswith("server_batch_rows") for n in names)
    assert any(n.startswith("server_queue_depth") for n in names)


def test_close_semantics(db, features):
    server = db.serve()
    server.predict("fraud", features[:1])
    server.close()
    assert server.closed
    server.close()  # idempotent
    with pytest.raises(ServerClosedError):
        server.submit("fraud", features[0])
    # A new server can attach after the old one detaches.
    with db.serve() as second:
        assert second.predict("fraud", features[:1]).shape == (1,)


def test_only_one_server_per_database(db):
    with db.serve():
        with pytest.raises(ReproError, match="already attached"):
            db.serve()


def test_close_without_drain_fails_queued_requests(db, features):
    real_predict = db.predict_labels

    def slow_predict(name, feats):
        time.sleep(0.1)
        return real_predict(name, feats)

    db.predict_labels = slow_predict
    try:
        server = db.serve(workers=1, max_queue_delay_ms=0.0)
        futures = [server.submit("fraud", features[i]) for i in range(6)]
        server.close(drain=False)
        outcomes = {type(f.exception(timeout=30.0)).__name__ for f in futures}
        # Everything resolved: executed, or failed with ServerClosedError.
        assert outcomes <= {"NoneType", "ServerClosedError"}
    finally:
        db.predict_labels = real_predict


def test_serving_concurrent_with_sql_queries(db, rng):
    """PREDICT traffic shares the read lock; DDL serializes against it."""
    feats = rng.normal(size=(40, 28))
    stop = threading.Event()
    errors: list[BaseException] = []

    def sql_client():
        try:
            i = 0
            while not stop.is_set():
                db.execute(f"CREATE TABLE scratch_{i} (id INT)")
                db.execute(f"INSERT INTO scratch_{i} VALUES (1)")
                assert len(db.execute(f"SELECT id FROM scratch_{i}").rows) == 1
                db.execute(f"DROP TABLE scratch_{i}")
                i += 1
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    with db.serve(workers=2) as server:
        thread = threading.Thread(target=sql_client)
        thread.start()
        try:
            futures = [server.submit("fraud", feats[i]) for i in range(len(feats))]
            for future in futures:
                future.result(timeout=30.0)
        finally:
            stop.set()
            thread.join(timeout=30.0)
    assert not errors


def test_show_stats_sections_gate_on_telemetry():
    """Optional sections contribute zero rows instead of raising."""
    with Database(telemetry_enabled=False) as db:
        stats = dict(db.execute("SHOW STATS").rows)
        assert "bufferpool.hits" in stats  # core sections always present
        assert not any(k.startswith(("telemetry.", "audit.")) for k in stats)
        assert not any(k.startswith("server.") for k in stats)
    with Database() as db:
        stats = dict(db.execute("SHOW STATS").rows)
        assert "telemetry.spans_recorded" in stats
        assert "audit.records" in stats


def test_server_works_with_telemetry_disabled(rng):
    """Null metrics must not break the serving path or SHOW SERVER."""
    from repro.models import fraud_fc_256

    with Database(telemetry_enabled=False) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        feats = rng.normal(size=(6, 28))
        expected = db.predict_labels("fraud", feats)
        with db.serve(workers=1) as server:
            got = np.stack(
                [server.submit("fraud", feats[i]).result(30.0)[0] for i in range(6)]
            )
            rows = dict(db.execute("SHOW SERVER").rows)
            # Outcome counters read 0 through the null registry, but the
            # batcher's own stats still report real traffic.
            assert rows["server.model.fraud.batches"] >= 1
        assert np.array_equal(got, expected)


def test_multi_row_requests_scatter_correctly(db, rng):
    feats = rng.normal(size=(12, 28))
    expected = db.predict_labels("fraud", feats)
    with db.serve(max_queue_delay_ms=5.0) as server:
        a = server.submit("fraud", feats[:5])
        b = server.submit("fraud", feats[5:7])
        c = server.submit("fraud", feats[7:])
        got = np.concatenate(
            [a.result(timeout=30.0), b.result(timeout=30.0), c.result(timeout=30.0)]
        )
    assert np.array_equal(got, expected)
