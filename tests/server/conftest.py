"""Fixtures for the serving front-end tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.models import fraud_fc_256


@pytest.fixture
def db() -> Database:
    database = Database()
    database.register_model(fraud_fc_256(), name="fraud")
    yield database
    database.close()


@pytest.fixture
def features(rng: np.random.Generator) -> np.ndarray:
    return rng.normal(size=(64, 28))
