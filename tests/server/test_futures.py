"""RequestFuture: the write-once result slot handed to clients."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import DeadlineExceededError, ServerError
from repro.server import RequestFuture, RequestState, resolve_all


def make_future(rows: int = 1, deadline: float | None = None) -> RequestFuture:
    return RequestFuture(1, "m", np.zeros((rows, 4)), deadline, enqueued_at=0.0)


def test_resolve_roundtrip():
    future = make_future(rows=3)
    assert future.rows == 3
    assert not future.done()
    predictions = np.array([0, 1, 0])
    future._resolve(predictions, queue_seconds=0.01, execute_seconds=0.02)
    assert future.done()
    assert future.state is RequestState.DONE
    assert np.array_equal(future.result(timeout=0), predictions)
    assert future.exception(timeout=0) is None
    assert future.queue_seconds == pytest.approx(0.01)
    assert future.execute_seconds == pytest.approx(0.02)


def test_result_raises_stored_exception():
    future = make_future()
    future._fail(DeadlineExceededError("too late"), RequestState.SHED)
    assert future.shed()
    with pytest.raises(DeadlineExceededError, match="too late"):
        future.result(timeout=0)
    assert isinstance(future.exception(timeout=0), DeadlineExceededError)


def test_result_timeout():
    future = make_future()
    with pytest.raises(TimeoutError):
        future.result(timeout=0.01)


def test_result_blocks_until_resolved():
    future = make_future()

    def resolver():
        future._resolve(np.array([1]), 0.0, 0.0)

    thread = threading.Timer(0.02, resolver)
    thread.start()
    assert np.array_equal(future.result(timeout=5.0), np.array([1]))
    thread.join()


def test_expired():
    assert not make_future(deadline=None).expired(now=100.0)
    assert make_future(deadline=1.0).expired(now=2.0)
    assert not make_future(deadline=3.0).expired(now=2.0)


def test_resolve_all_skips_done_futures():
    done = make_future()
    done._resolve(np.array([0]), 0.0, 0.0)
    pending = make_future()
    resolve_all([done, pending])
    assert np.array_equal(done.result(timeout=0), np.array([0]))
    with pytest.raises(ServerError):
        pending.result(timeout=0)
