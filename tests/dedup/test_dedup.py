import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup import (
    BlockDedupStore,
    CoPartitioner,
    ModelVersionManager,
    dequantize,
    magnitude_prune,
    quantize,
    sparsity,
)
from repro.dedup.quantize import quantization_error
from repro.dlruntime import Linear, Model, ReLU, Softmax
from repro.errors import ShapeError, SlaViolationError


# -- block dedup ----------------------------------------------------------


def test_exact_duplicate_blocks_share_storage(rng):
    store = BlockDedupStore((4, 4))
    block = rng.normal(size=(4, 4))
    id1 = store.put(block)
    id2 = store.put(block.copy())
    assert id1 == id2
    report = store.report()
    assert report.logical_blocks == 2
    assert report.stored_blocks == 1
    assert report.exact_hits == 1
    assert report.space_saving == pytest.approx(0.5)


def test_approximate_dedup_bounded_error(rng):
    store = BlockDedupStore((4, 4), epsilon=0.01)
    base = rng.normal(size=(4, 4)) * 10  # large values: noise won't flip signs
    store.put(base)
    near = base + 0.005
    bid = store.put(near)
    np.testing.assert_array_equal(store.get(bid), base)
    assert store.report().approximate_hits == 1


def test_approximate_dedup_rejects_large_difference(rng):
    store = BlockDedupStore((4, 4), epsilon=0.01)
    base = rng.normal(size=(4, 4))
    store.put(base)
    store.put(base + 1.0)
    assert store.report().stored_blocks == 2


def test_put_matrix_round_trip_with_shared_blocks(rng):
    store = BlockDedupStore((3, 3))
    tile = rng.normal(size=(3, 3))
    matrix = np.tile(tile, (2, 3))  # 6 identical blocks
    grid = store.put_matrix(matrix)
    assert store.report().stored_blocks == 1
    np.testing.assert_allclose(store.get_matrix(grid, matrix.shape), matrix)


def test_put_matrix_handles_ragged_edges(rng):
    store = BlockDedupStore((4, 4))
    matrix = rng.normal(size=(7, 9))
    grid = store.put_matrix(matrix)
    np.testing.assert_allclose(store.get_matrix(grid, (7, 9)), matrix)


def test_wrong_block_shape_rejected(rng):
    store = BlockDedupStore((4, 4))
    with pytest.raises(ShapeError):
        store.put(rng.normal(size=(3, 3)))


# -- quantization -----------------------------------------------------------


def test_quantize_round_trip_error_bounded(rng):
    weights = rng.normal(size=(32, 16))
    q = quantize(weights, bits=8)
    restored = dequantize(q)
    step = (weights.max() - weights.min()) / 255
    assert np.max(np.abs(restored - weights)) <= step / 2 + 1e-12
    assert q.compression_ratio == pytest.approx(8.0)


def test_more_bits_less_error(rng):
    weights = rng.normal(size=(64, 64))
    assert quantization_error(weights, 4) > quantization_error(weights, 8)
    assert quantization_error(weights, 8) > quantization_error(weights, 12)


def test_quantize_constant_tensor():
    q = quantize(np.full((4, 4), 3.5), bits=8)
    np.testing.assert_allclose(dequantize(q), np.full((4, 4), 3.5))


@settings(max_examples=50)
@given(bits=st.integers(1, 16), seed=st.integers(0, 100))
def test_property_quantization_error_within_half_step(bits, seed):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(8, 8))
    q = quantize(weights, bits=bits)
    step = q.scale
    assert np.max(np.abs(dequantize(q) - weights)) <= step / 2 + 1e-9


# -- pruning -----------------------------------------------------------------


def test_magnitude_prune_hits_target(rng):
    weights = rng.normal(size=(50, 50))
    pruned = magnitude_prune(weights, 0.7)
    assert sparsity(pruned) >= 0.7
    # Survivors are the largest-magnitude entries.
    surviving = np.abs(pruned[pruned != 0])
    removed_max = np.abs(weights[pruned == 0]).max()
    assert surviving.min() >= removed_max - 1e-12


def test_prune_zero_sparsity_is_identity(rng):
    weights = rng.normal(size=(10, 10))
    np.testing.assert_array_equal(magnitude_prune(weights, 0.0), weights)


def test_prune_validation(rng):
    with pytest.raises(ShapeError):
        magnitude_prune(rng.normal(size=(4, 4)), 1.0)


# -- model versions ----------------------------------------------------------


@pytest.fixture
def version_setup(rng):
    model = Model(
        "clf",
        [
            Linear(10, 32, rng=rng, name="fc1"),
            ReLU(),
            Linear(32, 3, rng=rng, name="fc2"),
            Softmax(),
        ],
        input_shape=(10,),
    )
    x = rng.normal(size=(300, 10))
    y = model.predict(x)  # the base model defines the "truth"

    def accuracy(m):
        return float((m.predict(x) == y).mean())

    return model, accuracy


def test_versions_created_with_tradeoffs(version_setup):
    model, accuracy = version_setup
    manager = ModelVersionManager(model, accuracy)
    assert manager.base_accuracy == 1.0
    q8 = manager.add_quantized(8)
    q2 = manager.add_quantized(2)
    p90 = manager.add_pruned(0.9)
    assert q8.size_bytes < model.param_bytes
    assert q2.size_bytes < q8.size_bytes
    assert q8.accuracy > q2.accuracy  # harsher compression, lower accuracy
    assert p90.size_bytes < model.param_bytes
    assert q2.accuracy < 1.0


def test_version_selection_under_sla(version_setup):
    model, accuracy = version_setup
    manager = ModelVersionManager(model, accuracy)
    manager.add_quantized(8)
    manager.add_quantized(2)
    strict = manager.select(min_accuracy=0.99)
    assert strict.accuracy >= 0.99
    relaxed = manager.select(min_accuracy=0.0)
    assert relaxed.size_bytes <= strict.size_bytes
    with pytest.raises(SlaViolationError):
        manager.select(min_accuracy=1.1)


def test_versions_do_not_mutate_base(version_setup, rng):
    model, accuracy = version_setup
    before = model.layers[0].weight.data.copy()
    manager = ModelVersionManager(model, accuracy)
    manager.add_quantized(2)
    manager.add_pruned(0.95)
    np.testing.assert_array_equal(model.layers[0].weight.data, before)


# -- co-partitioning ---------------------------------------------------------


def test_copartitioned_join_is_fully_local():
    partitioner = CoPartitioner(num_partitions=8, block_rows=128)
    report = partitioner.report(num_features=1024, num_rows=10_000)
    assert report.locality == 1.0
    assert report.shuffle_bytes_avoided > 0


def test_random_layout_poor_locality():
    partitioner = CoPartitioner(num_partitions=8, block_rows=128)
    report = partitioner.report(
        num_features=8192, num_rows=1000, co_partitioned=False
    )
    assert report.locality < 0.5


def test_partition_function_consistency():
    partitioner = CoPartitioner(num_partitions=4, block_rows=64)
    chunks = partitioner.feature_chunks(300)
    assert chunks == [0, 1, 2, 3, 4]
    assert partitioner.weight_row_blocks(300) == chunks
    assert partitioner.partition_of_chunk(5) == partitioner.partition_of_chunk(9)
