"""Cross-engine integration: CNN plans, forced modes, and failure paths."""

import numpy as np
import pytest

from repro.config import SystemConfig, mb
from repro.core import RuleBasedOptimizer, Representation
from repro.core.ir import PlanStage
from repro.core.lowering import lower_model
from repro.dlruntime import MemoryBudget
from repro.engines import HybridExecutor, RelationCentricEngine
from repro.errors import OutOfMemoryError, PlanError
from repro.models import cache_cnn, deepbench_conv1, fraud_fc_256
from repro.storage import BufferPool, Catalog, InMemoryDiskManager


def make_catalog(capacity=128):
    return Catalog(BufferPool(InMemoryDiskManager(16 * 1024), capacity_pages=capacity))


@pytest.fixture
def config():
    return SystemConfig(
        memory_threshold_bytes=mb(256),
        dl_memory_limit_bytes=mb(512),
        tensor_block_rows=32,
        tensor_block_cols=32,
    )


def test_hybrid_runs_full_cnn_as_single_udf(rng, config):
    """A deep CNN (conv/relu/conv/relu/flatten/fc/relu/fc/softmax) fits the
    threshold at small batch and runs as one fused UDF stage."""
    catalog = make_catalog()
    model = cache_cnn(seed=1)
    info = catalog.register_model("cnn", model)
    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=4)
    assert plan.is_single_udf
    x = rng.normal(size=(4, 28, 28, 1))
    result = HybridExecutor(catalog, config).execute(plan, x, info)
    np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-12)


def test_hybrid_relation_conv_plan(rng, config):
    """A conv forced relation-centric flows through the conv stage path."""
    catalog = make_catalog(capacity=512)
    model = deepbench_conv1(scale=0.2)  # 22×22×13
    info = catalog.register_model("conv", model)
    plan = RuleBasedOptimizer(config).plan_model(
        model, batch_size=2, force="relation-centric"
    )
    x = rng.normal(size=(2,) + model.input_shape)
    result = HybridExecutor(catalog, config).execute(plan, x, info)
    # Conv stages stream their output into a result table.
    assert result.detail["stage0.result_table_rows"] > 0


def test_relation_conv_stage_with_relu(rng, config):
    catalog = make_catalog(capacity=512)
    model = deepbench_conv1(scale=0.2)
    conv = model.layers[0]
    info = catalog.register_model("conv", model)
    engine = RelationCentricEngine(catalog, config, stripe_rows=64)
    images = rng.normal(size=(1,) + model.input_shape)
    engine.run_conv_stage(
        conv, images, info, apply_relu=True, result_table="relu_out"
    )
    side = model.input_shape[0]
    out = engine.load_conv_result("relu_out", 1, side, side, conv.out_channels)
    np.testing.assert_allclose(
        out, np.maximum(model.forward(images), 0.0), atol=1e-9
    )


def test_relation_vector_stage_rejects_images(rng, config):
    catalog = make_catalog()
    model = fraud_fc_256()
    info = catalog.register_model("fraud", model)
    engine = RelationCentricEngine(catalog, config)
    with pytest.raises(PlanError):
        engine.run_vector_stage(model.layers, rng.normal(size=(2, 3, 3, 1)), info)


def test_relation_conv_stage_rejects_vectors(rng, config):
    catalog = make_catalog()
    model = deepbench_conv1(scale=0.2)
    info = catalog.register_model("conv", model)
    engine = RelationCentricEngine(catalog, config)
    with pytest.raises(PlanError):
        engine.run_conv_stage(model.layers[0], rng.normal(size=(2, 5)), info)


def test_unassigned_stage_rejected(rng, config):
    catalog = make_catalog()
    model = fraud_fc_256()
    info = catalog.register_model("fraud", model)
    nodes = lower_model(model)
    bad_plan_stage = PlanStage(Representation.UNASSIGNED, nodes)
    from repro.core.ir import InferencePlan

    plan = InferencePlan(model, 4, [bad_plan_stage], threshold_bytes=0)
    with pytest.raises(PlanError):
        HybridExecutor(catalog, config).execute(
            plan, rng.normal(size=(4, 28)), info
        )


def test_session_predict_with_custom_dl_budget(rng):
    from repro import Database

    with Database(memory_threshold_bytes=mb(64)) as db:
        model = fraud_fc_256()
        db.register_model(model, name="fraud")
        x = rng.normal(size=(32, 28))
        tiny = MemoryBudget(16)
        # The custom budget applies to the DL runtime; the adaptive plan is
        # UDF-centric so it never touches it.
        result = db.predict("fraud", x, dl_budget=tiny)
        np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-12)
        with pytest.raises(OutOfMemoryError):
            db.predict("fraud", x, force="dl-centric", dl_budget=tiny)


def test_execute_explain_statement_returns_plan_rows(rng):
    from repro import Database

    with Database() as db:
        db.execute("CREATE TABLE t (x DOUBLE)")
        db.register_model(fraud_fc_256(), name="fraud")
        cur = db.execute("EXPLAIN SELECT x FROM t WHERE x > 0")
        assert cur.columns == ("plan",)
        text = "\n".join(r[0] for r in cur)
        assert "Filter" in text and "SeqScan" in text


def test_hybrid_runs_pooled_cnn_as_udf(rng, config):
    """MaxPool and Flatten lower and execute through the UDF stage."""
    from repro.dlruntime import Conv2d, Flatten, Linear, MaxPool2d, Model, ReLU, Softmax

    local_rng = np.random.default_rng(9)
    model = Model(
        "pooled",
        [
            Conv2d(1, 8, (3, 3), padding=1, rng=local_rng, name="c1"),
            ReLU(),
            MaxPool2d(2),
            Conv2d(8, 4, (3, 3), padding=1, rng=local_rng, name="c2"),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(4 * 4 * 4, 5, rng=local_rng, name="out"),
            Softmax(),
        ],
        input_shape=(16, 16, 1),
    )
    catalog = make_catalog()
    info = catalog.register_model("pooled", model)
    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=3)
    assert plan.is_single_udf
    from repro.core import LinAlgOp, lower_model

    ops = [n.op for n in lower_model(model)]
    assert LinAlgOp.MAXPOOL in ops and LinAlgOp.FLATTEN in ops
    x = rng.normal(size=(3, 16, 16, 1))
    result = HybridExecutor(catalog, config).execute(plan, x, info)
    np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-12)
