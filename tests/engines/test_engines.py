import numpy as np
import pytest

from repro.config import SystemConfig, mb
from repro.core import RuleBasedOptimizer
from repro.dlruntime import Connector, ExternalRuntime, MemoryBudget
from repro.engines import (
    DlCentricEngine,
    HybridExecutor,
    RelationCentricEngine,
    UdfCentricEngine,
)
from repro.errors import OutOfMemoryError
from repro.models import amazon_14k_fc, fraud_fc_256, landcover
from repro.relational.operators import SeqScan
from repro.storage import BufferPool, Catalog, InMemoryDiskManager
from repro.data import fraud_schema, fraud_transactions


def make_catalog(page_size=16 * 1024, capacity=64):
    pool = BufferPool(InMemoryDiskManager(page_size), capacity_pages=capacity)
    return Catalog(pool), pool


@pytest.fixture
def config():
    return SystemConfig(
        memory_threshold_bytes=mb(2),
        tensor_block_rows=32,
        tensor_block_cols=32,
    )


def test_udf_engine_matches_reference(rng):
    model = fraud_fc_256()
    x = rng.normal(size=(64, 28))
    engine = UdfCentricEngine(MemoryBudget(mb(64)))
    result = engine.run_model(model, x)
    np.testing.assert_allclose(result.outputs, model.forward(x))
    assert result.peak_memory_bytes > 0
    assert result.engine == "udf-centric"


def test_udf_engine_keeps_intermediates_so_peak_is_higher(rng):
    model = fraud_fc_256()
    x = rng.normal(size=(256, 28))
    naive = UdfCentricEngine(MemoryBudget(mb(64)), eager_free=False)
    eager = UdfCentricEngine(MemoryBudget(mb(64)), eager_free=True)
    assert (
        naive.run_model(model, x).peak_memory_bytes
        > eager.run_model(model, x).peak_memory_bytes
    )


def test_udf_engine_as_map_operator(rng):
    catalog, __ = make_catalog()
    info = catalog.create_table("tx", fraud_schema())
    features, labels, rows = fraud_transactions(200, seed=1)
    for row in rows:
        info.heap.insert(row)
    model = fraud_fc_256()
    engine = UdfCentricEngine(MemoryBudget(mb(64)))
    op = engine.as_map_operator(
        SeqScan(info), model, [f"f{i}" for i in range(28)]
    )
    preds = [r[0] for r in op]
    expected = model.predict(features)
    np.testing.assert_array_equal(preds, expected)


def test_dl_engine_accounts_transfer(rng):
    catalog, __ = make_catalog()
    info = catalog.create_table("tx", fraud_schema())
    features, __, rows = fraud_transactions(300, seed=2)
    for row in rows:
        info.heap.insert(row)
    model = fraud_fc_256()
    engine = DlCentricEngine(
        Connector(), ExternalRuntime("pytorch-sim", MemoryBudget(mb(64)))
    )
    from repro.relational.expressions import ColumnRef
    from repro.relational.operators import Project

    source = Project(
        SeqScan(info), [(ColumnRef(f"f{i}"), f"f{i}") for i in range(28)]
    )
    result = engine.run_from_source(model, source, [f"f{i}" for i in range(28)])
    np.testing.assert_allclose(result.outputs, model.forward(features), atol=1e-12)
    assert result.detail["wire_bytes"] > 300 * 28 * 8
    assert result.detail["transfer_measured_s"] > 0
    assert result.modeled_total_seconds != result.measured_seconds


def test_relation_engine_vector_stage_matches_udf(rng, config):
    catalog, __ = make_catalog()
    model = fraud_fc_256()
    model_info = catalog.register_model("fraud", model)
    x = rng.normal(size=(100, 28))
    engine = RelationCentricEngine(catalog, config, stripe_rows=48)
    result = engine.run_vector_stage(model.layers, x, model_info)
    np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-9)


def test_relation_engine_bounded_peak_memory(rng, config):
    """Peak accounted memory stays near stripe size, not operator size."""
    catalog, __ = make_catalog(capacity=256)
    model = amazon_14k_fc(scale=0.002)  # 1195 features
    model_info = catalog.register_model("amazon", model)
    x = rng.normal(size=(200, model.input_shape[0]))
    engine = RelationCentricEngine(catalog, config, stripe_rows=32)
    result = engine.run_vector_stage(model.layers, x, model_info)
    np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-8)
    stripe_bytes = 32 * model.input_shape[0] * 8
    assert result.peak_memory_bytes <= 2 * stripe_bytes + 32 * 1024 * 8


def test_relation_engine_conv_stage(rng, config):
    catalog, __ = make_catalog(capacity=256)
    model = landcover(spatial=16, out_channels=8)
    conv = model.layers[0]
    model_info = catalog.register_model("lc", model)
    images = rng.normal(size=(2, 16, 16, 3))
    engine = RelationCentricEngine(catalog, config, stripe_rows=64)
    result = engine.run_conv_stage(
        conv, images, model_info, result_table="lc_out"
    )
    assert result.detail["result_table_rows"] > 0
    out = engine.load_conv_result("lc_out", 2, 16, 16, 8)
    np.testing.assert_allclose(out, model.forward(images), atol=1e-9)


def test_hybrid_executes_adaptive_plan_end_to_end(rng, config):
    catalog, __ = make_catalog(capacity=256)
    model = amazon_14k_fc(scale=0.002)
    model_info = catalog.register_model("amazon", model)
    plan = RuleBasedOptimizer(
        config.with_options(memory_threshold_bytes=4 * 1195 * 1024)
    ).plan_model(model, batch_size=64)
    executor = HybridExecutor(catalog, config)
    x = rng.normal(size=(64, model.input_shape[0]))
    result = executor.execute(plan, x, model_info)
    np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-8)
    assert result.engine == "hybrid"


def test_hybrid_single_udf_plan(rng, config):
    catalog, __ = make_catalog()
    model = fraud_fc_256()
    model_info = catalog.register_model("fraud", model)
    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=64)
    assert plan.is_single_udf
    executor = HybridExecutor(catalog, config)
    x = rng.normal(size=(64, 28))
    result = executor.execute(plan, x, model_info)
    np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-12)


def test_hybrid_dl_stage_charges_boundary_wire(rng, config):
    catalog, __ = make_catalog()
    model = fraud_fc_256()
    model_info = catalog.register_model("fraud", model)
    plan = RuleBasedOptimizer(config).plan_model(
        model, batch_size=64, force="dl-centric"
    )
    executor = HybridExecutor(catalog, config)
    x = rng.normal(size=(64, 28))
    result = executor.execute(plan, x, model_info)
    np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-12)
    assert result.modeled_extra_seconds != 0.0


def test_whole_tensor_engines_oom_where_relation_survives(rng):
    """The Table 3 crossover in miniature."""
    config = SystemConfig(
        memory_threshold_bytes=mb(1),
        dl_memory_limit_bytes=mb(5),
        tensor_block_rows=64,
        tensor_block_cols=64,
    )
    catalog, __ = make_catalog(capacity=512)
    # fc1 weights alone are ~9.6 MB float64 (~4.8 MB at the frameworks'
    # float32 scale); with the batch added, both whole-tensor engines
    # exceed the 5 MB budget.
    model = amazon_14k_fc(scale=0.002)
    model_info = catalog.register_model("amazon", model)
    x = rng.normal(size=(128, model.input_shape[0]))

    udf = UdfCentricEngine(MemoryBudget(config.dl_memory_limit_bytes))
    with pytest.raises(OutOfMemoryError):
        udf.run_model(model, x)

    runtime = ExternalRuntime(
        "tensorflow-sim", MemoryBudget(config.dl_memory_limit_bytes)
    )
    handle = runtime.load_model(model)
    with pytest.raises(OutOfMemoryError):
        runtime.run(handle, x)

    relation = RelationCentricEngine(catalog, config, stripe_rows=64)
    result = relation.run_vector_stage(model.layers, x, model_info)
    np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-8)
    assert result.peak_memory_bytes < config.dl_memory_limit_bytes
