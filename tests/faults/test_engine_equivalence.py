"""Differential engine equivalence: every representation, same function.

The optimizer's whole premise is that representation choice is a pure
performance decision — dl-centric, udf-centric, relation-centric, and the
adaptive hybrid mix must compute identical predictions.  These tests
check that over seeded random models, and re-check it after a transient
injected fault has been recovered from, so recovery never silently
changes an answer.
"""

import numpy as np
import pytest

from repro import Database
from repro.dlruntime.layers import Conv2d, Model, ReLU
from repro.errors import InjectedFaultError
from repro.models import fraud_fc_256
from repro.models.definitions import one_hidden_fc

FORCED = ["dl-centric", "udf-centric", "relation-centric"]


def seeded_ffnn(seed: int) -> Model:
    return one_hidden_fc(f"eq-ffnn-{seed}", 12, 32, 3, seed=seed)


def seeded_cnn(seed: int) -> Model:
    # Conv [+ ReLU] is the layer chain every representation (including
    # the relation-centric conv stage) supports.
    rng = np.random.default_rng(seed)
    return Model(
        f"eq-cnn-{seed}",
        [Conv2d(3, 8, (3, 3), rng=rng, name="c1"), ReLU()],
        input_shape=(10, 10, 3),
    )


@pytest.mark.parametrize("seed", [0, 17, 23])
def test_ffnn_representations_agree(seed):
    model = seeded_ffnn(seed)
    x = np.random.default_rng(seed + 100).normal(size=(16, 12))
    reference = model.forward(x)
    with Database() as db:
        db.register_model(model, name="m")
        hybrid = db.predict("m", x).outputs
        np.testing.assert_allclose(hybrid, reference, atol=1e-6)
        for rep in FORCED:
            out = db.predict("m", x, force=rep).outputs
            np.testing.assert_allclose(
                out, reference, atol=1e-6,
                err_msg=f"{rep} diverged from the reference forward pass",
            )


@pytest.mark.parametrize("seed", [3, 29])
def test_cnn_representations_agree(seed):
    model = seeded_cnn(seed)
    x = np.random.default_rng(seed + 100).normal(size=(4, 10, 10, 3))
    reference = model.forward(x)
    # Small square tensor blocks so the 8×8 output feature map tiles the
    # relation-centric result table evenly.
    with Database(tensor_block_rows=32, tensor_block_cols=32) as db:
        db.register_model(model, name="m")
        hybrid = db.predict("m", x).outputs
        np.testing.assert_allclose(hybrid, reference, atol=1e-6)
        # dl-centric and udf-centric materialize outputs directly.
        for rep in ("dl-centric", "udf-centric"):
            out = db.predict("m", x, force=rep).outputs
            np.testing.assert_allclose(
                out, reference, atol=1e-6,
                err_msg=f"{rep} diverged from the reference forward pass",
            )
        # The relation-centric conv stage streams its feature map into a
        # result table; load it back and compare against the same truth.
        from repro.engines import RelationCentricEngine

        engine = RelationCentricEngine(db.catalog, db.config)
        conv = model.layers[0]
        engine.run_conv_stage(
            conv, x, db.model_info("m"), apply_relu=True, result_table="eq_out"
        )
        out = engine.load_conv_result("eq_out", x.shape[0], 8, 8, 8)
        np.testing.assert_allclose(
            out, reference, atol=1e-6,
            err_msg="relation-centric diverged from the reference forward pass",
        )


@pytest.mark.parametrize("rep", [None] + FORCED)
def test_recovered_fault_does_not_change_answers(rep):
    """Inject a one-shot transient stage fault, retry, compare outputs."""
    model = seeded_ffnn(7)
    x = np.random.default_rng(7).normal(size=(8, 12))
    with Database() as db:
        db.register_model(model, name="m")
        baseline = db.predict("m", x, force=rep).outputs
        db.faults.arm(site="engine.stage", nth=1)
        with pytest.raises(InjectedFaultError):
            db.predict("m", x, force=rep)
        recovered = db.predict("m", x, force=rep).outputs
        np.testing.assert_allclose(recovered, baseline, atol=1e-6)
        np.testing.assert_allclose(recovered, model.forward(x), atol=1e-6)


def test_recovered_fault_through_server_matches_direct_labels(rng):
    with Database() as db:
        db.register_model(fraud_fc_256(), name="fraud")
        feats = rng.normal(size=(12, 28))
        expected = db.predict_labels("fraud", feats)
        db.faults.arm(site="engine.stage", nth=1)
        with db.serve(workers=1) as server:
            got = server.submit("fraud", feats).result(timeout=30.0)
        np.testing.assert_array_equal(got, expected)
        assert db.faults.recovery_total >= 1
