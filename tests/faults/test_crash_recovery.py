"""Crash-recovery matrix: kill the durability path at every step, reopen.

The invariant under test: whatever step of ``Database.close()`` dies, a
reopen either sees the *previous committed generation fully intact* or
raises exactly one typed error — never a half-restored catalog, never a
silent truncation.
"""

import os

import pytest

from repro import Database
from repro.errors import (
    CorruptPageError,
    InjectedFaultError,
    ReproError,
    StorageError,
)
from repro.faults import BIT_FLIP, TORN_WRITE, FaultInjector
from repro.storage import FileDiskManager
from repro.storage.persist import backup_path, sidecar_path

#: Every step of the close/persist path that a crash can interrupt.
CLOSE_SITES = [
    "disk.write_page",
    "disk.sync",
    "persist.sidecar",
    "persist.sidecar_replace",
]


def commit_generation_one(path: str) -> None:
    with Database(path=path) as db:
        db.execute("CREATE TABLE t1 (id INT, v DOUBLE)")
        db.execute("INSERT INTO t1 VALUES (1, 1.5), (2, 2.5)")


@pytest.mark.parametrize("site", CLOSE_SITES)
def test_crash_during_close_preserves_committed_generation(tmp_path, site):
    path = str(tmp_path / "db.pages")
    commit_generation_one(path)

    # Generation 2 in progress: a new table, then the close crashes.
    db = Database(path=path)
    db.execute("CREATE TABLE t2 (id INT)")
    db.execute("INSERT INTO t2 VALUES (7)")
    db.faults.arm(site=site, transient=False)
    with pytest.raises(ReproError):
        db.close()

    # Reopen: generation 1 is fully there and the database is writable.
    with Database(path=path) as db2:
        cur = db2.execute("SELECT id, v FROM t1 ORDER BY id")
        assert cur.fetchall() == [(1, 1.5), (2, 2.5)]
        db2.execute("INSERT INTO t1 VALUES (3, 3.5)")
        assert db2.execute("SELECT COUNT(*) AS n FROM t1").fetchone() == (3,)
    # And the post-crash commit itself survives a further reopen.
    with Database(path=path) as db3:
        assert db3.execute("SELECT COUNT(*) AS n FROM t1").fetchone() == (3,)


@pytest.mark.parametrize("site", CLOSE_SITES)
def test_failed_close_can_be_retried(tmp_path, site):
    """A one-shot close fault is survivable: the second close commits."""
    path = str(tmp_path / "db.pages")
    db = Database(path=path)
    db.execute("CREATE TABLE t (id INT)")
    db.execute("INSERT INTO t VALUES (1), (2), (3)")
    db.faults.arm(site=site)
    with pytest.raises(InjectedFaultError):
        db.close()
    db.close()  # the spec is spent; this close must fully commit
    with Database(path=path) as db2:
        assert db2.execute("SELECT COUNT(*) AS n FROM t").fetchone() == (3,)


def test_corrupt_primary_sidecar_recovers_from_backup(tmp_path):
    path = str(tmp_path / "db.pages")
    commit_generation_one(path)
    # Generation 2 (creates the .bak holding generation 1).
    with Database(path=path) as db:
        db.execute("CREATE TABLE t2 (id INT)")
    side = sidecar_path(path)
    assert os.path.exists(backup_path(side))

    with open(side, "w") as f:
        f.write("{ this is not json")

    db = Database(path=path)
    try:
        # The backup generation restored transparently...
        cur = db.execute("SELECT id, v FROM t1 ORDER BY id")
        assert cur.fetchall() == [(1, 1.5), (2, 2.5)]
        # ...and the fallback was recorded as a recovery.
        assert db.faults.recovery_total >= 1
        rows = {r[0]: r for r in db.faults.rows()}
        assert rows["persist.sidecar"][-1] >= 1  # recoveries column
    finally:
        db.close()


def test_both_sidecar_generations_corrupt_raises_typed_error(tmp_path):
    path = str(tmp_path / "db.pages")
    commit_generation_one(path)
    with Database(path=path) as db:
        db.execute("INSERT INTO t1 VALUES (9, 9.0)")
    side = sidecar_path(path)
    for target in (side, backup_path(side)):
        with open(target, "w") as f:
            f.write("garbage")
    with pytest.raises(StorageError) as excinfo:
        Database(path=path)
    assert side in str(excinfo.value)


def test_corrupt_sidecar_without_backup_raises_not_silently_resets(tmp_path):
    path = str(tmp_path / "db.pages")
    commit_generation_one(path)  # one generation only: no .bak yet
    side = sidecar_path(path)
    assert not os.path.exists(backup_path(side))
    with open(side, "w") as f:
        f.write("garbage")
    # A fresh-looking (empty) database here would be silent data loss.
    with pytest.raises(StorageError):
        Database(path=path)


def test_malformed_snapshot_structure_is_typed_not_keyerror(tmp_path):
    path = str(tmp_path / "db.pages")
    commit_generation_one(path)
    side = sidecar_path(path)
    with open(side, "w") as f:
        f.write('{"valid_json": "but not a catalog snapshot"}')
    with pytest.raises(StorageError):
        Database(path=path)


def test_partial_trailing_page_rejected_at_reopen(tmp_path):
    """Satellite: a torn final page must raise, naming the byte offset."""
    path = str(tmp_path / "db.pages")
    commit_generation_one(path)
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(size - 100)
    with pytest.raises(StorageError, match="byte offset"):
        Database(path=path)


def test_torn_write_detected_by_checksum_after_reopen(tmp_path):
    path = str(tmp_path / "pages.db")
    injector = FaultInjector(seed=5)
    disk = FileDiskManager(4096, path=path, injector=injector)
    pids = [disk.allocate_page() for __ in range(3)]
    for pid in pids:
        disk.write_page(pid, bytes([pid + 1]) * 4096)
    # Tear the middle page's rewrite: the slot keeps its first half.
    injector.arm(site="disk.write_page", kind=TORN_WRITE)
    disk.write_page(pids[1], b"\xab" * 4096)
    disk.sync()
    disk.close()

    reopened = FileDiskManager(4096, path=path)
    assert reopened.read_page(pids[0]) == bytes([1]) * 4096
    with pytest.raises(CorruptPageError) as excinfo:
        reopened.read_page(pids[1])
    assert excinfo.value.page_id == pids[1]
    assert path in str(excinfo.value)
    assert reopened.read_page(pids[2]) == bytes([3]) * 4096
    # Rewriting the damaged page repairs it.
    reopened.write_page(pids[1], b"\xcd" * 4096)
    assert reopened.read_page(pids[1]) == b"\xcd" * 4096
    reopened.close()


def test_bit_flip_detected_by_checksum_after_reopen(tmp_path):
    path = str(tmp_path / "pages.db")
    injector = FaultInjector(seed=6)
    disk = FileDiskManager(4096, path=path, injector=injector)
    pid = disk.allocate_page()
    disk.write_page(pid, b"\x11" * 4096)
    injector.arm(site="disk.write_page", kind=BIT_FLIP)
    disk.write_page(pid, b"\x22" * 4096)
    disk.close()

    reopened = FileDiskManager(4096, path=path)
    with pytest.raises(CorruptPageError):
        reopened.read_page(pid)
    reopened.close()


def test_transient_read_corruption_clears_on_retry(tmp_path):
    """A read-side bit flip (media transient) fails once, then reads clean."""
    path = str(tmp_path / "pages.db")
    injector = FaultInjector(seed=7)
    disk = FileDiskManager(4096, path=path, injector=injector)
    pid = disk.allocate_page()
    payload = b"\x5a" * 4096
    disk.write_page(pid, payload)
    injector.arm(site="disk.read_page", kind=BIT_FLIP)
    with pytest.raises(CorruptPageError):
        disk.read_page(pid)
    assert disk.read_page(pid) == payload  # one-shot: the retry succeeds
    disk.close()
