"""Replay guarantee for the resilience layer: fault scenarios that
interleave with stage *recovery* (OOM → re-lower) must produce identical
outcome traces under the same seed, run to run and process to process.

Deliberately hypothesis-free, like the rest of ``tests/faults``."""

import numpy as np
import pytest

from repro import Database
from repro.config import mb
from repro.errors import InjectedFaultError
from repro.models import fraud_fc_256

KB = 1024

#: 40 KiB whole-tensor budget: every adaptive fraud plan OOMs on its
#: weights charge and is rescued by re-lowering, so faults armed on top
#: of this config fire around (and inside) recovered stages.
TIGHT = dict(
    telemetry_enabled=True,
    memory_threshold_bytes=mb(64),
    dl_memory_limit_bytes=40 * KB,
    faults_seed=29,
)


def outcome(db: Database, x: np.ndarray) -> str:
    try:
        result = db.predict("fraud", x)
    except InjectedFaultError:
        return "typed-error"
    return "recovered" if "stage0.recovery" in result.detail else "ok"


def test_fault_against_recovered_stage_replays(rng):
    """A probabilistic stage fault on a budget that forces recovery:
    which queries fault, which recover, and how many injections fired
    is identical across two fresh databases with the same seed."""
    x = rng.normal(size=(16, 28))

    def run() -> tuple[list[str], int, int]:
        with Database(**TIGHT) as db:
            db.register_model(fraud_fc_256(), name="fraud")
            db.faults.arm(
                site="engine.stage",
                probability=0.4,
                one_shot=False,
                max_fires=5,
                transient=True,
            )
            trace = [outcome(db, x) for __ in range(10)]
            return trace, db.faults.injected_total, db.recovery_ledger.rescues()

    first = run()
    assert first == run()
    trace, injected, rescues = first
    assert "typed-error" in trace  # the fault really fired
    assert "recovered" in trace or rescues > 0  # against a rescued stage
    assert injected == trace.count("typed-error")


def test_fault_sequenced_around_ledger_replan_replays(rng):
    """An nth-hit fault lands on the second stage execution — after the
    first query's rescue has re-planned the model relation-centric via
    the ledger.  The whole sequence (rescue, fault, recovery-free final
    run) replays exactly."""
    x = rng.normal(size=(16, 28))

    def run() -> list[str]:
        with Database(**TIGHT) as db:
            db.register_model(fraud_fc_256(), name="fraud")
            db.faults.arm(site="engine.stage", nth=2)
            return [outcome(db, x) for __ in range(3)]

    first = run()
    assert first == run()
    # Query 1 is rescued (and feeds the ledger); query 2 trips the armed
    # fault at the stage boundary of the re-planned relation-centric
    # stage; query 3 runs clean on the bounded path.
    assert first == ["recovered", "typed-error", "ok"]


def test_fault_inside_the_recovery_run_replays(rng, tmp_path):
    """A file-backed database with a four-page pool: the re-lowered
    relation stage streams model blocks through the buffer pool, so an
    eviction fault fires *inside* the recovery run itself.  The trace —
    including whether the rescue survived — is seed-stable."""
    x = rng.normal(size=(16, 28))

    def run(subdir: str) -> tuple[list[str], int]:
        with Database(
            path=str(tmp_path / subdir),
            page_size=4 * KB,
            buffer_pool_bytes=16 * KB,
            **TIGHT,
        ) as db:
            db.register_model(fraud_fc_256(), name="fraud")
            db.faults.arm(
                site="bufferpool.evict",
                probability=0.05,
                one_shot=False,
                max_fires=3,
            )
            trace = [outcome(db, x) for __ in range(4)]
            return trace, db.faults.injected_total

    first = run("a")
    assert first == run("b")
    trace, injected = first
    # Whatever mix of rescues and faults the seed produced, the database
    # kept answering: the final query settles on a terminal outcome.
    assert trace[-1] in ("ok", "recovered", "typed-error")
    assert injected >= 0
