"""Unit tests for the deterministic fault injector (`repro.faults`)."""

import pytest

from repro.errors import ConfigError, CorruptPageError, InjectedFaultError
from repro.faults import (
    BIT_FLIP,
    ERROR,
    FAULT_COLUMNS,
    KNOWN_SITES,
    TORN_WRITE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    corrupt,
    is_transient,
)
from repro.telemetry.registry import MetricsRegistry


def fire_pattern(injector: FaultInjector, site: str, hits: int) -> list[bool]:
    """True per hit that fired (error raised or spec returned)."""
    pattern = []
    for __ in range(hits):
        try:
            pattern.append(injector.fire(site) is not None)
        except InjectedFaultError:
            pattern.append(True)
    return pattern


def test_unarmed_injector_is_inert():
    inj = FaultInjector(seed=1)
    assert inj.fire("disk.read_page") is None
    assert not inj.active
    assert inj.armed_count == 0
    assert inj.injected_total == 0


def test_nth_trigger_fires_exactly_once_on_nth_hit():
    inj = FaultInjector(seed=1)
    inj.arm(site="disk.read_page", nth=3)
    assert fire_pattern(inj, "disk.read_page", 6) == [
        False, False, True, False, False, False,
    ]
    assert inj.injected_total == 1


def test_always_trigger_with_one_shot_fires_first_hit_only():
    inj = FaultInjector(seed=1)
    inj.arm(site="disk.sync")
    assert fire_pattern(inj, "disk.sync", 4) == [True, False, False, False]


def test_max_fires_caps_non_one_shot_spec():
    inj = FaultInjector(seed=1)
    inj.arm(site="server.batch", one_shot=False, max_fires=3)
    assert fire_pattern(inj, "server.batch", 6) == [
        True, True, True, False, False, False,
    ]
    assert inj.injected_total == 3


def test_probability_trigger_is_deterministic_per_seed():
    def run(seed: int) -> list[bool]:
        inj = FaultInjector(seed=seed)
        inj.arm(site="disk.write_page", probability=0.5, one_shot=False)
        return fire_pattern(inj, "disk.write_page", 64)

    first = run(1234)
    assert first == run(1234), "same seed must replay the same fire pattern"
    assert True in first and False in first, "p=0.5 over 64 hits should mix"
    assert first != run(4321), "different seeds should diverge"


def test_bit_flip_position_is_deterministic_per_seed():
    def flipped(seed: int) -> bytes:
        inj = FaultInjector(seed=seed)
        spec = inj.arm(site="disk.write_page", kind=BIT_FLIP)
        fired = inj.fire("disk.write_page")
        assert fired is spec
        return corrupt(b"\x00" * 256, fired)

    assert flipped(7) == flipped(7)
    assert flipped(7) != flipped(8)


def test_error_kind_raises_typed_transient_fault():
    inj = FaultInjector(seed=1)
    inj.arm(site="engine.stage", message="boom")
    with pytest.raises(InjectedFaultError) as excinfo:
        inj.fire("engine.stage", model="m", stage=0)
    err = excinfo.value
    assert err.site == "engine.stage"
    assert is_transient(err)
    assert "boom" in str(err)
    assert "model" in str(err)


def test_non_transient_error_is_not_retry_worthy():
    inj = FaultInjector(seed=1)
    inj.arm(site="disk.read_page", transient=False)
    with pytest.raises(InjectedFaultError) as excinfo:
        inj.fire("disk.read_page")
    assert not is_transient(excinfo.value)


def test_is_transient_rejects_ordinary_and_corruption_errors():
    assert not is_transient(ValueError("x"))
    assert not is_transient(CorruptPageError("damaged", page_id=0, path="p"))


def test_corrupt_torn_write_keeps_first_half():
    spec = FaultSpec(site="disk.write_page", kind=TORN_WRITE)
    data = bytes(range(100))
    assert corrupt(data, spec) == data[:50]
    assert corrupt(b"", spec) == b""


def test_corrupt_bit_flip_changes_exactly_one_bit():
    inj = FaultInjector(seed=3)
    spec = inj.arm(site="disk.write_page", kind=BIT_FLIP)
    data = b"\x00" * 64
    out = corrupt(data, spec)
    assert len(out) == len(data)
    diff = [a ^ b for a, b in zip(data, out)]
    changed = [d for d in diff if d]
    assert len(changed) == 1
    assert bin(changed[0]).count("1") == 1


def test_corruption_kind_returns_spec_instead_of_raising():
    inj = FaultInjector(seed=1)
    armed = inj.arm(site="disk.write_page", kind=TORN_WRITE)
    assert inj.fire("disk.write_page") is armed
    assert inj.fire("disk.write_page") is None  # one-shot


def test_plan_seed_overrides_injector_seed():
    template = FaultSpec(
        site="disk.read_page", probability=0.5, one_shot=False
    )

    def run(injector_seed: int, plan_seed: int | None) -> list[bool]:
        inj = FaultInjector(seed=injector_seed)
        inj.load_plan(FaultPlan([template], seed=plan_seed))
        return fire_pattern(inj, "disk.read_page", 64)

    assert run(1, 99) == run(2, 99), "plan seed wins over injector seed"
    assert run(1, None) == run(1, None)


def test_arming_a_template_does_not_mutate_it():
    template = FaultSpec(site="disk.sync")
    inj = FaultInjector(seed=1)
    live = inj.arm(template)
    with pytest.raises(InjectedFaultError):
        inj.fire("disk.sync")
    assert live.fires == 1
    assert template.fires == 0 and template.hits == 0


def test_disarm_single_site_and_all():
    inj = FaultInjector(seed=1)
    inj.arm(site="disk.read_page")
    inj.arm(site="disk.sync")
    assert inj.armed_count == 2
    inj.disarm("disk.read_page")
    assert inj.armed_count == 1
    assert inj.fire("disk.read_page") is None
    inj.disarm()
    assert inj.armed_count == 0
    assert inj.fire("disk.sync") is None


def test_retry_and_recovery_accounting():
    registry = MetricsRegistry()
    inj = FaultInjector(seed=1, metrics=registry)
    inj.arm(site="server.batch")
    with pytest.raises(InjectedFaultError):
        inj.fire("server.batch")
    inj.record_retry("server.batch")
    inj.record_retry("server.batch")
    inj.record_recovery("server.batch")
    assert inj.retry_total == 2
    assert inj.recovery_total == 1
    assert registry.counter(
        "fault_injected_total", "", site="server.batch"
    ).value == 1
    assert registry.counter("retry_total", "", site="server.batch").value == 2
    assert registry.counter("recovery_total", "", site="server.batch").value == 1


def test_rows_cover_every_known_site():
    inj = FaultInjector(seed=1)
    inj.arm(site="disk.read_page", nth=2)
    rows = inj.rows()
    assert all(len(row) == len(FAULT_COLUMNS) for row in rows)
    listed = {row[0] for row in rows}
    assert listed >= set(KNOWN_SITES)
    armed = [row for row in rows if row[0] == "disk.read_page"]
    assert armed[0][1] == ERROR and armed[0][4] is True
    assert "nth=2" in armed[0][2]


def test_invalid_spec_fields_rejected():
    with pytest.raises(ConfigError):
        FaultSpec(site="disk.read_page", kind="melt")
    with pytest.raises(ConfigError):
        FaultSpec(site="disk.read_page", nth=0)
    with pytest.raises(ConfigError):
        FaultSpec(site="disk.read_page", probability=1.5)
    with pytest.raises(ConfigError):
        FaultSpec(site="disk.read_page", max_fires=0)
