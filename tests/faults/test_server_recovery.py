"""ModelServer fault handling: bounded retry, recovery, batch isolation."""

import time

import numpy as np
import pytest

from repro import Database
from repro.errors import InjectedFaultError
from repro.models import fraud_fc_256


@pytest.fixture
def db():
    database = Database()
    database.register_model(fraud_fc_256(), name="fraud")
    yield database
    database.close()


@pytest.fixture
def features(rng):
    return rng.normal(size=(16, 28))


def test_transient_batch_fault_is_retried_to_success(db, features):
    expected = db.predict_labels("fraud", features[:4])
    db.faults.arm(site="server.batch", nth=1)
    with db.serve(workers=1) as server:
        got = server.submit("fraud", features[:4]).result(timeout=30.0)
        np.testing.assert_array_equal(got, expected)
        rows = dict(server.stats_rows())
        assert rows["server.retries"] >= 1
    assert db.faults.retry_total == 1
    assert db.faults.recovery_total == 1


def test_transient_engine_fault_recovered_through_server_retry(db, features):
    """A fault below the server (in the engine stage loop) is retried too."""
    expected = db.predict_labels("fraud", features[:4])
    db.faults.arm(site="engine.stage", nth=1)
    with db.serve(workers=1) as server:
        got = server.submit("fraud", features[:4]).result(timeout=30.0)
        np.testing.assert_array_equal(got, expected)
    assert db.faults.retry_total >= 1
    assert db.faults.recovery_total >= 1


def test_non_transient_fault_fails_fast_without_retry(db, features):
    db.faults.arm(site="server.batch", transient=False)
    with db.serve(workers=1) as server:
        future = server.submit("fraud", features[0])
        with pytest.raises(InjectedFaultError):
            future.result(timeout=30.0)
        assert db.faults.retry_total == 0
        # The server survives the poisoned request and keeps serving.
        ok = server.submit("fraud", features[1]).result(timeout=30.0)
        assert ok.shape == (1,)
        rows = dict(server.stats_rows())
        assert rows["server.requests.failed"] == 1


def test_persistent_fault_poisons_one_request_not_the_batch(db, features):
    """Retry budget exhausted on a coalesced batch: innocent riders are
    isolated and resolve; only the request whose run trips the fault
    fails.  Regardless of how the batcher coalesced the submissions,
    exactly one future fails."""
    expected = db.predict_labels("fraud", features)
    retry_limit = db.config.server_retry_limit
    real_predict = db.predict_labels

    def slow_predict(name, feats):
        time.sleep(0.02)  # hold the lone worker so later submits coalesce
        return real_predict(name, feats)

    db.predict_labels = slow_predict
    try:
        with db.serve(workers=1, max_batch_size=8, max_queue_delay_ms=0.0) as server:
            plug = server.submit("fraud", features[0])
            time.sleep(0.005)  # let the worker pick the plug up alone
            # One more firing than the retry budget: the spec stays hot
            # through every batch-level retry, then hits exactly one
            # request in the isolation pass.
            db.faults.arm(
                site="server.batch",
                one_shot=False,
                max_fires=retry_limit + 2,
                transient=True,
            )
            futures = [server.submit("fraud", features[i]) for i in (1, 2)]
            outcomes = []
            for i, future in zip((1, 2), futures):
                try:
                    outcomes.append(("ok", i, future.result(timeout=30.0)))
                except InjectedFaultError:
                    outcomes.append(("fail", i, None))
            np.testing.assert_array_equal(
                plug.result(timeout=30.0), expected[0:1]
            )
            failed = [o for o in outcomes if o[0] == "fail"]
            assert len(failed) == 1, outcomes
            for status, i, got in outcomes:
                if status == "ok":
                    np.testing.assert_array_equal(got, expected[i : i + 1])
            assert db.faults.retry_total >= retry_limit
            # The server keeps serving after the poisoned batch.
            ok = server.submit("fraud", features[3]).result(timeout=30.0)
            np.testing.assert_array_equal(ok, expected[3:4])
    finally:
        db.predict_labels = real_predict


def test_retry_knobs_surface_in_stats_and_serve_overrides(db, features):
    with db.serve(workers=1, retry_limit=5, retry_backoff_ms=0.5) as server:
        rows = dict(server.stats_rows())
        assert rows["server.retry_limit"] == 5
        assert rows["server.retry_backoff_ms"] == 0.5
        assert rows["server.retries"] == 0


def test_show_faults_reports_server_activity(db, features):
    db.faults.arm(site="server.batch", nth=1)
    with db.serve(workers=1) as server:
        server.submit("fraud", features[:2]).result(timeout=30.0)
    cur = db.execute("SHOW FAULTS")
    rows = {row[0]: row for row in cur.fetchall()}
    site_row = rows["server.batch"]
    assert site_row[6] >= 1  # fires
    assert site_row[7] >= 1  # retries
    assert site_row[8] >= 1  # recoveries
