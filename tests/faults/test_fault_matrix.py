"""Acceptance matrix: one injected fault per site, twice, same outcome.

For every injection site the system must either recover transparently
(recovery recorded, correct result) or raise a typed
:class:`~repro.errors.ReproError` subclass after which the database keeps
answering queries and survives a reopen.  Each scenario runs twice with
the same seed and must produce an identical outcome trace — that is the
replayability guarantee the fault-matrix CI job leans on.

Deliberately hypothesis-free: the CI fault-matrix job runs this package
with only numpy + pytest installed.
"""

import os

import numpy as np
import pytest

from repro import Database
from repro.errors import InjectedFaultError, ReproError
from repro.faults import KNOWN_SITES
from repro.models import fraud_fc_256

KB = 1024


def tiny_db(path: str, seed: int = 11) -> Database:
    """File-backed database small enough that scans really hit the disk."""
    return Database(
        path=path,
        page_size=4 * KB,
        buffer_pool_bytes=16 * KB,  # four pages: evictions are routine
        faults_seed=seed,
    )


def populate(db: Database, rows: int = 120) -> None:
    db.execute("CREATE TABLE t (id INT, payload TEXT)")
    values = ", ".join(f"({i}, '{'x' * 60}')" for i in range(rows))
    db.execute(f"INSERT INTO t VALUES {values}")


def checked_count(db: Database, expected: int) -> str:
    got = db.execute("SELECT COUNT(*) AS n FROM t").fetchone()[0]
    assert got == expected
    return f"count={got}"


# -- per-site scenario drivers -------------------------------------------
#
# Each driver provokes its site on a populated database and returns an
# outcome trace (a list of strings).  Raising anything that is not a
# typed ReproError fails the matrix.


def drive_disk_read_page(path: str) -> list[str]:
    trace = []
    with tiny_db(path) as db:
        populate(db, rows=400)  # ~10 pages: far larger than the 4-page pool
    db = Database(path=path, page_size=4 * KB, buffer_pool_bytes=16 * KB)
    try:
        db.faults.arm(site="disk.read_page", nth=2)
        with pytest.raises(InjectedFaultError):
            db.execute("SELECT COUNT(*) AS n FROM t")
        trace.append("typed-error")
        trace.append(checked_count(db, 400))  # the site healed: retry works
    finally:
        db.close()
    with Database(path=path, page_size=4 * KB) as db2:
        trace.append(checked_count(db2, 400))  # and the file reopens intact
    return trace


def drive_disk_write_page(path: str) -> list[str]:
    trace = []
    db = tiny_db(path)
    populate(db)
    db.faults.arm(site="disk.write_page", transient=False)
    with pytest.raises(ReproError) as excinfo:
        db.close()  # flush-on-close trips the write fault
    trace.append(type(excinfo.value).__name__)
    db.close()  # spec is spent: the retried close commits
    with Database(path=path, page_size=4 * KB) as db2:
        trace.append(checked_count(db2, 120))
    return trace


def drive_disk_sync(path: str) -> list[str]:
    trace = []
    db = tiny_db(path)
    populate(db)
    db.faults.arm(site="disk.sync", transient=False)
    with pytest.raises(ReproError) as excinfo:
        db.close()
    trace.append(type(excinfo.value).__name__)
    db.close()
    with Database(path=path, page_size=4 * KB) as db2:
        trace.append(checked_count(db2, 120))
    return trace


def drive_bufferpool_evict(path: str) -> list[str]:
    trace = []
    db = tiny_db(path)
    try:
        populate(db)  # > 4 pages of rows: inserting forces evictions
        db.faults.arm(site="bufferpool.evict")
        with pytest.raises(InjectedFaultError):
            for i in range(2000):
                db.execute(f"INSERT INTO t VALUES ({1000 + i}, '{'y' * 60}')")
        trace.append("typed-error")
        # Pool state survived the refused eviction: scans still work.
        got = db.execute("SELECT COUNT(*) AS n FROM t").fetchone()[0]
        assert got >= 120
        trace.append(f"count={got}")
    finally:
        db.close()
    with Database(path=path, page_size=4 * KB) as db2:
        got = db2.execute("SELECT COUNT(*) AS n FROM t").fetchone()[0]
        trace.append(f"count={got}")
    return trace


def drive_engine_stage(path: str) -> list[str]:
    trace = []
    with tiny_db(path) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        feats = np.random.default_rng(3).normal(size=(8, 28))
        baseline = db.predict("fraud", feats).outputs
        db.faults.arm(site="engine.stage")
        with pytest.raises(InjectedFaultError):
            db.predict("fraud", feats)
        trace.append("typed-error")
        retried = db.predict("fraud", feats).outputs
        np.testing.assert_allclose(retried, baseline, atol=1e-6)
        trace.append(f"outputs={np.asarray(retried).tobytes().hex()[:32]}")
    return trace


def drive_result_cache_lookup(path: str) -> list[str]:
    trace = []
    with tiny_db(path) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        feats = np.random.default_rng(4).normal(size=(8, 28))
        expected = db.predict_labels("fraud", feats)
        db.enable_result_cache("fraud", distance_threshold=0.0, exact=True)
        db.predict_labels("fraud", feats)  # warm the cache
        db.faults.arm(site="result_cache.lookup")
        got = db.predict_labels("fraud", feats)  # degrades to recompute
        np.testing.assert_array_equal(got, expected)
        trace.append("recovered")
        assert db.faults.recovery_total >= 1
        trace.append(f"recoveries={db.faults.recovery_total}")
    return trace


def drive_server_batch(path: str) -> list[str]:
    trace = []
    with tiny_db(path) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        feats = np.random.default_rng(5).normal(size=(4, 28))
        expected = db.predict_labels("fraud", feats)
        db.faults.arm(site="server.batch", nth=1)
        with db.serve(workers=1) as server:
            got = server.submit("fraud", feats).result(timeout=30.0)
        np.testing.assert_array_equal(got, expected)
        trace.append("recovered")
        assert db.faults.retry_total >= 1
        assert db.faults.recovery_total >= 1
        trace.append(f"retries={db.faults.retry_total}")
    return trace


def drive_persist_sidecar(path: str) -> list[str]:
    trace = []
    db = tiny_db(path)
    populate(db, rows=20)
    db.faults.arm(site="persist.sidecar", transient=False)
    with pytest.raises(ReproError) as excinfo:
        db.close()
    trace.append(type(excinfo.value).__name__)
    db.close()
    with Database(path=path, page_size=4 * KB) as db2:
        trace.append(checked_count(db2, 20))
    return trace


def drive_persist_sidecar_replace(path: str) -> list[str]:
    trace = []
    db = tiny_db(path)
    populate(db, rows=20)
    db.faults.arm(site="persist.sidecar_replace", transient=False)
    with pytest.raises(ReproError) as excinfo:
        db.close()
    trace.append(type(excinfo.value).__name__)
    db.close()
    with Database(path=path, page_size=4 * KB) as db2:
        trace.append(checked_count(db2, 20))
    return trace


def _lifecycle_db(path: str) -> tuple[Database, np.ndarray, np.ndarray]:
    """A db with a served model, plus a feature batch and its labels."""
    db = tiny_db(path)
    db.register_model(fraud_fc_256(), name="fraud")
    feats = np.random.default_rng(6).normal(size=(16, 28))
    baseline = db.predict_labels("fraud", feats)
    return db, feats, baseline


def _assert_old_version_serves(
    db: Database, feats: np.ndarray, baseline: np.ndarray, trace: list[str]
) -> None:
    """A crashed deploy step must leave the prior version serving."""
    entry = db.lifecycle.snapshot().entry("fraud")
    assert entry.serving == "v1"
    labels, gen = db.predict_labels_v("fraud", feats)
    np.testing.assert_array_equal(labels, baseline)
    trace.append(f"serving=v1 gen={gen}")


def drive_lifecycle_prepare(path: str) -> list[str]:
    trace = []
    db, feats, baseline = _lifecycle_db(path)
    with db:
        before = db.lifecycle.generation
        db.faults.arm(site="lifecycle.prepare", transient=False)
        with pytest.raises(InjectedFaultError):
            db.register_model_version("fraud", "v2", quantize_bits=8)
        trace.append("typed-error")
        # The prepare crashed before any mutation: no version, no publish.
        assert db.lifecycle.generation == before
        assert db.lifecycle.snapshot().entry("fraud").record("v2") is None
        _assert_old_version_serves(db, feats, baseline, trace)
    return trace


def drive_lifecycle_swap(path: str) -> list[str]:
    trace = []
    db, feats, baseline = _lifecycle_db(path)
    with db:
        db.register_model_version("fraud", "v2", quantize_bits=8)
        before = db.lifecycle.generation
        db.faults.arm(site="lifecycle.swap", transient=False)
        with pytest.raises(InjectedFaultError):
            db.execute("DEPLOY MODEL fraud VERSION v2 CANARY 25%")
        trace.append("typed-error")
        # The swap fired before the pointer assignment: nothing published.
        assert db.lifecycle.generation == before
        assert db.lifecycle.snapshot().entry("fraud").canary is None
        _assert_old_version_serves(db, feats, baseline, trace)
    return trace


def drive_lifecycle_rollback(path: str) -> list[str]:
    trace = []
    db, feats, baseline = _lifecycle_db(path)
    with db:
        # v2 has identical weights (same seeded init), so the live canary
        # slice cannot perturb the label comparison below.
        db.register_model_version("fraud", "v2", model=fraud_fc_256())
        db.execute("DEPLOY MODEL fraud VERSION v2 CANARY 25%")
        before = db.lifecycle.generation
        db.faults.arm(site="lifecycle.rollback", transient=False)
        with pytest.raises(InjectedFaultError):
            db.execute("ROLLBACK MODEL fraud")
        trace.append("typed-error")
        # The rollback never published; the split is unchanged and the
        # stable version still answers the non-canary slice.
        assert db.lifecycle.generation == before
        assert db.lifecycle.snapshot().entry("fraud").canary == "v2"
        _assert_old_version_serves(db, feats, baseline, trace)
    return trace


DRIVERS = {
    "disk.read_page": drive_disk_read_page,
    "disk.write_page": drive_disk_write_page,
    "disk.sync": drive_disk_sync,
    "bufferpool.evict": drive_bufferpool_evict,
    "engine.stage": drive_engine_stage,
    "result_cache.lookup": drive_result_cache_lookup,
    "server.batch": drive_server_batch,
    "persist.sidecar": drive_persist_sidecar,
    "persist.sidecar_replace": drive_persist_sidecar_replace,
    "lifecycle.prepare": drive_lifecycle_prepare,
    "lifecycle.swap": drive_lifecycle_swap,
    "lifecycle.rollback": drive_lifecycle_rollback,
}


def test_every_known_site_has_a_matrix_driver():
    assert set(DRIVERS) == set(KNOWN_SITES)


def run_in(tmp_path, subdir: str, site: str) -> list[str]:
    root = tmp_path / subdir
    os.makedirs(root, exist_ok=True)
    return DRIVERS[site](str(root / "db.pages"))


@pytest.mark.parametrize("site", sorted(DRIVERS))
def test_single_fault_recovers_or_fails_typed(tmp_path, site):
    trace = run_in(tmp_path, "run", site)
    assert trace, "driver must record an outcome"


@pytest.mark.parametrize("site", sorted(DRIVERS))
def test_same_seed_reproduces_same_outcome(tmp_path, site):
    """The replay guarantee: two runs, same seed, identical outcome trace."""
    first = run_in(tmp_path, "a", site)
    second = run_in(tmp_path, "b", site)
    assert first == second
