"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.storage import BufferPool, InMemoryDiskManager


@pytest.fixture
def config() -> SystemConfig:
    return SystemConfig()


@pytest.fixture
def pool(config: SystemConfig) -> BufferPool:
    disk = InMemoryDiskManager(config.page_size)
    return BufferPool(disk, capacity_pages=config.buffer_pool_pages)


@pytest.fixture
def small_pool() -> BufferPool:
    """A deliberately tiny pool (8 pages) so eviction paths are exercised."""
    disk = InMemoryDiskManager(16 * 1024)
    return BufferPool(disk, capacity_pages=8)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
