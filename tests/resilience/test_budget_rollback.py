"""Regression: a failed or rescued stage leaves the memory budgets
balanced — every charge rolls back through try/finally on abort, so
``used`` returns to zero and later queries see a full budget."""

import numpy as np
import pytest

from repro import Database
from repro.config import mb
from repro.errors import InjectedFaultError, OutOfMemoryError
from repro.models import fraud_fc_256

TIGHT = dict(
    telemetry_enabled=True,
    memory_threshold_bytes=mb(64),
    dl_memory_limit_bytes=40 * 1024,
)


def budgets(db):
    executor = db._executor
    return {
        "db": executor.db_budget,
        "dl": executor.dl_budget,
        "relation": executor.relation_engine.budget,
    }


def assert_balanced(db):
    for name, budget in budgets(db).items():
        assert budget.used == 0, f"{name} budget leaked {budget.used} bytes"


def test_oom_abort_leaves_budgets_balanced(rng):
    """The raw failure path: recovery disabled, the UDF stage OOMs on its
    weights charge and the error propagates — with nothing left charged."""
    with Database(resilience_enabled=False, **TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        with pytest.raises(OutOfMemoryError):
            db.predict("fraud", rng.normal(size=(16, 28)))
        assert_balanced(db)


def test_rescued_stage_leaves_budgets_balanced(rng):
    """The recovery path: the failed UDF attempt rolls back before the
    relation-centric re-run charges its own (bounded) stripes."""
    with Database(**TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        result = db.predict("fraud", rng.normal(size=(16, 28)))
        assert result.detail.get("stage0.recovery") == 1.0
        assert_balanced(db)


def test_injected_stage_fault_leaves_budgets_balanced(rng):
    with Database(**TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.faults.arm(site="engine.stage")
        with pytest.raises(InjectedFaultError):
            db.predict("fraud", rng.normal(size=(16, 28)))
        assert_balanced(db)


def test_forced_dl_oom_leaves_budgets_balanced(rng):
    """The DL-runtime budget unwinds the same way on a forced offload."""
    with Database(**TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        with pytest.raises(OutOfMemoryError):
            db.predict("fraud", rng.normal(size=(16, 28)), force="dl-centric")
        assert_balanced(db)


def test_budget_stays_usable_after_repeated_failures(rng):
    """No cumulative drift: many aborted queries in a row never shrink
    the budget headroom, and a final normal-sized query still runs."""
    with Database(resilience_enabled=False, **TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        x = rng.normal(size=(16, 28))
        for __ in range(5):
            with pytest.raises(OutOfMemoryError):
                db.predict("fraud", x)
        assert_balanced(db)
    with Database() as db:
        model = fraud_fc_256()
        db.register_model(model, name="fraud")
        np.testing.assert_allclose(
            db.predict("fraud", x).outputs, model.forward(x), atol=1e-12
        )
