"""Deadline watchdog: cooperative stage timeouts and their recovery."""

import numpy as np
import pytest

from repro import Database
from repro.config import SystemConfig, mb
from repro.errors import StageTimeoutError
from repro.models import fraud_fc_256
from repro.resilience import Deadline


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


def test_deadline_tracks_elapsed_and_remaining():
    clock = FakeClock()
    deadline = Deadline(2.0, label="s", clock=clock)
    assert deadline.elapsed == 0.0
    assert deadline.remaining == 2.0
    assert not deadline.expired
    clock.now += 1.5
    assert deadline.elapsed == 1.5
    assert deadline.remaining == 0.5
    deadline.check()  # within budget: no raise
    clock.now += 1.0
    assert deadline.expired
    with pytest.raises(StageTimeoutError):
        deadline.check()


def test_checkpoint_is_the_bound_check():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    hook = deadline.checkpoint()
    hook()
    clock.now += 2.0
    with pytest.raises(StageTimeoutError):
        hook()


def test_for_stage_disabled_at_zero():
    assert Deadline.for_stage(SystemConfig(), "s") is None


def test_for_stage_converts_milliseconds():
    config = SystemConfig(resilience_stage_timeout_ms=250.0)
    deadline = Deadline.for_stage(config, "model:stage0")
    assert deadline is not None
    assert deadline.limit_seconds == pytest.approx(0.25)
    assert deadline.label == "model:stage0"


def test_timeout_error_carries_the_label():
    clock = FakeClock()
    deadline = Deadline(0.5, label="fraud:stage0", clock=clock)
    clock.now += 1.0
    with pytest.raises(StageTimeoutError) as exc_info:
        deadline.check()
    assert "fraud:stage0" in str(exc_info.value)


# -- end to end: a stage that blows its deadline is re-lowered --------------


def test_stage_timeout_recovers_via_relowering(rng):
    """An impossibly tight stage deadline trips at the first layer
    checkpoint; the executor re-lowers the stage to relation-centric
    (recovery runs carry no deadline) and the query still completes with
    identical results."""
    model = fraud_fc_256()
    x = rng.normal(size=(16, 28))
    with Database() as reference_db:
        reference_db.register_model(fraud_fc_256(), name="fraud")
        expected = reference_db.predict("fraud", x).outputs
    with Database(
        telemetry_enabled=True,
        memory_threshold_bytes=mb(64),
        resilience_stage_timeout_ms=0.0001,
    ) as db:
        db.register_model(model, name="fraud")
        result = db.predict("fraud", x)
        np.testing.assert_allclose(result.outputs, expected, atol=1e-9)
        assert result.detail.get("stage0.recovery") == 1.0
        assert db.recovery_ledger.rescues() > 0


def test_stage_timeout_propagates_when_resilience_disabled(rng):
    with Database(
        memory_threshold_bytes=mb(64),
        resilience_stage_timeout_ms=0.0001,
        resilience_enabled=False,
    ) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        with pytest.raises(StageTimeoutError):
            db.predict("fraud", rng.normal(size=(8, 28)))
