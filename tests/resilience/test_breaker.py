"""Circuit breakers: the state machine, the board, and the serving
front-end acceptance flow (trip → fast-fail → probe → close), all
deterministic under a fixed seed."""

import numpy as np
import pytest

from repro import Database
from repro.errors import CircuitOpenError, InjectedFaultError
from repro.models import fraud_fc_256
from repro.resilience import BreakerBoard, CircuitBreaker
from repro.resilience.breaker import BREAKER_COLUMNS, CLOSED, HALF_OPEN, OPEN


def breaker(**overrides) -> CircuitBreaker:
    kwargs = dict(
        window=4, failure_threshold=0.5, min_samples=2, cooldown_requests=2
    )
    kwargs.update(overrides)
    return CircuitBreaker("test", **kwargs)


# -- the state machine ------------------------------------------------------


def test_parameter_validation():
    with pytest.raises(ValueError):
        CircuitBreaker("b", window=0)
    with pytest.raises(ValueError):
        CircuitBreaker("b", failure_threshold=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker("b", min_samples=9, window=8)
    with pytest.raises(ValueError):
        CircuitBreaker("b", cooldown_requests=0)
    with pytest.raises(ValueError):
        CircuitBreaker("b", probe_probability=1.5)


def test_closed_breaker_allows_everything():
    b = breaker()
    for __ in range(10):
        assert b.allow() == (True, CLOSED)
    assert b.state == CLOSED


def test_opens_at_failure_threshold_after_min_samples():
    b = breaker(min_samples=2)
    b.record_failure()
    assert b.state == CLOSED  # one sample is below min_samples
    b.record_failure()
    assert b.state == OPEN
    assert b.opened_total == 1


def test_successes_hold_the_rate_under_threshold():
    b = breaker(window=4, failure_threshold=0.5, min_samples=2)
    for __ in range(3):
        b.record_success()
    b.record_failure()  # 1 failure / 4 outcomes = 0.25 < 0.5
    assert b.state == CLOSED


def test_window_slides_old_outcomes_out():
    b = breaker(window=4, min_samples=4)
    b.record_failure()
    b.record_failure()
    for __ in range(4):  # pushes both failures out of the window
        b.record_success()
    assert b.failure_rate == 0.0
    assert b.state == CLOSED


def test_open_rejects_until_cooldown_then_probes():
    b = breaker(cooldown_requests=2)
    b.record_failure()
    b.record_failure()
    assert b.state == OPEN
    assert b.allow() == (False, OPEN)
    assert b.allow() == (False, OPEN)
    assert b.rejected_total == 2
    # The request past the cooldown becomes the half-open probe.
    assert b.allow() == (True, HALF_OPEN)
    # Only one probe in flight: the next arrival is rejected.
    assert b.allow() == (False, HALF_OPEN)


def test_probe_success_closes_and_clears_the_window():
    b = breaker(cooldown_requests=1)
    b.record_failure()
    b.record_failure()
    b.allow()
    assert b.allow() == (True, HALF_OPEN)
    b.record_success()
    assert b.state == CLOSED
    assert b.failure_rate == 0.0


def test_probe_failure_reopens():
    b = breaker(cooldown_requests=1)
    b.record_failure()
    b.record_failure()
    b.allow()
    assert b.allow() == (True, HALF_OPEN)
    b.record_failure()
    assert b.state == OPEN
    assert b.opened_total == 2


def test_abandon_probe_frees_the_slot():
    b = breaker(cooldown_requests=1)
    b.record_failure()
    b.record_failure()
    b.allow()
    assert b.allow() == (True, HALF_OPEN)
    assert b.allow() == (False, HALF_OPEN)
    b.abandon_probe()  # the granted probe was shed downstream
    assert b.allow() == (True, HALF_OPEN)


def test_seeded_probe_draws_replay():
    """Two breakers with the same name and seed make identical probe
    decisions, regardless of machine or process."""

    def decisions(seed):
        b = CircuitBreaker(
            "replay",
            min_samples=1,
            failure_threshold=1.0,
            cooldown_requests=1,
            probe_probability=0.5,
            seed=seed,
        )
        out = []
        for __ in range(30):
            b.record_failure()
            b.allow()  # cooldown rejection
            granted, state = b.allow()  # probe candidate
            assert state == HALF_OPEN
            out.append(granted)
            if not granted:
                b.abandon_probe()
                b.record_failure()  # re-open via a fresh failure
            else:
                b.record_failure()  # failed probe re-opens directly
        return out

    assert decisions(7) == decisions(7)
    assert True in decisions(7) and False in decisions(7)
    assert decisions(7) != decisions(8)


def test_as_row_matches_columns():
    b = breaker()
    b.record_failure()
    row = b.as_row()
    assert len(row) == len(BREAKER_COLUMNS)
    assert row[0] == "test"
    assert row[1] == CLOSED


# -- the board --------------------------------------------------------------


def test_board_creates_and_reuses_breakers():
    board = BreakerBoard()
    first = board.get("engine:udf-centric")
    assert board.get("engine:udf-centric") is first
    assert board.peek("missing") is None
    assert len(board) == 1


def test_board_iterates_sorted_and_reports_worst_state():
    board = BreakerBoard(min_samples=1, failure_threshold=1.0)
    board.get("b")
    board.get("a")
    assert [b.name for b in board] == ["a", "b"]
    assert board.worst_state() == CLOSED
    board.get("b").record_failure()
    assert board.worst_state() == OPEN
    assert [row[0] for row in board.rows()] == ["a", "b"]


def test_board_from_config_applies_knobs():
    from repro.config import SystemConfig

    config = SystemConfig(breaker_window=6, breaker_min_samples=3)
    board = BreakerBoard.from_config(config)
    b = board.get("x")
    assert b.window == 6
    assert b.min_samples == 3


# -- serving front-end acceptance -------------------------------------------


def run_breaker_scenario() -> tuple[list[str], dict]:
    """The ISSUE acceptance flow: an always-failing model trips the
    breaker, later requests fast-fail without touching a worker, and the
    half-open probe closes the breaker once the fault plan is exhausted.

    Returns the per-request outcome sequence and the final stats rows.
    """
    db = Database(
        telemetry_enabled=True,
        breaker_min_samples=2,
        breaker_window=4,
        breaker_cooldown_requests=2,
    )
    try:
        db.register_model(fraud_fc_256(), name="fraud")
        features = np.random.default_rng(7).normal(size=(4, 28))
        db.faults.arm(
            site="server.batch", transient=False, one_shot=False, max_fires=4
        )
        outcomes = []
        with db.serve(workers=1, max_queue_delay_ms=0.0) as server:
            for __ in range(12):
                try:
                    future = server.submit("fraud", features)
                except CircuitOpenError:
                    outcomes.append("fast-fail")
                    continue
                try:
                    future.result(timeout=30.0)
                    outcomes.append("ok")
                except InjectedFaultError:
                    outcomes.append("fault")
            stats = dict(server.stats_rows())
        return outcomes, stats
    finally:
        db.close()


def test_breaker_trips_fast_fails_and_recovers_via_probe():
    outcomes, stats = run_breaker_scenario()
    # Two failures fill min_samples and open the breaker; two rejections
    # ride out the request-count cooldown; each probe replays the fault
    # until the plan's four firings are spent, then the probe succeeds
    # and the closed breaker serves normally.
    assert outcomes == [
        "fault",
        "fault",
        "fast-fail",
        "fast-fail",
        "fault",  # half-open probe, fault still armed
        "fast-fail",
        "fast-fail",
        "fault",  # second probe, exhausts the fault plan
        "fast-fail",
        "fast-fail",
        "ok",  # third probe closes the breaker
        "ok",
    ]
    assert stats["server.requests.broken"] == 6
    assert stats["server.breaker.model:fraud.state"] == "closed"
    assert stats["server.breaker.model:fraud.opened_total"] >= 2


def test_breaker_scenario_is_deterministic():
    assert run_breaker_scenario()[0] == run_breaker_scenario()[0]


def test_fast_fail_skips_worker_execution():
    """While the breaker is open, rejected requests never reach a worker:
    the fault site records no extra hits."""
    db = Database(
        breaker_min_samples=2, breaker_window=4, breaker_cooldown_requests=2
    )
    try:
        db.register_model(fraud_fc_256(), name="fraud")
        features = np.zeros((2, 28))
        db.faults.arm(
            site="server.batch", transient=False, one_shot=False, max_fires=2
        )
        with db.serve(workers=1, max_queue_delay_ms=0.0) as server:
            for __ in range(2):
                with pytest.raises(InjectedFaultError):
                    server.submit("fraud", features).result(timeout=30.0)
            fires_when_opened = db.faults.injected_total
            for __ in range(2):
                with pytest.raises(CircuitOpenError):
                    server.submit("fraud", features)
            assert db.faults.injected_total == fires_when_opened
    finally:
        db.close()
