"""The health subsystem: collect(), SHOW HEALTH, and the health gauges."""

import numpy as np
import pytest

from repro import Database
from repro.config import mb
from repro.health import (
    DEGRADED,
    FAILING,
    HEALTH_COLUMNS,
    OK,
    ComponentHealth,
    HealthReport,
    _utilisation_health,
)
from repro.models import fraud_fc_256

TIGHT = dict(
    telemetry_enabled=True,
    memory_threshold_bytes=mb(64),
    dl_memory_limit_bytes=40 * 1024,
)


# -- report mechanics -------------------------------------------------------


def test_overall_status_is_the_worst_component():
    report = HealthReport(
        [
            ComponentHealth("a", OK, ""),
            ComponentHealth("b", DEGRADED, ""),
            ComponentHealth("c", OK, ""),
        ]
    )
    assert report.status == DEGRADED
    assert not report.ok
    assert HealthReport([]).status == OK
    assert report.component("b").status == DEGRADED
    assert report.component("missing") is None


def test_rows_end_with_the_overall_row():
    report = HealthReport([ComponentHealth("a", OK, "fine")])
    rows = report.rows()
    assert rows[0] == ("a", OK, "fine")
    assert rows[-1][0] == "overall"
    assert all(len(row) == len(HEALTH_COLUMNS) for row in rows)
    assert "overall: ok" in report.render()


def test_utilisation_thresholds():
    assert _utilisation_health("x", 10, 100).status == OK
    assert _utilisation_health("x", 85, 100).status == DEGRADED
    assert _utilisation_health("x", 99, 100).status == FAILING
    assert _utilisation_health("x", 10**9, None).status == OK  # unlimited
    assert _utilisation_health("x", 10**9, 1 << 60).status == OK  # sentinel


# -- collection from a live database ----------------------------------------


def test_fresh_database_is_healthy():
    with Database(telemetry_enabled=True) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        report = db.health()
        assert report.ok
        names = {c.component for c in report.components}
        assert {"budget:db", "budget:dl", "recovery"} <= names


def test_recovery_and_ledger_degrade_health(rng):
    with Database(**TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.predict("fraud", rng.normal(size=(16, 28)))  # rescued stage
        report = db.health()
        assert report.status == DEGRADED
        assert report.component("recovery").status == DEGRADED
        assert "rescued=1" in report.component("recovery").detail
        ledger = report.component("recovery.ledger")
        assert ledger is not None and ledger.status == DEGRADED


def test_gave_up_recovery_fails_health(rng):
    with Database(resilience_enabled=False, **TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        with pytest.raises(Exception):
            db.predict("fraud", rng.normal(size=(16, 28)))
        report = db.health()
        assert report.status == FAILING
        assert report.component("recovery").status == FAILING


def test_armed_faults_degrade_health():
    with Database(telemetry_enabled=True) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.faults.arm(site="engine.stage", nth=100)
        report = db.health()
        faults = report.component("faults")
        assert faults is not None and faults.status == DEGRADED


def test_server_queue_and_breakers_appear_when_serving():
    with Database(telemetry_enabled=True) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        with db.serve(workers=1) as server:
            server.predict("fraud", np.zeros((2, 28)))
            names = {c.component for c in db.health().components}
        assert "server.queue:fraud" in names
        assert "breaker:model:fraud" in names


def test_show_health_matches_the_report():
    with Database(telemetry_enabled=True) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        cur = db.execute("SHOW HEALTH")
        assert cur.columns == HEALTH_COLUMNS
        rows = cur.fetchall()
        assert rows[-1][0] == "overall"
        assert rows[-1][1] == OK
        assert {row[0] for row in rows} >= {"budget:db", "budget:dl", "recovery"}


def test_health_gauges_published_on_collection(rng):
    with Database(**TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.predict("fraud", rng.normal(size=(8, 28)))
        db.health()
        metrics = {row[0]: row[1] for row in db.execute("SHOW METRICS").rows}
        assert metrics["health_overall_status"] == 1.0  # degraded
        assert metrics["health_components"] >= 3
        assert metrics['health_component_status{component="recovery"}'] == 1.0


def test_show_health_parses_case_insensitively():
    with Database() as db:
        assert db.execute("show health").columns == HEALTH_COLUMNS
