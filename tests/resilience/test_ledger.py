"""RecoveryLedger: rescue counts, generations, and the lowering rule."""

import pytest

from repro.resilience import RecoveryLedger
from repro.resilience.recovery import LEDGER_COLUMNS


def test_threshold_validation():
    with pytest.raises(ValueError):
        RecoveryLedger(threshold=0)


def test_note_rescue_counts_per_model_and_node():
    ledger = RecoveryLedger()
    assert ledger.note_rescue("m", 0) == 1
    assert ledger.note_rescue("m", 0) == 2
    assert ledger.note_rescue("m", 3) == 1
    assert ledger.rescue_count("m", 0) == 2
    assert ledger.rescue_count("m", 3) == 1
    assert ledger.rescue_count("m", 7) == 0
    assert ledger.rescues() == 3
    assert ledger.rescues("m") == 3
    assert ledger.rescues("other") == 0
    assert len(ledger) == 2


def test_model_names_are_case_insensitive():
    ledger = RecoveryLedger()
    ledger.note_rescue("Fraud", 1)
    assert ledger.rescue_count("fraud", 1) == 1
    assert ledger.should_lower("FRAUD", 1)


def test_should_lower_honours_threshold():
    ledger = RecoveryLedger(threshold=2)
    ledger.note_rescue("m", 0)
    assert not ledger.should_lower("m", 0)
    ledger.note_rescue("m", 0)
    assert ledger.should_lower("m", 0)


def test_generation_advances_per_model():
    ledger = RecoveryLedger()
    assert ledger.generation("m") == 0
    ledger.note_rescue("m", 0)
    ledger.note_rescue("m", 1)
    assert ledger.generation("m") == 2
    assert ledger.generation("other") == 0


def test_clear_keeps_generations_monotone():
    """A stamped plan must recompile after clear(), so generations never
    rewind."""
    ledger = RecoveryLedger()
    ledger.note_rescue("m", 0)
    before = ledger.generation("m")
    ledger.clear()
    assert len(ledger) == 0
    assert ledger.rescue_count("m", 0) == 0
    assert ledger.generation("m") > before


def test_rows_shape_and_lowered_flag():
    ledger = RecoveryLedger(threshold=2)
    ledger.note_rescue("m", 1, op="matmul")
    ledger.note_rescue("m", 1, op="matmul")
    ledger.note_rescue("m", 0, op="relu")
    rows = ledger.rows()
    assert [len(row) for row in rows] == [len(LEDGER_COLUMNS)] * 2
    assert rows[0] == ("m", 0, "relu", 1, False)
    assert rows[1] == ("m", 1, "matmul", 2, True)
