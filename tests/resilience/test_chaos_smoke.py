"""Chaos smoke: the serving front-end under a seeded fault plan plus a
tight memory budget.  Every client request must succeed (transient faults
are retried, OOMs are re-lowered) and at least one recovery must be
recorded — the CI job runs exactly this module."""

import numpy as np

from repro import Database
from repro.config import mb
from repro.models import fraud_fc_256

TIGHT = dict(
    telemetry_enabled=True,
    memory_threshold_bytes=mb(64),
    dl_memory_limit_bytes=40 * 1024,
    faults_seed=1234,
)


def test_served_load_survives_seeded_faults_without_client_errors():
    rng = np.random.default_rng(7)
    features = rng.normal(size=(64, 28))
    with Database(**TIGHT) as db:
        model = fraud_fc_256()
        db.register_model(model, name="fraud")
        expected = np.argmax(model.forward(features), axis=-1)
        # Transient batch failures (retried by the server) on top of the
        # OOM-driven re-lowering the tight budget forces on every batch.
        db.faults.arm(
            site="server.batch",
            probability=0.25,
            one_shot=False,
            max_fires=6,
            transient=True,
        )
        with db.serve(workers=2, max_queue_delay_ms=0.5) as server:
            futures = [
                server.submit("fraud", features[i : i + 8])
                for i in range(0, 64, 8)
            ]
            for i, future in enumerate(futures):
                got = future.result(timeout=60.0)
                np.testing.assert_array_equal(got, expected[i * 8 : i * 8 + 8])
            stats = dict(server.stats_rows())
        # Zero client-visible errors...
        assert stats["server.requests.completed"] == 8
        assert stats["server.requests.failed"] == 0
        # ...and the resilience layer actually worked for it.
        metrics = {row[0]: row[1] for row in db.execute("SHOW METRICS").rows}
        engine_rescues = sum(
            value
            for name, value in metrics.items()
            if name.startswith("engine_recoveries_total")
            and 'outcome="gave-up"' not in name
        )
        server_recoveries = db.faults.recovery_total
        assert engine_rescues + server_recoveries >= 1
        assert metrics.get('engine_recoveries_total{outcome="gave-up"}', 0) == 0
        report = db.health()
        assert report.status in ("ok", "degraded")  # degraded, never failing
        assert report.component("recovery").status != "failing"


def test_chaos_run_is_deterministic():
    """The same seed produces the same fault firings and the same
    recovery counts, run to run."""

    def run():
        with Database(**TIGHT) as db:
            db.register_model(fraud_fc_256(), name="fraud")
            db.faults.arm(
                site="engine.stage",
                probability=0.5,
                one_shot=False,
                max_fires=10,
                transient=True,
            )
            rng = np.random.default_rng(3)
            outcomes = []
            for __ in range(12):
                try:
                    db.predict("fraud", rng.normal(size=(8, 28)))
                    outcomes.append("ok")
                except Exception as exc:
                    outcomes.append(type(exc).__name__)
            return outcomes, db.faults.injected_total

    first = run()
    assert first == run()
    assert "InjectedFaultError" in first[0] and "ok" in first[0]
