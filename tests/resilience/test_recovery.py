"""The ISSUE acceptance flow: OOM under a tight budget completes via
re-lowering with identical results, the rescue is visible in per-query
stats, and the ledger makes the next plan relation-centric up-front."""

import numpy as np
import pytest

from repro import Database, Representation
from repro.config import SystemConfig, mb
from repro.core import RuleBasedOptimizer
from repro.data import fraud_transactions
from repro.engines import HybridExecutor
from repro.errors import OutOfMemoryError
from repro.models import deepbench_conv1, fraud_fc_256
from repro.storage import BufferPool, Catalog, InMemoryDiskManager

#: Fraud-FC-256's weights are 63,504 bytes: a 40 KiB whole-tensor budget
#: OOMs on the very first charge, while the 64 MiB threshold keeps the
#: optimizer's estimate comfortably under — the estimate-was-wrong case
#: runtime recovery exists for.
TIGHT = dict(
    telemetry_enabled=True,
    memory_threshold_bytes=mb(64),
    dl_memory_limit_bytes=40 * 1024,
)

FEATURES = ", ".join(f"f{i}" for i in range(28))
PREDICT_SQL = f"SELECT PREDICT(fraud, {FEATURES}) FROM tx"


@pytest.fixture
def expected(rng):
    model = fraud_fc_256()
    return model, rng.normal(size=(64, 28))


def test_oom_recovers_relowered_with_identical_results(expected):
    model, x = expected
    with Database(**TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        plan = db.inference_plan("fraud", batch_size=64)
        assert plan.is_single_udf  # the estimate said it fits
        result = db.predict("fraud", x)
        np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-9)
        assert result.detail.get("stage0.recovery") == 1.0
        metrics = {row[0]: row[1] for row in db.execute("SHOW METRICS").rows}
        assert metrics['engine_recoveries_total{outcome="relowered"}'] == 1


def test_ledger_lowers_the_rescued_stage_up_front(expected):
    model, x = expected
    with Database(**TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.predict("fraud", x)  # first run pays the rescue
        # The ledger keys on the model's own name (the unit plans and
        # compiled entries are stamped with), not the catalog alias.
        assert db.recovery_ledger.rescues("fraud-fc-256") == 4  # all fused nodes
        replanned = db.inference_plan("fraud", batch_size=64)
        assert replanned.representations == [Representation.RELATION_CENTRIC]
        assert any("recovery ledger" in note for note in replanned.notes)
        # The repeated query takes the bounded path directly: same
        # answer, no second rescue.
        result = db.predict("fraud", x)
        np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-9)
        assert "stage0.recovery" not in result.detail
        assert db.recovery_ledger.rescues("fraud-fc-256") == 4


def test_sql_predict_reports_recovered_stage_in_cursor_stats():
    with Database(**TIGHT) as db:
        __, __, rows = fraud_transactions(48, seed=7)
        columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
        db.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
        db.load_rows("tx", rows)
        db.register_model(fraud_fc_256(), name="fraud")
        cur = db.execute(PREDICT_SQL)
        assert len(cur) == 48
        assert cur.stats.recovered_stages >= 1
        assert ("recovered_stages", cur.stats.recovered_stages) in cur.stats.as_rows()
        assert "recovery: relowered" in cur.stats.render()
        audits = [a for a in cur.stats.stage_audits if a.recovered]
        assert audits and audits[0].recovery == "relowered"


def test_gave_up_when_recovery_disabled(expected):
    __, x = expected
    with Database(resilience_enabled=False, **TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        with pytest.raises(OutOfMemoryError):
            db.predict("fraud", x)
        metrics = {row[0]: row[1] for row in db.execute("SHOW METRICS").rows}
        assert metrics['engine_recoveries_total{outcome="gave-up"}'] == 1
        audit = db.execute("SHOW AUDIT")
        recovery = dict(zip(audit.column("model"), audit.column("recovery")))
        assert recovery["fraud-fc-256"] == "gave-up"


def test_gave_up_when_budget_exhausted(expected):
    __, x = expected
    with Database(resilience_max_recoveries_per_query=0, **TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        with pytest.raises(OutOfMemoryError):
            db.predict("fraud", x)


def test_forced_plans_are_never_rescued(expected):
    """Forced plans reproduce the paper's fixed-architecture baselines:
    a forced whole-tensor plan that OOMs *is* the Table 3 measurement,
    so the executor must let it fail."""
    __, x = expected
    with Database(**TIGHT) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        with pytest.raises(OutOfMemoryError):
            db.predict("fraud", x, force="udf-centric")
        assert db.recovery_ledger.rescues() == 0


# -- the batch-split path ---------------------------------------------------


def make_catalog(capacity=512):
    return Catalog(
        BufferPool(InMemoryDiskManager(16 * 1024), capacity_pages=capacity)
    )


def test_non_relowerable_oom_splits_the_batch(rng):
    """A conv stage (4-D activations, not expressible as a relational
    vector pipeline) that OOMs is retried on recursively halved batches:
    weights + 8 images blow a 500 KB budget, but two half-batches of 4
    fit, and the merged result matches the unconstrained forward pass."""
    config = SystemConfig(
        memory_threshold_bytes=mb(256),
        dl_memory_limit_bytes=500_000,
        resilience_split_floor_rows=2,
    )
    model = deepbench_conv1(scale=0.2)  # 22×22×13 input, 1×1 conv
    catalog = make_catalog()
    info = catalog.register_model("conv", model)
    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=8)
    assert plan.representations == [Representation.UDF_CENTRIC]
    x = rng.normal(size=(8,) + model.input_shape)
    executor = HybridExecutor(catalog, config)
    result = executor.execute(plan, x, info)
    np.testing.assert_allclose(result.outputs, model.forward(x), atol=1e-12)
    assert result.detail.get("stage0.recovery") == 1.0
    # One recovery, two pieces: neither half needed a further split.
    with pytest.raises(OutOfMemoryError):
        executor.udf_engine.run_layers(model.layers, x)


def test_split_gives_up_below_the_floor(rng):
    """When even floor-sized chunks do not fit (the operator itself is
    what does not fit, not the batch), the original error propagates."""
    config = SystemConfig(
        memory_threshold_bytes=mb(256),
        dl_memory_limit_bytes=60_000,  # under weights + one sample
        resilience_split_floor_rows=2,
    )
    model = deepbench_conv1(scale=0.2)
    catalog = make_catalog()
    info = catalog.register_model("conv", model)
    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=8)
    x = rng.normal(size=(8,) + model.input_shape)
    with pytest.raises(OutOfMemoryError):
        HybridExecutor(catalog, config).execute(plan, x, info)
