"""Rolling restarts of the process-parallel tier: drain, stop, respawn.

Each worker is drained and restarted one at a time while the others keep
serving — the cluster-side half of the graceful-drain story.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.cluster import ClusterPool
from repro.config import SystemConfig
from repro.models import fraud_fc_256


@pytest.fixture
def cluster_db() -> Database:
    config = SystemConfig(
        telemetry_enabled=True,
        cluster_workers=2,
        cluster_heartbeat_interval_ms=20.0,
        cluster_heartbeat_timeout_ms=600.0,
        cluster_request_timeout_ms=20000.0,
    )
    database = Database(config=config)
    database.register_model(fraud_fc_256(), name="fraud")
    yield database
    database.close()


def test_rolling_restart_replaces_every_worker(cluster_db):
    feats = np.random.default_rng(21).normal(size=(16, 28))
    expected = cluster_db.predict_labels("fraud", feats)
    with ClusterPool(cluster_db) as pool:
        np.testing.assert_array_equal(pool.predict("fraud", feats), expected)
        before = {wid: h.generation for wid, h in pool._handles.items()}

        assert pool.rolling_restart(drain_timeout_s=5.0) == len(before)

        # Every slot came back as a fresh process generation...
        for wid, handle in pool._handles.items():
            assert handle.generation > before[wid]
            assert not handle.draining
        # ...with its model placement restored and answers unchanged.
        np.testing.assert_array_equal(pool.predict("fraud", feats), expected)
