"""Unit coverage for the copy-on-write lifecycle catalog and the
deployment state machine: snapshot pinning, generation stamping, SQL
surface, version states, and typed failure modes."""

import numpy as np
import pytest

from repro import Database
from repro.errors import (
    DeploymentError,
    NoServableVersionError,
    SlaViolationError,
    SqlParseError,
)
from repro.lifecycle import ModelCatalog
from repro.lifecycle.routing import canary_mask, routing_hashes
from repro.models import fraud_fc_256
from repro.sql.parser import parse
from repro.sql.unparse import unparse


# -- the COW catalog -----------------------------------------------------


def test_snapshots_are_immutable_and_generation_stamped():
    catalog = ModelCatalog()
    assert catalog.generation == 0
    catalog.register_base("m")
    pinned = catalog.snapshot()
    gen_at_pin = pinned.generation
    catalog.add_version("m", "v2", "m@v2")
    catalog.route_canary("m", "v2", 25.0)
    # The pinned snapshot never changed: readers keep the view they took.
    assert pinned.generation == gen_at_pin
    assert pinned.entry("m").canary is None
    assert catalog.snapshot().entry("m").canary == "v2"
    assert catalog.generation > gen_at_pin


def test_publication_history_is_monotonic_and_complete():
    catalog = ModelCatalog()
    catalog.register_base("m")
    catalog.add_version("m", "v2", "m@v2")
    catalog.route_canary("m", "v2", 10.0)
    catalog.promote("m", "v2")
    catalog.rollback("m", serving="v1")
    generations = [gen for gen, _ in catalog.history()]
    assert generations == sorted(generations)
    assert generations[-1] == catalog.generation
    assert catalog.generations() == set(generations)


def test_promote_and_rollback_restate_version_records():
    catalog = ModelCatalog()
    catalog.register_base("m")
    catalog.add_version("m", "v2", "m@v2")
    catalog.promote("m", "v2")
    entry = catalog.snapshot().entry("m")
    assert entry.serving == "v2"
    assert entry.record("v1").state == "retired"
    assert entry.record("v2").state == "serving"
    catalog.rollback("m", serving="v1")
    entry = catalog.snapshot().entry("m")
    assert entry.serving == "v1"
    assert entry.record("v1").state == "serving"
    assert entry.record("v2").state == "retired"


def test_duplicate_version_rejected():
    catalog = ModelCatalog()
    catalog.register_base("m")
    catalog.add_version("m", "v2", "m@v2")
    with pytest.raises(DeploymentError):
        catalog.add_version("m", "v2", "m@v2")


# -- deterministic canary hashing ---------------------------------------


def test_canary_mask_is_deterministic_and_row_stable():
    rng = np.random.default_rng(7)
    feats = rng.normal(size=(512, 28))
    first = canary_mask(routing_hashes(feats), 25.0)
    second = canary_mask(routing_hashes(feats), 25.0)
    np.testing.assert_array_equal(first, second)
    # Row-stable: the same row hashes the same inside any batch.
    solo = canary_mask(routing_hashes(feats[3:4]), 25.0)
    assert solo[0] == first[3]


def test_canary_fraction_tracks_percent():
    rng = np.random.default_rng(8)
    feats = rng.normal(size=(4000, 28))
    frac = canary_mask(routing_hashes(feats), 25.0).mean()
    assert 0.20 <= frac <= 0.30


# -- SQL surface ---------------------------------------------------------


@pytest.mark.parametrize(
    "sql",
    [
        "DEPLOY MODEL fraud VERSION v2",
        "DEPLOY MODEL fraud VERSION v2 CANARY 25%",
        "DEPLOY MODEL fraud VERSION v2 CANARY 12.5%",
        "DEPLOY MODEL fraud VERSION v2 SHADOW",
        "DEPLOY MODEL fraud VERSION v2 CANARY 25% SHADOW",
        "ROLLBACK MODEL fraud",
        "SHOW deployments",
    ],
)
def test_deploy_statements_round_trip(sql):
    stmt = parse(sql)
    assert parse(unparse(stmt)) == stmt


def test_deploy_grammar_rejects_bad_percent():
    with pytest.raises(SqlParseError):
        parse("DEPLOY MODEL m VERSION v2 CANARY 0%")
    with pytest.raises(SqlParseError):
        parse("DEPLOY MODEL m VERSION v2 CANARY 250%")
    with pytest.raises(SqlParseError):
        parse("DEPLOY MODEL m VERSION v2 CANARY oops")


def test_deploy_of_unknown_version_names_candidates():
    with Database() as db:
        db.register_model(fraud_fc_256(), name="fraud")
        with pytest.raises(NoServableVersionError) as excinfo:
            db.execute("DEPLOY MODEL fraud VERSION v9")
        assert "v1" in str(excinfo.value)
        assert excinfo.value.candidates == [("v1", "serving")]


def test_double_deploy_rejected_and_rollback_without_deploy():
    with Database() as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.register_model_version("fraud", "v2", model=fraud_fc_256())
        db.execute("DEPLOY MODEL fraud VERSION v2 CANARY 10%")
        with pytest.raises(DeploymentError):
            db.execute("DEPLOY MODEL fraud VERSION v2 CANARY 10%")
        db.execute("ROLLBACK MODEL fraud")
        with pytest.raises(DeploymentError):
            db.execute("ROLLBACK MODEL fraud")


def test_show_deployments_reports_full_state_history():
    with Database(deploy_canary_min_requests=4) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.register_model_version("fraud", "v2", model=fraud_fc_256())
        db.execute("DEPLOY MODEL fraud VERSION v2 CANARY 50%")
        feats = np.random.default_rng(1).normal(size=(64, 28))
        for _ in range(4):
            db.predict_labels("fraud", feats)
        rows = db.execute("SHOW DEPLOYMENTS").fetchall()
        assert len(rows) == 1
        history = rows[0][-1]
        assert history == "preparing>canary>promoted"
        assert db.lifecycle.snapshot().entry("fraud").serving == "v2"


def test_promoted_deployment_rolls_back_to_previous():
    with Database() as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.register_model_version("fraud", "v2", model=fraud_fc_256())
        db.execute("DEPLOY MODEL fraud VERSION v2")
        assert db.lifecycle.snapshot().entry("fraud").serving == "v2"
        dep = db.rollback_model("fraud")
        assert dep.history_str() == "preparing>promoted>rolled_back"
        assert db.lifecycle.snapshot().entry("fraud").serving == "v1"


# -- the version manager satellite --------------------------------------


def test_version_manager_select_requires_servable():
    from repro.dedup.versions import SlaVersionManager

    manager = SlaVersionManager(fraud_fc_256(), accuracy_fn=lambda m: 0.9)
    manager.add_quantized(8)
    # Default behaviour unchanged: accuracy-only selection still works.
    assert manager.select(0.5) is not None
    with pytest.raises(SlaViolationError):
        manager.select(0.99)
    # Versions exist but none is loaded/promoted: typed, named failure.
    with pytest.raises(NoServableVersionError) as excinfo:
        manager.select(0.5, require_servable=True)
    assert ("full", "created") in excinfo.value.candidates
    assert ("int8", "created") in excinfo.value.candidates
    manager.mark_loaded("int8")
    assert manager.select(0.5, require_servable=True).name == "int8"
    manager.mark_promoted("full")
    assert manager.get("full").state == "promoted"


def test_derive_version_demands_one_transform():
    from repro.dedup.versions import derive_version
    from repro.errors import ModelError

    base = fraud_fc_256()
    assert derive_version(base, quantize_bits=8).name.endswith("int8")
    assert derive_version(base, prune_sparsity=0.5).name.endswith("p50")
    with pytest.raises(ModelError):
        derive_version(base)
    with pytest.raises(ModelError):
        derive_version(base, quantize_bits=8, prune_sparsity=0.5)
