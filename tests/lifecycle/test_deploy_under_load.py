"""Deploy-under-load acceptance: version swaps while 8 clients predict.

Two scenarios, both with concurrent client traffic and zero
client-visible errors:

- a good version promoted through a 25% canary (and the canary really
  routes 25% +/- 5 points of the rows);
- a broken version (wrong input width: it compiles but every execution
  raises) that auto-rolls back while the stable version keeps answering
  the whole batch.
"""

import threading
import time

import numpy as np
import pytest

from repro import Database
from repro.models import fraud_fc_256
from repro.models.definitions import one_hidden_fc

CLIENTS = 8
ROWS = 64


class _Clients:
    """Eight threads hammering predict_labels until told to stop."""

    def __init__(self, db: Database, max_calls: int = 400):
        self._db = db
        self._stop = threading.Event()
        self._max_calls = max_calls
        self.errors: list[BaseException] = []
        self.calls = 0
        self._calls_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._run, args=(seed,), daemon=True)
            for seed in range(CLIENTS)
        ]

    def _run(self, seed: int) -> None:
        rng = np.random.default_rng(100 + seed)
        for _ in range(self._max_calls):
            if self._stop.is_set():
                return
            feats = rng.normal(size=(ROWS, 28))
            try:
                labels = self._db.predict_labels("fraud", feats)
                assert labels.shape == (ROWS,)
            except BaseException as exc:  # noqa: BLE001 - the assertion target
                self.errors.append(exc)
                return
            with self._calls_lock:
                self.calls += 1

    def __enter__(self):
        for t in self._threads:
            t.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        for t in self._threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in self._threads)


def _wait_for_state(db: Database, deploy_id: int, states, timeout=30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for dep in db.deployments._deployments:
            if dep.deploy_id == deploy_id and dep.state in states:
                return dep.state
        time.sleep(0.02)
    raise AssertionError(
        f"deployment #{deploy_id} never reached {states}; "
        f"rows={db.execute('SHOW DEPLOYMENTS').fetchall()}"
    )


def test_canary_promotes_under_load_with_zero_client_errors():
    with Database(deploy_canary_min_requests=256) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        # Same seeded init: v2 answers identically, so promotion is safe
        # and any client-visible wobble would be a routing bug.
        db.register_model_version("fraud", "v2", model=fraud_fc_256())
        with _Clients(db) as clients:
            dep = db.deploy_model("fraud", "v2", canary_percent=25.0)
            state = _wait_for_state(db, dep.deploy_id, {"promoted"})
        assert state == "promoted"
        assert clients.errors == []
        assert clients.calls > 0

        # The acceptance bar: a 25% canary routes 25% +/- 5 points.
        assert dep.total_rows >= 1000
        fraction = dep.requests / dep.total_rows
        assert 0.20 <= fraction <= 0.30
        assert dep.failures == 0

        rows = db.execute("SHOW DEPLOYMENTS").fetchall()
        assert [r[-1] for r in rows] == ["preparing>canary>promoted"]
        assert db.lifecycle.snapshot().entry("fraud").serving == "v2"


def test_broken_version_auto_rolls_back_under_load():
    with Database() as db:
        db.register_model(fraud_fc_256(), name="fraud")
        # 27 inputs against 28-wide batches: compiles fine, every
        # execution raises — the canary slice fails, clients never see it.
        db.register_model_version(
            "fraud", "v2", model=one_hidden_fc("fraud-broken", 27, 8, 2)
        )
        with _Clients(db) as clients:
            dep = db.deploy_model("fraud", "v2", canary_percent=25.0)
            state = _wait_for_state(db, dep.deploy_id, {"rolled_back"})
        assert state == "rolled_back"
        assert clients.errors == []
        assert clients.calls > 0
        assert dep.reason in {"breaker-open", "canary-failure"}
        assert dep.failures > 0

        rows = db.execute("SHOW DEPLOYMENTS").fetchall()
        assert [r[-1] for r in rows] == ["preparing>canary>rolled_back"]
        # The old version never stopped serving.
        entry = db.lifecycle.snapshot().entry("fraud")
        assert entry.serving == "v1"
        assert entry.canary is None

        # And the same batch still answers correctly after the rollback.
        feats = np.random.default_rng(0).normal(size=(ROWS, 28))
        labels, gen = db.predict_labels_v("fraud", feats)
        assert labels.shape == (ROWS,)
        assert gen in db.lifecycle.generations()


def test_shadow_divergence_rolls_back():
    with Database(deploy_shadow_min_requests=32) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        # Different seeded init: labels disagree on a healthy fraction of
        # random rows, far above the 2% divergence budget.
        db.register_model_version("fraud", "v2", model=fraud_fc_256(seed=3))
        dep = db.deploy_model("fraud", "v2", shadow=True)
        rng = np.random.default_rng(9)
        for _ in range(4):
            db.predict_labels("fraud", rng.normal(size=(ROWS, 28)))
            if dep.state == "rolled_back":
                break
        assert dep.state == "rolled_back"
        assert dep.reason == "shadow-divergence"
        assert dep.shadow_compared >= 32
        assert dep.shadow_diverged > 0
        assert db.lifecycle.snapshot().entry("fraud").serving == "v1"


def test_shadow_agreement_promotes():
    with Database(deploy_shadow_min_requests=32) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.register_model_version("fraud", "v2", model=fraud_fc_256())
        dep = db.deploy_model("fraud", "v2", shadow=True)
        rng = np.random.default_rng(10)
        for _ in range(4):
            db.predict_labels("fraud", rng.normal(size=(ROWS, 28)))
            if dep.state == "promoted":
                break
        assert dep.state == "promoted"
        assert dep.shadow_diverged == 0
        assert db.lifecycle.snapshot().entry("fraud").serving == "v2"


def test_close_drains_serving_tier_and_reports_abandoned():
    db = Database()
    db.register_model(fraud_fc_256(), name="fraud")
    feats = np.random.default_rng(11).normal(size=(8, 28))
    server = db.serve(workers=2)
    got = server.submit("fraud", feats).result(timeout=30.0)
    assert got.shape == (8,)
    # A quiet server drains clean: nothing abandoned, and the count is
    # surfaced all the way out of Database.close().
    abandoned = db.close()
    assert abandoned == 0
    assert server.abandoned_total == 0


def test_server_close_honours_drain_timeout_config():
    with Database(lifecycle_drain_timeout_s=0.5) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        server = db.serve(workers=1)
        feats = np.random.default_rng(12).normal(size=(4, 28))
        server.submit("fraud", feats).result(timeout=30.0)
        assert server.close(drain=True) == 0
