"""Concurrent DDL during serving: deploys/rollbacks race live readers.

Eight threads run PREDICT in a tight loop while the main thread flips
the model between two versions with DEPLOY / ROLLBACK.  The contract
under test is the copy-on-write catalog's snapshot isolation:

- zero client-visible errors, ever;
- every response is attributable to exactly one published generation;
- every batch is answered *entirely* by one version — readers pin one
  snapshot per call, so a swap mid-call can never mix versions inside a
  response.
"""

import threading

import numpy as np

from repro import Database
from repro.models import fraud_fc_256

CLIENTS = 8
ROWS = 32
DDL_FLIPS = 15


def test_ddl_storm_never_disturbs_readers():
    with Database() as db:
        db.register_model(fraud_fc_256(), name="fraud")
        # v2 has different weights, so the two versions are tellable
        # apart by their labels on a fixed batch.
        db.register_model_version("fraud", "v2", model=fraud_fc_256(seed=5))
        feats = np.random.default_rng(42).normal(size=(ROWS, 28))

        expected_v1 = db.predict_labels("fraud", feats)
        db.execute("DEPLOY MODEL fraud VERSION v2")
        expected_v2 = db.predict_labels("fraud", feats)
        db.execute("ROLLBACK MODEL fraud")
        assert not np.array_equal(expected_v1, expected_v2)

        stop = threading.Event()
        errors: list[BaseException] = []
        results: list[tuple[np.ndarray, int]] = []
        results_lock = threading.Lock()

        def client() -> None:
            while not stop.is_set():
                try:
                    labels, gen = db.predict_labels_v("fraud", feats)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                with results_lock:
                    results.append((labels, gen))

        threads = [
            threading.Thread(target=client, daemon=True)
            for _ in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(DDL_FLIPS):
                db.execute("DEPLOY MODEL fraud VERSION v2")
                db.execute("ROLLBACK MODEL fraud")
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)

        assert errors == []
        assert len(results) > 0

        published = db.lifecycle.generations()
        mixed = 0
        for labels, gen in results:
            # Attributable: the generation the response was served from
            # is one the catalog actually published.
            assert gen in published
            # Unmixed: the whole batch came from one version.
            if np.array_equal(labels, expected_v1):
                continue
            if np.array_equal(labels, expected_v2):
                continue
            mixed += 1
        assert mixed == 0

        # The storm settled where it started: v1 serving, v2 retired.
        entry = db.lifecycle.snapshot().entry("fraud")
        assert entry.serving == "v1"
        assert entry.record("v2").state == "retired"
        history = [r[-1] for r in db.execute("SHOW DEPLOYMENTS").fetchall()]
        assert history.count("preparing>promoted>rolled_back") == DDL_FLIPS + 1
