import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnnIndexError
from repro.indexes import (
    FlatIndex,
    HnswIndex,
    IvfIndex,
    LshIndex,
    PqIndex,
    kmeans,
)


def clustered_data(rng, n=400, dim=16, clusters=8, spread=0.15):
    centers = rng.normal(scale=3.0, size=(clusters, dim))
    labels = rng.integers(0, clusters, size=n)
    return centers[labels] + rng.normal(scale=spread, size=(n, dim))


def recall_at_1(index, exact, queries):
    hits = 0
    for q in queries:
        truth = exact.search(q, k=1).nearest_id
        got = index.search(q, k=1).nearest_id
        hits += truth == got
    return hits / len(queries)


# -- flat (exact baseline) -------------------------------------------------


def test_flat_exact_search(rng):
    data = rng.normal(size=(50, 8))
    index = FlatIndex(8)
    index.add(data)
    q = data[17] + 1e-9
    result = index.search(q, k=3)
    assert result.nearest_id == 17
    assert result.distances[0] < result.distances[1] <= result.distances[2]


def test_flat_custom_ids(rng):
    index = FlatIndex(4)
    index.add(rng.normal(size=(3, 4)), ids=np.array([100, 200, 300]))
    assert index.search(np.zeros(4), k=5).ids[3] == -1
    assert set(index.search(np.zeros(4), k=3).ids) == {100, 200, 300}


def test_flat_empty_and_dim_checks():
    index = FlatIndex(4)
    result = index.search(np.zeros(4), k=2)
    assert list(result.ids) == [-1, -1]
    with pytest.raises(AnnIndexError):
        index.add(np.zeros((2, 5)))
    with pytest.raises(AnnIndexError):
        index.search(np.zeros(3))


# -- kmeans ---------------------------------------------------------------


def test_kmeans_recovers_separated_clusters(rng):
    centers_true = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    data = np.vstack(
        [c + rng.normal(scale=0.2, size=(50, 2)) for c in centers_true]
    )
    centers, assignments = kmeans(data, 3, seed=1)
    assert len(np.unique(assignments)) == 3
    # Each true center has a learned centroid within 0.5.
    for c in centers_true:
        assert np.min(np.linalg.norm(centers - c, axis=1)) < 0.5


def test_kmeans_rejects_too_few_points(rng):
    with pytest.raises(AnnIndexError):
        kmeans(rng.normal(size=(3, 2)), 5)


# -- HNSW ------------------------------------------------------------------


def test_hnsw_high_recall_on_clustered_data(rng):
    data = clustered_data(rng)
    flat = FlatIndex(16)
    flat.add(data)
    hnsw = HnswIndex(16, m=12, ef_construction=80, ef_search=60, seed=1)
    hnsw.add(data)
    queries = clustered_data(rng, n=50)
    assert recall_at_1(hnsw, flat, queries) >= 0.9


def test_hnsw_exact_match_distance_zero(rng):
    data = rng.normal(size=(100, 8))
    index = HnswIndex(8, seed=2)
    index.add(data)
    result = index.search(data[42], k=1)
    assert result.nearest_id == 42
    assert result.nearest_distance == pytest.approx(0.0, abs=1e-9)


def test_hnsw_incremental_adds(rng):
    index = HnswIndex(8, seed=3)
    chunks = [rng.normal(size=(30, 8)) for __ in range(4)]
    for chunk in chunks:
        index.add(chunk)
    assert len(index) == 120
    all_data = np.vstack(chunks)
    flat = FlatIndex(8)
    flat.add(all_data)
    assert recall_at_1(index, flat, all_data[::10]) >= 0.9


def test_hnsw_k_larger_than_size(rng):
    index = HnswIndex(4, seed=0)
    index.add(rng.normal(size=(3, 4)))
    result = index.search(np.zeros(4), k=10)
    assert (result.ids >= 0).sum() == 3


# -- LSH ---------------------------------------------------------------------


def test_lsh_finds_near_duplicates(rng):
    data = clustered_data(rng, n=300)
    index = LshIndex(16, num_tables=10, num_bits=10, seed=4)
    index.add(data)
    for i in (5, 50, 150):
        q = data[i] + rng.normal(scale=1e-4, size=16)
        assert index.search(q, k=1).nearest_id == i


def test_lsh_empty_bucket_returns_padding(rng):
    index = LshIndex(8, num_tables=1, num_bits=16, seed=0)
    index.add(np.ones((1, 8)))
    result = index.search(-np.ones(8) * 100, k=1)
    # Either found the single vector or landed in an empty bucket.
    assert result.ids[0] in (-1, 0)


# -- IVF -------------------------------------------------------------------


def test_ivf_trains_lazily_and_searches(rng):
    data = clustered_data(rng, n=300)
    index = IvfIndex(16, num_lists=8, nprobe=3, seed=5)
    index.add(data)
    assert index.is_trained
    flat = FlatIndex(16)
    flat.add(data)
    assert recall_at_1(index, flat, data[::10]) >= 0.85


def test_ivf_exact_before_training(rng):
    index = IvfIndex(8, num_lists=16, nprobe=4)
    data = rng.normal(size=(5, 8))
    index.add(data)
    assert not index.is_trained
    assert index.search(data[2], k=1).nearest_id == 2


def test_ivf_nprobe_validation():
    with pytest.raises(AnnIndexError):
        IvfIndex(8, num_lists=4, nprobe=5)


# -- PQ --------------------------------------------------------------------


def test_pq_compresses_and_recalls_clusters(rng):
    data = clustered_data(rng, n=400, dim=16)
    index = PqIndex(16, num_subspaces=4, bits=6, seed=6)
    index.add(data)
    assert index.is_trained
    flat = FlatIndex(16)
    flat.add(data)
    # PQ is lossy; cluster-level recall should still be decent.
    assert recall_at_1(index, flat, data[::20]) >= 0.5


def test_pq_rerank_improves_recall(rng):
    data = clustered_data(rng, n=400, dim=16, spread=0.4)
    flat = FlatIndex(16)
    flat.add(data)
    plain = PqIndex(16, num_subspaces=4, bits=5, seed=7)
    plain.add(data)
    reranked = PqIndex(16, num_subspaces=4, bits=5, rerank=32, seed=7)
    reranked.add(data)
    queries = data[::15]
    assert recall_at_1(reranked, flat, queries) >= recall_at_1(plain, flat, queries)


def test_pq_dimension_divisibility():
    with pytest.raises(AnnIndexError):
        PqIndex(10, num_subspaces=4)


# -- cross-index property ---------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100), n=st.integers(20, 80))
def test_property_exact_duplicate_is_always_top1_for_hnsw(seed, n):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, 8))
    index = HnswIndex(8, seed=seed)
    index.add(data)
    probe = rng.integers(0, n)
    assert index.search(data[probe], k=1).nearest_distance == pytest.approx(
        0.0, abs=1e-9
    )
