"""External merge sort: spilling runs must produce identical output."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import ColumnRef, ColumnType, Schema
from repro.relational.operators import Sort, SortKey, ValuesScan, collect

SCHEMA = Schema.of(("k", ColumnType.INT), ("v", ColumnType.TEXT))


def make_rows(rng, n):
    return [(int(rng.integers(0, 50)), f"row-{i}") for i in range(n)]


def test_external_sort_matches_in_memory(rng):
    rows = make_rows(rng, 5_000)
    keys = [SortKey(ColumnRef("k"))]
    in_memory = collect(Sort(ValuesScan(SCHEMA, rows), keys)).rows
    external = collect(
        Sort(ValuesScan(SCHEMA, rows), keys, max_rows_in_memory=256)
    ).rows
    assert external == in_memory
    assert [r[0] for r in external] == sorted(r[0] for r in rows)


def test_external_sort_descending_with_nulls(rng):
    rows = make_rows(rng, 1_000)
    rows += [(None, f"null-{i}") for i in range(20)]
    rng.shuffle(rows)
    keys = [SortKey(ColumnRef("k"), descending=True)]
    external = collect(
        Sort(ValuesScan(SCHEMA, rows), keys, max_rows_in_memory=128)
    ).rows
    # NULLS FIRST under DESC, then strictly non-increasing keys.
    assert all(r[0] is None for r in external[:20])
    values = [r[0] for r in external[20:]]
    assert values == sorted(values, reverse=True)


def test_external_sort_multi_key(rng):
    rows = make_rows(rng, 2_000)
    keys = [SortKey(ColumnRef("k")), SortKey(ColumnRef("v"), descending=True)]
    in_memory = collect(Sort(ValuesScan(SCHEMA, rows), keys)).rows
    external = collect(
        Sort(ValuesScan(SCHEMA, rows), keys, max_rows_in_memory=100)
    ).rows
    assert external == in_memory


def test_external_sort_restartable(rng):
    rows = make_rows(rng, 600)
    op = Sort(ValuesScan(SCHEMA, rows), [SortKey(ColumnRef("k"))], max_rows_in_memory=64)
    first = list(op)
    second = list(op)
    assert first == second


def test_exactly_at_budget_stays_in_memory(rng):
    rows = make_rows(rng, 100)
    op = Sort(ValuesScan(SCHEMA, rows), [SortKey(ColumnRef("k"))], max_rows_in_memory=100)
    assert [r[0] for r in op] == sorted(r[0] for r in rows)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.one_of(st.none(), st.integers(-100, 100)), min_size=0, max_size=300
    ),
    budget=st.integers(1, 50),
    descending=st.booleans(),
)
def test_property_external_equals_in_memory(values, budget, descending):
    schema = Schema.of(("k", ColumnType.INT))
    rows = [(v,) for v in values]
    keys = [SortKey(ColumnRef("k"), descending=descending)]
    in_memory = collect(Sort(ValuesScan(schema, rows), keys)).rows
    external = collect(
        Sort(ValuesScan(schema, rows), keys, max_rows_in_memory=budget)
    ).rows
    assert external == in_memory
