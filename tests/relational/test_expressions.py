import pytest

from repro.errors import BindError
from repro.relational import (
    BinaryOp,
    ColumnRef,
    ColumnType,
    Comparison,
    FunctionCall,
    Literal,
    LogicalOp,
    Schema,
    UnaryOp,
)

SCHEMA = Schema.of(
    ("a", ColumnType.INT),
    ("b", ColumnType.DOUBLE),
    ("s", ColumnType.TEXT),
    ("flag", ColumnType.BOOL),
)

ROW = (4, 2.5, "hello", True)


def test_column_ref_resolves_position_and_type():
    bound = ColumnRef("b").bind(SCHEMA)
    assert bound.eval(ROW) == 2.5
    assert bound.ctype is ColumnType.DOUBLE


def test_column_ref_unknown_raises():
    with pytest.raises(BindError):
        ColumnRef("nope").bind(SCHEMA)


def test_unqualified_matches_qualified_column():
    qualified = Schema.of(("t.id", ColumnType.INT), ("u.val", ColumnType.INT))
    bound = ColumnRef("id").bind(qualified)
    assert bound.eval((9, 10)) == 9


def test_ambiguous_unqualified_raises():
    qualified = Schema.of(("t.id", ColumnType.INT), ("u.id", ColumnType.INT))
    with pytest.raises(BindError):
        ColumnRef("id").bind(qualified)


def test_arithmetic_and_types():
    expr = BinaryOp("+", ColumnRef("a"), Literal(2))
    bound = expr.bind(SCHEMA)
    assert bound.eval(ROW) == 6
    assert bound.ctype is ColumnType.INT
    div = BinaryOp("/", ColumnRef("a"), Literal(2)).bind(SCHEMA)
    assert div.ctype is ColumnType.DOUBLE
    assert div.eval(ROW) == 2.0


def test_arithmetic_rejects_text():
    with pytest.raises(BindError):
        BinaryOp("+", ColumnRef("s"), Literal(1)).bind(SCHEMA)


def test_null_propagates_through_arithmetic():
    bound = (ColumnRef("a") + ColumnRef("b")).bind(SCHEMA)
    assert bound.eval((None, 2.5, "x", True)) is None


def test_comparisons():
    assert Comparison("<", ColumnRef("a"), Literal(10)).bind(SCHEMA).eval(ROW) is True
    assert Comparison(">=", ColumnRef("b"), Literal(3.0)).bind(SCHEMA).eval(ROW) is False
    assert Comparison("=", ColumnRef("s"), Literal("hello")).bind(SCHEMA).eval(ROW) is True


def test_comparison_type_mismatch_raises():
    with pytest.raises(BindError):
        Comparison("=", ColumnRef("s"), Literal(1)).bind(SCHEMA)


def test_logical_three_valued_semantics():
    schema = Schema.of(("p", ColumnType.BOOL), ("q", ColumnType.BOOL))
    and_ = LogicalOp("AND", ColumnRef("p"), ColumnRef("q")).bind(schema)
    or_ = LogicalOp("OR", ColumnRef("p"), ColumnRef("q")).bind(schema)
    assert and_.eval((True, None)) is None
    assert and_.eval((False, None)) is False
    assert or_.eval((True, None)) is True
    assert or_.eval((None, False)) is None


def test_unary_minus_and_not():
    neg = UnaryOp("-", ColumnRef("a")).bind(SCHEMA)
    assert neg.eval(ROW) == -4
    not_ = UnaryOp("NOT", ColumnRef("flag")).bind(SCHEMA)
    assert not_.eval(ROW) is False


def test_scalar_functions():
    schema = Schema.of(("x", ColumnType.DOUBLE), ("t", ColumnType.TEXT))
    row = (-9.0, "MiXeD")
    assert FunctionCall("ABS", (ColumnRef("x"),)).bind(schema).eval(row) == 9.0
    assert FunctionCall("SQRT", (FunctionCall("ABS", (ColumnRef("x"),)),)).bind(
        schema
    ).eval(row) == 3.0
    assert FunctionCall("LOWER", (ColumnRef("t"),)).bind(schema).eval(row) == "mixed"
    assert FunctionCall("LENGTH", (ColumnRef("t"),)).bind(schema).eval(row) == 5


def test_unknown_function_raises():
    with pytest.raises(BindError):
        FunctionCall("FROB", (ColumnRef("a"),)).bind(SCHEMA)
