"""Regression: re-instrumenting a plan must not stack counting wrappers.

Before the fix, each ``instrument()`` call wrapped whatever ``rows``
method it found — including a previous call's counting wrapper — so a
plan analyzed twice drove both reports at once and billed the inner
wrapper's bookkeeping to the outer report's timings.
"""

from repro import Database
from repro.relational import ColumnType, Schema
from repro.relational.operators import Limit, ValuesScan, collect
from repro.relational.operators.instrument import instrument


def make_plan():
    schema = Schema.of(("x", ColumnType.INT))
    scan = ValuesScan(schema, [(i,) for i in range(6)])
    return scan, Limit(scan, 4)


def test_reinstrument_replaces_wrapper_not_stacks():
    scan, plan = make_plan()
    instrument(plan)
    instrument(plan)
    instrument(plan)
    # The live wrapper points straight at the pristine method: exactly
    # one counting layer, no wrapper-of-wrapper chain.
    original = plan.rows._instrument_original
    assert not hasattr(original, "_instrument_original")
    assert scan.rows._instrument_original.__self__ is scan


def test_fresh_report_counts_rows_exactly_once():
    scan, plan = make_plan()
    stale = instrument(plan)
    report = instrument(plan)
    rows = collect(plan).rows
    assert rows == [(0,), (1,), (2,), (3,)]
    assert report.for_node(plan).rows == 4
    assert report.for_node(scan).rows == 4
    # The superseded report is disconnected, not double-driven.
    assert stale.for_node(plan).rows == 0


def test_instrumented_plan_still_executes_after_many_passes():
    __, plan = make_plan()
    for _ in range(5):
        report = instrument(plan)
    assert collect(plan).rows == [(0,), (1,), (2,), (3,)]
    assert report.for_node(plan).opened == 1


def test_sql_explain_analyze_is_repeatable():
    # The SQL statement plans fresh each time, but the row counts must
    # come out identical run after run: no stale wrapper state leaks
    # between analyses and each report bills rows exactly once.
    db = Database()
    try:
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3), (4), (5), (6)")
        reports = [
            "\n".join(
                row[0]
                for row in db.execute(
                    "EXPLAIN ANALYZE SELECT id FROM t WHERE id > 2 LIMIT 2"
                )
            )
            for __ in range(3)
        ]
        for report in reports:
            assert "Limit" in report
            assert report.count("rows=2") >= 2  # limit and filter both stop at 2
    finally:
        db.close()
