import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.relational import ColumnRef, ColumnType, Comparison, Literal, Schema
from repro.relational.operators import (
    Aggregate,
    AggregateSpec,
    Filter,
    GeneratorScan,
    HashJoin,
    Limit,
    MapRows,
    NestedLoopJoin,
    Project,
    SeqScan,
    SimilarityJoin,
    Sort,
    SortKey,
    ValuesScan,
    collect,
)
from repro.storage import BufferPool, Catalog, InMemoryDiskManager

PEOPLE = Schema.of(("id", ColumnType.INT), ("age", ColumnType.INT), ("name", ColumnType.TEXT))
PEOPLE_ROWS = [
    (1, 30, "ann"),
    (2, 25, "bob"),
    (3, 30, "cat"),
    (4, None, "dee"),
]


def people_scan():
    return ValuesScan(PEOPLE, PEOPLE_ROWS)


def test_values_scan_is_restartable():
    scan = people_scan()
    assert list(scan) == PEOPLE_ROWS
    assert list(scan) == PEOPLE_ROWS


def test_seq_scan_reads_heap():
    pool = BufferPool(InMemoryDiskManager(4096), capacity_pages=16)
    catalog = Catalog(pool)
    info = catalog.create_table("people", PEOPLE)
    for row in PEOPLE_ROWS:
        info.heap.insert(row)
    assert list(SeqScan(info)) == PEOPLE_ROWS


def test_seq_scan_alias_qualifies_schema():
    pool = BufferPool(InMemoryDiskManager(4096), capacity_pages=16)
    catalog = Catalog(pool)
    info = catalog.create_table("people", PEOPLE)
    scan = SeqScan(info, alias="p")
    assert scan.schema.names == ("p.id", "p.age", "p.name")


def test_filter_drops_null_predicate_rows():
    out = collect(Filter(people_scan(), Comparison(">", ColumnRef("age"), Literal(26))))
    assert [r[0] for r in out] == [1, 3]  # the NULL-age row is dropped


def test_project_computes_and_renames():
    op = Project(
        people_scan(),
        [(ColumnRef("name"), "who"), (ColumnRef("age") + Literal(1), "age1")],
    )
    out = collect(op)
    assert out.schema.names == ("who", "age1")
    assert out.rows[0] == ("ann", 31)
    assert out.rows[3] == ("dee", None)


def test_hash_join_inner():
    orders = ValuesScan(
        Schema.of(("person_id", ColumnType.INT), ("amount", ColumnType.DOUBLE)),
        [(1, 10.0), (1, 20.0), (3, 5.0), (99, 1.0)],
    )
    join = HashJoin(people_scan(), orders, [ColumnRef("id")], [ColumnRef("person_id")])
    out = collect(join)
    assert len(out) == 3
    amounts = sorted(row[-1] for row in out)
    assert amounts == [5.0, 10.0, 20.0]


def test_hash_join_left_preserves_unmatched():
    orders = ValuesScan(
        Schema.of(("person_id", ColumnType.INT), ("amount", ColumnType.DOUBLE)),
        [(1, 10.0)],
    )
    join = HashJoin(
        people_scan(), orders, [ColumnRef("id")], [ColumnRef("person_id")],
        join_type="left",
    )
    out = collect(join)
    assert len(out) == 4
    unmatched = [r for r in out if r[3] is None]
    assert len(unmatched) == 3


def test_hash_join_null_keys_never_match():
    left = ValuesScan(Schema.of(("k", ColumnType.INT)), [(None,), (1,)])
    right = ValuesScan(Schema.of(("k2", ColumnType.INT)), [(None,), (1,)])
    out = collect(HashJoin(left, right, [ColumnRef("k")], [ColumnRef("k2")]))
    assert out.rows == [(1, 1)]


def test_hash_join_spills_when_build_side_exceeds_limit():
    n = 5000
    left = ValuesScan(Schema.of(("k", ColumnType.INT)), [(i,) for i in range(n)])
    right = ValuesScan(Schema.of(("k2", ColumnType.INT)), [(i,) for i in range(0, n, 2)])
    join = HashJoin(
        left, right, [ColumnRef("k")], [ColumnRef("k2")], max_build_rows=100
    )
    out = collect(join)
    assert len(out) == n // 2
    assert sorted(r[0] for r in out) == list(range(0, n, 2))


def test_nested_loop_join_arbitrary_predicate():
    left = ValuesScan(Schema.of(("x", ColumnType.INT)), [(1,), (5,)])
    right = ValuesScan(Schema.of(("y", ColumnType.INT)), [(2,), (7,)])
    join = NestedLoopJoin(left, right, Comparison("<", ColumnRef("x"), ColumnRef("y")))
    assert sorted(collect(join).rows) == [(1, 2), (1, 7), (5, 7)]


def test_similarity_join_band():
    left = ValuesScan(Schema.of(("a", ColumnType.DOUBLE)), [(1.0,), (5.0,), (9.0,)])
    right = ValuesScan(Schema.of(("b", ColumnType.DOUBLE)), [(1.2,), (4.0,), (20.0,)])
    join = SimilarityJoin(left, right, ColumnRef("a"), ColumnRef("b"), epsilon=1.0)
    assert sorted(collect(join).rows) == [(1.0, 1.2), (5.0, 4.0)]


def test_similarity_join_matches_nested_loop_reference():
    rng = np.random.default_rng(0)
    lvals = [(float(v),) for v in rng.normal(size=60)]
    rvals = [(float(v),) for v in rng.normal(size=60)]
    ls = Schema.of(("a", ColumnType.DOUBLE))
    rs = Schema.of(("b", ColumnType.DOUBLE))
    eps = 0.1
    fast = sorted(
        collect(
            SimilarityJoin(ValuesScan(ls, lvals), ValuesScan(rs, rvals), ColumnRef("a"), ColumnRef("b"), eps)
        ).rows
    )
    slow = sorted(
        (l + r) for l in lvals for r in rvals if abs(l[0] - r[0]) <= eps
    )
    assert fast == slow


def test_aggregate_group_by():
    agg = Aggregate(
        people_scan(),
        group_by=[(ColumnRef("age"), "age")],
        aggregates=[AggregateSpec("COUNT_STAR", None, "n")],
    )
    out = dict(collect(agg).rows)
    assert out == {30: 2, 25: 1, None: 1}


def test_aggregate_global_over_empty_input():
    empty = ValuesScan(PEOPLE, [])
    agg = Aggregate(
        empty,
        group_by=[],
        aggregates=[
            AggregateSpec("COUNT_STAR", None, "n"),
            AggregateSpec("SUM", ColumnRef("age"), "total"),
        ],
    )
    assert collect(agg).rows == [(0, None)]


def test_aggregate_functions():
    agg = Aggregate(
        people_scan(),
        group_by=[],
        aggregates=[
            AggregateSpec("SUM", ColumnRef("age"), "s"),
            AggregateSpec("AVG", ColumnRef("age"), "a"),
            AggregateSpec("MIN", ColumnRef("age"), "lo"),
            AggregateSpec("MAX", ColumnRef("age"), "hi"),
            AggregateSpec("COUNT", ColumnRef("age"), "n"),
        ],
    )
    row = collect(agg).rows[0]
    assert row == (85, 85 / 3, 25, 30, 3)


def test_sum_block_aggregates_arrays():
    blocks = [
        (0, np.ones(4).tobytes()),
        (0, (2 * np.ones(4)).tobytes()),
        (1, (5 * np.ones(4)).tobytes()),
    ]
    scan = ValuesScan(
        Schema.of(("g", ColumnType.INT), ("blk", ColumnType.BLOB)), blocks
    )
    agg = Aggregate(
        scan,
        group_by=[(ColumnRef("g"), "g")],
        aggregates=[AggregateSpec("SUM_BLOCK", ColumnRef("blk"), "total")],
    )
    out = {g: np.frombuffer(b) for g, b in collect(agg).rows}
    np.testing.assert_allclose(out[0], 3 * np.ones(4))
    np.testing.assert_allclose(out[1], 5 * np.ones(4))


def test_sort_multi_key_and_nulls_last():
    op = Sort(
        people_scan(),
        [SortKey(ColumnRef("age")), SortKey(ColumnRef("name"), descending=True)],
    )
    names = [r[2] for r in collect(op)]
    assert names == ["bob", "cat", "ann", "dee"]


def test_limit_offset():
    op = Limit(people_scan(), limit=2, offset=1)
    assert [r[0] for r in collect(op)] == [2, 3]
    with pytest.raises(PlanError):
        Limit(people_scan(), limit=-1)


def test_map_rows_batches():
    seen_batches = []

    def udf(batch):
        seen_batches.append(len(batch))
        return [(row[0] * 10,) for row in batch]

    op = MapRows(
        people_scan(), udf, Schema.of(("x10", ColumnType.INT)), batch_size=3
    )
    assert [r[0] for r in collect(op)] == [10, 20, 30, 40]
    assert seen_batches == [3, 1]


def test_generator_scan_restartable():
    schema = Schema.of(("i", ColumnType.INT))
    scan = GeneratorScan(schema, lambda: iter([(i,) for i in range(3)]))
    assert list(scan) == [(0,), (1,), (2,)]
    assert list(scan) == [(0,), (1,), (2,)]


def test_explain_renders_tree():
    op = Limit(Filter(people_scan(), Comparison(">", ColumnRef("age"), Literal(0))), 1)
    text = op.explain()
    assert "Limit" in text and "Filter" in text and "ValuesScan" in text


@settings(max_examples=50, deadline=None)
@given(
    left=st.lists(st.integers(0, 20), max_size=40),
    right=st.lists(st.integers(0, 20), max_size=40),
)
def test_property_hash_join_matches_reference(left, right):
    ls = Schema.of(("k", ColumnType.INT))
    rs = Schema.of(("k2", ColumnType.INT))
    join = HashJoin(
        ValuesScan(ls, [(v,) for v in left]),
        ValuesScan(rs, [(v,) for v in right]),
        [ColumnRef("k")],
        [ColumnRef("k2")],
        max_build_rows=8,  # force the spill path often
    )
    got = sorted(collect(join).rows)
    expected = sorted((l, r) for l in left for r in right if l == r)
    assert got == expected
