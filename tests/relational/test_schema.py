import pytest

from repro.errors import SchemaError
from repro.relational import Column, ColumnType, Schema


def test_schema_basic_lookup():
    schema = Schema.of(("id", ColumnType.INT), ("name", ColumnType.TEXT))
    assert len(schema) == 2
    assert schema.index_of("id") == 0
    assert schema.index_of("NAME") == 1  # case-insensitive
    assert schema.column("name").ctype is ColumnType.TEXT


def test_duplicate_column_rejected():
    with pytest.raises(SchemaError):
        Schema.of(("x", ColumnType.INT), ("X", ColumnType.DOUBLE))


def test_missing_column_raises():
    schema = Schema.of(("a", ColumnType.INT))
    with pytest.raises(SchemaError):
        schema.index_of("b")
    assert not schema.has_column("b")


def test_project_reorders():
    schema = Schema.of(
        ("a", ColumnType.INT), ("b", ColumnType.DOUBLE), ("c", ColumnType.TEXT)
    )
    projected = schema.project(["c", "a"])
    assert projected.names == ("c", "a")


def test_concat_with_prefixes():
    left = Schema.of(("id", ColumnType.INT))
    right = Schema.of(("id", ColumnType.INT))
    joined = left.concat(right, prefixes=("l", "r"))
    assert joined.names == ("l.id", "r.id")


def test_concat_without_prefixes_rejects_collision():
    left = Schema.of(("id", ColumnType.INT))
    right = Schema.of(("id", ColumnType.INT))
    with pytest.raises(SchemaError):
        left.concat(right)


def test_validate_row_type_checks():
    schema = Schema.of(("id", ColumnType.INT), ("name", ColumnType.TEXT))
    schema.validate_row((1, "x"))
    schema.validate_row((None, None))
    with pytest.raises(SchemaError):
        schema.validate_row(("bad", "x"))
    with pytest.raises(SchemaError):
        schema.validate_row((1,))


def test_coerce_row_normalises_numpy_scalars():
    import numpy as np

    schema = Schema.of(("id", ColumnType.INT), ("v", ColumnType.DOUBLE))
    row = schema.coerce_row((np.int64(3), np.float64(2.5)))
    assert row == (3, 2.5)
    assert type(row[0]) is int
    assert type(row[1]) is float


def test_type_parse_aliases():
    assert ColumnType.parse("integer") is ColumnType.INT
    assert ColumnType.parse("FLOAT") is ColumnType.DOUBLE
    assert ColumnType.parse("varchar") is ColumnType.TEXT
    with pytest.raises(SchemaError):
        ColumnType.parse("tensorish")


def test_column_requires_name():
    with pytest.raises(SchemaError):
        Column("", ColumnType.INT)
