import numpy as np
import pytest

from repro.data import (
    bosch_wide_table,
    deepbench_inputs,
    feature_column_names,
    fraud_schema,
    fraud_transactions,
    landcover_tiles,
    most_correlated_pair,
    repeated_query_stream,
    synthetic_mnist,
    vertical_split,
    zipf_query_stream,
)
from repro.data.landcover import tiles_as_rows


def test_fraud_shapes_and_schema():
    features, labels, rows = fraud_transactions(500, seed=1)
    assert features.shape == (500, 28)
    assert labels.shape == (500,)
    assert len(rows) == 500
    schema = fraud_schema()
    assert len(schema) == 30
    schema.validate_row(rows[0])
    assert feature_column_names()[0] == "f0"


def test_fraud_rate_respected():
    __, labels, __ = fraud_transactions(2000, seed=2, fraud_rate=0.1)
    assert 0.05 < labels.mean() < 0.15


def test_fraud_deterministic_by_seed():
    f1, __, __ = fraud_transactions(50, seed=7)
    f2, __, __ = fraud_transactions(50, seed=7)
    np.testing.assert_array_equal(f1, f2)


def test_bosch_planted_correlation_found():
    features, schema, rows = bosch_wide_table(800, n_features=64, seed=3)
    assert features.shape == (800, 64)
    assert len(schema) == 65
    left, right = vertical_split(features)
    i, j, corr = most_correlated_pair(left, right, sample=None)
    assert (i, j) == (31, 31)  # last column of each half
    assert corr > 0.99


def test_bosch_validation():
    with pytest.raises(ValueError):
        bosch_wide_table(10, n_features=7)


def test_landcover_tiles_structure():
    tiles = landcover_tiles(2, spatial=32, seed=4)
    assert tiles.shape == (2, 32, 32, 3)
    # Structured imagery: spatial variance should exceed the noise floor.
    assert tiles.std() > 0.05
    rows = tiles_as_rows(tiles)
    assert rows[0][0] == 0
    restored = np.frombuffer(rows[1][1], dtype=np.float64).reshape(32, 32, 3)
    np.testing.assert_array_equal(restored, tiles[1])


def test_synthetic_mnist_learnable_structure():
    x_train, y_train, x_test, y_test = synthetic_mnist(200, 50, seed=5)
    assert x_train.shape == (200, 28, 28, 1)
    assert x_test.shape == (50, 28, 28, 1)
    assert set(np.unique(y_train)) <= set(range(10))
    assert x_train.min() >= 0.0 and x_train.max() <= 1.0
    # Same-class images are closer than cross-class images on average.
    flat = x_train.reshape(200, -1)
    same, diff = [], []
    for i in range(0, 60, 2):
        for j in range(1, 60, 2):
            d = np.linalg.norm(flat[i] - flat[j])
            (same if y_train[i] == y_train[j] else diff).append(d)
    assert np.mean(same) < np.mean(diff)


def test_deepbench_inputs_nonnegative():
    x = deepbench_inputs(2, side=16, channels=4, seed=6)
    assert x.shape == (2, 16, 16, 4)
    assert x.min() >= 0.0
    assert (x == 0.0).mean() > 0.3  # ReLU-like sparsity


def test_zipf_stream_skewed_and_jittered(rng):
    base = rng.normal(size=(100, 8))
    queries, indices = zipf_query_stream(base, 1000, skew=1.3, jitter=0.01, seed=7)
    assert queries.shape == (1000, 8)
    counts = np.bincount(indices, minlength=100)
    assert counts[0] > counts[50:].mean() * 2  # head much hotter than tail
    assert not np.array_equal(queries[0], base[indices[0]])  # jittered


def test_zipf_validation(rng):
    with pytest.raises(ValueError):
        zipf_query_stream(rng.normal(size=(10, 2)), 10, skew=1.0)


def test_repeated_stream_hits_target_fraction(rng):
    base = rng.normal(size=(500, 4))
    queries, indices = repeated_query_stream(base, 1000, repeat_fraction=0.8, seed=8)
    assert queries.shape == (1000, 4)
    unique_fraction = len(np.unique(indices)) / 1000
    assert 0.1 < unique_fraction < 0.35  # ~20% fresh


def test_repeated_stream_validation(rng):
    with pytest.raises(ValueError):
        repeated_query_stream(rng.normal(size=(10, 2)), 10, repeat_fraction=1.5)
