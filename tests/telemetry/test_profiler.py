"""The sampling stage profiler and collapsed-stack export."""

from __future__ import annotations

import re
import threading
import time

import numpy as np
import pytest

from repro import Database
from repro.errors import TelemetryError
from repro.models import fraud_fc_256
from repro.telemetry.profiler import (
    PROFILE_COLUMNS,
    ROOT_FRAME,
    NullStageProfiler,
    StageProfiler,
)

#: Frames the engine emits: "<model>;stage<i>:<representation>".
FRAME_RE = re.compile(r"^[\w.-]+;stage\d+:[\w-]+$")


def parse_collapsed(lines):
    """A minimal folded-stack parser (the flamegraph.pl input contract):
    every line is semicolon-joined frames, one space, an integer count."""
    out = {}
    for line in lines:
        stack, count = line.rsplit(" ", 1)
        frames = stack.split(";")
        assert frames and all(frames), line
        out[tuple(frames)] = out.get(tuple(frames), 0) + int(count)
    return out


def test_validation():
    with pytest.raises(TelemetryError):
        StageProfiler(interval_ms=0)
    with pytest.raises(TelemetryError):
        StageProfiler(max_frames=0)


def test_sampler_attributes_marked_frames():
    profiler = StageProfiler(interval_ms=1.0)
    assert profiler.start()
    assert not profiler.start(), "second start is a no-op"
    profiler.enter("m;stage0:dl-centric")
    deadline = time.monotonic() + 5.0
    while profiler.sampled < 5 and time.monotonic() < deadline:
        time.sleep(0.01)
    profiler.exit()
    assert profiler.stop()
    assert not profiler.stop(), "second stop is a no-op"
    rows = profiler.top_rows()
    assert rows and rows[0][0] == "m;stage0:dl-centric"
    row = dict(zip(PROFILE_COLUMNS, rows[0]))
    assert row["samples"] >= 5
    assert row["share"] == pytest.approx(1.0)
    assert row["est_ms"] == pytest.approx(row["samples"] * 1.0)


def test_hooks_are_noops_while_stopped():
    profiler = StageProfiler(interval_ms=1.0)
    profiler.enter("m;stage0:dl-centric")
    profiler.exit()
    assert profiler._active == {}
    assert profiler.top_rows() == []


def test_idle_ticks_counted_without_marked_frames():
    profiler = StageProfiler(interval_ms=1.0)
    profiler.start()
    deadline = time.monotonic() + 5.0
    while profiler.ticks < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    profiler.stop()
    assert profiler.ticks >= 3
    assert profiler.idle_ticks == profiler.ticks
    assert profiler.sampled == 0


def test_per_thread_attribution():
    profiler = StageProfiler(interval_ms=1.0)
    profiler.start()
    stop = threading.Event()

    def work(frame):
        profiler.enter(frame)
        stop.wait(5.0)
        profiler.exit()

    threads = [
        threading.Thread(target=work, args=(f"m;stage{i}:udf-centric",))
        for i in range(3)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + 5.0
    while profiler.sampled < 9 and time.monotonic() < deadline:
        time.sleep(0.01)
    stop.set()
    for t in threads:
        t.join()
    profiler.stop()
    frames = {row[0] for row in profiler.top_rows()}
    assert frames == {f"m;stage{i}:udf-centric" for i in range(3)}


def test_frame_overflow_goes_to_other():
    profiler = StageProfiler(interval_ms=1.0, max_frames=1)
    profiler.start()
    profiler.enter("m;stage0:dl-centric")
    deadline = time.monotonic() + 5.0
    while profiler.sampled < 2 and time.monotonic() < deadline:
        time.sleep(0.01)
    profiler.exit()
    profiler.enter("m;stage1:dl-centric")  # second distinct frame: overflow
    while (
        not any(r[0] == "<other>" for r in profiler.top_rows())
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)
    profiler.exit()
    profiler.stop()
    frames = {row[0] for row in profiler.top_rows()}
    assert frames == {"m;stage0:dl-centric", "<other>"}


def test_collapsed_export_round_trips(tmp_path):
    profiler = StageProfiler(interval_ms=1.0)
    profiler.start()
    profiler.enter("fraud;stage0:dl-centric")
    deadline = time.monotonic() + 5.0
    while profiler.sampled < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    profiler.exit()
    profiler.stop()
    path = tmp_path / "profile.folded"
    lines_written = profiler.export(str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == lines_written == 1
    stacks = parse_collapsed(lines)
    ((frames, count),) = stacks.items()
    assert frames == (ROOT_FRAME, "fraud", "stage0:dl-centric")
    assert count >= 3


def test_null_profiler_is_inert(tmp_path):
    profiler = NullStageProfiler()
    assert not profiler.start()
    profiler.enter("x")
    profiler.exit()
    assert profiler.top_rows() == [] and profiler.collapsed() == []
    assert profiler.export(str(tmp_path / "p.folded")) == 0


# -- end-to-end through Database -----------------------------------------


@pytest.fixture
def db():
    database = Database(profiler_interval_ms=1.0)
    database.register_model(fraud_fc_256(), name="fraud")
    yield database
    database.close()


def test_profile_attributes_samples_to_real_plan_stages(db, tmp_path):
    rng = np.random.default_rng(5)
    features = rng.normal(size=(512, 28))
    assert db.start_profiler()
    deadline = time.monotonic() + 30.0
    while (
        db.telemetry.profiler.sampled < 10 and time.monotonic() < deadline
    ):
        db.predict_labels("fraud", features)
    assert db.stop_profiler()
    rows = db.execute("SHOW PROFILE").fetchall()
    assert rows, "sampler must have caught executing stages"
    # >= 90% of sampled time must land on well-formed plan-stage frames.
    total = sum(row[1] for row in rows)
    attributed = sum(row[1] for row in rows if FRAME_RE.match(row[0]))
    assert attributed / total >= 0.9
    assert any(";stage0:" in row[0] for row in rows)
    # Export is accepted by a collapsed-stack parser.
    path = tmp_path / "db.folded"
    assert db.export_profile(str(path)) == len(rows)
    stacks = parse_collapsed(path.read_text().splitlines())
    assert sum(stacks.values()) == total


def test_profiler_enabled_config_autostarts():
    db = Database(profiler_enabled=True, profiler_interval_ms=1.0)
    try:
        assert db.telemetry.profiler.running
    finally:
        db.close()
    assert not db.telemetry.profiler.running, "close() stops the sampler"


def test_profiler_disabled_with_telemetry_off(tmp_path):
    db = Database(telemetry_enabled=False)
    try:
        assert not db.start_profiler()
        assert db.execute("SHOW PROFILE").fetchall() == []
        assert db.export_profile(str(tmp_path / "off.folded")) == 0
    finally:
        db.close()
