"""Metrics registry: counters, gauges, histograms, rendering."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_increments(registry):
    c = registry.counter("requests_total", "Requests served.")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_counter_rejects_negative_increment(registry):
    c = registry.counter("requests_total", "Requests served.")
    with pytest.raises(TelemetryError):
        c.inc(-1)


def test_get_or_create_returns_same_instance(registry):
    a = registry.counter("hits_total", "Hits.")
    b = registry.counter("hits_total", "Hits.")
    assert a is b
    a.inc()
    assert b.value == 1


def test_labels_distinguish_series(registry):
    a = registry.counter("stage_runs_total", "Stage runs.", engine="udf-centric")
    b = registry.counter("stage_runs_total", "Stage runs.", engine="dl-centric")
    assert a is not b
    a.inc(3)
    assert a.value == 3
    assert b.value == 0
    snap = registry.snapshot()
    assert snap['stage_runs_total{engine="udf-centric"}'] == 3
    assert snap['stage_runs_total{engine="dl-centric"}'] == 0


def test_kind_conflict_raises(registry):
    registry.counter("x_total", "X.")
    with pytest.raises(TelemetryError):
        registry.gauge("x_total", "X.")


def test_gauge_set_inc_dec(registry):
    g = registry.gauge("resident_pages", "Resident pages.")
    g.set(10)
    g.inc()
    g.dec(3)
    assert g.value == 8


def test_histogram_buckets_are_cumulative(registry):
    h = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    counts = h.bucket_counts()
    # Bounds gain a trailing +Inf bucket; counts are cumulative.
    assert counts[0.1] == 1
    assert counts[1.0] == 2
    assert counts[float("inf")] == 3
    assert h.count == 3
    assert h.sum == pytest.approx(5.55)


def test_histogram_default_buckets_cover_latencies(registry):
    h = registry.histogram("query_seconds", "Query latency.")
    for value in (1e-6, 1e-3, 0.5, 100.0):
        h.observe(value)
    assert h.count == 4
    assert h.bucket_counts()[float("inf")] == 4
    assert DEFAULT_LATENCY_BUCKETS[0] < DEFAULT_LATENCY_BUCKETS[-1]


def test_histogram_requires_buckets(registry):
    with pytest.raises(TelemetryError):
        registry.histogram("empty_seconds", "Empty.", buckets=())


def test_render_prometheus_text(registry):
    registry.counter("hits_total", "Cache hits.", cache="ann").inc(2)
    registry.histogram("lat_seconds", "Latency.", buckets=(1.0,)).observe(0.5)
    text = registry.render_prometheus()
    assert "# HELP hits_total Cache hits." in text
    assert "# TYPE hits_total counter" in text
    assert 'hits_total{cache="ann"} 2' in text
    assert "# TYPE lat_seconds histogram" in text
    assert 'lat_seconds_bucket{le="1.0"} 1' in text
    assert 'lat_seconds_bucket{le="+Inf"} 1' in text
    assert "lat_seconds_sum 0.5" in text
    assert "lat_seconds_count 1" in text


def test_reset_zeroes_but_keeps_instances(registry):
    c = registry.counter("n_total", "N.")
    c.inc(7)
    registry.reset()
    assert c.value == 0
    assert registry.counter("n_total", "N.") is c


def test_null_registry_is_inert():
    registry = NullRegistry()
    c = registry.counter("anything_total", "Ignored.")
    c.inc(100)
    registry.gauge("g", "Ignored.").set(5)
    registry.histogram("h_seconds", "Ignored.").observe(1.0)
    assert registry.snapshot() == {}
    assert registry.render_prometheus() == ""


def test_metric_updates_are_thread_safe(registry):
    import threading

    counter = registry.counter("race_total", "Racing increments.")
    gauge = registry.gauge("race_gauge", "Racing adjustments.")
    hist = registry.histogram("race_seconds", "Racing observations.")
    per_thread = 2000

    def work():
        for _ in range(per_thread):
            counter.inc()
            gauge.inc(2.0)
            gauge.dec(1.0)
            hist.observe(0.5)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = 8 * per_thread
    # Unlocked read-modify-write would lose updates under this contention.
    assert counter.value == total
    assert gauge.value == total * 1.0
    assert hist.count == total
    assert hist.sum == total * 0.5
