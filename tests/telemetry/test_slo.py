"""SLO policies, multi-window burn rates, and the health integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.errors import TelemetryError
from repro.health import DEGRADED, FAILING, OK
from repro.models import fraud_fc_256
from repro.telemetry.slo import SLO_COLUMNS, NullSloTracker, SloPolicy, SloTracker


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def tracker(clock, **kwargs):
    kwargs.setdefault("fast_window_s", 60.0)
    kwargs.setdefault("slow_window_s", 3600.0)
    kwargs.setdefault("min_samples", 4)
    return SloTracker(clock=clock, **kwargs)


def test_policy_validation():
    with pytest.raises(TelemetryError):
        SloPolicy("m", latency_ms=-1)
    with pytest.raises(TelemetryError):
        SloPolicy("m", error_budget=0.0)
    with pytest.raises(TelemetryError):
        SloPolicy("m", error_budget=1.5)
    with pytest.raises(TelemetryError):
        SloTracker(fast_window_s=120, slow_window_s=60)


def test_burn_rate_zero_until_min_samples(clock):
    t = tracker(clock, min_samples=4)
    t.set_policy("m", latency_ms=10, error_budget=0.5)
    for __ in range(3):
        t.observe("m", ok=False, latency_ms=0.0)
    rows = t.rows()
    assert all(row[SLO_COLUMNS.index("burn_rate")] == 0.0 for row in rows)
    t.observe("m", ok=False, latency_ms=0.0)
    fast = t.rows()[0]
    assert fast[SLO_COLUMNS.index("burn_rate")] == pytest.approx(2.0)
    assert fast[SLO_COLUMNS.index("status")] == "burning"


def test_latency_objective_counts_slow_requests_as_bad(clock):
    t = tracker(clock, min_samples=4)
    t.set_policy("m", latency_ms=100, error_budget=0.25)
    for __ in range(4):
        t.observe("m", ok=True, latency_ms=50.0)  # fast: good
    snap = t.snapshot()["m"]
    assert snap["fast_burn"] == 0.0
    for __ in range(4):
        t.observe("m", ok=True, latency_ms=500.0)  # slow: bad despite ok
    snap = t.snapshot()["m"]
    assert snap["fast_burn"] == pytest.approx((4 / 8) / 0.25)
    assert snap["burning_fast"]


def test_fast_window_recovers_while_slow_still_burns(clock):
    t = tracker(clock, min_samples=4, fast_window_s=60, slow_window_s=3600)
    t.set_policy("m", latency_ms=0, error_budget=0.1)
    for __ in range(8):
        t.observe("m", ok=False, latency_ms=0.0)
    snap = t.snapshot()["m"]
    assert snap["burning_fast"] and snap["burning_slow"]
    # 2 minutes later the failures age out of the fast window only.
    clock.advance(120)
    for __ in range(8):
        t.observe("m", ok=True, latency_ms=0.0)
    snap = t.snapshot()["m"]
    assert not snap["burning_fast"]
    assert snap["burning_slow"], "hour window still holds the bad samples"


def test_burn_transitions_emit_events(clock):
    events = []

    class Recorder:
        def emit(self, kind, **fields):
            events.append((kind, fields))

    t = tracker(clock, min_samples=2, recorder=Recorder())
    t.set_policy("m", error_budget=0.5)
    t.observe("m", ok=False, latency_ms=0)
    t.observe("m", ok=False, latency_ms=0)  # burn = 4.0 -> start
    starts = [(k, f) for k, f in events if k == "slo.burn_start"]
    assert {f["window"] for __, f in starts} == {"fast", "slow"}
    assert not any(k == "slo.burn_stop" for k, __ in events)
    clock.advance(120)  # bad samples leave the fast window
    for __ in range(4):
        t.observe("m", ok=True, latency_ms=0)
    kinds = [k for k, __ in events]
    assert kinds.count("slo.burn_start") == 2  # no re-fire while burning
    assert "slo.burn_stop" in kinds


def test_unconfigured_model_untracked_unless_default_set(clock):
    t = tracker(clock)
    t.observe("ghost", ok=False, latency_ms=0)
    assert t.rows() == []
    t2 = tracker(clock, default_latency_ms=100.0)
    t2.observe("ghost", ok=True, latency_ms=5)
    assert len(t2.rows()) == 2  # auto-registered, fast + slow rows


def test_null_tracker_is_inert():
    t = NullSloTracker()
    t.set_policy("m", latency_ms=1)
    t.observe("m", ok=False, latency_ms=0)
    assert t.rows() == [] and t.snapshot() == {}


# -- end-to-end through Database / server / health -----------------------


@pytest.fixture
def db():
    database = Database(
        slo_min_samples=4, server_max_queue_delay_ms=0.5, breaker_enabled=False
    )
    database.register_model(fraud_fc_256(), name="fraud")
    yield database
    database.close()


def test_impossible_latency_slo_burns_and_degrades_health(db):
    rng = np.random.default_rng(3)
    # An objective no real request can meet: every completion is "bad".
    db.set_slo("fraud", latency_ms=0.001, error_budget=0.01)
    with db.serve(workers=1) as server:
        for __ in range(8):
            server.predict("fraud", rng.normal(size=(4, 28)))
    rows = db.execute("SHOW SLO").fetchall()
    assert len(rows) == 2
    fast = dict(zip(SLO_COLUMNS, rows[0]))
    assert fast["model"] == "fraud"
    assert fast["samples"] >= 4
    assert fast["burn_rate"] > 1.0
    assert fast["status"] == "burning"
    report = db.health()
    slo_component = report.component("slo:fraud")
    assert slo_component is not None
    assert slo_component.status == FAILING  # fast AND slow burning
    assert report.status == FAILING
    kinds = {e.kind for e in db.telemetry.events.events()}
    assert "slo.burn_start" in kinds


def test_generous_slo_stays_ok(db):
    rng = np.random.default_rng(3)
    db.set_slo("fraud", latency_ms=60_000.0, error_budget=0.5)
    with db.serve(workers=1) as server:
        for __ in range(8):
            server.predict("fraud", rng.normal(size=(4, 28)))
    rows = db.execute("SHOW SLO").fetchall()
    assert all(row[SLO_COLUMNS.index("status")] == "ok" for row in rows)
    component = db.health().component("slo:fraud")
    assert component is not None and component.status == OK


def test_set_slo_noop_with_telemetry_disabled():
    db = Database(telemetry_enabled=False)
    db.set_slo("fraud", latency_ms=10)  # must not raise
    assert db.execute("SHOW SLO").fetchall() == []
    db.close()


def test_burn_rate_gauge_published(db):
    rng = np.random.default_rng(3)
    db.set_slo("fraud", latency_ms=0.001)
    with db.serve(workers=1) as server:
        for __ in range(8):
            server.predict("fraud", rng.normal(size=(4, 28)))
    gauge = db.telemetry.registry.get(
        "slo_burn_rate", model="fraud", window="fast"
    )
    assert gauge is not None and gauge.value > 1.0
