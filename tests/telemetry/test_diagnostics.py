"""Postmortem diagnostics bundles: build, write, validate, auto-dump."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import Database
from repro.config import SystemConfig
from repro.errors import InjectedFaultError
from repro.faults import FaultPlan, FaultSpec
from repro.models import fraud_fc_256
from repro.telemetry.diagnostics import (
    BUNDLE_VERSION,
    REQUIRED_KEYS,
    build_bundle,
    validate_bundle,
    write_bundle,
)


@pytest.fixture
def db(rng):
    database = Database()
    database.register_model(fraud_fc_256(), name="fraud")
    database.execute("CREATE TABLE tx (id INT, amount DOUBLE)")
    database.execute("INSERT INTO tx VALUES (1, 10.5), (2, 99.0)")
    yield database
    database.close()


def test_bundle_has_every_required_key_and_validates(db):
    db.execute("SELECT * FROM tx")
    bundle = build_bundle(db)
    for key in REQUIRED_KEYS:
        assert key in bundle
    assert bundle["bundle_version"] == BUNDLE_VERSION
    assert bundle["reason"] == "requested"
    assert bundle["error"] is None
    assert bundle["config"]["telemetry_enabled"] is True
    assert bundle["faults"]["seed"] is not None or "seed" in bundle["faults"]
    assert validate_bundle(bundle) == []


def test_bundle_captures_events_and_error(db, rng):
    with db.serve(workers=1) as server:
        server.predict("fraud", rng.normal(size=(4, 28)))
    bundle = build_bundle(db, reason="test", error=ValueError("boom"))
    assert bundle["reason"] == "test"
    assert bundle["error"] == {"type": "ValueError", "message": "boom"}
    kinds = {event["kind"] for event in bundle["events"]}
    assert "request.admitted" in kinds
    assert "request.completed" in kinds
    assert bundle["traces"], "finished spans should be captured"
    assert validate_bundle(bundle) == []


def test_write_bundle_round_trips_as_json(db, tmp_path):
    path = str(tmp_path / "nested" / "bundle.json")
    written = db.dump_diagnostics(path, reason="unit-test")
    assert written == path
    with open(path, encoding="utf-8") as f:
        loaded = json.load(f)
    assert validate_bundle(loaded) == []
    assert loaded["reason"] == "unit-test"


def test_bundle_workload_slo_profile_sections(db):
    db.execute("SELECT * FROM tx WHERE id = 1")
    db.execute("SELECT * FROM tx WHERE id = 2")
    db.set_slo("fraud", latency_ms=250.0)
    bundle = build_bundle(db)
    workload = bundle["workload"]
    assert workload["columns"][0] == "fingerprint"
    assert workload["fingerprints"] == len(workload["top"]) > 0
    calls = {row[-1]: row[2] for row in workload["top"]}
    assert 2 in calls.values(), "the two point lookups share one fingerprint"
    slo = bundle["slo"]
    assert [r[0] for r in slo["rows"]] == ["fraud", "fraud"]
    assert slo["models"]["fraud"]["latency_ms"] == 250.0
    profile = bundle["profile"]
    assert profile["running"] is False
    assert profile["collapsed"] == [] and profile["top"] == []
    assert validate_bundle(bundle) == []


def test_bundle_profile_section_carries_collapsed_stacks(db, rng):
    db.start_profiler()
    deadline_samples = 0
    while db.telemetry.profiler.sampled < 3 and deadline_samples < 4000:
        db.predict_labels("fraud", rng.normal(size=(256, 28)))
        deadline_samples += 1
    db.stop_profiler()
    bundle = build_bundle(db)
    profile = bundle["profile"]
    assert profile["samples"] >= 3
    assert profile["collapsed"], "sampled frames must serialize"
    assert all(line.rsplit(" ", 1)[1].isdigit() for line in profile["collapsed"])
    assert validate_bundle(bundle) == []


def test_validate_bundle_reports_problems():
    assert validate_bundle([]) != []
    problems = validate_bundle({"bundle_version": 99, "events": [{"oops": 1}]})
    assert any("missing required key" in p for p in problems)
    assert any("bundle_version" in p for p in problems)
    assert any("events[0]" in p for p in problems)
    problems = validate_bundle(
        {
            "workload": {"columns": ["a", "b"], "top": [[1]]},
            "slo": {"no_rows": True},
            "profile": {"collapsed": ["not-a-folded-line"]},
        }
    )
    assert any("workload.top[0]" in p for p in problems)
    assert any("slo must be" in p for p in problems)
    assert any("profile.collapsed[0]" in p for p in problems)


def test_close_dumps_bundle_on_request(tmp_path, rng):
    db = Database()
    db.register_model(fraud_fc_256(), name="fraud")
    db.predict_labels("fraud", rng.normal(size=(2, 28)))
    path = str(tmp_path / "close.json")
    db.close(diagnostics_path=path)
    with open(path, encoding="utf-8") as f:
        bundle = json.load(f)
    assert validate_bundle(bundle) == []
    assert bundle["reason"] == "close"


def test_terminal_failure_auto_dumps_into_diagnostics_dir(tmp_path, rng):
    directory = str(tmp_path / "diag")
    config = SystemConfig(diagnostics_dir=directory)
    db = Database(config=config)
    db.register_model(fraud_fc_256(), name="fraud")
    # A non-transient server.batch fault fails the lone request
    # terminally (a batch of one cannot be isolated) — the FIRST
    # client-visible failure auto-dumps exactly one bundle; the second
    # does not (storm protection).
    db.faults.load_plan(
        FaultPlan(
            specs=(
                FaultSpec(site="server.batch", transient=False,
                          one_shot=False, max_fires=2),
            ),
            seed=11,
        )
    )
    with db.serve(workers=1, retry_limit=0) as server:
        for __ in range(2):
            future = server.submit("fraud", rng.normal(size=28))
            with pytest.raises(InjectedFaultError):
                future.result(timeout=10.0)
    names = os.listdir(directory)
    assert len(names) == 1, names
    with open(os.path.join(directory, names[0]), encoding="utf-8") as f:
        bundle = json.load(f)
    assert validate_bundle(bundle) == []
    assert bundle["reason"] == "server.request_failed"
    assert bundle["error"]["type"] == "InjectedFaultError"
    kinds = {event["kind"] for event in bundle["events"]}
    assert "fault.injected" in kinds and "request.failed" in kinds
    db.close()


def test_seeded_fault_in_bundle_is_replayable(tmp_path, rng):
    """The bundle records the injector seed and armed specs — enough to
    re-arm the same plan and reproduce the same fault."""
    feats = rng.normal(size=(8, 28))

    def run(seed):
        db = Database()
        db.register_model(fraud_fc_256(), name="fraud")
        db.faults.load_plan(
            FaultPlan(
                specs=(
                    FaultSpec(site="engine.stage", probability=0.5,
                              one_shot=False, max_fires=2),
                ),
                seed=seed,
            )
        )
        try:
            db.predict_labels("fraud", feats)
        except Exception:
            pass
        bundle = build_bundle(db, reason="chaos")
        db.close()
        return bundle

    first = run(seed=1234)
    assert first["faults"]["seed"] == 1234
    again = run(seed=first["faults"]["seed"])
    fired = [e for e in first["events"] if e["kind"] == "fault.injected"]
    fired_again = [e for e in again["events"] if e["kind"] == "fault.injected"]
    assert [e["fields"] for e in fired] == [e["fields"] for e in fired_again]
