"""Trace-correlated logging: records carry the active span's ids."""

from __future__ import annotations

import io
import logging
import re

import pytest

from repro.telemetry.logs import (
    TRACE_LOG_FORMAT,
    TraceContextFilter,
    current_trace_ids,
    enable_console_logging,
    get_logger,
    register_tracer,
)
from repro.telemetry.tracing import Tracer

LINE_RE = re.compile(r"\[trace=(\d+) span=(\d+)\]")


@pytest.fixture
def capture():
    """A repro-namespace handler writing TRACE_LOG_FORMAT lines to a buffer."""
    buffer = io.StringIO()
    handler = logging.StreamHandler(buffer)
    handler.addFilter(TraceContextFilter())
    handler.setFormatter(logging.Formatter(TRACE_LOG_FORMAT))
    root = get_logger()
    old_level = root.level
    root.addHandler(handler)
    root.setLevel(logging.DEBUG)
    yield buffer
    root.removeHandler(handler)
    root.setLevel(old_level)


def test_records_outside_any_span_carry_zero_ids(capture):
    get_logger("test").info("hello outside")
    match = LINE_RE.search(capture.getvalue())
    assert match is not None
    assert match.groups() == ("0", "0")


def test_records_inside_span_carry_its_ids(capture):
    tracer = Tracer()
    register_tracer(tracer)
    logger = get_logger("test")
    with tracer.span("unit-of-work") as span:
        assert current_trace_ids() == (span.trace_id, span.span_id)
        logger.info("hello inside")
    logger.info("hello after")
    lines = capture.getvalue().splitlines()
    inside = LINE_RE.search(lines[0])
    after = LINE_RE.search(lines[1])
    assert inside.groups() == (str(span.trace_id), str(span.span_id))
    assert span.trace_id != 0 and span.span_id != 0
    assert after.groups() == ("0", "0")


def test_nested_span_wins(capture):
    tracer = Tracer()
    register_tracer(tracer)
    logger = get_logger("test")
    with tracer.span("outer"), tracer.span("inner") as inner:
        logger.info("nested")
    match = LINE_RE.search(capture.getvalue())
    assert match.groups() == (str(inner.trace_id), str(inner.span_id))


def test_enable_console_logging_attaches_trace_filter():
    handler = enable_console_logging(level=logging.INFO)
    try:
        assert any(isinstance(f, TraceContextFilter) for f in handler.filters)
        assert "%(trace_id)s" in handler.formatter._fmt
    finally:
        get_logger().removeHandler(handler)


def test_tracer_registration_is_weak(capture):
    tracer = Tracer()
    register_tracer(tracer)
    del tracer
    import gc

    gc.collect()
    get_logger("test").info("after gc")  # must not raise on a dead tracer
    assert LINE_RE.search(capture.getvalue()).groups() == ("0", "0")


def test_database_tracer_registers_for_log_correlation():
    from repro import Database

    db = Database()
    try:
        db.execute("CREATE TABLE t (x INT)")
        stats = db.execute("SELECT * FROM t").stats
        # Outside execute() no span is active on this thread any more,
        # but the registered tracer answered during the query: the same
        # correlation id is on the cursor stats.
        assert stats.trace_id != 0
        assert current_trace_ids() == (0, 0)
        with db.telemetry.tracer.span("manual") as span:
            assert current_trace_ids() == (span.trace_id, span.span_id)
    finally:
        db.close()
