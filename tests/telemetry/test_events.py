"""Flight recorder: the bounded ring of typed structured events."""

from __future__ import annotations

import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    EVENT_COLUMNS,
    EVENT_KINDS,
    NULL_RECORDER,
    Event,
    FlightRecorder,
    timeline_rows,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import Tracer


def test_emit_assigns_monotonic_seq_and_keeps_order():
    recorder = FlightRecorder()
    recorder.emit("request.admitted", trace_id=7, model="fraud")
    recorder.emit("batch.formed", trace_id=7, requests=3)
    events = recorder.events()
    assert [e.seq for e in events] == [1, 2]
    assert [e.kind for e in events] == ["request.admitted", "batch.formed"]
    assert events[0].get("model") == "fraud"
    assert events[0].trace_id == 7


def test_ring_keeps_newest_and_counts_evictions():
    recorder = FlightRecorder(max_events=4)
    for i in range(10):
        recorder.emit("request.completed", seq_marker=i)
    assert len(recorder) == 4
    assert recorder.dropped == 6
    assert recorder.emitted_total == 10
    kept = [e.get("seq_marker") for e in recorder.events()]
    assert kept == [6, 7, 8, 9]  # newest survive


def test_invalid_capacity_rejected():
    with pytest.raises(TelemetryError):
        FlightRecorder(max_events=0)


def test_events_filter_by_kind_trace_and_limit():
    recorder = FlightRecorder()
    recorder.emit("request.admitted", trace_id=1)
    recorder.emit("request.admitted", trace_id=2)
    recorder.emit("batch.formed", trace_id=1, traces=(1, 2))
    assert len(recorder.events(kind="request.admitted")) == 2
    # trace filtering honours membership links (the `traces` field).
    for trace in (1, 2):
        kinds = [e.kind for e in recorder.events(trace_id=trace)]
        assert kinds == ["request.admitted", "batch.formed"]
    assert len(recorder.events(limit=1)) == 1


def test_rows_match_show_events_columns():
    recorder = FlightRecorder()
    recorder.emit("cache.hit", trace_id=3, model="fraud", hits=4)
    (row,) = recorder.rows()
    assert len(row) == len(EVENT_COLUMNS)
    seq, ts_ms, kind, trace_id, detail = row
    assert (seq, kind, trace_id) == (1, "cache.hit", 3)
    assert isinstance(ts_ms, float)
    assert "model=fraud" in detail and "hits=4" in detail


def test_per_kind_counters_mirror_into_registry():
    registry = MetricsRegistry()
    recorder = FlightRecorder(metrics=registry)
    recorder.emit("breaker.open")
    recorder.emit("breaker.open")
    recorder.emit("breaker.closed")
    snapshot = registry.snapshot()
    assert snapshot['flight_events_total{kind="breaker.open"}'] == 2
    assert snapshot['flight_events_total{kind="breaker.closed"}'] == 1


def test_concurrent_emits_never_lose_or_duplicate_seq():
    recorder = FlightRecorder(max_events=10_000)
    per_thread = 200

    def emitter():
        for __ in range(per_thread):
            recorder.emit("request.completed")

    threads = [threading.Thread(target=emitter) for __ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seqs = [e.seq for e in recorder.events()]
    assert sorted(seqs) == list(range(1, 8 * per_thread + 1))


def test_as_dicts_is_json_safe():
    recorder = FlightRecorder()
    recorder.emit("batch.formed", trace_id=1, traces=(1, 2), obj=object())
    (d,) = recorder.as_dicts()
    assert d["kind"] == "batch.formed"
    assert d["fields"]["traces"] == [1, 2]
    assert isinstance(d["fields"]["obj"], str)


def test_clear_resets_ring_and_counters():
    recorder = FlightRecorder(max_events=1)
    recorder.emit("request.admitted")
    recorder.emit("request.admitted")
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.dropped == 0
    assert recorder.events() == []


def test_null_recorder_is_inert():
    assert NULL_RECORDER.emit("request.admitted", model="x") is None
    assert NULL_RECORDER.events() == []
    assert NULL_RECORDER.rows() == []
    assert NULL_RECORDER.as_dicts() == []
    assert len(NULL_RECORDER) == 0
    assert NULL_RECORDER.dropped == 0
    assert not NULL_RECORDER.enabled


def test_known_event_kinds_are_distinct():
    assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)


def test_timeline_rows_merge_events_and_spans_with_summary():
    tracer = Tracer()
    span = tracer.start_span("request:fraud", category="server")
    trace = span.trace_id
    recorder = FlightRecorder()
    recorder.emit("request.admitted", trace_id=trace, model="fraud")
    recorder.emit("request.retried", trace_id=trace, attempt=1)
    recorder.emit(
        "request.completed", trace_id=trace, queue_ms=1.5, execute_ms=2.5
    )
    span.finish()
    rows = timeline_rows(recorder.events(trace_id=trace), tracer.spans_for(trace))
    whats = [(source, what) for __, source, what, __d in rows]
    assert ("event", "request.admitted") in whats
    assert ("span", "request:fraud") in whats
    summary = {what: detail for __, source, what, detail in rows if source == "summary"}
    assert summary["outcome"] == "completed"
    assert summary["queue_ms"] == "1.5"
    assert summary["execute_ms"] == "2.5"
    assert summary["retries"] == "1"
    # Relative times start at zero and never regress.
    at = [row[0] for row in rows]
    assert at[0] == 0.0 and at == sorted(at)


def test_timeline_rows_empty_trace_is_empty():
    assert timeline_rows([], []) == []


def test_event_involves_and_get_defaults():
    event = Event(seq=1, ts_s=0.0, kind="batch.executed", trace_id=5,
                  fields=(("traces", (5, 9)),))
    assert event.involves(5) and event.involves(9)
    assert not event.involves(6)
    assert event.get("missing", "fallback") == "fallback"
