"""Query fingerprinting and the bounded workload store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.sql.parser import parse
from repro.sql.unparse import unparse
from repro.telemetry.query_stats import QueryStats
from repro.telemetry.workload import (
    WORKLOAD_COLUMNS,
    NullWorkloadStore,
    WorkloadStore,
    fingerprint,
    normalize,
)


def fp(sql: str) -> str:
    return fingerprint(parse(sql))[0]


def stats(
    sql="SELECT * FROM t",
    statement="Select",
    rows=1,
    elapsed=0.010,
    pool_misses=0,
    cache_hits=0,
    cache_misses=0,
    representations=None,
    trace_id=0,
) -> QueryStats:
    return QueryStats(
        sql=sql,
        statement=statement,
        rows=rows,
        elapsed_seconds=elapsed,
        pool_misses=pool_misses,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        representations=representations or {},
        trace_id=trace_id,
    )


# -- fingerprint normalization ------------------------------------------


def test_literal_insensitivity():
    assert fp("SELECT * FROM t WHERE x = 1") == fp("SELECT * FROM t WHERE x = 2")
    assert fp("SELECT * FROM t WHERE name = 'a'") == fp(
        "SELECT * FROM t WHERE name = 'zz'"
    )


def test_negative_literal_shares_shape_with_positive():
    assert fp("SELECT * FROM t WHERE x = -5") == fp("SELECT * FROM t WHERE x = 5")


def test_whitespace_and_case_stability():
    assert fp("select * from t where x = 1") == fp(
        "SELECT   *\n  FROM T\n WHERE  X = 1"
    )


def test_different_shapes_differ():
    assert fp("SELECT * FROM t WHERE x = 1") != fp("SELECT * FROM t WHERE y = 1")
    assert fp("SELECT * FROM t") != fp("SELECT * FROM u")
    assert fp("SELECT x FROM t") != fp("SELECT y FROM t")


def test_limit_value_is_shape_insensitive_but_presence_matters():
    assert fp("SELECT * FROM t LIMIT 5") == fp("SELECT * FROM t LIMIT 500")
    assert fp("SELECT * FROM t LIMIT 5") != fp("SELECT * FROM t")


def test_insert_collapses_rows_keeping_arity():
    assert fp("INSERT INTO t VALUES (1, 2)") == fp(
        "INSERT INTO t VALUES (3, 4), (5, 6), (7, 8)"
    )
    assert fp("INSERT INTO t VALUES (1, 2)") != fp("INSERT INTO t VALUES (1)")


def test_like_and_in_patterns_normalize():
    assert fp("SELECT * FROM t WHERE name LIKE 'a%'") == fp(
        "SELECT * FROM t WHERE name LIKE 'b_'"
    )
    assert fp("SELECT * FROM t WHERE x IN (1, 2)") == fp(
        "SELECT * FROM t WHERE x IN (7, 9)"
    )


def test_normalized_statement_reparses():
    stmt = parse("SELECT x + 1 FROM t WHERE x BETWEEN 2 AND 9 LIMIT 3")
    normalized = normalize(stmt)
    assert parse(unparse(normalized)) == normalized


_SQL_SAMPLES = st.sampled_from(
    [
        "SELECT * FROM t WHERE x = 1",
        "SELECT x, y FROM t WHERE x > 2 AND y < 3 ORDER BY x DESC LIMIT 7",
        "SELECT COUNT(*) FROM t GROUP BY x HAVING COUNT(x) > 1",
        "INSERT INTO t VALUES (1, 'a'), (2, 'b')",
        "UPDATE t SET x = 5 WHERE y = 'z'",
        "DELETE FROM t WHERE x IS NOT NULL",
        "SELECT * FROM t WHERE name LIKE 'abc%'",
        "SELECT CASE WHEN x > 1 THEN 'hi' ELSE 'lo' END FROM t",
        "SHOW events WHERE kind = 'cache.hit'",
        "SELECT * FROM t UNION ALL SELECT * FROM t",
    ]
)


@settings(max_examples=50, deadline=None)
@given(sql=_SQL_SAMPLES)
def test_fingerprint_deterministic_across_round_trips(sql):
    """fingerprint(parse(s)) == fingerprint(parse(unparse(parse(s))))."""
    stmt = parse(sql)
    rt = parse(unparse(stmt))
    assert fingerprint(stmt) == fingerprint(rt)


# -- the store -----------------------------------------------------------


def test_record_aggregates_per_fingerprint():
    store = WorkloadStore()
    a = parse("SELECT * FROM t WHERE x = 1")
    b = parse("SELECT * FROM t WHERE x = 2")
    store.record(a, stats(elapsed=0.010, rows=3, pool_misses=2))
    store.record(b, stats(elapsed=0.030, rows=1, cache_hits=1))
    rows = store.top_rows()
    assert len(rows) == 1
    row = dict(zip(WORKLOAD_COLUMNS, rows[0]))
    assert row["calls"] == 2
    assert row["rows"] == 4
    assert row["mean_ms"] == pytest.approx(20.0, rel=0.01)
    assert row["bytes"] == 2 * store.page_size
    assert "'?'" in row["sql"]


def test_top_rows_orderings():
    store = WorkloadStore()
    slow = parse("SELECT * FROM slow_table")
    hot = parse("SELECT * FROM hot_table")
    big = parse("SELECT * FROM big_table")
    store.record(slow, stats(elapsed=1.0))
    for __ in range(10):
        store.record(hot, stats(elapsed=0.001))
    store.record(big, stats(elapsed=0.002, pool_misses=100))
    by_latency = store.top_rows(top=1, by="latency")
    by_count = store.top_rows(top=1, by="count")
    by_bytes = store.top_rows(top=1, by="bytes")
    assert "slow_table" in by_latency[0][-1]
    assert "hot_table" in by_count[0][-1]
    assert "big_table" in by_bytes[0][-1]
    with pytest.raises(TelemetryError):
        store.top_rows(by="nope")


def test_detail_rows_for_known_and_unknown_fingerprints():
    store = WorkloadStore()
    stmt = parse("SELECT * FROM t WHERE x = 1")
    fp_hex = store.record(stmt, stats())
    detail = dict(store.detail_rows(fp_hex))
    assert detail["calls"] == 1
    assert detail["fingerprint"] == fp_hex
    assert store.detail_rows("doesnotexist") == []


def test_eviction_is_lru_and_bounded():
    store = WorkloadStore(max_fingerprints=2)
    a = parse("SELECT * FROM a")
    b = parse("SELECT * FROM b")
    c = parse("SELECT * FROM c")
    fa = store.record(a, stats())
    store.record(b, stats())
    store.record(a, stats())  # refresh a: b is now least recent
    store.record(c, stats())  # evicts b
    assert len(store) == 2
    assert store.evicted_total == 1
    assert store.detail_rows(fa), "recently used entry must survive"


def test_latency_regression_detected_after_warmup():
    events = []

    class Recorder:
        def emit(self, kind, **fields):
            events.append((kind, fields))

    store = WorkloadStore(
        regression_factor=3.0,
        regression_warmup=4,
        regression_min_ms=1.0,
        recorder=Recorder(),
    )
    stmt = parse("SELECT * FROM t WHERE x = 1")
    for __ in range(4):
        store.record(stmt, stats(elapsed=0.010))
    # 10x the baseline, well past factor 3 and the 1ms floor.
    store.record(stmt, stats(elapsed=0.100))
    kinds = [k for k, __ in events]
    assert kinds == ["workload.regression"]
    assert events[0][1]["regression"] == "latency"
    assert store.regressions_total() == 1


def test_no_regression_during_warmup_or_below_floor():
    store = WorkloadStore(
        regression_factor=3.0, regression_warmup=4, regression_min_ms=50.0
    )
    stmt = parse("SELECT * FROM t")
    store.record(stmt, stats(elapsed=0.100))  # warmup: never flags
    for __ in range(4):
        store.record(stmt, stats(elapsed=0.001))
    # 10x slower but only +9ms, below the 50ms absolute floor.
    store.record(stmt, stats(elapsed=0.010))
    assert store.regressions_total() == 0


def test_plan_change_regression():
    events = []

    class Recorder:
        def emit(self, kind, **fields):
            events.append((kind, fields))

    store = WorkloadStore(regression_warmup=2, recorder=Recorder())
    stmt = parse("SELECT * FROM t")
    for __ in range(3):
        store.record(
            stmt, stats(representations={"dl-centric": 1}, elapsed=0.01)
        )
    store.record(
        stmt, stats(representations={"relation-centric": 1}, elapsed=0.01)
    )
    assert [k for k, __ in events] == ["workload.regression"]
    assert events[0][1]["regression"] == "plan"


def test_persistently_slower_world_rebaselines():
    events = []

    class Recorder:
        def emit(self, kind, **fields):
            events.append(kind)

    store = WorkloadStore(
        regression_factor=3.0,
        regression_warmup=2,
        regression_min_ms=1.0,
        recorder=Recorder(),
    )
    stmt = parse("SELECT * FROM t")
    store.record(stmt, stats(elapsed=0.010))
    store.record(stmt, stats(elapsed=0.010))
    # A sustained 10x shift: flags at first, then the EW baseline catches
    # up and the alerts stop.
    for __ in range(30):
        store.record(stmt, stats(elapsed=0.100))
    assert 0 < events.count("workload.regression") < 30


def test_null_store_is_inert():
    store = NullWorkloadStore()
    assert store.record(parse("SELECT * FROM t"), stats()) == ""
    assert store.top_rows() == []
    assert store.detail_rows("x") == []
    assert len(store) == 0
