"""Plan-quality audit: classification, the auditor ring, and SHOW AUDIT."""

import pytest

from repro import Database
from repro.config import KB, MB
from repro.data import fraud_transactions
from repro.errors import SqlError
from repro.models import fraud_fc_256
from repro.telemetry import NULL_AUDITOR, AUDIT_COLUMNS, PlanAuditor
from repro.telemetry.audit import classify
from repro.telemetry.registry import MetricsRegistry

FEATURES = ", ".join(f"f{i}" for i in range(28))
PREDICT_SQL = f"SELECT PREDICT(fraud, {FEATURES}) FROM tx"


# -- classify ---------------------------------------------------------------


def test_classify_ok_within_band():
    verdict, __ = classify("udf-centric", 1000, 1100, threshold_bytes=1 * MB)
    assert verdict == "ok"


def test_classify_under_estimate():
    verdict, note = classify("udf-centric", 1000, 2100, threshold_bytes=1 * MB)
    assert verdict == "under-estimate"
    assert "2.1x" in note


def test_classify_over_estimate():
    verdict, note = classify("dl-centric", 10_000, 1000, threshold_bytes=1 * MB)
    assert verdict == "over-estimate"
    assert "10%" in note


def test_classify_threshold_breach_beats_ratio():
    # Even a spot-on estimate is a misprediction when the actual peak
    # crosses the routing threshold: the stage should have been lowered.
    verdict, note = classify(
        "udf-centric", 2 * MB, 2 * MB, threshold_bytes=1 * MB
    )
    assert verdict == "threshold-breach"
    assert "routing threshold" in note


def test_classify_unnecessary_lowering():
    verdict, note = classify(
        "relation-centric", 4 * MB, 100 * KB, threshold_bytes=2 * MB
    )
    assert verdict == "unnecessary-lowering"
    assert "under threshold" in note


def test_classify_relation_centric_near_threshold_is_ok():
    verdict, __ = classify(
        "relation-centric", 4 * MB, int(1.95 * MB), threshold_bytes=2 * MB
    )
    assert verdict == "ok"


def test_classify_no_estimate_is_ok():
    verdict, note = classify("udf-centric", 0, 5000, threshold_bytes=1 * MB)
    assert verdict == "ok"
    assert "no estimate" in note


# -- PlanAuditor ------------------------------------------------------------


def make_auditor(max_records=4) -> tuple[PlanAuditor, MetricsRegistry]:
    registry = MetricsRegistry()
    return PlanAuditor(registry, max_records=max_records), registry


def record(auditor, i=0, representation="udf-centric", estimated=1000, actual=1000):
    return auditor.record_stage(
        model="m",
        stage_index=i,
        representation=representation,
        ops="matmul",
        rows=10,
        elapsed_seconds=0.001,
        estimated_bytes=estimated,
        actual_peak_bytes=actual,
        threshold_bytes=1 * MB,
    )


def test_auditor_ring_is_bounded_but_total_grows():
    auditor, __ = make_auditor(max_records=4)
    for i in range(10):
        record(auditor, i)
    assert len(auditor) == 4
    assert auditor.total_recorded == 10
    assert [a.stage_index for a in auditor] == [6, 7, 8, 9]


def test_marker_slices_per_statement_records():
    auditor, __ = make_auditor(max_records=16)
    record(auditor, 0)
    marker = auditor.marker()
    record(auditor, 1)
    record(auditor, 2)
    assert [a.stage_index for a in auditor.records_since(marker)] == [1, 2]
    assert auditor.records_since(auditor.marker()) == []


def test_marker_survives_ring_overflow():
    auditor, __ = make_auditor(max_records=2)
    marker = auditor.marker()
    for i in range(5):
        record(auditor, i)
    # Only the ring's worth is still available, clamped not crashing.
    assert [a.stage_index for a in auditor.records_since(marker)] == [3, 4]


def test_auditor_drives_metrics():
    auditor, registry = make_auditor()
    record(auditor, 0, actual=5000)  # 5x: under-estimate
    record(auditor, 1, actual=1000)  # ok
    snap = registry.snapshot()
    assert snap['audit_stage_records_total{representation="udf-centric"}'] == 2
    assert (
        snap[
            'audit_mispredictions_total{representation="udf-centric",'
            'verdict="under-estimate"}'
        ]
        == 1
    )
    assert snap["audit_estimate_ratio_count"] == 2
    assert auditor.mispredictions()[0].verdict == "under-estimate"


def test_observe_peak_creates_per_engine_histograms():
    auditor, registry = make_auditor()
    auditor.observe_peak("udf-centric", 100 * KB)
    auditor.observe_peak("relation-centric", 10 * KB)
    snap = registry.snapshot()
    assert snap['engine_peak_memory_bytes_count{engine="udf-centric"}'] == 1
    assert snap['engine_peak_memory_bytes_sum{engine="relation-centric"}'] == 10 * KB


def test_audit_rows_align_with_columns():
    auditor, __ = make_auditor()
    record(auditor, 0)
    rows = auditor.rows()
    assert len(rows) == 1
    assert len(rows[0]) == len(AUDIT_COLUMNS)
    as_dict = dict(zip(AUDIT_COLUMNS, rows[0]))
    assert as_dict["model"] == "m"
    assert as_dict["ratio"] == 1.0
    assert as_dict["verdict"] == "ok"


def test_null_auditor_is_inert():
    assert NULL_AUDITOR.enabled is False
    assert NULL_AUDITOR.record_stage() is None
    NULL_AUDITOR.observe_peak("udf-centric", 123)
    assert NULL_AUDITOR.rows() == []
    assert NULL_AUDITOR.records_since(NULL_AUDITOR.marker()) == []


# -- end to end through SQL -------------------------------------------------


def make_fraud_db(**overrides) -> Database:
    db = Database(**overrides)
    __, __, rows = fraud_transactions(120, seed=7)
    columns = ", ".join(f"f{i} DOUBLE" for i in range(28))
    db.execute(f"CREATE TABLE tx (id INT, {columns}, label INT)")
    db.load_rows("tx", rows)
    db.register_model(fraud_fc_256(), name="fraud")
    return db


def test_show_audit_reports_misprediction_after_threshold_crossing():
    # 512 KiB threshold lowers fraud-fc to relation-centric; blockwise
    # execution peaks far under the threshold -> unnecessary-lowering.
    db = make_fraud_db(memory_threshold_bytes=512 * KB)
    try:
        assert db.execute("SHOW AUDIT").rows == []
        db.execute(PREDICT_SQL)
        cur = db.execute("SHOW AUDIT")
        assert cur.columns == AUDIT_COLUMNS
        assert len(cur) >= 1
        by_verdict = dict(
            zip(cur.column("verdict"), cur.column("note"))
        )
        assert "unnecessary-lowering" in by_verdict
        assert "under threshold" in by_verdict["unnecessary-lowering"]
        stats = dict(db.execute("SHOW STATS").rows)
        assert stats["audit.records"] >= 1
        assert stats["audit.mispredictions"] >= 1
    finally:
        db.close()


def test_cursor_stats_carry_stage_audits():
    db = make_fraud_db()
    try:
        cur = db.execute(PREDICT_SQL)
        audits = cur.stats.stage_audits
        assert audits, "PREDICT should audit at least one stage"
        assert all(a.actual_peak_bytes > 0 for a in audits)
        assert all(a.estimated_bytes > 0 for a in audits)
        assert "audit:" in cur.stats.render()
        # Stats are per statement: a query with no inference stages does
        # not inherit the earlier PREDICT's audit records.
        plain = db.execute("SELECT id FROM tx")
        assert plain.stats.stage_audits == []
    finally:
        db.close()


def test_audit_disabled_with_telemetry():
    db = Database(telemetry_enabled=False)
    try:
        db.execute("CREATE TABLE t (id INT)")
        assert db.execute("SHOW AUDIT").rows == []
    finally:
        db.close()


def test_show_unknown_target_raises():
    db = Database()
    try:
        with pytest.raises(SqlError, match="SHOW"):
            db.execute("SHOW BOGUS")
        # The session-level dispatch also rejects a hand-built AST, so
        # an unknown target can never silently fall through to MODELS.
        from repro.sql.ast import Show

        with pytest.raises(SqlError, match="unknown SHOW target"):
            db._execute_statement(Show("bogus"))
    finally:
        db.close()


def test_auditor_record_stage_is_thread_safe():
    import threading

    auditor, registry = make_auditor(max_records=10_000)
    per_thread = 500

    def work(tid: int):
        for i in range(per_thread):
            record(auditor, i, estimated=1000, actual=1000 if i % 2 else 8000)
            auditor.observe_peak(f"engine-{tid % 2}", 4096)

    threads = [threading.Thread(target=work, args=(t,)) for t in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = 6 * per_thread
    # No appends lost: ring, running total, and metrics all agree.
    assert auditor.total_recorded == total
    assert len(auditor) == total
    assert len(auditor.mispredictions()) == total // 2
    snapshot = registry.snapshot()
    recorded = sum(
        v for k, v in snapshot.items() if k.startswith("audit_stage_records_total")
    )
    assert recorded == total
    peaks = sum(
        v
        for k, v in snapshot.items()
        if k.startswith("engine_peak_memory_bytes_count")
    )
    assert peaks == total
