"""Span tracer: nesting, bounded collection, Chrome-trace export."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import NullTracer, Tracer


def test_nested_spans_record_parent_child():
    tracer = Tracer()
    with tracer.span("query") as query:
        with tracer.span("parse") as parse:
            pass
        with tracer.span("execute") as execute:
            with tracer.span("predict:fraud") as predict:
                pass
    spans = {s.name: s for s in tracer.finished}
    assert len(spans) == 4
    assert spans["query"].parent_id is None
    assert spans["parse"].parent_id == query.span_id
    assert spans["execute"].parent_id == query.span_id
    assert spans["predict:fraud"].parent_id == execute.span_id
    assert parse.duration_s >= 0.0
    assert predict.end_s >= predict.start_s


def test_siblings_do_not_nest():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    a, b = tracer.finished
    assert a.parent_id is None and b.parent_id is None


def test_span_set_attaches_args():
    tracer = Tracer()
    with tracer.span("execute", rows=0) as span:
        span.set(rows=10, engine="udf-centric")
    (finished,) = tracer.finished
    assert finished.args == {"rows": 10, "engine": "udf-centric"}


def test_max_spans_bounds_memory():
    tracer = Tracer(max_spans=2)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.finished) == 2
    assert tracer.dropped == 3
    tracer.clear()
    assert tracer.finished == [] and tracer.dropped == 0


def test_max_spans_must_be_positive():
    with pytest.raises(TelemetryError):
        Tracer(max_spans=0)


def test_export_chrome_trace_is_valid_json(tmp_path):
    tracer = Tracer()
    with tracer.span("query", category="sql", sql="SELECT 1"):
        with tracer.span("parse", category="sql"):
            pass
    path = tmp_path / "trace.json"
    assert tracer.export_chrome_trace(str(path)) == 2
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in events] == ["query", "parse"]  # sorted by start
    for event in events:
        assert event["dur"] >= 0
        assert isinstance(event["pid"], int)
    # Metadata records name the process and every thread that emitted spans.
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    meta_names = {e["name"] for e in meta}
    assert {"process_name", "thread_name"} <= meta_names
    named_tids = {e["tid"] for e in meta if e["name"] == "thread_name"}
    assert {e["tid"] for e in events} <= named_tids
    query, parse = events
    assert parse["args"]["parent_id"] == query["args"]["span_id"]
    assert query["args"]["sql"] == "SELECT 1"
    # The child is contained within the parent (how Chrome nests events).
    assert query["ts"] <= parse["ts"]
    assert parse["ts"] + parse["dur"] <= query["ts"] + query["dur"] + 1e-3


def test_null_tracer_exports_valid_empty_trace(tmp_path):
    tracer = NullTracer()
    with tracer.span("ignored") as span:
        span.set(anything=1)
    path = tmp_path / "trace.json"
    assert tracer.export_chrome_trace(str(path)) == 0
    assert json.loads(path.read_text()) == {"traceEvents": [], "displayTimeUnit": "ms"}
    assert tracer.finished == []
