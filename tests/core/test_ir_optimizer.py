import numpy as np
import pytest

from repro.config import SystemConfig, mb
from repro.core import (
    AotCompiler,
    LinAlgOp,
    Representation,
    RuleBasedOptimizer,
    lower_model,
    node_flops,
    node_memory_requirement,
    plan_peak_memory,
)
from repro.dlruntime import Linear, Model, ReLU, Softmax
from repro.errors import PlanError
from repro.models import amazon_14k_fc, fraud_fc_256, landcover


def test_lowering_one_node_per_layer():
    model = fraud_fc_256()
    nodes = lower_model(model)
    assert [n.op for n in nodes] == [
        LinAlgOp.MATMUL,
        LinAlgOp.RELU,
        LinAlgOp.MATMUL,
        LinAlgOp.SOFTMAX,
    ]
    assert nodes[0].input_shape == (28,)
    assert nodes[0].output_shape == (256,)


def test_memory_requirement_matches_paper_formula():
    """For a matmul m×k by k×n the paper estimates m·k + k·n + m·n."""
    model = Model("m", [Linear(100, 50, name="fc")], input_shape=(100,))
    node = lower_model(model)[0]
    batch = 32
    expected = (32 * 100 + 32 * 50) * 8 + (100 * 50 + 50) * 8
    assert node_memory_requirement(node, batch) == expected


def test_node_flops():
    model = Model("m", [Linear(10, 4, name="fc")], input_shape=(10,))
    node = lower_model(model)[0]
    assert node_flops(node, 8) == 8 * 2 * 10 * 4


def test_small_model_becomes_single_udf():
    config = SystemConfig(memory_threshold_bytes=mb(2))
    plan = RuleBasedOptimizer(config).plan_model(fraud_fc_256(), batch_size=256)
    assert plan.is_single_udf
    assert len(plan.stages) == 1
    assert plan.stages[0].representation is Representation.UDF_CENTRIC


def test_large_weight_triggers_relation_centric():
    config = SystemConfig(memory_threshold_bytes=mb(2))
    model = amazon_14k_fc(scale=0.02)  # first weight ~11951*1024*8 ≈ 98 MB
    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=1000)
    reps = plan.representations
    assert Representation.RELATION_CENTRIC in reps
    # The big matmul is the first stage.
    assert plan.stages[0].representation is Representation.RELATION_CENTRIC
    assert plan.notes  # the optimizer explains its choice


def test_landcover_conv_exceeds_threshold():
    config = SystemConfig(memory_threshold_bytes=mb(2))
    model = landcover(spatial=320, out_channels=256)
    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=1)
    assert plan.stages[0].representation is Representation.RELATION_CENTRIC


def test_threshold_sweep_flips_representation():
    model = fraud_fc_256()
    batch = 256
    tiny = RuleBasedOptimizer(
        SystemConfig(memory_threshold_bytes=1024)
    ).plan_model(model, batch)
    assert Representation.RELATION_CENTRIC in tiny.representations
    huge = RuleBasedOptimizer(
        SystemConfig(memory_threshold_bytes=mb(512))
    ).plan_model(model, batch)
    assert huge.is_single_udf


def test_force_representation():
    config = SystemConfig()
    plan = RuleBasedOptimizer(config).plan_model(
        fraud_fc_256(), 64, force="relation-centric"
    )
    assert all(r is Representation.RELATION_CENTRIC for r in plan.representations)
    plan2 = RuleBasedOptimizer(config).plan_model(
        fraud_fc_256(), 64, force=Representation.DL_CENTRIC
    )
    assert all(r is Representation.DL_CENTRIC for r in plan2.representations)


def test_stage_fusion_groups_consecutive_nodes():
    config = SystemConfig(memory_threshold_bytes=mb(2))
    model = amazon_14k_fc(scale=0.02)
    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=1000)
    # relu after the big matmul fuses with whichever side shares its
    # representation; total stage count is less than node count.
    assert len(plan.stages) < len(lower_model(model))
    for stage in plan.stages:
        assert all(n.representation is stage.representation for n in stage.nodes)


def test_plan_peak_memory_excludes_relation_stages():
    config = SystemConfig(memory_threshold_bytes=mb(2))
    model = amazon_14k_fc(scale=0.02)
    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=1000)
    peak = plan_peak_memory(plan)
    first_node = plan.stages[0].nodes[0]
    assert peak < node_memory_requirement(first_node, 1000)


def test_invalid_batch_rejected():
    with pytest.raises(PlanError):
        RuleBasedOptimizer(SystemConfig()).plan_model(fraud_fc_256(), 0)


def test_explain_is_readable():
    config = SystemConfig(memory_threshold_bytes=mb(2))
    plan = RuleBasedOptimizer(config).plan_model(fraud_fc_256(), 128)
    text = plan.explain()
    assert "udf-centric" in text
    assert "matmul" in text


def test_aot_compiler_selects_covering_plan():
    config = SystemConfig(memory_threshold_bytes=mb(2))
    compiled = AotCompiler(config, batch_grid=(1, 64, 1024)).compile(fraud_fc_256())
    assert compiled.select(1).batch_size == 1
    assert compiled.select(50).batch_size == 64
    assert compiled.select(64).batch_size == 64
    assert compiled.select(9999).batch_size == 1024  # beyond grid: largest
    assert compiled.selections == 4
    with pytest.raises(PlanError):
        compiled.select(0)


def test_aot_plans_vary_with_batch():
    """Memory estimates grow with batch, so representations can flip."""
    config = SystemConfig(memory_threshold_bytes=mb(32))
    from repro.models import encoder_fc

    compiled = AotCompiler(config, batch_grid=(1, 8192)).compile(encoder_fc())
    small = compiled.plans[1]
    large = compiled.plans[8192]
    assert small.is_single_udf
    assert Representation.RELATION_CENTRIC in large.representations


def test_plan_nodes_carry_memory_estimates():
    config = SystemConfig(memory_threshold_bytes=mb(2))
    batch = 256
    plan = RuleBasedOptimizer(config).plan_model(fraud_fc_256(), batch)
    for stage in plan.stages:
        for node in stage.nodes:
            assert node.estimated_bytes == node_memory_requirement(node, batch)
            assert node.estimated_bytes > 0
        # The stage estimate is its widest node (stages run node-at-a-time).
        assert stage.estimated_bytes == max(
            n.estimated_bytes for n in stage.nodes
        )
        assert "est=" in stage.nodes[0].describe()


def test_forced_plans_still_carry_estimates():
    plan = RuleBasedOptimizer(SystemConfig()).plan_model(
        fraud_fc_256(), 64, force="relation-centric"
    )
    assert all(
        node.estimated_bytes > 0 for stage in plan.stages for node in stage.nodes
    )


def test_optimizer_decisions_count_each_operator_once():
    from repro.telemetry import Telemetry

    telemetry = Telemetry(enabled=True)
    config = SystemConfig(memory_threshold_bytes=mb(2))
    optimizer = RuleBasedOptimizer(config, telemetry=telemetry)
    model = fraud_fc_256()
    optimizer.plan_model(model, 256)
    snapshot = telemetry.registry.snapshot()
    decisions = sum(
        v
        for k, v in snapshot.items()
        if k.startswith("optimizer_decisions_total")
    )
    assert decisions == len(lower_model(model))


def test_device_aware_offload_counts_decision_once():
    # Regression: the UDF->DL reassignment used to increment both the
    # udf-centric and dl-centric decision counters for the same operator.
    from repro.core import DeviceAwareOptimizer
    from repro.dlruntime import Linear, Model, cpu_device, gpu_device
    from repro.telemetry import Telemetry

    telemetry = Telemetry(enabled=True)
    config = SystemConfig(memory_threshold_bytes=mb(512))
    heavy = Model("heavy", [Linear(2048, 2048, name="fc")], input_shape=(2048,))
    optimizer = DeviceAwareOptimizer(
        config, [cpu_device(), gpu_device()], telemetry=telemetry
    )
    plan = optimizer.plan_model(heavy, batch_size=2048)
    assert plan.stages[0].representation is Representation.DL_CENTRIC
    snapshot = telemetry.registry.snapshot()
    by_rep = {
        k: v
        for k, v in snapshot.items()
        if k.startswith("optimizer_decisions_total")
    }
    assert sum(by_rep.values()) == 1
    assert by_rep['optimizer_decisions_total{representation="dl-centric"}'] == 1


def test_representation_parse():
    assert Representation.parse("udf-centric") is Representation.UDF_CENTRIC
    with pytest.raises(ValueError):
        Representation.parse("quantum-centric")


def test_device_aware_optimizer_offloads_gpu_worthy_operators():
    from repro.core import DeviceAwareOptimizer
    from repro.dlruntime import Linear, Model, cpu_device, gpu_device

    config = SystemConfig(memory_threshold_bytes=mb(512))
    devices = [cpu_device(), gpu_device()]
    heavy = Model(
        "heavy", [Linear(2048, 2048, name="fc")], input_shape=(2048,)
    )
    plan = DeviceAwareOptimizer(config, devices).plan_model(heavy, batch_size=2048)
    assert plan.stages[0].representation is Representation.DL_CENTRIC
    assert any("offloaded" in note for note in plan.notes)


def test_device_aware_optimizer_keeps_small_models_in_database():
    from repro.core import DeviceAwareOptimizer
    from repro.dlruntime import cpu_device, gpu_device

    config = SystemConfig(memory_threshold_bytes=mb(64))
    devices = [cpu_device(), gpu_device()]
    plan = DeviceAwareOptimizer(config, devices).plan_model(
        fraud_fc_256(), batch_size=32
    )
    assert plan.is_single_udf


def test_device_aware_optimizer_never_overrides_relation_centric():
    from repro.core import DeviceAwareOptimizer
    from repro.dlruntime import cpu_device, gpu_device

    config = SystemConfig(memory_threshold_bytes=mb(2))
    model = amazon_14k_fc(scale=0.02)
    plan = DeviceAwareOptimizer(config, [cpu_device(), gpu_device()]).plan_model(
        model, batch_size=1000
    )
    assert plan.stages[0].representation is Representation.RELATION_CENTRIC


def test_device_aware_optimizer_respects_force():
    from repro.core import DeviceAwareOptimizer
    from repro.dlruntime import cpu_device, gpu_device

    config = SystemConfig()
    plan = DeviceAwareOptimizer(config, [cpu_device(), gpu_device()]).plan_model(
        fraud_fc_256(), 64, force="udf-centric"
    )
    assert all(r is Representation.UDF_CENTRIC for r in plan.representations)
