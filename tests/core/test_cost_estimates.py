"""Analytic cost model: latency estimates per representation."""

import pytest

from repro.config import SystemConfig, mb
from repro.core import RuleBasedOptimizer
from repro.core.cost import (
    estimate_plan_latency,
    estimate_stage_latency,
    stage_io_bytes,
)
from repro.dlruntime import cpu_device
from repro.models import encoder_fc, fraud_fc_256


@pytest.fixture
def device():
    return cpu_device()


def plan_for(model, batch, threshold_mb, force=None):
    config = SystemConfig(memory_threshold_bytes=mb(threshold_mb))
    return RuleBasedOptimizer(config).plan_model(model, batch, force=force), config


def test_stage_io_bytes(device):
    plan, __ = plan_for(fraud_fc_256(), 64, 64)
    stage = plan.stages[0]
    in_bytes, out_bytes = stage_io_bytes(stage, 64)
    assert in_bytes == 64 * 28 * 8
    assert out_bytes == 64 * 2 * 8


def test_dl_centric_estimate_adds_wire_time(device):
    model = fraud_fc_256()
    udf_plan, config = plan_for(model, 256, 64, force="udf-centric")
    dl_plan, __ = plan_for(model, 256, 64, force="dl-centric")
    udf = estimate_stage_latency(udf_plan.stages[0], 256, config, device)
    dl = estimate_stage_latency(dl_plan.stages[0], 256, config, device)
    # The framework's compute discount is tiny for this model; the wire
    # time dominates, so DL-centric estimates higher for small models.
    assert dl > udf


def test_relation_centric_estimate_charges_block_overhead(device):
    model = encoder_fc()
    udf_plan, config = plan_for(model, 512, 512, force="udf-centric")
    rel_plan, __ = plan_for(model, 512, 512, force="relation-centric")
    udf = estimate_plan_latency(udf_plan, config, device)
    rel = estimate_plan_latency(rel_plan, config, device)
    assert rel > udf  # chunking overhead, the reason the threshold exists


def test_plan_latency_is_sum_of_stages(device):
    plan, config = plan_for(encoder_fc(), 128, 26)
    total = estimate_plan_latency(plan, config, device)
    parts = sum(
        estimate_stage_latency(stage, 128, config, device) for stage in plan.stages
    )
    assert total == pytest.approx(parts)


def test_estimates_scale_with_batch(device):
    model = fraud_fc_256()
    plan_small, config = plan_for(model, 32, 64, force="udf-centric")
    plan_large, __ = plan_for(model, 4096, 64, force="udf-centric")
    small = estimate_plan_latency(plan_small, config, device)
    large = estimate_plan_latency(plan_large, config, device)
    assert large > small
