"""The Sec. 6.1 extension: backward propagation as relational pipelines.

Gradients computed through transpose / join / SUM_BLOCK pipelines must
match the autodiff tape to machine precision, and relational SGD must
actually learn.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RelationalTrainer
from repro.dlruntime import Conv2d, Linear, Model, ReLU, Softmax
from repro.errors import PlanError
from repro.relational.operators import collect
from repro.tensor import BlockedMatrix, drain_to_matrix
from repro.tensor.linalg import (
    column_sum_pipeline,
    elementwise_binary_pipeline,
    transpose_pipeline,
)


def ffnn(rng, in_features=10, hidden=16, classes=3):
    return Model(
        "clf",
        [
            Linear(in_features, hidden, rng=rng, name="fc1"),
            ReLU(),
            Linear(hidden, classes, rng=rng, name="fc2"),
            Softmax(),
        ],
        input_shape=(in_features,),
    )


def autodiff_grads(model, x, labels):
    for __, param in model.parameters():
        param.zero_grad()
    logits = model.forward_ad(x)
    loss = logits.softmax_cross_entropy(labels)
    loss.backward()
    grads = {name: param.grad.copy() for name, param in model.parameters()}
    return float(loss.data), grads


# -- pipeline building blocks -------------------------------------------------


def _scan(matrix):
    from repro.relational.operators import GeneratorScan
    from repro.tensor.block import block_table_schema, block_to_row

    return GeneratorScan(
        block_table_schema(),
        lambda: (block_to_row(b) for b in matrix.iter_blocks()),
    )


def test_transpose_pipeline_matches_numpy(rng):
    a = rng.normal(size=(7, 11))
    blocked = BlockedMatrix.from_dense(a, (3, 3))
    out = drain_to_matrix(transpose_pipeline(_scan(blocked)), (11, 7), (3, 3))
    np.testing.assert_array_equal(out.to_dense(), a.T)


def test_elementwise_binary_pipeline_relu_mask(rng):
    g = rng.normal(size=(6, 8))
    z = rng.normal(size=(6, 8))
    out = drain_to_matrix(
        elementwise_binary_pipeline(
            _scan(BlockedMatrix.from_dense(g, (4, 4))),
            _scan(BlockedMatrix.from_dense(z, (4, 4))),
            lambda a, b: a * (b > 0),
            "mask",
        ),
        (6, 8),
        (4, 4),
    )
    np.testing.assert_allclose(out.to_dense(), g * (z > 0))


def test_column_sum_pipeline(rng):
    a = rng.normal(size=(9, 7))
    out = drain_to_matrix(
        column_sum_pipeline(_scan(BlockedMatrix.from_dense(a, (4, 3)))),
        (1, 7),
        (1, 3),
    )
    np.testing.assert_allclose(out.to_dense()[0], a.sum(axis=0), atol=1e-12)


# -- full backward pass -------------------------------------------------------


def test_relational_gradients_match_autodiff(rng):
    model = ffnn(rng)
    x = rng.normal(size=(20, 10))
    labels = rng.integers(0, 3, size=20)
    trainer = RelationalTrainer(model, block_shape=(4, 4))
    relational = trainer.compute_gradients(x, labels)
    ad_loss, ad_grads = autodiff_grads(model, x, labels)
    assert relational.loss == pytest.approx(ad_loss, abs=1e-10)
    np.testing.assert_allclose(
        relational.weight_grads["fc1"], ad_grads["fc1.weight"], atol=1e-10
    )
    np.testing.assert_allclose(
        relational.weight_grads["fc2"], ad_grads["fc2.weight"], atol=1e-10
    )
    np.testing.assert_allclose(
        relational.bias_grads["fc1"], ad_grads["fc1.bias"], atol=1e-10
    )
    np.testing.assert_allclose(
        relational.bias_grads["fc2"], ad_grads["fc2.bias"], atol=1e-10
    )


def test_relational_sgd_learns_blobs(rng):
    centers = rng.normal(scale=4.0, size=(3, 10))
    labels = rng.integers(0, 3, size=150)
    x = centers[labels] + rng.normal(scale=0.4, size=(150, 10))
    model = ffnn(rng)
    trainer = RelationalTrainer(model, block_shape=(8, 8))
    losses = [trainer.step(x, labels, lr=0.5) for __ in range(25)]
    assert losses[-1] < losses[0] * 0.5
    accuracy = float((model.predict(x) == labels).mean())
    assert accuracy > 0.9


def test_relational_trainer_rejects_conv(rng):
    conv_model = Model(
        "cnn",
        [Conv2d(1, 2, (3, 3), rng=rng, name="c")],
        input_shape=(8, 8, 1),
    )
    with pytest.raises(PlanError):
        RelationalTrainer(conv_model)
    with pytest.raises(PlanError):
        RelationalTrainer(ffnn(rng), block_shape=(4, 8))


@settings(max_examples=10, deadline=None)
@given(
    batch=st.integers(2, 16),
    in_features=st.integers(2, 12),
    hidden=st.integers(2, 12),
    classes=st.integers(2, 5),
    block=st.integers(2, 6),
    seed=st.integers(0, 100),
)
def test_property_relational_backward_equals_autodiff(
    batch, in_features, hidden, classes, block, seed
):
    rng = np.random.default_rng(seed)
    model = Model(
        "p",
        [
            Linear(in_features, hidden, rng=rng, name="fc1"),
            ReLU(),
            Linear(hidden, classes, rng=rng, name="fc2"),
        ],
        input_shape=(in_features,),
    )
    x = rng.normal(size=(batch, in_features))
    labels = rng.integers(0, classes, size=batch)
    relational = RelationalTrainer(model, block_shape=(block, block)).compute_gradients(
        x, labels
    )
    __, ad_grads = autodiff_grads(model, x, labels)
    np.testing.assert_allclose(
        relational.weight_grads["fc1"], ad_grads["fc1.weight"], atol=1e-9
    )
    np.testing.assert_allclose(
        relational.bias_grads["fc2"], ad_grads["fc2.bias"], atol=1e-9
    )
