"""ClusterPool behavior short of crash handling (see test_cluster_e2e)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterPool
from repro.errors import CatalogError, PlanError

from .conftest import shm_listing


@pytest.fixture
def pool(cluster_db):
    with ClusterPool(cluster_db) as p:
        yield p


def test_predict_matches_thread_path(pool, cluster_db, features):
    expected = cluster_db.predict_labels("fraud", features)
    np.testing.assert_array_equal(pool.predict("fraud", features), expected)


def test_predict_leaves_no_segments_behind(cluster_db, features, shm_before):
    with ClusterPool(cluster_db) as pool:
        for __ in range(8):
            pool.predict("fraud", features)
    leaked = {f for f in shm_listing() - shm_before if f.startswith("rc")}
    assert not leaked


def test_engine_errors_cross_the_boundary_typed(pool):
    # The worker executed fine; the engine rejected the batch.  The
    # client sees the same typed error the thread path raises.
    with pytest.raises(PlanError):
        pool.predict("fraud", np.empty((0, 28)))


def test_unknown_model_raises_catalog_error(pool):
    with pytest.raises(CatalogError):
        pool.predict("nope", np.ones((4, 28)))


def test_oversized_batch_counts_shm_fallback(cluster_db, features):
    import dataclasses

    config = dataclasses.replace(cluster_db.config, cluster_shm_max_bytes=64)
    cluster_db._config = config  # tiny cap: every batch falls back
    try:
        with ClusterPool(cluster_db) as pool:
            expected = cluster_db.predict_labels("fraud", features)
            np.testing.assert_array_equal(
                pool.predict("fraud", features), expected
            )
            assert pool.snapshot()["counters"]["shm_fallbacks"] >= 1
    finally:
        cluster_db._config = dataclasses.replace(
            config, cluster_shm_max_bytes=8 * 1024 * 1024
        )


def test_placement_is_replicated_and_visible(pool):
    replicas = pool.ensure_model("fraud")
    assert len(replicas) == pool.replication == 2
    assert pool.placement_map() == {"fraud": list(replicas)}


def test_show_cluster_surfaces_pool_state(pool, cluster_db, features):
    pool.predict("fraud", features)
    rows = dict(cluster_db.execute("SHOW CLUSTER").fetchall())
    assert rows["cluster.workers"] == 2
    assert rows["cluster.requests.completed"] >= 1
    assert rows["cluster.placement.fraud"]
    assert "cluster.worker.0.pid" in rows
    assert rows["cluster.worker.0.state"] == "ready"


def test_show_cluster_empty_without_pool():
    from repro import Database

    with Database() as db:
        assert db.execute("SHOW CLUSTER").fetchall() == []


def test_show_server_gains_worker_rows_only_in_cluster_mode(
    cluster_db, features
):
    server = cluster_db.serve(cluster_workers=2)
    try:
        server.submit("fraud", features).result(timeout=30)
        rows = dict(cluster_db.execute("SHOW SERVER").fetchall())
        assert rows["server.worker.0.state"] == "ready"
        assert rows["server.worker.1.state"] == "ready"
        assert "fraud" in rows["server.worker.0.models"] or (
            "fraud" in rows["server.worker.1.models"]
        )
    finally:
        server.close()
    # Thread mode (explicitly overriding the config knob): the same
    # statement must not mention worker processes.
    server = cluster_db.serve(cluster_workers=0)
    try:
        thread_rows = cluster_db.execute("SHOW SERVER").fetchall()
        assert not any(".worker." in name for name, __ in thread_rows)
    finally:
        server.close()


def test_serve_cluster_closes_pool_with_server(cluster_db):
    server = cluster_db.serve(cluster_workers=2)
    pool = server.cluster
    assert cluster_db._cluster is pool
    server.close()
    assert pool.closed
    assert cluster_db._cluster is None


def test_worker_processes_share_the_core_budget(cluster_db):
    with ClusterPool(cluster_db) as pool:
        budget = pool._worker_config.num_cores
        assert budget == max(1, cluster_db.config.num_cores // pool.workers)
        assert pool._worker_config.cluster_workers == 0  # no recursion
        assert pool._worker_config.telemetry_enabled is False


def test_predict_after_close_raises(cluster_db, features):
    pool = ClusterPool(cluster_db)
    pool.close()
    from repro.errors import ClusterError

    with pytest.raises(ClusterError):
        pool.predict("fraud", features)
