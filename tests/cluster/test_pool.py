"""ClusterPool behavior short of crash handling (see test_cluster_e2e)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterPool
from repro.dlruntime.layers import Model
from repro.errors import CatalogError, PlanError
from repro.models import fraud_fc_256

from .conftest import shm_listing


class _SlowUnpickleModel(Model):
    """A model whose worker-side load outlives the heartbeat timeout."""

    LOAD_DELAY_S = 1.2

    def __setstate__(self, state):
        time.sleep(self.LOAD_DELAY_S)
        self.__dict__.update(state)


class _FailingUnpickleModel(Model):
    """A model whose worker-side load always blows up."""

    def __setstate__(self, state):
        raise RuntimeError("weights corrupted beyond repair")


def _variant(cls, name: str) -> Model:
    base = fraud_fc_256()
    return cls(name, base.layers, base.input_shape)


@pytest.fixture
def pool(cluster_db):
    with ClusterPool(cluster_db) as p:
        yield p


def test_predict_matches_thread_path(pool, cluster_db, features):
    expected = cluster_db.predict_labels("fraud", features)
    np.testing.assert_array_equal(pool.predict("fraud", features), expected)


def test_predict_leaves_no_segments_behind(cluster_db, features, shm_before):
    with ClusterPool(cluster_db) as pool:
        for __ in range(8):
            pool.predict("fraud", features)
    leaked = {f for f in shm_listing() - shm_before if f.startswith("rc")}
    assert not leaked


def test_engine_errors_cross_the_boundary_typed(pool):
    # The worker executed fine; the engine rejected the batch.  The
    # client sees the same typed error the thread path raises.
    with pytest.raises(PlanError):
        pool.predict("fraud", np.empty((0, 28)))


def test_unknown_model_raises_catalog_error(pool):
    with pytest.raises(CatalogError):
        pool.predict("nope", np.ones((4, 28)))


def test_oversized_batch_counts_shm_fallback(cluster_db, features):
    import dataclasses

    config = dataclasses.replace(cluster_db.config, cluster_shm_max_bytes=64)
    cluster_db._config = config  # tiny cap: every batch falls back
    try:
        with ClusterPool(cluster_db) as pool:
            expected = cluster_db.predict_labels("fraud", features)
            np.testing.assert_array_equal(
                pool.predict("fraud", features), expected
            )
            assert pool.snapshot()["counters"]["shm_fallbacks"] >= 1
    finally:
        cluster_db._config = dataclasses.replace(
            config, cluster_shm_max_bytes=8 * 1024 * 1024
        )


def test_placement_is_replicated_and_visible(pool):
    replicas = pool.ensure_model("fraud")
    assert len(replicas) == pool.replication == 2
    assert pool.placement_map() == {"fraud": list(replicas)}


def test_show_cluster_surfaces_pool_state(pool, cluster_db, features):
    pool.predict("fraud", features)
    rows = dict(cluster_db.execute("SHOW CLUSTER").fetchall())
    assert rows["cluster.workers"] == 2
    assert rows["cluster.requests.completed"] >= 1
    assert rows["cluster.placement.fraud"]
    assert "cluster.worker.0.pid" in rows
    assert rows["cluster.worker.0.state"] == "ready"


def test_show_cluster_empty_without_pool():
    from repro import Database

    with Database() as db:
        assert db.execute("SHOW CLUSTER").fetchall() == []


def test_show_server_gains_worker_rows_only_in_cluster_mode(
    cluster_db, features
):
    server = cluster_db.serve(cluster_workers=2)
    try:
        server.submit("fraud", features).result(timeout=30)
        rows = dict(cluster_db.execute("SHOW SERVER").fetchall())
        assert rows["server.worker.0.state"] == "ready"
        assert rows["server.worker.1.state"] == "ready"
        assert "fraud" in rows["server.worker.0.models"] or (
            "fraud" in rows["server.worker.1.models"]
        )
    finally:
        server.close()
    # Thread mode (explicitly overriding the config knob): the same
    # statement must not mention worker processes.
    server = cluster_db.serve(cluster_workers=0)
    try:
        thread_rows = cluster_db.execute("SHOW SERVER").fetchall()
        assert not any(".worker." in name for name, __ in thread_rows)
    finally:
        server.close()


def test_serve_cluster_closes_pool_with_server(cluster_db):
    server = cluster_db.serve(cluster_workers=2)
    pool = server.cluster
    assert cluster_db._cluster is pool
    server.close()
    assert pool.closed
    assert cluster_db._cluster is None


def test_worker_processes_share_the_core_budget(cluster_db):
    with ClusterPool(cluster_db) as pool:
        budget = pool._worker_config.num_cores
        assert budget == max(1, cluster_db.config.num_cores // pool.workers)
        assert pool._worker_config.cluster_workers == 0  # no recursion
        assert pool._worker_config.telemetry_enabled is False


def test_predict_after_close_raises(cluster_db, features):
    pool = ClusterPool(cluster_db)
    pool.close()
    from repro.errors import ClusterError

    with pytest.raises(ClusterError):
        pool.predict("fraud", features)


def test_slow_model_load_is_not_mistaken_for_a_wedge(cluster_db, features):
    # The load sleeps 2x the fixture's 600ms heartbeat timeout.  With
    # heartbeats on a dedicated worker thread the monitor must NOT kill
    # the worker as wedged mid-load (which would replay the same slow
    # load forever).
    cluster_db.register_model(
        _variant(_SlowUnpickleModel, "slowload"), name="slowload"
    )
    expected = cluster_db.predict_labels("slowload", features)
    with ClusterPool(cluster_db) as pool:
        np.testing.assert_array_equal(pool.predict("slowload", features), expected)
        snapshot = pool.snapshot()
        assert snapshot["counters"]["crashes"] == 0
        assert all(worker["restarts"] == 0 for worker in snapshot["workers"])


def test_load_failure_surfaces_real_error_and_retires_model(
    cluster_db, features
):
    from repro.errors import WorkerLoadError

    cluster_db.register_model(
        _variant(_FailingUnpickleModel, "badload"), name="badload"
    )
    with ClusterPool(cluster_db) as pool:
        with pytest.raises(WorkerLoadError) as excinfo:
            pool.predict("badload", features)
        # The caller sees the real worker-side error, not a timeout.
        assert "weights corrupted beyond repair" in str(excinfo.value)
        # The worker survived: no crash/respawn loop.
        snapshot = pool.snapshot()
        assert snapshot["counters"]["crashes"] == 0
        assert all(worker["state"] == "ready" for worker in snapshot["workers"])
        assert "badload" in snapshot["load_failures"]
        # Retired pool-wide: the next request fails fast, well under the
        # 20s request timeout.
        start = time.monotonic()
        with pytest.raises(WorkerLoadError):
            pool.predict("badload", features)
        assert time.monotonic() - start < 2.0
        # Healthy models on the same workers still serve.
        np.testing.assert_array_equal(
            pool.predict("fraud", features),
            cluster_db.predict_labels("fraud", features),
        )
        rows = dict(cluster_db.execute("SHOW CLUSTER").fetchall())
        assert "corrupted" in rows["cluster.load_failure.badload"]


def test_two_pools_in_one_process_use_distinct_segments(
    cluster_config, features
):
    # Two Databases each serving with a cluster in the same parent used
    # to mint colliding rc<pid>-<req> segment names (FileExistsError).
    from repro import Database

    dbs, pools = [], []
    try:
        for __ in range(2):
            db = Database(config=cluster_config)
            db.register_model(fraud_fc_256(), name="fraud")
            dbs.append(db)
            pools.append(ClusterPool(db, workers=1))
        assert pools[0]._seg_prefix != pools[1]._seg_prefix
        expected = dbs[0].predict_labels("fraud", features)
        errors: list[BaseException] = []

        def hammer(pool: ClusterPool) -> None:
            try:
                for __ in range(10):
                    np.testing.assert_array_equal(
                        pool.predict("fraud", features), expected
                    )
            except BaseException as exc:  # noqa: BLE001 - recorded
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(pool,)) for pool in pools
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"cross-pool interference: {errors!r}"
    finally:
        for pool in pools:
            pool.close()
        for db in dbs:
            db.close()


def test_timed_out_request_stays_counted_until_worker_answers(rng):
    # A caller that gives up on a busy worker must not decrement the
    # worker's inflight count while the worker is still chewing on the
    # request — routing and SHOW CLUSTER would under-report queued work.
    from repro import Database
    from repro.config import SystemConfig
    from repro.errors import ClusterUnavailableError

    config = SystemConfig(
        telemetry_enabled=True,
        cluster_workers=1,
        cluster_heartbeat_interval_ms=20.0,
        cluster_heartbeat_timeout_ms=600.0,
        cluster_request_timeout_ms=400.0,
    )
    features = rng.normal(size=(4, 28))
    with Database(config=config) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.register_model(
            _variant(_SlowUnpickleModel, "slowload"), name="slowload"
        )
        with ClusterPool(db, workers=1) as pool:
            pool.predict("fraud", features)  # fraud loaded and acked
            handle = pool._handles[0]
            # Occupy the single worker's serve loop with a 1.2s load,
            # then race a predict against the 400ms request timeout.
            pool.ensure_model("slowload")
            with pytest.raises(ClusterUnavailableError):
                pool.predict("fraud", features)
            # Abandoned, not forgotten: still counted on the worker.
            assert handle.inflight == 1
            assert len(pool._pending) == 1
            deadline = time.monotonic() + 10
            while handle.inflight and time.monotonic() < deadline:
                time.sleep(0.02)
            # The worker's late answer retired the slot.
            assert handle.inflight == 0
            assert not pool._pending
            assert handle.restarts == 0  # busy, never declared wedged
            pool.predict("fraud", features)  # and the pool still serves
