"""Health-aware replica routing (repro.cluster.router)."""

from __future__ import annotations

import time

from repro.cluster import ClusterRouter, WorkerHandle
from repro.cluster.worker import DEAD, READY
from repro.config import SystemConfig
from repro.resilience.breaker import CLOSED, OPEN


class _FakeProcess:
    def __init__(self, alive: bool = True):
        self._alive = alive

    def is_alive(self) -> bool:
        return self._alive


def _handles(n: int) -> dict[int, WorkerHandle]:
    handles = {}
    for wid in range(n):
        handle = WorkerHandle(worker_id=wid)
        handle.process = _FakeProcess()
        handle.state = READY
        handles[wid] = handle
    return handles


class _FakeSlo:
    def __init__(self, burning: bool):
        self._burning = burning

    def snapshot(self):
        return {"fraud": {"burning_fast": self._burning}}


def _router(handles, burning=False, breakers=True):
    config = SystemConfig(breaker_enabled=breakers)
    return ClusterRouter(handles, config, slo=_FakeSlo(burning))


def test_round_robin_over_healthy_replicas():
    handles = _handles(3)
    router = _router(handles)
    picks = [router.choose("fraud", (0, 1, 2)) for __ in range(6)]
    assert sorted(set(picks)) == [0, 1, 2]  # every replica takes turns


def test_dead_replica_dropped_from_rotation():
    handles = _handles(3)
    handles[1].state = DEAD
    router = _router(handles)
    picks = {router.choose("fraud", (0, 1, 2)) for __ in range(6)}
    assert picks == {0, 2}


def test_no_live_replica_returns_none():
    handles = _handles(2)
    for handle in handles.values():
        handle.state = DEAD
    router = _router(handles)
    assert router.choose("fraud", (0, 1)) is None


def test_exclude_skips_already_tried_workers():
    handles = _handles(2)
    router = _router(handles)
    assert router.choose("fraud", (0, 1), exclude={0}) == 1
    assert router.choose("fraud", (0, 1), exclude={0, 1}) is None


def test_stale_heartbeat_demotes_replica():
    handles = _handles(2)
    handles[0].last_heartbeat = time.monotonic() - 3600.0
    router = _router(handles)
    picks = {router.choose("fraud", (0, 1)) for __ in range(4)}
    assert picks == {1}


def test_open_breaker_demotes_until_probe():
    handles = _handles(2)
    router = _router(handles)
    breaker = router.breaker(0)
    for __ in range(breaker.window + breaker.min_samples):
        breaker.record_failure()
    assert breaker.state == OPEN
    picks = {router.choose("fraud", (0, 1)) for __ in range(4)}
    assert picks == {1}


def test_all_demoted_still_serves_least_loaded():
    # Every replica suspect: the router must still pick one — refusing
    # a request the pool could serve is the worse failure mode.
    handles = _handles(2)
    for handle in handles.values():
        handle.last_heartbeat = time.monotonic() - 3600.0
    handles[0].inflight = 5
    handles[1].inflight = 1
    router = _router(handles)
    assert router.choose("fraud", (0, 1)) == 1


def test_slo_burn_switches_to_least_inflight():
    handles = _handles(3)
    handles[0].inflight = 9
    handles[1].inflight = 9
    handles[2].inflight = 0
    router = _router(handles, burning=True)
    assert all(router.choose("fraud", (0, 1, 2)) == 2 for __ in range(4))


def test_record_outcome_feeds_worker_breakers():
    handles = _handles(2)
    router = _router(handles)
    for __ in range(100):
        router.record_outcome(0, ok=False)
    assert router.breaker(0).state != CLOSED
    router.record_outcome(1, ok=True)
    assert router.breaker(1).state == CLOSED
    assert router.rows()  # SHOW CLUSTER surfaces the breaker rows


def test_breakers_disabled_is_inert():
    handles = _handles(2)
    router = _router(handles, breakers=False)
    router.record_outcome(0, ok=False)  # no-op without a board
    assert router.breaker(0) is None
    assert router.rows() == []
    assert router.choose("fraud", (0, 1)) in (0, 1)
