"""Shared-memory tensor transport edge cases (repro.cluster.shm)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import shm

from .conftest import shm_listing

MB = 1024 * 1024


@pytest.mark.parametrize("dtype", ["float32", "float64", "int64"])
def test_round_trip_preserves_dtype_and_shape(dtype, shm_before):
    arr = (np.arange(24).reshape(4, 6) * 1.5).astype(dtype)
    ref, seg = shm.share_array(arr, "repro-test-rt", MB)
    try:
        assert ref.kind == shm.SHM
        assert ref.dtype == dtype
        assert ref.shape == (4, 6)
        out = shm.read_array(ref)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        np.testing.assert_array_equal(out, arr)
    finally:
        shm.release(seg)
    assert shm_listing() <= shm_before


def test_zero_row_batch_travels_without_a_segment(shm_before):
    arr = np.empty((0, 28), dtype=np.float64)
    ref, seg = shm.share_array(arr, "repro-test-zero", MB)
    assert seg is None  # a POSIX segment cannot be 0 bytes
    assert ref.kind == shm.EMPTY
    out = shm.read_array(ref)
    assert out.shape == (0, 28)
    assert out.dtype == np.float64
    assert shm_listing() <= shm_before


def test_oversized_batch_falls_back_to_pickling(shm_before):
    arr = np.ones((64, 64), dtype=np.float64)
    ref, seg = shm.share_array(arr, "repro-test-big", max_shm_bytes=1024)
    assert seg is None  # no segment created: nothing to leak
    assert ref.kind == shm.INLINE
    assert ref.payload is not None
    np.testing.assert_array_equal(shm.read_array(ref), arr)
    assert shm_listing() <= shm_before


def test_read_copy_survives_release():
    arr = np.random.default_rng(3).normal(size=(8, 8))
    ref, seg = shm.share_array(arr, "repro-test-copy", MB)
    out = shm.read_array(ref)
    shm.release(seg)  # sender unlinks immediately after the response
    np.testing.assert_array_equal(out, arr)


def test_write_into_fills_presized_slot(shm_before):
    from multiprocessing import shared_memory

    labels = np.arange(16, dtype=np.int64)
    slot = shared_memory.SharedMemory(
        create=True, size=labels.nbytes, name="repro-test-slot"
    )
    try:
        ref = shm.write_into("repro-test-slot", labels.nbytes, labels)
        assert ref.kind == shm.SHM
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=slot.buf)
        np.testing.assert_array_equal(view, labels)
    finally:
        shm.release(slot)
    assert shm_listing() <= shm_before


def test_write_into_overflow_falls_back_inline(shm_before):
    from multiprocessing import shared_memory

    labels = np.arange(16, dtype=np.int64)
    slot = shared_memory.SharedMemory(
        create=True, size=8, name="repro-test-tiny"
    )
    try:
        # A result that does not fit the pre-sized slot must not corrupt
        # it: the payload travels inline instead.
        ref = shm.write_into("repro-test-tiny", 8, labels)
        assert ref.kind == shm.INLINE
        np.testing.assert_array_equal(shm.read_array(ref), labels)
    finally:
        shm.release(slot)
    assert shm_listing() <= shm_before


def test_release_tolerates_double_unlink():
    arr = np.ones(4)
    __, seg = shm.share_array(arr, "repro-test-dbl", MB)
    shm.release(seg)
    shm.release(seg)  # second release is a no-op, not an error
    shm.release(None)
