"""Consistent-hash model placement (repro.cluster.placement)."""

from __future__ import annotations

import pytest

from repro.cluster import Placement, shard_key


def test_replicas_deterministic_and_distinct():
    placement = Placement([0, 1, 2, 3], replication=2)
    a = placement.replicas("fraud", in_features=28)
    b = placement.replicas("fraud", in_features=28)
    assert a == b
    assert len(a) == 2
    assert len(set(a)) == 2
    assert all(w in (0, 1, 2, 3) for w in a)


def test_replication_clamped_to_pool_size():
    placement = Placement([0, 1], replication=5)
    assert placement.replication == 2
    assert len(placement.replicas("m", 8)) == 2


def test_placement_survives_respawn_verbatim():
    # A respawned worker keeps its id, so the same ring rebuilt from the
    # same ids yields the identical placement — restore, not recompute.
    before = Placement([0, 1, 2], replication=2, vnodes=16)
    after = Placement([0, 1, 2], replication=2, vnodes=16)
    for name in ("fraud", "churn", "risk", "spam"):
        assert before.replicas(name, 28) == after.replicas(name, 28)


def test_growing_pool_moves_only_some_models():
    small = Placement([0, 1, 2], replication=1, vnodes=64)
    large = Placement([0, 1, 2, 3], replication=1, vnodes=64)
    names = [f"model-{i}" for i in range(64)]
    moved = sum(
        small.replicas(n, 28) != large.replicas(n, 28) for n in names
    )
    # Consistent hashing: roughly 1/4 of keys move to the new worker,
    # far from the full reshuffle a modulo scheme would cause.
    assert 0 < moved < len(names) // 2


def test_shard_key_mixes_name_and_chunk_layout():
    # Same co-partitioning layout, different names: different keys.
    assert shard_key("a", 28, 128) != shard_key("b", 28, 128)
    # Same name: the key is a pure function of (name, chunk count).
    assert shard_key("a", 28, 128) == shard_key("A", 28, 128)
    # A much wider first layer changes the chunk count, hence the key
    # space cell the model hashes from.
    assert shard_key("a", 28, 8) != shard_key("a", 4096, 8)


def test_placement_validates_inputs():
    with pytest.raises(ValueError):
        Placement([])
    with pytest.raises(ValueError):
        Placement([0], replication=0)
    with pytest.raises(ValueError):
        Placement([0], vnodes=0)
