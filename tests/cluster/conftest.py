"""Fixtures for the process-parallel serving tier tests."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Database
from repro.config import SystemConfig
from repro.models import fraud_fc_256


def shm_listing() -> set[str]:
    """The current /dev/shm entries (empty set where it doesn't exist)."""
    if not os.path.isdir("/dev/shm"):
        return set()
    return set(os.listdir("/dev/shm"))


@pytest.fixture
def shm_before() -> set[str]:
    return shm_listing()


@pytest.fixture
def cluster_config() -> SystemConfig:
    # Tight heartbeats so crash detection and respawn happen inside a
    # test-friendly budget; everything else stays at defaults.
    return SystemConfig(
        telemetry_enabled=True,
        cluster_workers=2,
        cluster_heartbeat_interval_ms=20.0,
        cluster_heartbeat_timeout_ms=600.0,
        cluster_request_timeout_ms=20000.0,
    )


@pytest.fixture
def cluster_db(cluster_config: SystemConfig) -> Database:
    database = Database(config=cluster_config)
    database.register_model(fraud_fc_256(), name="fraud")
    yield database
    database.close()


@pytest.fixture
def features(rng: np.random.Generator) -> np.ndarray:
    return rng.normal(size=(16, 28))
