"""Worker-crash end-to-end: SIGKILL under load, reroute, respawn.

The acceptance bar: a worker killed mid-run costs ZERO client-visible
errors — every in-flight request completes via reroute to a replica —
and the dead slot respawns with its placement restored and no shared
memory left behind.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterPool

from .conftest import shm_listing


def _wait_respawn(
    pool: ClusterPool, wid: int, timeout: float = 10.0, min_restarts: int = 1
) -> None:
    # A freshly SIGKILLed process still reports alive until the monitor
    # reaps it, so wait on the restart counter, not just liveness.
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        handle = pool._handles[wid]
        if handle.restarts >= min_restarts and handle.alive:
            return
        time.sleep(0.02)
    pytest.fail(f"worker {wid} did not respawn within {timeout}s")


def test_sigkill_under_load_zero_client_errors(
    cluster_db, features, shm_before
):
    expected = cluster_db.predict_labels("fraud", features)
    with ClusterPool(cluster_db) as pool:
        replicas = pool.ensure_model("fraud")
        errors: list[BaseException] = []
        mismatches: list[int] = []
        stop = threading.Event()

        def client(idx: int) -> None:
            while not stop.is_set():
                try:
                    got = pool.predict("fraud", features)
                except BaseException as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)
                    return
                if not np.array_equal(got, expected):
                    mismatches.append(idx)
                    return

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.2)  # let the clients reach steady state
        victim = replicas[0]
        os.kill(pool.worker_pids()[victim], signal.SIGKILL)
        time.sleep(1.0)  # crash window: detection + reroutes + respawn
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, f"client-visible errors after SIGKILL: {errors!r}"
        assert not mismatches
        snapshot = pool.snapshot()
        assert snapshot["counters"]["crashes"] >= 1
        assert snapshot["counters"]["respawns"] >= 1
        _wait_respawn(pool, victim)
        # Placement restored verbatim: same replica set, model re-loaded
        # into the fresh process.
        assert pool.ensure_model("fraud") == replicas
        handle = pool._handles[victim]
        assert handle.restarts >= 1
        deadline = time.monotonic() + 5
        while "fraud" not in handle.loaded and time.monotonic() < deadline:
            time.sleep(0.02)
        assert "fraud" in handle.loaded
        np.testing.assert_array_equal(pool.predict("fraud", features), expected)
    time.sleep(0.3)
    leaked = {f for f in shm_listing() - shm_before if f.startswith("rc")}
    assert not leaked, f"leaked /dev/shm segments: {leaked}"


def test_crash_emits_flight_recorder_events(cluster_db, features):
    with ClusterPool(cluster_db) as pool:
        replicas = pool.ensure_model("fraud")
        victim = replicas[0]
        os.kill(pool.worker_pids()[victim], signal.SIGKILL)
        _wait_respawn(pool, victim)
        kinds = {e.kind for e in cluster_db.telemetry.events.events()}
        assert "cluster.spawn" in kinds
        assert "cluster.crash" in kinds
        assert "cluster.respawn" in kinds


def test_kill_through_serving_front_end(cluster_db, features):
    """Full stack: ModelServer -> ClusterPool, SIGKILL mid-stream."""
    expected = cluster_db.predict_labels("fraud", features)
    server = cluster_db.serve(cluster_workers=2)
    try:
        pool = server.cluster
        replicas = pool.ensure_model("fraud")
        results = [server.submit("fraud", features) for __ in range(8)]
        os.kill(pool.worker_pids()[replicas[0]], signal.SIGKILL)
        late = [server.submit("fraud", features) for __ in range(8)]
        for future in results + late:
            np.testing.assert_array_equal(future.result(timeout=30), expected)
        _wait_respawn(pool, replicas[0])
    finally:
        server.close()


def test_restart_counter_and_health_degrade(cluster_db, features):
    with ClusterPool(cluster_db) as pool:
        replicas = pool.ensure_model("fraud")
        victim = replicas[0]
        os.kill(pool.worker_pids()[victim], signal.SIGKILL)
        _wait_respawn(pool, victim)
        rows = dict(cluster_db.execute("SHOW CLUSTER").fetchall())
        assert rows[f"cluster.worker.{victim}.restarts"] >= 1
        health = {
            name: status
            for name, status, __ in cluster_db.execute(
                "SHOW HEALTH"
            ).fetchall()
            if name.startswith("cluster.worker")
        }
        # A respawned worker reports degraded until it earns trust back.
        assert health[f"cluster.worker:{victim}"] == "degraded"


def test_all_replicas_killed_recovers_after_respawn(cluster_db, features):
    expected = cluster_db.predict_labels("fraud", features)
    with ClusterPool(cluster_db) as pool:
        pool.ensure_model("fraud")
        for pid in list(pool.worker_pids().values()):
            os.kill(pid, signal.SIGKILL)
        # With every replica down the request must block until the
        # monitor respawns the pool, then complete normally.
        np.testing.assert_array_equal(pool.predict("fraud", features), expected)
        assert pool.snapshot()["counters"]["respawns"] >= 2
