import numpy as np
import pytest

from repro.dlruntime import Linear, Model, ReLU, cpu_device, gpu_device
from repro.errors import PlanError
from repro.serving import (
    PipelineExecutor,
    partition_layers,
    simulate_pipeline_makespan,
    simulate_sequential_time,
)


def deep_model(rng, width=64, depth=6):
    layers = []
    for i in range(depth):
        layers.append(Linear(width, width, rng=rng, name=f"fc{i}"))
        layers.append(ReLU())
    return Model("deep", layers, input_shape=(width,))


def test_partition_respects_device_memory(rng):
    model = deep_model(rng)
    per_layer = 64 * 64 * 8 + 64 * 8
    # Devices sized to hold about two Linear layers each.
    devices = [
        cpu_device(name=f"d{i}", memory_bytes=3 * per_layer + 64 * 1024)
        for i in range(6)
    ]
    stages = partition_layers(model, devices, micro_batch=16)
    assert len(stages) >= 2
    assert sum(len(s.layers) for s in stages) == len(model.layers)
    for stage in stages:
        assert stage.memory_bytes(16) <= stage.device.memory_bytes


def test_partition_fails_when_model_too_big(rng):
    model = deep_model(rng)
    tiny = [cpu_device(name="tiny", memory_bytes=100)]
    with pytest.raises(PlanError):
        partition_layers(model, tiny, micro_batch=4)


def test_partition_fails_when_not_enough_devices(rng):
    model = deep_model(rng, depth=8)
    per_layer = 64 * 64 * 8 + 64 * 8
    devices = [cpu_device(name="only", memory_bytes=2 * per_layer)]
    with pytest.raises(PlanError):
        partition_layers(model, devices, micro_batch=4)


def test_pipeline_executor_matches_sequential_forward(rng):
    model = deep_model(rng, depth=4)
    devices = [cpu_device(name=f"d{i}") for i in range(4)]
    stages = partition_layers(model, devices, micro_batch=8)
    executor = PipelineExecutor(stages)
    x = rng.normal(size=(40, 64))
    outputs, seconds = executor.run(x, micro_batch=8)
    np.testing.assert_allclose(outputs, model.forward(x), atol=1e-10)
    assert seconds > 0


def test_pipeline_executor_preserves_order_with_uneven_batches(rng):
    model = deep_model(rng, depth=2)
    stages = partition_layers(model, [cpu_device(), cpu_device(name="c2")], micro_batch=7)
    outputs, __ = PipelineExecutor(stages).run(rng.normal(size=(25, 64)), micro_batch=7)
    assert outputs.shape[0] == 25


def test_simulated_pipeline_beats_sequential(rng):
    model = deep_model(rng, depth=6)
    devices = [gpu_device(name=f"g{i}") for i in range(3)]
    # Force 3 stages of 2 Linear layers by sizing memory.
    per_layer = 64 * 64 * 8 + 64 * 8
    devices = [
        gpu_device(name=f"g{i}", memory_bytes=5 * per_layer) for i in range(3)
    ]
    stages = partition_layers(model, devices, micro_batch=32)
    assert len(stages) >= 2
    pipelined = simulate_pipeline_makespan(stages, total_rows=4096, micro_batch=32)
    sequential = simulate_sequential_time(stages, total_rows=4096, micro_batch=32)
    assert pipelined < sequential
    # With many micro-batches the speedup approaches the stage count.
    assert sequential / pipelined > 1.5


def test_simulated_single_stage_has_no_speedup(rng):
    model = deep_model(rng, depth=2)
    stages = partition_layers(model, [cpu_device()], micro_batch=16)
    assert len(stages) == 1
    pipelined = simulate_pipeline_makespan(stages, 1024, 16)
    sequential = simulate_sequential_time(stages, 1024, 16)
    assert pipelined == pytest.approx(sequential)


def test_pipeline_propagates_stage_errors(rng):
    model = deep_model(rng, depth=2)
    stages = partition_layers(model, [cpu_device()], micro_batch=8)
    executor = PipelineExecutor(stages)
    with pytest.raises(Exception):
        executor.run(rng.normal(size=(16, 13)), micro_batch=8)  # wrong width
