import numpy as np
import pytest

from repro.dlruntime import Linear, Model, ReLU, Softmax
from repro.indexes import FlatIndex, HnswIndex
from repro.serving import (
    AdaptiveCachePolicy,
    InferenceResultCache,
    monte_carlo_error_bound,
)
from repro.storage import BufferPool, Catalog, InMemoryDiskManager


def make_model(rng, dim=8, classes=4):
    return Model(
        "m",
        [
            Linear(dim, 16, rng=rng, name="fc1"),
            ReLU(),
            Linear(16, classes, rng=rng, name="fc2"),
            Softmax(),
        ],
        input_shape=(dim,),
    )


def clustered(rng, n=200, dim=8):
    centers = rng.normal(scale=3.0, size=(6, dim))
    labels = rng.integers(0, 6, size=n)
    return centers[labels] + rng.normal(scale=0.05, size=(n, dim))


def test_cache_miss_then_hit(rng):
    model = make_model(rng)
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=0.1)
    x = rng.normal(size=(10, 8))
    preds1, report1 = cache.serve(x)
    assert report1.misses == 10 and report1.hits == 0
    preds2, report2 = cache.serve(x)
    assert report2.hits == 10 and report2.misses == 0
    np.testing.assert_array_equal(preds1, preds2)
    np.testing.assert_array_equal(preds1, model.predict(x))


def test_cache_near_duplicates_hit(rng):
    model = make_model(rng)
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=0.5)
    base = rng.normal(size=(20, 8))
    cache.warm(base)
    perturbed = base + rng.normal(scale=1e-3, size=base.shape)
    __, report = cache.serve(perturbed)
    assert report.hit_rate == 1.0


def test_cache_respects_threshold(rng):
    model = make_model(rng)
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=1e-6)
    base = rng.normal(size=(20, 8))
    cache.warm(base)
    far = base + rng.normal(scale=1.0, size=base.shape)
    __, report = cache.serve(far)
    assert report.hit_rate < 0.2


def test_cache_with_hnsw_and_persistence(rng):
    pool = BufferPool(InMemoryDiskManager(8192), capacity_pages=32)
    catalog = Catalog(pool)
    model = make_model(rng)
    cache = InferenceResultCache(
        model,
        HnswIndex(8, seed=1),
        distance_threshold=0.2,
        catalog=catalog,
        table_name="cache_entries",
    )
    x = clustered(rng, n=60)
    cache.serve(x)
    table = catalog.get_table("cache_entries")
    assert table.row_count == len(cache)
    stored = [row for __, row in table.heap.scan()]
    assert len(stored) == len(cache)
    vec = np.frombuffer(stored[0][1], dtype=np.float64)
    assert vec.shape == (8,)


def test_cache_stats_accumulate(rng):
    model = make_model(rng)
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=0.3)
    x = clustered(rng, n=50)
    cache.serve(x)
    cache.serve(x)
    assert cache.stats.hits >= 50
    assert cache.stats.misses >= 1
    assert 0 < cache.stats.hit_rate < 1
    assert cache.stats.model_seconds > 0


def test_cache_speedup_on_repetitive_stream(rng):
    """The core Sec. 7.2.2 effect: high hit rates beat exact inference."""
    model = Model(
        "wide",
        [
            Linear(8, 2048, rng=rng, name="fc1"),
            ReLU(),
            Linear(2048, 4, rng=rng, name="fc2"),
        ],
        input_shape=(8,),
    )
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=0.05)
    base = clustered(rng, n=40)
    cache.warm(base)
    # A highly repetitive query stream (cache hits dominate).
    stream = np.repeat(base, 20, axis=0) + rng.normal(scale=1e-4, size=(800, 8))
    __, exact_seconds = cache.serve_exact(stream)
    preds, report = cache.serve(stream)
    assert report.hit_rate > 0.95
    # The cache eliminates nearly all model work (the wall-clock speedup
    # this buys is measured by the Sec. 7.2.2 benchmark, not unit tests).
    assert report.model_seconds < 0.5 * exact_seconds
    accuracy = (preds == model.predict(stream)).mean()
    assert accuracy > 0.9


def test_error_bound_zero_when_threshold_tiny(rng):
    model = make_model(rng)
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=1e-9)
    base = clustered(rng, n=50)
    cache.warm(base)
    estimate = monte_carlo_error_bound(cache, base)
    assert estimate.disagreements == 0
    assert estimate.hoeffding_upper < 0.2
    assert estimate.clopper_pearson_upper < 0.1
    assert estimate.clopper_pearson_upper <= estimate.hoeffding_upper + 1e-9


def test_error_bound_detects_disagreement(rng):
    model = make_model(rng)
    # Absurdly loose threshold: everything hits, many answers are wrong.
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=100.0)
    cache.warm(rng.normal(size=(30, 8)))
    queries = rng.normal(size=(200, 8)) * 3
    estimate = monte_carlo_error_bound(cache, queries)
    assert estimate.disagreements > 0
    assert estimate.observed_disagreement > 0
    assert estimate.hoeffding_upper >= estimate.observed_disagreement


def test_error_bound_does_not_mutate_cache(rng):
    model = make_model(rng)
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=0.1)
    cache.warm(rng.normal(size=(10, 8)))
    before = len(cache)
    monte_carlo_error_bound(cache, rng.normal(size=(50, 8)))
    assert len(cache) == before
    assert cache.insert_on_miss is True


def test_adaptive_policy_picks_compliant_threshold(rng):
    model = make_model(rng)
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=0.0)
    base = clustered(rng, n=150)
    cache.warm(base)
    validation = base + rng.normal(scale=0.02, size=base.shape)
    policy = AdaptiveCachePolicy(max_accuracy_drop=0.15, confidence=0.9)
    decision = policy.decide(cache, validation, [5.0, 0.5, 0.05])
    assert decision.enabled
    assert cache.distance_threshold == decision.threshold
    assert decision.candidates_tried[0][0] == 5.0  # loosest tried first


def test_adaptive_policy_disables_when_sla_unreachable(rng):
    model = make_model(rng)
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=0.0)
    cache.warm(rng.normal(size=(20, 8)))
    queries = rng.normal(size=(100, 8)) * 5
    policy = AdaptiveCachePolicy(max_accuracy_drop=0.0, confidence=0.99)
    decision = policy.decide(cache, queries, [10.0, 5.0])
    assert not decision.enabled
    assert cache.distance_threshold == 0.0  # restored


def test_exact_cache_hits_only_on_identical_bytes(rng):
    from repro.serving import ExactResultCache

    model = make_model(rng)
    cache = ExactResultCache(model)
    x = rng.normal(size=(10, 8))
    __, first = cache.serve(x)
    assert first.misses == 10
    __, second = cache.serve(x)
    assert second.hits == 10
    perturbed = x + 1e-12
    __, third = cache.serve(perturbed)
    assert third.misses == 10  # any byte difference misses


def test_exact_cache_never_disagrees_with_model(rng):
    from repro.serving import ExactResultCache

    model = make_model(rng)
    cache = ExactResultCache(model)
    x = rng.normal(size=(50, 8))
    cache.serve(x)
    preds, report = cache.serve(x)
    assert report.hit_rate == 1.0
    np.testing.assert_array_equal(preds, model.predict(x))


def test_exact_cache_respects_max_entries(rng):
    from repro.serving import ExactResultCache

    model = make_model(rng)
    cache = ExactResultCache(model, max_entries=5)
    cache.serve(rng.normal(size=(20, 8)))
    assert len(cache) == 5


def test_cache_serve_is_thread_safe(rng):
    """Concurrent serves over a shared hit/miss population stay consistent.

    The ANN index and stats counters are mutated on every miss; without
    the cache lock, racing serves corrupt the index or drop stat updates.
    """
    import threading

    model = make_model(rng)
    cache = InferenceResultCache(model, FlatIndex(8), distance_threshold=0.05)
    warm = rng.normal(size=(20, 8))
    cache.serve(warm)  # 20 misses populate the cache

    per_thread = 30
    errors: list[BaseException] = []

    def client(seed: int):
        try:
            local = np.random.default_rng(seed)
            for i in range(per_thread):
                if i % 2 == 0:
                    x = warm[local.integers(0, len(warm))][np.newaxis, :]
                else:
                    x = local.normal(size=(1, 8))
                preds, __ = cache.serve(x)
                assert preds.shape == (1,)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(s,)) for s in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = cache.stats
    # Every request is accounted exactly once: 20 warm misses plus one
    # hit-or-miss per concurrent serve.
    assert stats.hits + stats.misses == 20 + 6 * per_thread
    assert stats.hits > 0 and stats.misses > 20


def test_exact_cache_serve_is_thread_safe(rng):
    import threading

    from repro.serving import ExactResultCache

    model = make_model(rng)
    cache = ExactResultCache(model)
    x = rng.normal(size=(8, 8))
    expected = model.predict(x)
    errors: list[BaseException] = []

    def client():
        try:
            for _ in range(25):
                preds, __ = cache.serve(x)
                np.testing.assert_array_equal(preds, expected)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = cache.stats
    assert stats.hits + stats.misses == 8 * 25 * 6
    assert stats.misses == 8  # only the first serve misses
