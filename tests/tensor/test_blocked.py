import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.storage import BufferPool, Catalog, InMemoryDiskManager
from repro.tensor import BlockedMatrix, TensorBlock, block_to_row, row_to_block


def test_from_dense_round_trip_exact_blocks():
    a = np.arange(24, dtype=float).reshape(4, 6)
    blocked = BlockedMatrix.from_dense(a, (2, 3))
    assert blocked.num_block_rows == 2
    assert blocked.num_block_cols == 2
    np.testing.assert_array_equal(blocked.to_dense(), a)


def test_from_dense_ragged_edges():
    a = np.arange(35, dtype=float).reshape(5, 7)
    blocked = BlockedMatrix.from_dense(a, (2, 3))
    assert blocked.num_block_rows == 3
    assert blocked.num_block_cols == 3
    assert blocked.block_dims(2, 2) == (1, 1)
    np.testing.assert_array_equal(blocked.to_dense(), a)


def test_missing_block_reads_as_zeros():
    blocked = BlockedMatrix((4, 4), (2, 2))
    np.testing.assert_array_equal(blocked.get_block(1, 1), np.zeros((2, 2)))
    np.testing.assert_array_equal(blocked.to_dense(), np.zeros((4, 4)))


def test_set_block_shape_checked():
    blocked = BlockedMatrix((4, 4), (2, 2))
    with pytest.raises(ShapeError):
        blocked.set_block(0, 0, np.zeros((3, 3)))


def test_matmul_matches_dense(rng):
    a = rng.normal(size=(7, 11))
    b = rng.normal(size=(11, 5))
    got = BlockedMatrix.from_dense(a, (3, 4)).matmul(
        BlockedMatrix.from_dense(b, (4, 2))
    )
    np.testing.assert_allclose(got.to_dense(), a @ b, atol=1e-12)


def test_matmul_incompatible_shapes_raise(rng):
    a = BlockedMatrix.from_dense(rng.normal(size=(4, 5)), (2, 2))
    b = BlockedMatrix.from_dense(rng.normal(size=(4, 5)), (2, 2))
    with pytest.raises(ShapeError):
        a.matmul(b)


def test_map_blocks_relu(rng):
    a = rng.normal(size=(6, 6))
    blocked = BlockedMatrix.from_dense(a, (2, 2))
    relu = blocked.map_blocks(lambda x: np.maximum(x, 0.0))
    np.testing.assert_array_equal(relu.to_dense(), np.maximum(a, 0.0))


def test_add_row_vector(rng):
    a = rng.normal(size=(5, 7))
    bias = rng.normal(size=7)
    blocked = BlockedMatrix.from_dense(a, (2, 3)).add_row_vector(bias)
    np.testing.assert_allclose(blocked.to_dense(), a + bias, atol=1e-12)


def test_row_softmax_matches_dense(rng):
    a = rng.normal(size=(6, 9)) * 5
    blocked = BlockedMatrix.from_dense(a, (2, 4)).row_softmax()
    shifted = np.exp(a - a.max(axis=1, keepdims=True))
    expected = shifted / shifted.sum(axis=1, keepdims=True)
    np.testing.assert_allclose(blocked.to_dense(), expected, atol=1e-12)
    np.testing.assert_allclose(blocked.to_dense().sum(axis=1), np.ones(6))


def test_block_row_round_trip(rng):
    block = TensorBlock(2, 3, rng.normal(size=(4, 5)))
    row = block_to_row(block)
    back = row_to_block(row)
    assert (back.row_blk, back.col_blk) == (2, 3)
    np.testing.assert_array_equal(back.data, block.data)


def test_row_to_block_rejects_bad_payload():
    with pytest.raises(ShapeError):
        row_to_block((0, 0, 2, 2, np.zeros(3).tobytes()))


def test_store_and_load_via_heap(rng):
    pool = BufferPool(InMemoryDiskManager(8192), capacity_pages=8)
    catalog = Catalog(pool)
    a = rng.normal(size=(9, 7))
    blocked = BlockedMatrix.from_dense(a, (4, 3))
    info = blocked.store(catalog, "w_blocks")
    assert info.row_count == blocked.num_blocks
    loaded = BlockedMatrix.load(info, (9, 7), (4, 3))
    np.testing.assert_array_equal(loaded.to_dense(), a)
    # The tiny pool forced spilling: blocks survived eviction.
    assert pool.stats.evictions > 0 or pool.resident_pages <= 8


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 12),
    inner=st.integers(1, 12),
    cols=st.integers(1, 12),
    br=st.integers(1, 5),
    bi=st.integers(1, 5),
    bc=st.integers(1, 5),
    seed=st.integers(0, 1000),
)
def test_property_blocked_matmul_equals_dense(rows, inner, cols, br, bi, bc, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(rows, inner))
    b = rng.normal(size=(inner, cols))
    got = BlockedMatrix.from_dense(a, (br, bi)).matmul(
        BlockedMatrix.from_dense(b, (bi, bc))
    )
    assert got.shape == (rows, cols)
    np.testing.assert_allclose(got.to_dense(), a @ b, atol=1e-10)
