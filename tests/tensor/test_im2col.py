import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.tensor import (
    conv2d_direct,
    conv2d_via_im2col,
    conv_output_shape,
    im2col,
)
from repro.tensor.im2col import kernel_matrix


def test_conv_output_shape():
    assert conv_output_shape(112, 112, 1, 1) == (112, 112)
    assert conv_output_shape(5, 5, 3, 3) == (3, 3)
    assert conv_output_shape(5, 5, 3, 3, stride=2) == (2, 2)
    assert conv_output_shape(5, 5, 3, 3, padding=1) == (5, 5)
    with pytest.raises(ShapeError):
        conv_output_shape(2, 2, 5, 5)


def test_im2col_1x1_kernel_is_reshape(rng):
    image = rng.normal(size=(4, 5, 3))
    patches = im2col(image, 1, 1)
    np.testing.assert_array_equal(patches, image.reshape(20, 3))


def test_im2col_patch_contents(rng):
    image = np.arange(16, dtype=float).reshape(4, 4, 1)
    patches = im2col(image, 2, 2)
    assert patches.shape == (9, 4)
    np.testing.assert_array_equal(patches[0], [0, 1, 4, 5])
    np.testing.assert_array_equal(patches[-1], [10, 11, 14, 15])


def test_kernel_matrix_shape(rng):
    kernels = rng.normal(size=(8, 3, 3, 2))
    assert kernel_matrix(kernels).shape == (8, 18)


def test_conv_via_im2col_matches_direct(rng):
    image = rng.normal(size=(7, 6, 3))
    kernels = rng.normal(size=(4, 3, 3, 3))
    fast = conv2d_via_im2col(image, kernels)
    slow = conv2d_direct(image, kernels)
    np.testing.assert_allclose(fast, slow, atol=1e-10)


def test_conv_with_stride_and_padding(rng):
    image = rng.normal(size=(8, 8, 2))
    kernels = rng.normal(size=(3, 3, 3, 2))
    fast = conv2d_via_im2col(image, kernels, stride=2, padding=1)
    slow = conv2d_direct(image, kernels, stride=2, padding=1)
    assert fast.shape == (4, 4, 3)
    np.testing.assert_allclose(fast, slow, atol=1e-10)


def test_channel_mismatch_raises(rng):
    with pytest.raises(ShapeError):
        conv2d_via_im2col(rng.normal(size=(4, 4, 2)), rng.normal(size=(1, 1, 1, 3)))


@settings(max_examples=25, deadline=None)
@given(
    h=st.integers(3, 9),
    w=st.integers(3, 9),
    c=st.integers(1, 3),
    kh=st.integers(1, 3),
    kw=st.integers(1, 3),
    out_ch=st.integers(1, 4),
    stride=st.integers(1, 2),
    padding=st.integers(0, 1),
    seed=st.integers(0, 100),
)
def test_property_im2col_conv_equals_direct(h, w, c, kh, kw, out_ch, stride, padding, seed):
    rng = np.random.default_rng(seed)
    image = rng.normal(size=(h, w, c))
    kernels = rng.normal(size=(out_ch, kh, kw, c))
    fast = conv2d_via_im2col(image, kernels, stride=stride, padding=padding)
    slow = conv2d_direct(image, kernels, stride=stride, padding=padding)
    np.testing.assert_allclose(fast, slow, atol=1e-10)
