import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BufferPool, Catalog, InMemoryDiskManager
from repro.tensor import (
    BlockedMatrix,
    bias_add_pipeline,
    block_scan_from_matrix,
    block_scan_from_table,
    drain_to_matrix,
    drain_to_table,
    elementwise_pipeline,
    matmul_pipeline,
)


def make_catalog(page_size=8192, capacity=16):
    pool = BufferPool(InMemoryDiskManager(page_size), capacity_pages=capacity)
    return Catalog(pool), pool


def test_matmul_pipeline_from_memory(rng):
    a = rng.normal(size=(10, 8))
    b = rng.normal(size=(8, 6))
    pipeline = matmul_pipeline(
        block_scan_from_matrix(BlockedMatrix.from_dense(a, (4, 3)), "a"),
        block_scan_from_matrix(BlockedMatrix.from_dense(b, (3, 4)), "b"),
    )
    result = drain_to_matrix(pipeline, (10, 6), (4, 4))
    np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)


def test_matmul_pipeline_from_tables(rng):
    catalog, pool = make_catalog(capacity=8)
    a = rng.normal(size=(12, 9))
    b = rng.normal(size=(9, 7))
    a_tab = BlockedMatrix.from_dense(a, (5, 4)).store(catalog, "a_blocks")
    b_tab = BlockedMatrix.from_dense(b, (4, 3)).store(catalog, "b_blocks")
    pipeline = matmul_pipeline(
        block_scan_from_table(a_tab, "a"), block_scan_from_table(b_tab, "b")
    )
    result = drain_to_matrix(pipeline, (12, 7), (5, 3))
    np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)


def test_pipeline_chains_layers_relu_and_bias(rng):
    a = rng.normal(size=(6, 5))
    w = rng.normal(size=(5, 4))
    bias = rng.normal(size=4)
    mm = matmul_pipeline(
        block_scan_from_matrix(BlockedMatrix.from_dense(a, (3, 2)), "a"),
        block_scan_from_matrix(BlockedMatrix.from_dense(w, (2, 2)), "b"),
    )
    biased = bias_add_pipeline(mm, bias, block_cols=2)
    activated = elementwise_pipeline(biased, lambda x: np.maximum(x, 0.0), "relu")
    result = drain_to_matrix(activated, (6, 4), (3, 2))
    np.testing.assert_allclose(
        result.to_dense(), np.maximum(a @ w + bias, 0.0), atol=1e-10
    )


def test_drain_to_table_then_reload(rng):
    catalog, __ = make_catalog()
    a = rng.normal(size=(7, 7))
    b = rng.normal(size=(7, 7))
    mm = matmul_pipeline(
        block_scan_from_matrix(BlockedMatrix.from_dense(a, (3, 3)), "a"),
        block_scan_from_matrix(BlockedMatrix.from_dense(b, (3, 3)), "b"),
    )
    info = drain_to_table(mm, catalog, "result_blocks")
    loaded = BlockedMatrix.load(info, (7, 7), (3, 3))
    np.testing.assert_allclose(loaded.to_dense(), a @ b, atol=1e-10)


def test_large_matmul_spills_through_tiny_pool(rng):
    """A matmul whose blocks vastly exceed the pool must still be exact."""
    catalog, pool = make_catalog(page_size=4096, capacity=6)
    a = rng.normal(size=(64, 48))
    b = rng.normal(size=(48, 32))
    a_tab = BlockedMatrix.from_dense(a, (16, 16)).store(catalog, "a")
    b_tab = BlockedMatrix.from_dense(b, (16, 16)).store(catalog, "b")
    assert pool.stats.evictions > 0  # storing alone overflowed the pool
    pipeline = matmul_pipeline(
        block_scan_from_table(a_tab, "a"), block_scan_from_table(b_tab, "b")
    )
    result = drain_to_matrix(pipeline, (64, 32), (16, 16))
    np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(1, 10),
    k=st.integers(1, 10),
    n=st.integers(1, 10),
    bm=st.integers(1, 4),
    bk=st.integers(1, 4),
    bn=st.integers(1, 4),
    seed=st.integers(0, 500),
)
def test_property_relational_matmul_equals_dense(m, k, n, bm, bk, bn, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, n))
    pipeline = matmul_pipeline(
        block_scan_from_matrix(BlockedMatrix.from_dense(a, (bm, bk)), "a"),
        block_scan_from_matrix(BlockedMatrix.from_dense(b, (bk, bn)), "b"),
    )
    result = drain_to_matrix(pipeline, (m, n), (bm, bn))
    np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-9)
