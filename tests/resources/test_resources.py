import numpy as np
import pytest

from repro.config import mb
from repro.core import lower_model
from repro.dlruntime import Linear, Model, cpu_device, gpu_device
from repro.errors import ConfigError
from repro.resources import (
    DeviceAllocator,
    ResourceCoordinator,
    ThreadConfig,
    ThreadTuner,
    throughput_model,
)
from repro.resources.allocator import modeled_latency
from repro.resources.threads import candidate_grid


# -- coordinator -------------------------------------------------------------


def test_coordinator_splits_and_enforces_total():
    coordinator = ResourceCoordinator(mb(100))
    db = coordinator.allocate_budget("db", mb(60))
    dl = coordinator.allocate_budget("dl", mb(30))
    assert coordinator.allocated_bytes == mb(90)
    with pytest.raises(ConfigError):
        coordinator.allocate_budget("extra", mb(20))
    db.allocate(mb(10))
    assert coordinator.utilisation()["db"] == pytest.approx(10 / 60)
    assert coordinator.utilisation()["dl"] == 0.0


def test_coordinator_resize_protects_usage():
    coordinator = ResourceCoordinator(mb(100))
    db = coordinator.allocate_budget("db", mb(50))
    db.allocate(mb(40))
    with pytest.raises(ConfigError):
        coordinator.resize("db", mb(30))
    bigger = coordinator.resize("db", mb(70))
    assert bigger.limit == mb(70)
    assert bigger.used == mb(40)


def test_coordinator_rebalance_even_slack():
    coordinator = ResourceCoordinator(mb(100))
    db = coordinator.allocate_budget("db", mb(50))
    coordinator.allocate_budget("dl", mb(50))
    db.allocate(mb(20))
    coordinator.rebalance_even_slack()
    shares = {name: coordinator.budget(name).limit for name in ("db", "dl")}
    assert shares["db"] == mb(20) + (mb(100) - mb(20)) // 2
    assert shares["dl"] == (mb(100) - mb(20)) // 2
    assert sum(shares.values()) <= mb(100)


def test_coordinator_duplicate_name_rejected():
    coordinator = ResourceCoordinator(mb(10))
    coordinator.allocate_budget("db", mb(5))
    with pytest.raises(ConfigError):
        coordinator.allocate_budget("db", mb(1))


# -- device allocator ------------------------------------------------------


def small_matmul_node(in_f=32, out_f=16):
    model = Model("m", [Linear(in_f, out_f, name="fc")], input_shape=(in_f,))
    return lower_model(model)[0]


def big_matmul_node():
    return small_matmul_node(in_f=4096, out_f=4096)


def test_small_operator_stays_on_cpu():
    allocator = DeviceAllocator([cpu_device(), gpu_device()])
    decision = allocator.place(small_matmul_node(), batch_size=4)
    assert decision.device.kind == "cpu"
    assert set(decision.estimates) == {"cpu0", "gpu0"}


def test_large_operator_moves_to_gpu():
    allocator = DeviceAllocator([cpu_device(), gpu_device()])
    decision = allocator.place(big_matmul_node(), batch_size=8192)
    assert decision.device.kind == "gpu"


def test_crossover_batch_is_monotone():
    allocator = DeviceAllocator([cpu_device(), gpu_device()])
    node = big_matmul_node()
    cpu, gpu = cpu_device(), gpu_device()
    crossover = allocator.crossover_batch(node, cpu, gpu)
    assert crossover is not None
    assert modeled_latency(node, crossover, gpu) < modeled_latency(node, crossover, cpu)
    if crossover > 1:
        assert modeled_latency(node, crossover - 1, gpu) >= modeled_latency(
            node, crossover - 1, cpu
        )


def test_crossover_none_when_gpu_never_wins():
    # A "GPU" with terrible bandwidth and no compute advantage.
    bad_gpu = gpu_device(flops_per_s=5.0e10, bandwidth_bytes_per_s=1e6)
    allocator = DeviceAllocator([cpu_device(), bad_gpu])
    assert allocator.crossover_batch(small_matmul_node(), cpu_device(), bad_gpu, max_batch=4096) is None


def test_memory_infeasible_device_skipped():
    tiny_gpu = gpu_device(memory_bytes=1024)
    allocator = DeviceAllocator([cpu_device(), tiny_gpu])
    decision = allocator.place(big_matmul_node(), batch_size=1024)
    assert decision.device.kind == "cpu"


def test_no_feasible_device_raises():
    tiny = cpu_device(memory_bytes=16)
    allocator = DeviceAllocator([tiny])
    with pytest.raises(ConfigError):
        allocator.place(big_matmul_node(), batch_size=1024)


# -- thread model and tuner ---------------------------------------------------


def test_throughput_peaks_at_core_count():
    cores = 8
    matched = throughput_model(ThreadConfig(4, 2), cores)
    oversubscribed = throughput_model(ThreadConfig(8, 8), cores)
    undersubscribed = throughput_model(ThreadConfig(1, 1), cores)
    assert matched > oversubscribed
    assert matched > undersubscribed


def test_oversubscription_monotone_penalty():
    cores = 8
    t16 = throughput_model(ThreadConfig(4, 4), cores)
    t32 = throughput_model(ThreadConfig(8, 4), cores)
    t64 = throughput_model(ThreadConfig(8, 8), cores)
    assert t16 > t32 > t64


def test_candidate_grid_covers_space():
    grid = candidate_grid(4, max_threads=3)
    assert len(grid) == 9
    assert ThreadConfig(2, 3) in grid


def test_tuner_finds_near_optimal_config():
    cores = 8
    tuner = ThreadTuner(cores, rng_seed=1)
    result = tuner.tune(initial_candidates=32, rounds=3)
    best_possible = max(
        throughput_model(c, cores) for c in candidate_grid(cores)
    )
    achieved = throughput_model(result.best, cores)
    assert achieved >= 0.85 * best_possible
    assert result.evaluations == 32 + 16 + 8


def test_tuner_warm_start_reuses_history():
    tuner = ThreadTuner(8, rng_seed=2)
    descriptor = np.array([1.0, 2.0, 3.0])
    tuner.tune(descriptor=descriptor)
    warm = tuner.warm_start(descriptor + 1e-3)
    assert warm is not None
    result = tuner.tune(descriptor=descriptor + 1e-3, initial_candidates=4, rounds=1)
    assert warm in [config for config, __ in result.history]


def test_tuner_config_validation():
    with pytest.raises(ConfigError):
        ThreadConfig(0, 1)
    with pytest.raises(ConfigError):
        ThreadTuner(0)


def test_worker_thread_budget_splits_cores():
    from repro.resources.threads import worker_thread_budget

    assert worker_thread_budget(8, 1) == 8
    assert worker_thread_budget(8, 2) == 4
    assert worker_thread_budget(8, 3) == 2
    # Floor at one thread even when workers outnumber cores.
    assert worker_thread_budget(1, 4) == 1
    assert worker_thread_budget(4, 8) == 1


def test_worker_thread_budget_validates():
    import pytest

    from repro.errors import ConfigError
    from repro.resources.threads import worker_thread_budget

    with pytest.raises(ConfigError):
        worker_thread_budget(0, 1)
    with pytest.raises(ConfigError):
        worker_thread_budget(4, 0)


def test_candidate_grid_shrinks_with_workers():
    # With 2 workers on 4 cores the default grid is sized from this
    # process's 2-core share, not the whole machine.
    full = candidate_grid(4)
    shared = candidate_grid(4, workers=2)
    assert len(shared) < len(full)
    assert max(c.total_threads for c in shared) == 16  # (2*2)^2
