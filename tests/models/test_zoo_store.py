import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import (
    MODEL_ZOO,
    amazon_14k_fc,
    bosch_ffnn,
    build_model,
    cache_cnn,
    cache_ffnn,
    deepbench_conv1,
    encoder_fc,
    fraud_fc_256,
    fraud_fc_512,
    landcover,
    store_model_blocks,
    zoo_entries,
)
from repro.models.store import weight_block_table
from repro.storage import BufferPool, Catalog, InMemoryDiskManager
from repro.tensor import BlockedMatrix


def test_table1_shapes_match_paper():
    """The model zoo reproduces Table 1's layer sizes exactly."""
    cases = {
        fraud_fc_256(): (28, 256, 2),
        fraud_fc_512(): (28, 512, 2),
        encoder_fc(): (76, 3072, 768),
        amazon_14k_fc(): (597_540, 1024, 14_588),
    }
    for model, (n_in, hidden, n_out) in cases.items():
        fc1, __, fc2, __ = model.layers
        assert fc1.in_features == n_in
        assert fc1.out_features == hidden
        assert fc2.out_features == n_out
        assert model.input_shape == (n_in,)


def test_table2_shapes_match_paper():
    conv1 = deepbench_conv1()
    assert conv1.input_shape == (112, 112, 64)
    assert conv1.layers[0].kernels.data.shape == (64, 1, 1, 64)
    lc = landcover()
    assert lc.input_shape == (2500, 2500, 3)
    assert lc.layers[0].kernels.data.shape == (2048, 1, 1, 3)


def test_scaled_amazon_keeps_structure():
    model = amazon_14k_fc(scale=0.01)
    fc1 = model.layers[0]
    assert fc1.in_features == 5975
    assert fc1.out_features == 1024
    assert model.layers[2].out_features == 146
    with pytest.raises(ModelError):
        amazon_14k_fc(scale=2.0)


def test_cache_models_run(rng):
    cnn = cache_cnn()
    out = cnn.forward(rng.normal(size=(2, 28, 28, 1)))
    assert out.shape == (2, 10)
    np.testing.assert_allclose(out.sum(axis=1), np.ones(2))
    ffnn = cache_ffnn()
    assert [l.out_features for l in ffnn.layers if hasattr(l, "out_features")] == [
        128, 1024, 2048, 64, 10,
    ]


def test_bosch_model_shape():
    model = bosch_ffnn()
    assert model.layers[0].weight.data.shape == (968, 256)


def test_zoo_registry_and_builders():
    assert set(e.table for e in zoo_entries()) == {"table1", "table2", "sec7.2"}
    assert len(list(zoo_entries("table1"))) == 4
    model = build_model("fraud-fc-256")
    assert model.name == "fraud-fc-256"
    scaled = build_model("amazon-14k-fc", scale=0.01)
    assert scaled.layers[0].in_features == 5975
    with pytest.raises(ModelError):
        build_model("nonexistent")
    assert MODEL_ZOO["landcover"].scalable


def test_store_model_blocks_round_trip(rng):
    pool = BufferPool(InMemoryDiskManager(16 * 1024), capacity_pages=64)
    catalog = Catalog(pool)
    model = fraud_fc_256()
    info = catalog.register_model("fraud", model)
    tables = store_model_blocks(catalog, info, (32, 32))
    assert set(tables) == {"fc1", "fc2"}
    fc1_table = catalog.get_table(tables["fc1"])
    loaded = BlockedMatrix.load(fc1_table, (28, 256), (32, 32))
    np.testing.assert_array_equal(loaded.to_dense(), model.layers[0].weight.data)
    # Idempotent.
    again = store_model_blocks(catalog, info, (32, 32))
    assert again == tables


def test_weight_block_table_lazy_creation(rng):
    pool = BufferPool(InMemoryDiskManager(16 * 1024), capacity_pages=64)
    catalog = Catalog(pool)
    model = deepbench_conv1(scale=0.1)
    info = catalog.register_model("db1", model)
    conv = model.layers[0]
    table = weight_block_table(catalog, info, conv, (16, 16))
    out_ch = conv.out_channels
    loaded = BlockedMatrix.load(
        table, (conv.kernels.data.size // out_ch, out_ch), (16, 16)
    )
    expected = conv.kernels.data.reshape(out_ch, -1).T
    np.testing.assert_array_equal(loaded.to_dense(), expected)
