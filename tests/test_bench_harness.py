"""The benchmark results harness: record/write/load/compare round-trip.

``benchmarks/`` is not a package (pytest adds it to ``sys.path`` via
conftest), so the tier-1 suite loads the helpers by file path.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def load(name: str, filename: str):
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / filename)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def util():
    module = load("_util", "_util.py")
    module.RESULTS.clear()
    yield module
    module.RESULTS.clear()


def test_measure_stable_warms_up_and_takes_median(util):
    calls = []

    def fn():
        calls.append(len(calls))
        return "out"

    result, seconds = util.measure_stable(fn, repeats=3, warmup=2)
    assert result == "out"
    assert len(calls) == 5  # 2 warmup + 3 timed
    assert seconds >= 0
    with pytest.raises(ValueError):
        util.measure_stable(fn, repeats=0)


def test_record_write_load_round_trip(util, tmp_path):
    util.record("alpha", latency_seconds=0.5, memory_bytes=1024, rows=10)
    util.record("beta", latency_seconds=0.25)
    util.record("beta", latency_seconds=0.75)  # last writer wins
    path = tmp_path / "results.json"
    assert util.write_results(str(path)) == 2
    payload = json.loads(path.read_text())
    assert payload["version"] == util.RESULTS_VERSION
    loaded = util.load_results(str(path))
    assert loaded["alpha"]["memory_bytes"] == 1024
    assert loaded["alpha"]["meta"] == {"rows": 10}
    assert loaded["beta"]["latency_seconds"] == 0.75
    assert loaded["beta"]["memory_bytes"] is None


def test_load_rejects_wrong_version(util, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "results": {}}')
    with pytest.raises(ValueError, match="version"):
        util.load_results(str(path))


def test_compare_results_tolerances(util):
    baseline = {
        "s": {"latency_seconds": 1.0, "memory_bytes": 1000, "meta": {}},
    }
    ok = {"s": {"latency_seconds": 1.5, "memory_bytes": 1100, "meta": {}}}
    assert util.compare_results(baseline, ok, 1.0, 0.25) == []
    slow = {"s": {"latency_seconds": 2.5, "memory_bytes": 1000, "meta": {}}}
    problems = util.compare_results(baseline, slow, 1.0, 0.25)
    assert len(problems) == 1 and "latency" in problems[0]
    fat = {"s": {"latency_seconds": 1.0, "memory_bytes": 1500, "meta": {}}}
    problems = util.compare_results(baseline, fat, 1.0, 0.25)
    assert len(problems) == 1 and "memory" in problems[0]
    missing = util.compare_results(baseline, {}, 1.0, 0.25)
    assert missing == ["s: missing from current results"]
    # New scenarios in the current run are not a failure.
    extra = dict(ok, t={"latency_seconds": 9.0, "memory_bytes": None, "meta": {}})
    assert util.compare_results(baseline, extra, 1.0, 0.25) == []


def test_comparator_cli_round_trip(util, tmp_path, capsys):
    cli = load("compare_results", "compare_results.py")
    util.record("s", latency_seconds=0.1, memory_bytes=500)
    base = tmp_path / "base.json"
    util.write_results(str(base))
    assert cli.main([str(base), str(base)]) == 0
    assert "within tolerance" in capsys.readouterr().out
    util.record("s", latency_seconds=0.1, memory_bytes=5000)
    current = tmp_path / "current.json"
    util.write_results(str(current))
    assert cli.main([str(base), str(current)]) == 1
    assert "peak memory" in capsys.readouterr().err


def test_checked_in_baseline_is_loadable(util):
    baseline = util.load_results(str(BENCH_DIR / "baselines" / "bench_smoke.json"))
    assert "predict-fraud-sql" in baseline
    for entry in baseline.values():
        assert entry["latency_seconds"] is None or entry["latency_seconds"] > 0
