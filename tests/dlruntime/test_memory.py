import numpy as np
import pytest

from repro.dlruntime import MemoryBudget
from repro.dlruntime.memory import unlimited
from repro.errors import OutOfMemoryError


def test_allocate_release_tracks_usage():
    budget = MemoryBudget(1000)
    budget.allocate(400)
    budget.allocate(300)
    assert budget.used == 700
    budget.release(300)
    assert budget.used == 400
    assert budget.peak == 700


def test_over_allocation_raises_with_context():
    budget = MemoryBudget(100, name="dl")
    budget.allocate(80)
    with pytest.raises(OutOfMemoryError) as exc:
        budget.allocate(30, tag="activation")
    assert exc.value.requested == 30
    assert exc.value.used == 80
    assert exc.value.limit == 100
    assert "activation" in str(exc.value)
    assert budget.stats.oom_events == 1
    assert budget.used == 80  # failed allocation does not charge


def test_borrow_context_manager_releases_on_error():
    budget = MemoryBudget(100)
    with pytest.raises(RuntimeError):
        with budget.borrow(50):
            assert budget.used == 50
            raise RuntimeError("boom")
    assert budget.used == 0


def test_charge_array_uses_nbytes():
    budget = MemoryBudget(10_000)
    array = np.zeros((10, 10))  # 800 bytes
    assert budget.charge_array(array) == 800
    assert budget.used == 800


def test_release_more_than_used_raises():
    budget = MemoryBudget(100)
    budget.allocate(10)
    with pytest.raises(ValueError):
        budget.release(20)


def test_negative_sizes_rejected():
    budget = MemoryBudget(100)
    with pytest.raises(ValueError):
        budget.allocate(-1)
    with pytest.raises(ValueError):
        budget.release(-1)


def test_unlimited_budget_never_ooms():
    budget = unlimited()
    budget.allocate(1 << 50)
    budget.release(1 << 50)


def test_reset_peak():
    budget = MemoryBudget(1000)
    budget.allocate(500)
    budget.release(500)
    assert budget.peak == 500
    budget.reset_peak()
    assert budget.peak == 0
