import numpy as np
import pytest

from repro.config import ConnectorCostModel
from repro.dlruntime import (
    Connector,
    ExternalRuntime,
    Linear,
    MemoryBudget,
    Model,
    ReLU,
)
from repro.errors import ExecutionError, ModelError, OutOfMemoryError
from repro.relational import ColumnType, Schema
from repro.relational.operators import ValuesScan
from repro.storage import BufferPool, Catalog, InMemoryDiskManager


def make_model(rng, in_features=4, hidden=8, out=2):
    return Model(
        "m",
        [
            Linear(in_features, hidden, rng=rng, name="fc1"),
            ReLU(),
            Linear(hidden, out, rng=rng, name="fc2"),
        ],
        input_shape=(in_features,),
    )


def test_runtime_runs_model(rng):
    runtime = ExternalRuntime("tensorflow-sim", MemoryBudget(1 << 24))
    model = make_model(rng)
    handle = runtime.load_model(model)
    x = rng.normal(size=(32, 4))
    result = runtime.run(handle, x)
    np.testing.assert_allclose(result.outputs, model.forward(x))
    assert result.measured_seconds > 0
    assert result.modeled_seconds < result.measured_seconds  # efficiency > 1
    assert result.peak_memory_bytes > model.param_bytes


def test_runtime_oom_on_large_batch(rng):
    model = make_model(rng)
    budget = MemoryBudget(model.param_bytes + 4096)
    runtime = ExternalRuntime("pytorch-sim", budget)
    handle = runtime.load_model(model)
    with pytest.raises(OutOfMemoryError):
        runtime.run(handle, rng.normal(size=(10_000, 4)))
    assert budget.used == 0  # OOM left no leaked charges


def test_run_batched_reduces_peak(rng):
    model = make_model(rng)
    budget = MemoryBudget(1 << 26)
    runtime = ExternalRuntime("tensorflow-sim", budget)
    handle = runtime.load_model(model)
    x = rng.normal(size=(4096, 4))
    whole = runtime.run(handle, x)
    batched = runtime.run_batched(handle, x, batch_size=128)
    np.testing.assert_allclose(batched.outputs, whole.outputs)
    assert batched.peak_memory_bytes < whole.peak_memory_bytes


def test_unknown_flavor_and_handle_rejected(rng):
    with pytest.raises(ModelError):
        ExternalRuntime("mxnet", MemoryBudget(1024))
    runtime = ExternalRuntime("generic", MemoryBudget(1024))
    with pytest.raises(ModelError):
        runtime.run("ghost", np.zeros((1, 1)))


def test_connector_extracts_columns_from_heap(rng):
    pool = BufferPool(InMemoryDiskManager(4096), capacity_pages=16)
    catalog = Catalog(pool)
    schema = Schema.of(("id", ColumnType.INT), ("f0", ColumnType.DOUBLE), ("f1", ColumnType.DOUBLE))
    info = catalog.create_table("t", schema)
    rows = [(i, float(i) / 2, float(-i)) for i in range(500)]
    for row in rows:
        info.heap.insert(row)
    from repro.relational.operators import SeqScan

    result = Connector().extract(SeqScan(info), batch_size=128)
    assert result.num_rows == 500
    np.testing.assert_array_equal(result.columns["id"], np.arange(500))
    np.testing.assert_allclose(result.columns["f0"], np.arange(500) / 2)
    features = result.feature_matrix(["f0", "f1"])
    assert features.shape == (500, 2)
    assert result.wire_bytes > 500 * 3 * 8  # at least the raw payload
    assert result.serialize_seconds > 0
    assert result.modeled_wire_seconds > 0


def test_connector_rejects_text_columns():
    schema = Schema.of(("name", ColumnType.TEXT))
    scan = ValuesScan(schema, [("x",)])
    with pytest.raises(ExecutionError):
        Connector().extract(scan)


def test_connector_wire_time_scales_with_bytes():
    model = ConnectorCostModel(
        bandwidth_bytes_per_s=1e9, per_row_overhead_s=0.0, per_batch_latency_s=0.0
    )
    assert model.wire_time(2_000_000, 0) == pytest.approx(0.002)
    assert model.wire_time(4_000_000, 0) == pytest.approx(0.004)


def test_connector_accumulates_totals(rng):
    schema = Schema.of(("v", ColumnType.DOUBLE))
    connector = Connector()
    connector.extract(ValuesScan(schema, [(1.0,), (2.0,)]))
    connector.extract(ValuesScan(schema, [(3.0,)]))
    assert connector.total_rows_moved == 3
    assert connector.total_bytes_moved > 0
