import numpy as np

from repro.dlruntime import (
    SGD,
    Adam,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Model,
    ReLU,
)


def make_blobs(rng, n=200, features=6, classes=3):
    """Linearly separable gaussian blobs."""
    centers = rng.normal(scale=4.0, size=(classes, features))
    labels = rng.integers(0, classes, size=n)
    x = centers[labels] + rng.normal(scale=0.5, size=(n, features))
    return x, labels


def train(model, x, y, optimizer, epochs=40, batch=32):
    n = x.shape[0]
    losses = []
    for __ in range(epochs):
        perm = np.random.default_rng(0).permutation(n)
        for start in range(0, n, batch):
            idx = perm[start : start + batch]
            optimizer.zero_grad()
            logits = model.forward_ad(x[idx])
            loss = logits.softmax_cross_entropy(y[idx])
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
    return losses


def test_sgd_trains_ffnn_on_blobs(rng):
    x, y = make_blobs(rng)
    model = Model(
        "clf",
        [Linear(6, 16, rng=rng, name="fc1"), ReLU(), Linear(16, 3, rng=rng, name="fc2")],
        input_shape=(6,),
    )
    params = [p for __, p in model.parameters()]
    losses = train(model, x, y, SGD(params, lr=0.05), epochs=30)
    accuracy = (model.predict(x) == y).mean()
    assert losses[-1] < losses[0]
    assert accuracy > 0.9


def test_adam_converges_faster_than_plain_sgd_early(rng):
    x, y = make_blobs(rng, n=150)

    def fresh_model():
        local_rng = np.random.default_rng(5)
        return Model(
            "clf",
            [
                Linear(6, 16, rng=local_rng, name="fc1"),
                ReLU(),
                Linear(16, 3, rng=local_rng, name="fc2"),
            ],
            input_shape=(6,),
        )

    sgd_model = fresh_model()
    sgd_losses = train(
        sgd_model, x, y, SGD([p for __, p in sgd_model.parameters()], lr=0.001),
        epochs=3,
    )
    adam_model = fresh_model()
    adam_losses = train(
        adam_model, x, y, Adam([p for __, p in adam_model.parameters()], lr=0.01),
        epochs=3,
    )
    assert adam_losses[-1] < sgd_losses[-1]


def test_momentum_updates_parameters(rng):
    model = Model("m", [Linear(4, 2, rng=rng)], input_shape=(4,))
    params = [p for __, p in model.parameters()]
    before = [p.data.copy() for p in params]
    x = rng.normal(size=(8, 4))
    y = rng.integers(0, 2, size=8)
    opt = SGD(params, lr=0.1, momentum=0.9)
    for __ in range(3):
        opt.zero_grad()
        model.forward_ad(x).softmax_cross_entropy(y).backward()
        opt.step()
    assert any(not np.allclose(b, p.data) for b, p in zip(before, params))


def test_cnn_trains_on_tiny_images(rng):
    """The Sec. 7.2.2 cache experiment needs a trainable CNN; smoke-test it."""
    n, classes = 120, 3
    y = rng.integers(0, classes, size=n)
    x = rng.normal(scale=0.1, size=(n, 8, 8, 1))
    for i in range(n):  # plant a class-dependent bright patch
        x[i, y[i] * 2 : y[i] * 2 + 2, :4, 0] += 2.0
    model = Model(
        "cnn",
        [
            Conv2d(1, 4, (3, 3), padding=1, rng=rng, name="c1"),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(4 * 4 * 4, classes, rng=rng, name="out"),
        ],
        input_shape=(8, 8, 1),
    )
    params = [p for __, p in model.parameters()]
    train(model, x, y, Adam(params, lr=0.01), epochs=15, batch=32)
    accuracy = (model.predict(x) == y).mean()
    assert accuracy > 0.85
