"""Device cost-model validation."""

import pytest

from repro.dlruntime import cpu_device, gpu_device
from repro.dlruntime.device import Device
from repro.errors import ConfigError


def test_cpu_transfers_are_free():
    cpu = cpu_device()
    assert cpu.transfer_time(1 << 30) == 0.0
    assert cpu.compute_time(5.0e10) == pytest.approx(1.0)


def test_gpu_transfer_includes_latency_and_bandwidth():
    gpu = gpu_device(bandwidth_bytes_per_s=1e9, transfer_latency_s=1e-5)
    assert gpu.transfer_time(1e9) == pytest.approx(1.0 + 1e-5)
    assert gpu.transfer_time(0) == pytest.approx(1e-5)


def test_gpu_compute_much_faster_than_cpu():
    cpu, gpu = cpu_device(), gpu_device()
    flops = 1e12
    assert gpu.compute_time(flops) < cpu.compute_time(flops) / 10


def test_device_validation():
    with pytest.raises(ConfigError):
        Device("x", "tpu", 1e9, 1e9, 0.0, 1 << 20)
    with pytest.raises(ConfigError):
        Device("x", "cpu", 0.0, 1e9, 0.0, 1 << 20)
    with pytest.raises(ConfigError):
        Device("x", "gpu", 1e9, 1e9, 0.0, 0)


def test_device_is_immutable():
    cpu = cpu_device()
    with pytest.raises(Exception):
        cpu.flops_per_s = 1.0  # type: ignore[misc]
