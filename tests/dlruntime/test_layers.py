import numpy as np
import pytest

from repro.dlruntime import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    MemoryBudget,
    Model,
    ReLU,
    Sigmoid,
    Softmax,
)
from repro.errors import ModelError, OutOfMemoryError, ShapeError
from repro.tensor import conv2d_direct


def small_ffnn(rng):
    return Model(
        "ffnn",
        [
            Linear(4, 8, rng=rng, name="fc1"),
            ReLU(),
            Linear(8, 3, rng=rng, name="fc2"),
            Softmax(),
        ],
        input_shape=(4,),
    )


def test_linear_forward_matches_numpy(rng):
    w = rng.normal(size=(5, 3))
    b = rng.normal(size=3)
    layer = Linear(5, 3, weight=w, bias=b)
    x = rng.normal(size=(7, 5))
    np.testing.assert_allclose(layer.forward(x), x @ w + b)


def test_linear_shape_validation(rng):
    with pytest.raises(ShapeError):
        Linear(4, 2, weight=np.zeros((2, 4)))
    layer = Linear(4, 2, rng=rng)
    with pytest.raises(ShapeError):
        layer.forward(rng.normal(size=(3, 5)))


def test_model_shape_chain_validated(rng):
    with pytest.raises(ShapeError):
        Model("bad", [Linear(4, 8, rng=rng), Linear(9, 2, rng=rng)], input_shape=(4,))


def test_softmax_rows_sum_to_one(rng):
    model = small_ffnn(rng)
    out = model.forward(rng.normal(size=(6, 4)))
    assert out.shape == (6, 3)
    np.testing.assert_allclose(out.sum(axis=1), np.ones(6))


def test_conv2d_matches_direct_reference(rng):
    kernels = rng.normal(size=(4, 3, 3, 2))
    layer = Conv2d(2, 4, (3, 3), kernels=kernels, bias=np.zeros(4))
    x = rng.normal(size=(2, 6, 7, 2))
    out = layer.forward(x)
    for i in range(2):
        np.testing.assert_allclose(out[i], conv2d_direct(x[i], kernels), atol=1e-10)


def test_conv2d_bias_added(rng):
    bias = np.array([1.0, -2.0])
    layer = Conv2d(1, 2, (1, 1), kernels=np.zeros((2, 1, 1, 1)), bias=bias)
    out = layer.forward(np.ones((1, 3, 3, 1)))
    np.testing.assert_allclose(out[0, 0, 0], bias)


def test_maxpool_and_flatten(rng):
    x = rng.normal(size=(2, 4, 4, 3))
    pooled = MaxPool2d(2).forward(x)
    assert pooled.shape == (2, 2, 2, 3)
    assert pooled[0, 0, 0, 0] == x[0, :2, :2, 0].max()
    flat = Flatten().forward(pooled)
    assert flat.shape == (2, 12)


def test_model_param_count(rng):
    model = small_ffnn(rng)
    assert model.param_count == 4 * 8 + 8 + 8 * 3 + 3
    assert model.param_bytes == model.param_count * 8


def test_model_flops_scales_with_batch(rng):
    model = small_ffnn(rng)
    assert model.flops(10) == 10 * model.flops(1)
    assert model.flops(1) >= 2 * 4 * 8 + 2 * 8 * 3


def test_forward_with_budget_charges_and_releases(rng):
    model = small_ffnn(rng)
    budget = MemoryBudget(1 << 20)
    x = rng.normal(size=(16, 4))
    out = model.forward(x, budget=budget)
    assert out.shape == (16, 3)
    assert budget.used == 0  # everything released
    assert budget.peak >= model.param_bytes + x.nbytes


def test_forward_oom_when_weights_exceed_budget(rng):
    model = small_ffnn(rng)
    budget = MemoryBudget(model.param_bytes - 1)
    with pytest.raises(OutOfMemoryError):
        model.forward(rng.normal(size=(4, 4)), budget=budget)
    assert budget.used == 0


def test_eager_free_has_lower_peak_than_keep_all(rng):
    model = Model(
        "deep",
        [Linear(64, 64, rng=rng, name=f"fc{i}") for i in range(6)],
        input_shape=(64,),
    )
    x = rng.normal(size=(128, 64))
    eager = MemoryBudget(1 << 30)
    model.forward(x, budget=eager, eager_free=True)
    lazy = MemoryBudget(1 << 30)
    model.forward(x, budget=lazy, eager_free=False)
    assert lazy.peak > eager.peak


def test_predict_argmax(rng):
    model = small_ffnn(rng)
    x = rng.normal(size=(5, 4))
    preds = model.predict(x)
    np.testing.assert_array_equal(preds, np.argmax(model.forward(x), axis=1))


def test_empty_model_rejected():
    with pytest.raises(ModelError):
        Model("empty", [], input_shape=(4,))


def test_describe_mentions_layers(rng):
    text = small_ffnn(rng).describe()
    assert "Linear(4 -> 8)" in text
    assert "parameters" in text
