import numpy as np
import pytest

from repro.dlruntime import ADTensor
from repro.errors import ShapeError


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = fn(x)
        x[idx] = orig - eps
        f_minus = fn(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def test_matmul_gradients(rng):
    a_val = rng.normal(size=(3, 4))
    b_val = rng.normal(size=(4, 2))
    a = ADTensor(a_val.copy(), requires_grad=True)
    b = ADTensor(b_val.copy(), requires_grad=True)
    out = a.matmul(b)
    loss = ADTensor(out.data)  # placeholder; use sum via backward grad
    out.backward(np.ones_like(out.data))
    np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b_val.T, atol=1e-10)
    np.testing.assert_allclose(b.grad, a_val.T @ np.ones((3, 2)), atol=1e-10)


def test_add_broadcast_gradient(rng):
    x = ADTensor(rng.normal(size=(5, 3)), requires_grad=True)
    bias = ADTensor(rng.normal(size=3), requires_grad=True)
    out = x.add(bias)
    out.backward(np.ones((5, 3)))
    np.testing.assert_allclose(bias.grad, 5 * np.ones(3))
    np.testing.assert_allclose(x.grad, np.ones((5, 3)))


def test_relu_gradient_masks_negatives():
    x = ADTensor(np.array([[-1.0, 2.0], [3.0, -4.0]]), requires_grad=True)
    x.relu().backward(np.ones((2, 2)))
    np.testing.assert_array_equal(x.grad, [[0.0, 1.0], [1.0, 0.0]])


def test_sigmoid_gradient_matches_numeric(rng):
    x_val = rng.normal(size=(4, 3))

    def fn(arr):
        return float((1.0 / (1.0 + np.exp(-arr))).sum())

    x = ADTensor(x_val.copy(), requires_grad=True)
    x.sigmoid().backward(np.ones_like(x_val))
    np.testing.assert_allclose(x.grad, numeric_grad(fn, x_val.copy()), atol=1e-6)


def test_softmax_cross_entropy_gradient_matches_numeric(rng):
    logits_val = rng.normal(size=(6, 4))
    labels = rng.integers(0, 4, size=6)

    def fn(arr):
        shifted = arr - arr.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        return float(-np.log(probs[np.arange(6), labels]).mean())

    logits = ADTensor(logits_val.copy(), requires_grad=True)
    loss = logits.softmax_cross_entropy(labels)
    assert loss.data.shape == ()
    loss.backward()
    np.testing.assert_allclose(
        logits.grad, numeric_grad(fn, logits_val.copy()), atol=1e-6
    )


def test_conv2d_gradients_match_numeric(rng):
    x_val = rng.normal(size=(2, 5, 5, 2))
    k_val = rng.normal(size=(3, 3, 3, 2))

    def loss_from_x(arr):
        x = ADTensor(arr)
        k = ADTensor(k_val)
        return float(x.conv2d(k, stride=1, padding=1).data.sum())

    def loss_from_k(arr):
        x = ADTensor(x_val)
        k = ADTensor(arr)
        return float(x.conv2d(k, stride=1, padding=1).data.sum())

    x = ADTensor(x_val.copy(), requires_grad=True)
    k = ADTensor(k_val.copy(), requires_grad=True)
    out = x.conv2d(k, stride=1, padding=1)
    out.backward(np.ones_like(out.data))
    np.testing.assert_allclose(x.grad, numeric_grad(loss_from_x, x_val.copy()), atol=1e-5)
    np.testing.assert_allclose(k.grad, numeric_grad(loss_from_k, k_val.copy()), atol=1e-5)


def test_maxpool_routes_gradient_to_max(rng):
    x_val = np.zeros((1, 2, 2, 1))
    x_val[0, 1, 0, 0] = 5.0  # unique max
    x = ADTensor(x_val, requires_grad=True)
    x.maxpool2d(2).backward(np.ones((1, 1, 1, 1)))
    expected = np.zeros((1, 2, 2, 1))
    expected[0, 1, 0, 0] = 1.0
    np.testing.assert_array_equal(x.grad, expected)


def test_reshape_gradient_round_trips(rng):
    x = ADTensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    x.reshape((2, 12)).backward(np.ones((2, 12)))
    np.testing.assert_array_equal(x.grad, np.ones((2, 3, 4)))


def test_backward_requires_scalar_without_grad(rng):
    x = ADTensor(rng.normal(size=(2, 2)), requires_grad=True)
    with pytest.raises(ShapeError):
        x.relu().backward()


def test_gradient_accumulates_across_uses(rng):
    x = ADTensor(np.ones((2, 2)), requires_grad=True)
    y = x.add(x)  # x used twice
    y.backward(np.ones((2, 2)))
    np.testing.assert_array_equal(x.grad, 2 * np.ones((2, 2)))
