import os

import pytest

from repro.errors import StorageError
from repro.storage import FileDiskManager, InMemoryDiskManager


@pytest.fixture(params=["memory", "file"])
def disk(request, tmp_path):
    if request.param == "memory":
        manager = InMemoryDiskManager(4096)
    else:
        manager = FileDiskManager(4096, path=str(tmp_path / "pages.db"))
    yield manager
    manager.close()


def test_allocate_read_write_round_trip(disk):
    pid = disk.allocate_page()
    payload = bytes(range(256)) * 16
    disk.write_page(pid, payload)
    assert disk.read_page(pid) == payload


def test_unwritten_page_reads_as_zeros(disk):
    pid = disk.allocate_page()
    assert disk.read_page(pid) == bytes(4096)


def test_page_ids_are_sequential(disk):
    ids = [disk.allocate_page() for __ in range(5)]
    assert ids == list(range(5))
    assert disk.num_pages == 5


def test_unallocated_page_access_raises(disk):
    with pytest.raises(StorageError):
        disk.read_page(0)
    pid = disk.allocate_page()
    with pytest.raises(StorageError):
        disk.read_page(pid + 1)


def test_wrong_size_write_raises(disk):
    pid = disk.allocate_page()
    with pytest.raises(StorageError):
        disk.write_page(pid, b"short")


def test_stats_count_io(disk):
    pid = disk.allocate_page()
    disk.write_page(pid, bytes(4096))
    disk.read_page(pid)
    disk.read_page(pid)
    assert disk.stats.writes == 1
    assert disk.stats.reads == 2
    assert disk.stats.bytes_written == 4096
    assert disk.stats.bytes_read == 8192


def test_file_disk_persists_across_reopen(tmp_path):
    path = str(tmp_path / "persist.db")
    disk = FileDiskManager(1024, path=path)
    pid = disk.allocate_page()
    disk.write_page(pid, b"z" * 1024)
    disk.close()

    reopened = FileDiskManager(1024, path=path)
    assert reopened.num_pages == 1
    assert reopened.read_page(pid) == b"z" * 1024
    reopened.close()
    assert os.path.exists(path)


def test_temp_file_disk_cleans_up():
    disk = FileDiskManager(1024)
    path = disk.path
    pid = disk.allocate_page()
    disk.write_page(pid, b"a" * 1024)
    disk.close()
    assert not os.path.exists(path)
    disk.close()  # idempotent


def test_reopen_rejects_partial_trailing_slot(tmp_path):
    """A torn final slot raises a typed error naming the byte offset,
    instead of silently truncating the tail page."""
    path = str(tmp_path / "torn.db")
    disk = FileDiskManager(1024, path=path)
    for __ in range(3):
        disk.write_page(disk.allocate_page(), b"q" * 1024)
    disk.close()
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(size - 50)
    with pytest.raises(StorageError) as excinfo:
        FileDiskManager(1024, path=path)
    message = str(excinfo.value)
    assert "byte offset" in message
    assert str(size - disk.slot_size) in message
    assert path in message


def test_external_payload_modification_detected_by_checksum(tmp_path):
    from repro.errors import CorruptPageError

    path = str(tmp_path / "rot.db")
    disk = FileDiskManager(1024, path=path)
    pid = disk.allocate_page()
    disk.write_page(pid, b"k" * 1024)
    disk.sync()
    disk.close()
    # Flip one payload byte behind the manager's back (bit rot).
    with open(path, "r+b") as f:
        f.seek(disk.slot_size - 1)
        f.write(b"\x00")
    reopened = FileDiskManager(1024, path=path)
    with pytest.raises(CorruptPageError, match="checksum"):
        reopened.read_page(pid)
    reopened.close()


def test_foreign_header_rejected_not_trusted(tmp_path):
    from repro.errors import CorruptPageError

    path = str(tmp_path / "foreign.db")
    disk = FileDiskManager(1024, path=path)
    slot = disk.slot_size
    disk.close()
    with open(path, "wb") as f:
        f.write(b"NOPE" + b"\x01" * (slot - 4))  # aligned but wrong magic
    reopened = FileDiskManager(1024, path=path)
    with pytest.raises(CorruptPageError, match="magic"):
        reopened.read_page(0)
    reopened.close()


def test_allocated_but_never_written_slot_reads_zeros_after_reopen(tmp_path):
    path = str(tmp_path / "sparse.db")
    disk = FileDiskManager(1024, path=path)
    first = disk.allocate_page()
    hole = disk.allocate_page()
    last = disk.allocate_page()
    disk.write_page(first, b"a" * 1024)
    disk.write_page(last, b"z" * 1024)  # extends the file past the hole
    disk.sync()
    disk.close()
    reopened = FileDiskManager(1024, path=path)
    assert reopened.num_pages == 3
    assert reopened.read_page(hole) == bytes(1024)
    assert reopened.read_page(first) == b"a" * 1024
    assert reopened.read_page(last) == b"z" * 1024
    reopened.close()
