import pytest

from repro.errors import StorageError
from repro.storage.page import Page


def test_new_page_is_zeroed_and_unpinned():
    page = Page(3, 4096)
    assert page.page_id == 3
    assert page.size == 4096
    assert page.pin_count == 0
    assert not page.dirty
    assert page.read(0, 16) == bytes(16)


def test_write_marks_dirty_and_round_trips():
    page = Page(0, 256)
    page.write(10, b"hello")
    assert page.dirty
    assert page.read(10, 5) == b"hello"
    assert page.read(9, 1) == b"\x00"


def test_pin_unpin_accounting():
    page = Page(0, 64)
    page.pin()
    page.pin()
    page.unpin()
    page.unpin(dirty=True)
    assert page.pin_count == 0
    assert page.dirty


def test_unpin_below_zero_raises():
    page = Page(0, 64)
    with pytest.raises(StorageError):
        page.unpin()


def test_out_of_bounds_read_and_write_raise():
    page = Page(0, 64)
    with pytest.raises(StorageError):
        page.read(60, 8)
    with pytest.raises(StorageError):
        page.write(62, b"abcd")
    with pytest.raises(StorageError):
        page.read(-1, 2)
