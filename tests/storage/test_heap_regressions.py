"""Regression tests for heap-file pin accounting.

The original insert path double-unpinned when an overflow *reference*
itself forced a page append (triggered after a few thousand large-BLOB
inserts — exactly the relation-centric conv workload of Table 3).
"""

import numpy as np

from repro.relational import ColumnType, Schema
from repro.storage import BufferPool, HeapFile, InMemoryDiskManager, RowSerde

BLOB_SCHEMA = Schema.of(("id", ColumnType.INT), ("data", ColumnType.BLOB))


def test_many_overflow_inserts_fill_reference_pages():
    """Enough overflow refs to overflow the reference page several times."""
    pool = BufferPool(InMemoryDiskManager(4096), capacity_pages=8)
    heap = HeapFile(pool, RowSerde(BLOB_SCHEMA))
    blob = bytes(8192)  # every row takes the overflow path
    n = 800  # far more refs than one 4 KiB page holds
    rids = [heap.insert((i, blob)) for i in range(n)]
    assert pool.pinned_page_count() == 0
    assert heap.count() == n
    # Spot-check fetches across the whole range.
    for i in (0, n // 2, n - 1):
        assert heap.fetch(rids[i]) == (i, blob)


def test_interleaved_inline_and_overflow_inserts():
    pool = BufferPool(InMemoryDiskManager(4096), capacity_pages=8)
    heap = HeapFile(pool, RowSerde(BLOB_SCHEMA))
    expected = []
    rng = np.random.default_rng(0)
    for i in range(400):
        size = 16 if i % 3 else 8000
        blob = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
        heap.insert((i, blob))
        expected.append((i, blob))
    assert [row for __, row in heap.scan()] == expected
    assert pool.pinned_page_count() == 0
