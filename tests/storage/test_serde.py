import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.relational import ColumnType, Schema
from repro.storage import RowSerde

SCHEMA = Schema.of(
    ("id", ColumnType.INT),
    ("score", ColumnType.DOUBLE),
    ("name", ColumnType.TEXT),
    ("active", ColumnType.BOOL),
    ("payload", ColumnType.BLOB),
)


def test_round_trip_simple_row():
    serde = RowSerde(SCHEMA)
    row = (42, 3.5, "alice", True, b"\x00\x01\x02")
    assert serde.deserialize(serde.serialize(row)) == row


def test_round_trip_with_nulls():
    serde = RowSerde(SCHEMA)
    row = (None, None, None, None, None)
    assert serde.deserialize(serde.serialize(row)) == row


def test_round_trip_unicode_text():
    serde = RowSerde(SCHEMA)
    row = (1, 0.0, "naïve – ünïcode ✓", False, b"")
    assert serde.deserialize(serde.serialize(row)) == row


def test_wrong_arity_raises():
    serde = RowSerde(SCHEMA)
    with pytest.raises(StorageError):
        serde.serialize((1, 2.0))


def test_trailing_bytes_detected():
    serde = RowSerde(Schema.of(("x", ColumnType.INT)))
    data = serde.serialize((5,)) + b"junk"
    with pytest.raises(StorageError):
        serde.deserialize(data)


row_strategy = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-(2**62), max_value=2**62)),
    st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
    st.one_of(st.none(), st.text(max_size=64)),
    st.one_of(st.none(), st.booleans()),
    st.one_of(st.none(), st.binary(max_size=256)),
)


@settings(max_examples=200)
@given(row=row_strategy)
def test_property_round_trip(row):
    serde = RowSerde(SCHEMA)
    assert serde.deserialize(serde.serialize(row)) == row
