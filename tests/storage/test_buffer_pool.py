import pytest

from repro.errors import BufferPoolError
from repro.storage import BufferPool, ClockPolicy, InMemoryDiskManager, LruPolicy


def make_pool(capacity=4, policy=None, page_size=4096):
    disk = InMemoryDiskManager(page_size)
    return BufferPool(disk, capacity_pages=capacity, policy=policy)


def test_new_page_is_pinned_and_resident():
    pool = make_pool()
    page = pool.new_page()
    assert page.pin_count == 1
    assert pool.resident_pages == 1
    pool.unpin_page(page.page_id, dirty=True)


def test_fetch_hit_does_not_touch_disk():
    pool = make_pool()
    page = pool.new_page()
    page.write(0, b"abc")
    pool.unpin_page(page.page_id, dirty=True)
    reads_before = pool.disk.stats.reads
    again = pool.fetch_page(page.page_id)
    assert again.read(0, 3) == b"abc"
    assert pool.disk.stats.reads == reads_before
    assert pool.stats.hits == 1
    pool.unpin_page(page.page_id)


def test_eviction_writes_back_dirty_pages_and_reload_works():
    pool = make_pool(capacity=2)
    ids = []
    for i in range(4):
        page = pool.new_page()
        page.write(0, bytes([i]) * 8)
        pool.unpin_page(page.page_id, dirty=True)
        ids.append(page.page_id)
    assert pool.stats.evictions >= 2
    # The first pages were evicted; fetching them reads back from disk.
    for i, pid in enumerate(ids):
        page = pool.fetch_page(pid)
        assert page.read(0, 8) == bytes([i]) * 8
        pool.unpin_page(pid)


def test_all_pinned_raises():
    pool = make_pool(capacity=2)
    pool.new_page()
    pool.new_page()
    with pytest.raises(BufferPoolError):
        pool.new_page()


def test_lru_evicts_least_recently_used():
    pool = make_pool(capacity=2, policy=LruPolicy())
    a = pool.new_page()
    pool.unpin_page(a.page_id, dirty=True)
    b = pool.new_page()
    pool.unpin_page(b.page_id, dirty=True)
    # Touch a so b becomes the LRU victim.
    pool.fetch_page(a.page_id)
    pool.unpin_page(a.page_id)
    c = pool.new_page()
    pool.unpin_page(c.page_id, dirty=True)
    resident = {a.page_id, c.page_id}
    assert pool.resident_pages == 2
    misses_before = pool.stats.misses
    pool.unpin_page(pool.fetch_page(a.page_id).page_id)
    assert pool.stats.misses == misses_before  # a stayed resident


def test_clock_policy_completes_under_pressure():
    pool = make_pool(capacity=3, policy=ClockPolicy())
    ids = []
    for i in range(10):
        page = pool.new_page()
        page.write(0, bytes([i]))
        pool.unpin_page(page.page_id, dirty=True)
        ids.append(page.page_id)
    for i, pid in enumerate(ids):
        page = pool.fetch_page(pid)
        assert page.read(0, 1) == bytes([i])
        pool.unpin_page(pid)


def test_flush_all_persists_without_eviction():
    pool = make_pool(capacity=4)
    page = pool.new_page()
    page.write(0, b"persist!")
    pool.unpin_page(page.page_id, dirty=True)
    pool.flush_all()
    assert pool.disk.read_page(page.page_id)[:8] == b"persist!"


def test_hit_rate_statistic():
    pool = make_pool(capacity=4)
    page = pool.new_page()
    pool.unpin_page(page.page_id, dirty=True)
    for __ in range(3):
        pool.fetch_page(page.page_id)
        pool.unpin_page(page.page_id)
    assert pool.stats.hit_rate == 1.0
