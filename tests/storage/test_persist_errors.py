"""Persistence edge cases."""

import json

import pytest

from repro import Database
from repro.errors import StorageError
from repro.storage import BufferPool, Catalog, InMemoryDiskManager
from repro.storage.persist import (
    FORMAT_VERSION,
    load_sidecar,
    restore_catalog,
    save_sidecar,
    serialize_catalog,
    sidecar_path,
)


def test_sidecar_round_trip(tmp_path):
    catalog = Catalog(BufferPool(InMemoryDiskManager(4096), capacity_pages=8))
    from repro.relational import ColumnType, Schema

    info = catalog.create_table("t", Schema.of(("x", ColumnType.INT)))
    info.heap.insert((1,))
    info.row_count = 1
    snapshot = serialize_catalog(catalog, (32, 32))
    path = str(tmp_path / "db.catalog")
    save_sidecar(path, snapshot)
    loaded = load_sidecar(path)
    assert loaded == json.loads(json.dumps(snapshot))
    assert loaded["version"] == FORMAT_VERSION
    assert loaded["tables"][0]["name"] == "t"


def test_missing_sidecar_returns_none(tmp_path):
    assert load_sidecar(str(tmp_path / "nothing.catalog")) is None


def test_unsupported_version_rejected():
    catalog = Catalog(BufferPool(InMemoryDiskManager(4096), capacity_pages=8))
    with pytest.raises(StorageError):
        restore_catalog(catalog, {"version": 999, "block_shape": [32, 32]})


def test_sidecar_path_naming():
    assert sidecar_path("/data/db.pages") == "/data/db.pages.catalog"


def test_reopen_after_delete_preserves_tombstones(tmp_path):
    path = str(tmp_path / "db.pages")
    with Database(path=path) as db:
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("DELETE FROM t WHERE x = 2")
    with Database(path=path) as db:
        assert sorted(r[0] for r in db.execute("SELECT x FROM t")) == [1, 3]


def test_model_metadata_survives(tmp_path):
    from repro.models import fraud_fc_256

    path = str(tmp_path / "db.pages")
    with Database(path=path) as db:
        db.register_model(fraud_fc_256(), name="fraud")
        db.model_info("fraud").metadata["trained_on"] = "fraud-v3"
        db.model_info("fraud").metadata["unserializable"] = object()
    with Database(path=path) as db:
        metadata = db.model_info("fraud").metadata
        assert metadata["trained_on"] == "fraud-v3"
        assert "unserializable" not in metadata  # silently dropped
