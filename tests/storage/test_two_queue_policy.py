"""2Q scan resistance: a block-table sweep must not flush the working set."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BufferPoolError
from repro.storage import (
    BufferPool,
    InMemoryDiskManager,
    LruPolicy,
    TwoQueuePolicy,
)


def make_pool(capacity, policy):
    return BufferPool(InMemoryDiskManager(4096), capacity_pages=capacity, policy=policy)


def fill_pages(pool, n):
    ids = []
    for i in range(n):
        page = pool.new_page()
        page.write(0, bytes([i % 256]))
        pool.unpin_page(page.page_id, dirty=True)
        ids.append(page.page_id)
    return ids


def touch(pool, page_id):
    pool.unpin_page(pool.fetch_page(page_id).page_id)


def scan_hot_then_sweep(policy, capacity=16, hot=4, sweep=64):
    """Return how many hot pages survive a large one-shot sweep."""
    pool = make_pool(capacity, policy)
    hot_ids = fill_pages(pool, hot)
    # Establish the working set with repeated touches.
    for __ in range(3):
        for page_id in hot_ids:
            touch(pool, page_id)
    sweep_ids = fill_pages(pool, sweep)  # one-shot scan pages
    misses_before = pool.stats.misses
    for page_id in hot_ids:
        touch(pool, page_id)
    return hot - (pool.stats.misses - misses_before)


def test_2q_protects_working_set_better_than_lru():
    survived_2q = scan_hot_then_sweep(TwoQueuePolicy())
    survived_lru = scan_hot_then_sweep(LruPolicy())
    assert survived_2q > survived_lru
    assert survived_2q >= 3  # nearly the whole working set survives
    assert survived_lru == 0  # LRU flushes everything on a big sweep


def test_2q_correctness_under_pressure():
    pool = make_pool(6, TwoQueuePolicy())
    ids = fill_pages(pool, 40)
    for i, page_id in enumerate(ids):
        page = pool.fetch_page(page_id)
        assert page.read(0, 1) == bytes([i % 256])
        pool.unpin_page(page_id)


def test_2q_promotes_on_second_touch():
    policy = TwoQueuePolicy()
    policy.record_access(1)  # probation
    policy.record_access(2)  # probation
    policy.record_access(1)  # promoted
    assert 1 in policy._protected
    assert 1 not in policy._probation
    assert 2 in policy._probation


def test_2q_skips_pinned_pages():
    pool = make_pool(3, TwoQueuePolicy())
    pinned = pool.new_page()  # stays pinned
    a = pool.new_page()
    pool.unpin_page(a.page_id, dirty=True)
    b = pool.new_page()
    pool.unpin_page(b.page_id, dirty=True)
    c = pool.new_page()  # forces eviction; must not pick the pinned page
    pool.unpin_page(c.page_id, dirty=True)
    assert pinned.page_id in {p for p in (pinned.page_id,)}  # still resident
    assert pool.fetch_page(pinned.page_id).read(0, 1) is not None
    pool.unpin_page(pinned.page_id)
    pool.unpin_page(pinned.page_id)


def test_2q_validation():
    with pytest.raises(BufferPoolError):
        TwoQueuePolicy(probation_fraction=0.0)
    with pytest.raises(BufferPoolError):
        TwoQueuePolicy(probation_fraction=1.0)


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(2, 12),
    operations=st.lists(st.integers(0, 30), min_size=1, max_size=120),
)
def test_property_2q_pool_never_loses_data(capacity, operations):
    """Arbitrary access patterns: data always reads back correctly."""
    pool = make_pool(capacity, TwoQueuePolicy())
    contents: dict[int, bytes] = {}
    page_ids: list[int] = []
    for op in operations:
        if op >= len(page_ids):  # create a new page
            page = pool.new_page()
            payload = bytes([len(page_ids) % 251])
            page.write(0, payload)
            pool.unpin_page(page.page_id, dirty=True)
            contents[page.page_id] = payload
            page_ids.append(page.page_id)
        else:  # re-read an existing page
            target = page_ids[op]
            page = pool.fetch_page(target)
            assert page.read(0, 1) == contents[target]
            pool.unpin_page(target)
    for page_id in page_ids:
        page = pool.fetch_page(page_id)
        assert page.read(0, 1) == contents[page_id]
        pool.unpin_page(page_id)
