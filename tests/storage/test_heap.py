import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.relational import ColumnType, Schema
from repro.storage import BufferPool, HeapFile, InMemoryDiskManager, RowSerde

SCHEMA = Schema.of(("id", ColumnType.INT), ("name", ColumnType.TEXT))


def make_heap(page_size=4096, capacity=16, schema=SCHEMA):
    pool = BufferPool(InMemoryDiskManager(page_size), capacity_pages=capacity)
    return HeapFile(pool, RowSerde(schema)), pool


def test_insert_and_fetch():
    heap, __ = make_heap()
    rid = heap.insert((1, "one"))
    assert heap.fetch(rid) == (1, "one")


def test_scan_preserves_insertion_order():
    heap, __ = make_heap()
    rows = [(i, f"row-{i}") for i in range(100)]
    for row in rows:
        heap.insert(row)
    assert [r for __, r in heap.scan()] == rows


def test_spans_multiple_pages():
    heap, pool = make_heap(page_size=4096, capacity=4)
    n = 2000  # far more than one 4 KiB page worth of rows
    for i in range(n):
        heap.insert((i, "x" * 50))
    assert heap.count() == n
    assert pool.disk.num_pages > 1
    assert pool.stats.evictions > 0  # the tiny pool had to spill


def test_delete_tombstones_row():
    heap, __ = make_heap()
    rid1 = heap.insert((1, "a"))
    rid2 = heap.insert((2, "b"))
    heap.delete(rid1)
    assert [r for __, r in heap.scan()] == [(2, "b")]
    with pytest.raises(StorageError):
        heap.fetch(rid1)
    assert heap.fetch(rid2) == (2, "b")


def test_overflow_record_larger_than_page():
    blob_schema = Schema.of(("id", ColumnType.INT), ("data", ColumnType.BLOB))
    heap, pool = make_heap(page_size=4096, capacity=8, schema=blob_schema)
    big = bytes(np.arange(5000, dtype=np.int32).tobytes())  # 20 KB > page
    rid = heap.insert((7, big))
    small_rid = heap.insert((8, b"small"))
    assert heap.fetch(rid) == (7, big)
    assert heap.fetch(small_rid) == (8, b"small")
    scanned = dict((row[0], row[1]) for __, row in heap.scan())
    assert scanned == {7: big, 8: b"small"}


def test_overflow_survives_eviction():
    blob_schema = Schema.of(("id", ColumnType.INT), ("data", ColumnType.BLOB))
    heap, pool = make_heap(page_size=4096, capacity=4, schema=blob_schema)
    blobs = [bytes([i]) * 10_000 for i in range(10)]
    rids = [heap.insert((i, blob)) for i, blob in enumerate(blobs)]
    assert pool.stats.evictions > 0
    for i, rid in enumerate(rids):
        assert heap.fetch(rid) == (i, blobs[i])


def test_reopen_heap_from_first_page_id():
    pool = BufferPool(InMemoryDiskManager(4096), capacity_pages=16)
    heap = HeapFile(pool, RowSerde(SCHEMA))
    for i in range(300):
        heap.insert((i, f"r{i}"))
    reopened = HeapFile(pool, RowSerde(SCHEMA), first_page_id=heap.first_page_id)
    assert reopened.count() == 300
    reopened.insert((300, "appended"))
    assert reopened.count() == 301


def test_no_pins_leak_after_operations():
    heap, pool = make_heap(page_size=4096, capacity=4)
    for i in range(500):
        heap.insert((i, "payload" * 10))
    list(heap.scan())
    assert pool.pinned_page_count() == 0


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(-1000, 1000), st.text(max_size=200)), max_size=60
    )
)
def test_property_insert_then_scan_is_identity(rows):
    heap, __ = make_heap(page_size=4096, capacity=8)
    for row in rows:
        heap.insert(row)
    assert [r for __, r in heap.scan()] == rows
