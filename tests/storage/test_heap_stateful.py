"""Stateful property test: the heap file against a model dict.

Hypothesis drives random interleavings of insert / delete / fetch / scan
against a reference dict; the heap (over a deliberately tiny buffer pool,
so evictions and overflow chains fire constantly) must agree at every
step.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.relational import ColumnType, Schema
from repro.storage import BufferPool, HeapFile, InMemoryDiskManager, RowSerde

SCHEMA = Schema.of(
    ("id", ColumnType.INT),
    ("text", ColumnType.TEXT),
    ("blob", ColumnType.BLOB),
)


class HeapMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        pool = BufferPool(InMemoryDiskManager(2048), capacity_pages=4)
        self.pool = pool
        self.heap = HeapFile(pool, RowSerde(SCHEMA))
        self.model: dict = {}  # rid -> row
        self.insertion_order: list = []

    rids = Bundle("rids")

    @rule(
        target=rids,
        ident=st.integers(-(2**40), 2**40),
        text=st.text(max_size=40),
        blob_size=st.sampled_from([0, 10, 500, 3000, 9000]),
    )
    def insert(self, ident, text, blob_size):
        blob = bytes((ident + i) % 256 for i in range(blob_size))
        row = (ident, text, blob)
        rid = self.heap.insert(row)
        assert rid not in self.model
        self.model[rid] = row
        self.insertion_order.append(rid)
        return rid

    @rule(rid=rids)
    def fetch(self, rid):
        if rid in self.model:
            assert self.heap.fetch(rid) == self.model[rid]

    @rule(rid=rids)
    def delete(self, rid):
        if rid in self.model:
            self.heap.delete(rid)
            del self.model[rid]
            self.insertion_order.remove(rid)

    @invariant()
    def scan_matches_model(self):
        scanned = list(self.heap.scan())
        assert [rid for rid, __ in scanned] == self.insertion_order
        for rid, row in scanned:
            assert row == self.model[rid]

    @invariant()
    def no_leaked_pins(self):
        assert self.pool.pinned_page_count() == 0


TestHeapStateMachine = HeapMachine.TestCase
TestHeapStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
