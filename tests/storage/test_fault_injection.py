"""Failure injection: I/O faults must propagate cleanly, not corrupt state."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.relational import ColumnType, Schema
from repro.storage import BufferPool, HeapFile, InMemoryDiskManager, RowSerde


class FaultyDisk(InMemoryDiskManager):
    """A disk that starts failing on command."""

    def __init__(self, page_size: int):
        super().__init__(page_size)
        self.fail_reads_after = None
        self.fail_writes_after = None

    def read_page(self, page_id):
        if self.fail_reads_after is not None and self.stats.reads >= self.fail_reads_after:
            raise StorageError(f"injected read fault on page {page_id}")
        return super().read_page(page_id)

    def write_page(self, page_id, data):
        if (
            self.fail_writes_after is not None
            and self.stats.writes >= self.fail_writes_after
        ):
            raise StorageError(f"injected write fault on page {page_id}")
        super().write_page(page_id, data)


SCHEMA = Schema.of(("id", ColumnType.INT), ("payload", ColumnType.TEXT))


def loaded_heap(capacity=4, rows=400):
    disk = FaultyDisk(4096)
    pool = BufferPool(disk, capacity_pages=capacity)
    heap = HeapFile(pool, RowSerde(SCHEMA))
    for i in range(rows):
        heap.insert((i, "x" * 40))
    return disk, pool, heap


def test_read_fault_surfaces_during_scan():
    disk, pool, heap = loaded_heap()
    pool.flush_all()
    disk.fail_reads_after = disk.stats.reads + 3
    with pytest.raises(StorageError, match="injected read fault"):
        list(heap.scan())


def test_write_fault_surfaces_on_eviction():
    disk, pool, heap = loaded_heap(capacity=4, rows=50)
    disk.fail_writes_after = disk.stats.writes  # next eviction writeback dies
    with pytest.raises(StorageError, match="injected write fault"):
        for i in range(1000):
            heap.insert((1000 + i, "y" * 60))


def test_pool_recovers_after_transient_read_fault():
    disk, pool, heap = loaded_heap()
    pool.flush_all()
    disk.fail_reads_after = disk.stats.reads  # fail immediately...
    with pytest.raises(StorageError):
        list(heap.scan())
    disk.fail_reads_after = None  # ...then the fault clears
    rows = [r for __, r in heap.scan()]
    assert len(rows) == 400
    assert rows[0] == (0, "x" * 40)


def test_no_pins_leak_after_read_fault():
    disk, pool, heap = loaded_heap()
    pool.flush_all()
    disk.fail_reads_after = disk.stats.reads + 2
    with pytest.raises(StorageError):
        list(heap.scan())
    # The generator died mid-page, but page pins were released per page.
    assert pool.pinned_page_count() == 0


def test_fault_during_overflow_chain_read():
    disk = FaultyDisk(4096)
    pool = BufferPool(disk, capacity_pages=4)
    blob_schema = Schema.of(("id", ColumnType.INT), ("data", ColumnType.BLOB))
    heap = HeapFile(pool, RowSerde(blob_schema))
    rid = heap.insert((1, bytes(50_000)))  # long overflow chain
    pool.flush_all()
    disk.fail_reads_after = disk.stats.reads + 5  # die mid-chain
    with pytest.raises(StorageError):
        heap.fetch(rid)
    disk.fail_reads_after = None
    assert heap.fetch(rid) == (1, bytes(50_000))
