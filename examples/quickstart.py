"""Quickstart: serve a deep-learning model from SQL in ~30 lines.

Creates an embedded database, loads a table of transactions, registers a
fraud-detection FFNN, and runs inference with an ordinary SELECT whose
``PREDICT(...)`` call is planned by the adaptive optimizer.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.data import feature_column_names, fraud_schema, fraud_transactions
from repro.models import fraud_fc_256


def main() -> None:
    db = Database()

    # 1. Relational data lives in ordinary tables.
    __, __, rows = fraud_transactions(n=2_000, seed=7)
    db.create_table("transactions", fraud_schema())
    db.load_rows("transactions", rows)

    # 2. Models are registered in the catalog and AoT-compiled: the
    #    optimizer pre-plans representations for a grid of batch sizes.
    db.register_model(fraud_fc_256(), name="fraud")

    # 3. Inference is just SQL.
    features = ", ".join(feature_column_names())
    cursor = db.execute(
        f"SELECT id, PREDICT(fraud, {features}) AS flagged "
        "FROM transactions WHERE f0 > 1.0 ORDER BY id LIMIT 10"
    )
    print("id | flagged")
    for row in cursor:
        print(f"{row[0]:>2} | {row[1]}")

    # 4. EXPLAIN shows both the relational plan and the representation the
    #    optimizer chose for every model operator (here: one fused UDF,
    #    because a 28/256/2 model fits comfortably in memory).
    print("\n" + db.explain(f"SELECT PREDICT(fraud, {features}) FROM transactions"))

    db.close()


if __name__ == "__main__":
    main()
