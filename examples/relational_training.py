"""Training inside the relational engine (the paper's Sec. 6.1 extension).

The paper asks whether the relation-centric representation can host not
just inference but *training*, and sketches the answer this repo
implements: every backward operator becomes relational pipelines —

    dW = Xᵀ × dZ      transpose (a block map) + join + SUM_BLOCK
    dX = dZ × Wᵀ      same
    db = Σ_rows dZ    block aggregation
    ReLU mask         coordinate-join of two block relations

This example trains the fraud FFNN two ways — relational pipelines vs
the autodiff tape — from identical initial weights, and shows the loss
curves coincide (they are the same mathematics, executed through joins).

Run:  python examples/relational_training.py
"""

import numpy as np

from repro.core import RelationalTrainer
from repro.data import fraud_transactions
from repro.dlruntime import SGD
from repro.models import fraud_fc_256


def main() -> None:
    features, labels, __ = fraud_transactions(n=2_000, seed=23, fraud_rate=0.15)

    relational_model = fraud_fc_256(seed=5)
    autodiff_model = fraud_fc_256(seed=5)  # identical initial weights

    trainer = RelationalTrainer(relational_model, block_shape=(64, 64))
    optimizer = SGD([p for __, p in autodiff_model.parameters()], lr=0.5)

    print("epoch | relational loss | autodiff loss")
    print("------+-----------------+--------------")
    rng = np.random.default_rng(0)
    for epoch in range(8):
        perm = rng.permutation(features.shape[0])
        rel_loss = ad_loss = 0.0
        batches = 0
        for lo in range(0, features.shape[0], 256):
            idx = perm[lo : lo + 256]
            rel_loss += trainer.step(features[idx], labels[idx], lr=0.5)

            optimizer.zero_grad()
            logits = autodiff_model.forward_ad(features[idx])
            loss = logits.softmax_cross_entropy(labels[idx])
            loss.backward()
            optimizer.step()
            ad_loss += float(loss.data)
            batches += 1
        print(
            f"  {epoch:>3} | {rel_loss / batches:>15.6f} | "
            f"{ad_loss / batches:>13.6f}"
        )

    rel_acc = float((relational_model.predict(features) == labels).mean())
    ad_acc = float((autodiff_model.predict(features) == labels).mean())
    weight_gap = float(
        np.max(
            np.abs(
                relational_model.layers[0].weight.data
                - autodiff_model.layers[0].weight.data
            )
        )
    )
    print(
        f"\nfinal accuracy: relational {rel_acc:.2%}, autodiff {ad_acc:.2%}; "
        f"max weight divergence {weight_gap:.2e}"
    )
    print(
        "every data-sized tensor in the relational run moved through "
        "transpose / join / SUM_BLOCK pipelines — the same operators that "
        "serve inference."
    )


if __name__ == "__main__":
    main()
