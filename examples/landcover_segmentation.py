"""LandCover: convolving satellite tiles that dwarf memory.

The paper's scientific workload (Table 2 / Table 3): a 1×1-kernel conv
expanding 3 channels to thousands of feature channels over large tiles.
The output feature map alone exceeds what a whole-tensor engine may hold,
so:

* the rule-based optimizer lowers the conv to the relation-centric
  representation (im2col → join + SUM_BLOCK aggregation);
* the block relation streams through the buffer pool, spilling to disk;
* the framework stand-ins OOM on the same budget.

Run:  python examples/landcover_segmentation.py
"""

import numpy as np

from repro.config import SystemConfig, mb
from repro.core import RuleBasedOptimizer
from repro.data import landcover_tiles
from repro.dlruntime import ExternalRuntime, MemoryBudget
from repro.engines import RelationCentricEngine
from repro.errors import OutOfMemoryError
from repro.models import landcover
from repro.storage import BufferPool, Catalog, FileDiskManager


def main() -> None:
    spatial, out_channels = 256, 192
    config = SystemConfig(
        buffer_pool_bytes=mb(24),
        memory_threshold_bytes=mb(16),
        dl_memory_limit_bytes=mb(40),
    )
    model = landcover(spatial=spatial, out_channels=out_channels)
    conv = model.layers[0]
    out_bytes = spatial * spatial * out_channels * 8
    print(
        f"workload: conv {spatial}x{spatial}x3 -> {out_channels} channels; "
        f"output feature map = {out_bytes / 2**20:.0f} MiB "
        f"(whole-tensor budget: {config.dl_memory_limit_bytes / 2**20:.0f} MiB)"
    )

    plan = RuleBasedOptimizer(config).plan_model(model, batch_size=1)
    print("\noptimizer decision:")
    print(plan.explain())

    tiles = landcover_tiles(1, spatial=spatial, seed=5)

    print("\nDL-centric attempt (TensorFlow stand-in):")
    runtime = ExternalRuntime(
        "tensorflow-sim", MemoryBudget(config.dl_memory_limit_bytes)
    )
    handle = runtime.load_model(model)
    try:
        runtime.run(handle, tiles)
        print("  completed (unexpected at this budget)")
    except OutOfMemoryError as exc:
        print(f"  OOM, as in Table 3: {exc}")

    print("\nrelation-centric execution (ours):")
    disk = FileDiskManager(config.page_size)
    catalog = Catalog(BufferPool(disk, config.buffer_pool_pages))
    info = catalog.register_model("landcover", model)
    engine = RelationCentricEngine(catalog, config, stripe_rows=2048)
    pool = catalog.pool
    result = engine.run_conv_stage(conv, tiles, info, result_table="feature_map")
    print(
        f"  completed in {result.measured_seconds:.2f}s; peak accounted "
        f"memory {result.peak_memory_bytes / 2**20:.1f} MiB "
        f"(vs {out_bytes / 2**20:.0f} MiB output)"
    )
    print(
        f"  feature map stored as {int(result.detail['result_table_rows']):,} "
        "tensor-block rows in table 'feature_map'; buffer pool evicted "
        f"{pool.stats.evictions:,} pages to disk along the way"
    )

    # Verify a small corner of the result against the dense reference.
    out = engine.load_conv_result(
        "feature_map", 1, spatial, spatial, out_channels
    )
    reference = model.forward(tiles)
    np.testing.assert_allclose(out, reference, atol=1e-9)
    print("  block-level result verified against the dense reference ✓")
    disk.close()


if __name__ == "__main__":
    main()
