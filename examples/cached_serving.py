"""Online serving with SLA-governed inference-result caching (Sec. 5.1).

Trains the paper's cache-study CNN on the synthetic digit dataset, then:

1. lets the :class:`AdaptiveCachePolicy` pick the loosest HNSW distance
   threshold whose Monte-Carlo disagreement bound satisfies the SLA;
2. serves a Zipf-skewed online query stream one request at a time,
   exact versus cached;
3. reports speedup, hit rate, and the accuracy actually paid.

Run:  python examples/cached_serving.py
"""

import time

import numpy as np

from repro.data import synthetic_mnist, zipf_query_stream
from repro.dlruntime import Adam
from repro.indexes import HnswIndex
from repro.models import cache_cnn
from repro.serving import AdaptiveCachePolicy, InferenceResultCache


def train(model, x, y, epochs=4):
    optimizer = Adam([p for __, p in model.parameters()], lr=2e-3)
    rng = np.random.default_rng(1)
    for epoch in range(epochs):
        perm = rng.permutation(x.shape[0])
        for lo in range(0, x.shape[0], 64):
            idx = perm[lo : lo + 64]
            optimizer.zero_grad()
            model.forward_ad(x[idx]).softmax_cross_entropy(y[idx]).backward()
            optimizer.step()
    return model


def serve(model, queries, cache=None):
    predictions = np.empty(len(queries), dtype=np.int64)
    start = time.perf_counter()
    for i in range(len(queries)):
        if cache is None:
            predictions[i] = model.predict(queries[i : i + 1])[0]
        else:
            preds, __ = cache.serve(queries[i : i + 1])
            predictions[i] = preds[0]
    return predictions, time.perf_counter() - start


def main() -> None:
    print("training cache-cnn on synthetic digits...")
    x_train, y_train, x_test, y_test = synthetic_mnist(1_200, 300, seed=9)
    model = train(cache_cnn(seed=10), x_train, y_train)
    test_acc = float((model.predict(x_test) == y_test).mean())
    print(f"  test accuracy: {test_acc:.2%}")

    cache = InferenceResultCache(
        model,
        HnswIndex(784, m=8, ef_search=8, seed=11),
        distance_threshold=0.0,  # the policy will choose
    )
    base = x_test.reshape(300, -1)
    cache.warm(x_test)

    print("\nadaptive policy: loosest threshold within a 5% accuracy SLA")
    validation, __ = zipf_query_stream(base, 300, skew=1.2, jitter=0.01, seed=12)
    validation_images = validation.reshape(-1, 28, 28, 1)
    policy = AdaptiveCachePolicy(
        max_accuracy_drop=0.05, confidence=0.9, bound="clopper-pearson"
    )
    decision = policy.decide(cache, validation_images, [10.0, 5.0, 2.0, 0.5])
    for threshold, bound in decision.candidates_tried:
        print(f"  threshold {threshold:>4}: disagreement bound {bound:.1%}")
    if not decision.enabled:
        print("  no threshold met the SLA; serving exact")
        return
    print(f"  -> enabled at threshold {decision.threshold}")

    print("\nserving 1,000 online queries (Zipf-skewed near-duplicates):")
    queries, indices = zipf_query_stream(base, 1_000, skew=1.2, jitter=0.01, seed=13)
    labels = y_test[indices]
    images = queries.reshape(-1, 28, 28, 1)
    exact_preds, exact_s = serve(model, images)
    cached_preds, cached_s = serve(model, images, cache=cache)
    print(
        f"  exact : {exact_s:.2f}s, accuracy "
        f"{float((exact_preds == labels).mean()):.2%}"
    )
    print(
        f"  cached: {cached_s:.2f}s, accuracy "
        f"{float((cached_preds == labels).mean()):.2%}, hit rate "
        f"{cache.stats.hit_rate:.0%}, speedup {exact_s / cached_s:.1f}x"
    )


if __name__ == "__main__":
    main()
