"""Credit-card fraud detection, end to end inside the database.

The paper's first motivating workload (Sec. 1): latency-critical fraud
scoring over transactions managed by an RDBMS.  This example goes beyond
the quickstart:

1. trains the Fraud-FC-256 architecture on labelled transactions using
   the in-repo autodiff + SGD (the Sec. 6.1 training extension);
2. registers the trained model and serves nested SQL inference queries;
3. compares the adaptive plan against forcing each architecture
   (UDF-centric / relation-centric / DL-centric) on the same query;
4. reports detection quality against the held-out labels.

Run:  python examples/fraud_detection.py
"""

import numpy as np

from repro import Database
from repro.data import feature_column_names, fraud_schema, fraud_transactions
from repro.dlruntime import SGD
from repro.models import fraud_fc_256


def train_model(features: np.ndarray, labels: np.ndarray):
    model = fraud_fc_256(seed=3)
    params = [p for __, p in model.parameters()]
    optimizer = SGD(params, lr=0.05, momentum=0.9)
    rng = np.random.default_rng(0)
    for epoch in range(15):
        perm = rng.permutation(features.shape[0])
        epoch_loss = 0.0
        batches = 0
        for lo in range(0, features.shape[0], 128):
            idx = perm[lo : lo + 128]
            optimizer.zero_grad()
            logits = model.forward_ad(features[idx])
            loss = logits.softmax_cross_entropy(labels[idx])
            loss.backward()
            optimizer.step()
            epoch_loss += float(loss.data)
            batches += 1
        if epoch % 5 == 4:
            print(f"  epoch {epoch + 1:>2}: loss {epoch_loss / batches:.4f}")
    return model


def main() -> None:
    print("generating transactions...")
    features, labels, rows = fraud_transactions(n=8_000, seed=17, fraud_rate=0.08)
    train_cut = 6_000

    print("training fraud-fc-256 in-process (Sec. 6.1 extension):")
    model = train_model(features[:train_cut], labels[:train_cut])

    # Threshold sized so the small fraud model plans as one fused UDF even
    # at the full held-out batch (see Sec. 7.1's rule).
    from repro.config import mb

    db = Database(memory_threshold_bytes=mb(64))
    db.create_table("transactions", fraud_schema())
    db.load_rows("transactions", rows[train_cut:])  # serve the held-out part
    db.register_model(model, name="fraud")

    feature_list = ", ".join(feature_column_names())
    query = (
        f"SELECT id, label, PREDICT(fraud, {feature_list}) AS flagged "
        "FROM transactions"
    )
    cursor = db.execute(query)
    predictions = np.array(cursor.column("flagged"))
    truth = np.array(cursor.column("label"))
    accuracy = float((predictions == truth).mean())
    flagged_rate = float(predictions.mean())
    recall = float(
        (predictions[truth == 1] == 1).mean() if (truth == 1).any() else 0.0
    )
    print(
        f"\nserved {len(cursor):,} held-out transactions through SQL: "
        f"accuracy {accuracy:.1%}, fraud recall {recall:.1%}, "
        f"flag rate {flagged_rate:.1%}"
    )

    print("\ncomparing architectures on the same inference (batch = all rows):")
    x = features[train_cut:]
    for force in (None, "udf-centric", "relation-centric", "dl-centric"):
        result = db.predict("fraud", x, force=force)
        name = force or "adaptive (ours)"
        print(
            f"  {name:<18} measured {result.measured_seconds * 1e3:7.1f} ms   "
            f"modeled {result.modeled_total_seconds * 1e3:7.1f} ms   "
            f"peak {result.peak_memory_bytes / 2**20:6.1f} MiB"
        )

    print("\naggregate analytics compose with inference results:")
    cursor = db.execute(
        f"SELECT PREDICT(fraud, {feature_list}) AS flagged, f0 FROM transactions"
    )
    flagged_f0 = [row[1] for row in cursor if row[0] == 1]
    print(
        f"  mean f0 among flagged transactions: "
        f"{float(np.mean(flagged_f0)) if flagged_f0 else float('nan'):.3f}"
    )
    db.close()


if __name__ == "__main__":
    main()
