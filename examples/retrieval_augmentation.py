"""The RDBMS as a retrieval engine for augmented inference (Sec. 6.3).

The paper concedes that giant language models belong in specialised
systems, but argues the envisioned RDBMS "can serve as a high-performance
retrieving engine by allowing efficient inference queries to retrieve
data for augmenting LLM inferences".  This example builds that loop
end-to-end, with a small in-database encoder standing in for the
embedding model:

1. a document table stores text plus embedding BLOBs produced by a
   registered encoder model;
2. an HNSW vector index over the embedding column serves k-NN retrieval;
3. an incoming "prompt" is embedded by the same encoder and its nearest
   documents are fetched — the context an external LLM would consume —
   along with relational filters (the part vector-only stores cannot do).

Run:  python examples/retrieval_augmentation.py
"""

import numpy as np

from repro import Database
from repro.dlruntime import Linear, Model, ReLU

EMBED_DIM = 32
VOCAB = [
    "storage", "buffer", "pool", "index", "join", "tensor", "model",
    "inference", "cache", "gradient", "query", "optimizer", "spill",
    "block", "latency", "memory", "softmax", "relu", "batch", "stream",
]

TOPICS = {
    "storage engines": ["storage", "buffer", "pool", "spill", "block"],
    "query processing": ["query", "join", "index", "optimizer", "latency"],
    "model serving": ["model", "inference", "cache", "batch", "softmax"],
    "training systems": ["gradient", "tensor", "relu", "memory", "stream"],
}


def bag_of_words(text: str) -> np.ndarray:
    """A toy featurizer: word counts over the vocabulary."""
    counts = np.zeros(len(VOCAB))
    for word in text.lower().split():
        if word in VOCAB:
            counts[VOCAB.index(word)] += 1.0
    return counts


def make_encoder() -> Model:
    """A small FFNN encoder mapping word counts to embeddings."""
    rng = np.random.default_rng(77)
    return Model(
        "encoder",
        [
            Linear(len(VOCAB), 64, rng=rng, name="fc1"),
            ReLU(),
            Linear(64, EMBED_DIM, rng=rng, name="fc2"),
        ],
        input_shape=(len(VOCAB),),
    )


def synth_documents(rng) -> list[tuple[int, str, str]]:
    docs = []
    doc_id = 0
    for topic, keywords in TOPICS.items():
        for __ in range(25):
            words = list(rng.choice(keywords, size=6)) + list(
                rng.choice(VOCAB, size=2)
            )
            docs.append((doc_id, topic, " ".join(words)))
            doc_id += 1
    return docs


def main() -> None:
    rng = np.random.default_rng(3)
    encoder = make_encoder()

    db = Database()
    db.execute("CREATE TABLE docs (id INT, topic TEXT, body TEXT, embedding BLOB)")
    documents = synth_documents(rng)
    rows = []
    for doc_id, topic, body in documents:
        embedding = encoder.forward(bag_of_words(body)[None, :])[0]
        rows.append((doc_id, topic, body, np.ascontiguousarray(embedding).tobytes()))
    db.load_rows("docs", rows)
    db.register_model(encoder, name="encoder")
    indexed = db.create_vector_index("doc_idx", "docs", "embedding", kind="hnsw")
    print(f"indexed {indexed} documents under HNSW")

    prompt = "why does the buffer pool spill a block to storage"
    print(f"\nprompt: {prompt!r}")
    query_embedding = encoder.forward(bag_of_words(prompt)[None, :])[0]
    hits = db.vector_search("doc_idx", query_embedding, k=5)
    print("retrieved context (nearest first):")
    topic_votes: dict[str, int] = {}
    for row in hits:
        doc_id, topic, body, __, distance = row
        topic_votes[topic] = topic_votes.get(topic, 0) + 1
        print(f"  doc {doc_id:>3} [{topic:<16}] d={distance:6.3f}  {body}")
    majority = max(topic_votes, key=topic_votes.get)
    print(f"\nmajority topic of retrieved context: {majority}")

    # Relational predicates compose with retrieval — the reason to keep
    # vectors inside the RDBMS rather than a separate vector store.
    cur = db.execute(
        "SELECT topic, COUNT(*) AS n FROM docs GROUP BY topic ORDER BY n DESC"
    )
    print("\ncorpus by topic (plain SQL over the same table):")
    for topic, n in cur:
        print(f"  {topic:<18} {n}")
    db.close()


if __name__ == "__main__":
    main()
