"""Online model lifecycle: versioned catalog, deployments, drain.

``repro.lifecycle`` decouples *catalog changes* from *serving traffic*:

- :class:`ModelCatalog` — copy-on-write, generation-stamped snapshots;
  readers pin one snapshot per call and never block on a deploy.
- :class:`DeploymentController` — the ``preparing -> shadowing -> canary
  -> promoted | rolled_back`` state machine behind ``DEPLOY MODEL``,
  ``ROLLBACK MODEL`` and ``SHOW DEPLOYMENTS``, with per-version circuit
  breakers and auto-rollback on breaker trip, SLO fast-burn, or shadow
  divergence.
- :mod:`~repro.lifecycle.routing` — deterministic fingerprint-hashed
  canary splits and mirrored shadow execution with stable-version
  fallback.
"""

from .catalog import (
    CatalogSnapshot,
    ModelCatalog,
    ModelEntry,
    VersionRecord,
)
from .controller import (
    CANARY,
    DEPLOYMENT_COLUMNS,
    PREPARING,
    PROMOTED,
    ROLLED_BACK,
    SHADOWING,
    Deployment,
    DeploymentController,
)
from .routing import canary_mask, routed_predict, routing_hashes

__all__ = [
    "CatalogSnapshot",
    "ModelCatalog",
    "ModelEntry",
    "VersionRecord",
    "Deployment",
    "DeploymentController",
    "DEPLOYMENT_COLUMNS",
    "PREPARING",
    "SHADOWING",
    "CANARY",
    "PROMOTED",
    "ROLLED_BACK",
    "routing_hashes",
    "canary_mask",
    "routed_predict",
]
