"""The deployment state machine.

One :class:`Deployment` per ``DEPLOY MODEL`` statement, walking

    preparing -> shadowing -> canary -> promoted | rolled_back

(either middle stage is optional: ``DEPLOY ... SHADOW`` starts at
shadowing, ``DEPLOY ... CANARY x%`` at canary, and a bare ``DEPLOY``
promotes immediately).  The controller owns the *decision* logic; the
copy-on-write :class:`~repro.lifecycle.catalog.ModelCatalog` owns the
*publication* — every transition is exactly one snapshot swap.

Auto-rollback fires on any of three signals, all fed from the serving
path via :meth:`observe_canary` / :meth:`observe_shadow`:

- the deployment's per-version circuit breaker (keyed ``model@version``,
  separate from the server's per-model breakers) trips OPEN;
- the model's SLO enters fast burn while the deployment is live;
- the shadow-divergence rate exceeds the configured threshold once
  enough rows have been compared.

Rollback re-points traffic in one swap and emits a ``deploy.rollback``
flight-recorder event carrying the reason.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..errors import DeploymentError, NoServableVersionError
from ..resilience.breaker import OPEN, BreakerBoard
from .catalog import V_READY, V_RETIRED

#: Deployment states (the state machine's nodes).
PREPARING = "preparing"
SHADOWING = "shadowing"
CANARY = "canary"
PROMOTED = "promoted"
ROLLED_BACK = "rolled_back"

#: Columns for ``SHOW DEPLOYMENTS`` cursors.
DEPLOYMENT_COLUMNS: tuple[str, ...] = (
    "deploy_id",
    "model",
    "version",
    "state",
    "canary_percent",
    "shadow",
    "requests",
    "failures",
    "total_rows",
    "shadow_compared",
    "shadow_diverged",
    "generation",
    "reason",
    "history",
)


@dataclass
class Deployment:
    """One deployment's mutable record (guarded by the controller lock)."""

    deploy_id: int
    model: str
    version: str
    previous: str
    canary_percent: float | None = None
    shadow: bool = False
    state: str = PREPARING
    requests: int = 0       # canary-routed rows executed on the new version
    failures: int = 0       # canary rows whose new-version execution failed
    total_rows: int = 0     # all rows routed while the canary was live
    shadow_compared: int = 0
    shadow_diverged: int = 0
    generation: int = 0     # generation of the latest transition's publish
    reason: str = ""
    history: list[str] = field(default_factory=list)

    def transition(self, state: str, generation: int) -> None:
        self.state = state
        self.generation = generation
        self.history.append(state)

    def history_str(self) -> str:
        return ">".join(self.history)

    def as_row(self) -> tuple:
        return (
            self.deploy_id,
            self.model,
            self.version,
            self.state,
            self.canary_percent if self.canary_percent is not None else 0.0,
            self.shadow,
            self.requests,
            self.failures,
            self.total_rows,
            self.shadow_compared,
            self.shadow_diverged,
            self.generation,
            self.reason,
            self.history_str(),
        )


class DeploymentController:
    """Drives deployments against a Database's lifecycle catalog."""

    def __init__(self, db):
        self._db = db
        self._lock = threading.RLock()
        self._deployments: list[Deployment] = []
        self._active: dict[str, Deployment] = {}
        self._next_id = 1
        # Per-version breakers: one breaker per deployed version, so a
        # broken v2 trips its own circuit without touching the serving
        # version's (or the server's per-model) breaker state.
        self.breakers = (
            BreakerBoard.from_config(db.config, seed=db.config.faults_seed)
            if db.config.breaker_enabled
            else None
        )

    # -- helpers ---------------------------------------------------------

    @property
    def _catalog(self):
        return self._db._lifecycle

    @property
    def _config(self):
        return self._db.config

    def _recorder(self):
        telemetry = self._db._telemetry
        return telemetry.events

    def breaker_for(self, model: str, version: str):
        if self.breakers is None:
            return None
        return self.breakers.get(f"{model}@{version}")

    # -- the state machine ----------------------------------------------

    def deploy(
        self,
        model: str,
        version: str,
        canary_percent: float | None = None,
        shadow: bool = False,
    ) -> Deployment:
        """Start (or immediately complete) one deployment."""
        model, version = model.lower(), version.lower()
        with self._lock:
            snapshot = self._catalog.snapshot()
            entry = snapshot.entry(model)
            if entry is None:
                raise DeploymentError(
                    f"no model named {model!r}; register it first"
                )
            in_flight = self._active.get(model)
            if in_flight is not None:
                raise DeploymentError(
                    f"model {model!r} already has deployment "
                    f"#{in_flight.deploy_id} in flight "
                    f"(version {in_flight.version}, state {in_flight.state})"
                )
            record = entry.record(version)
            if record is None or record.state not in (V_READY, V_RETIRED):
                raise NoServableVersionError(
                    model, entry.candidates(), requested=version
                )
            dep = Deployment(
                deploy_id=self._next_id,
                model=model,
                version=version,
                previous=entry.serving,
                canary_percent=canary_percent,
                shadow=shadow,
                generation=snapshot.generation,
            )
            self._next_id += 1
            dep.history.append(PREPARING)
            self._deployments.append(dep)
            self._recorder().emit(
                "deploy.start",
                deploy_id=dep.deploy_id,
                model=model,
                version=version,
                canary_percent=canary_percent,
                shadow=shadow,
            )
            try:
                if shadow:
                    gen = self._catalog.route_shadow(model, version)
                    dep.transition(SHADOWING, gen)
                elif canary_percent is not None:
                    gen = self._catalog.route_canary(
                        model, version, canary_percent
                    )
                    dep.transition(CANARY, gen)
                else:
                    self._promote_locked(dep)
                    return dep
            except Exception as exc:
                # The swap never published (fault sites fire before the
                # pointer assignment), so the old version still serves.
                dep.reason = f"deploy aborted: {exc}"
                dep.transition(ROLLED_BACK, self._catalog.generation)
                self._recorder().emit(
                    "deploy.rollback",
                    deploy_id=dep.deploy_id,
                    model=model,
                    version=version,
                    reason="swap-failed",
                )
                raise
            self._active[model] = dep
            self._emit_state(dep)
            return dep

    def promote(self, model: str) -> Deployment:
        """Manually advance the in-flight deployment straight to promoted."""
        with self._lock:
            dep = self._active.get(model.lower())
            if dep is None:
                raise DeploymentError(
                    f"no in-flight deployment for model {model!r}"
                )
            self._promote_locked(dep)
            return dep

    def rollback(self, model: str, reason: str = "manual") -> Deployment:
        """Roll back the in-flight — or the last promoted — deployment."""
        model = model.lower()
        with self._lock:
            dep = self._active.get(model)
            if dep is not None:
                # In-flight canary/shadow: clearing the split is enough,
                # the previous version never stopped serving.
                gen = self._catalog.rollback(model)
                del self._active[model]
                dep.reason = reason
                dep.transition(ROLLED_BACK, gen)
                self._emit_rollback(dep, reason)
                return dep
            for candidate in reversed(self._deployments):
                if candidate.model == model and candidate.state == PROMOTED:
                    gen = self._catalog.rollback(
                        model, serving=candidate.previous
                    )
                    candidate.reason = reason
                    candidate.transition(ROLLED_BACK, gen)
                    self._db._on_routing_changed(model)
                    self._emit_rollback(candidate, reason)
                    return candidate
            raise DeploymentError(
                f"no deployment to roll back for model {model!r}"
            )

    def _promote_locked(self, dep: Deployment) -> None:
        gen = self._catalog.promote(dep.model, dep.version)
        self._active.pop(dep.model, None)
        dep.transition(PROMOTED, gen)
        self._db._on_routing_changed(dep.model)
        self._recorder().emit(
            "deploy.promote",
            deploy_id=dep.deploy_id,
            model=dep.model,
            version=dep.version,
            generation=gen,
        )

    def _emit_state(self, dep: Deployment) -> None:
        self._recorder().emit(
            "deploy.state",
            deploy_id=dep.deploy_id,
            model=dep.model,
            version=dep.version,
            state=dep.state,
            generation=dep.generation,
        )

    def _emit_rollback(self, dep: Deployment, reason: str) -> None:
        self._recorder().emit(
            "deploy.rollback",
            deploy_id=dep.deploy_id,
            model=dep.model,
            version=dep.version,
            reason=reason,
            generation=dep.generation,
        )

    # -- signals from the serving path ----------------------------------

    def observe_canary(
        self,
        model: str,
        version: str,
        ok: bool,
        canary_rows: int,
        total_rows: int,
        error: BaseException | None = None,
    ) -> None:
        """Record one routed call's canary outcome; maybe advance/rollback."""
        with self._lock:
            dep = self._active.get(model)
            if dep is None or dep.version != version or dep.state != CANARY:
                return
            dep.total_rows += total_rows
            dep.requests += canary_rows
            if not ok:
                dep.failures += canary_rows
        if canary_rows == 0:
            return
        breaker = self.breaker_for(model, version)
        if breaker is not None:
            if ok:
                breaker.record_success()
            else:
                breaker.record_failure()
                if breaker.state == OPEN:
                    self.rollback(model, reason="breaker-open")
                    return
        if not ok and breaker is None:
            # Breakers disabled: a single canary failure still rolls back
            # rather than keep burning the slice on a broken version.
            self.rollback(model, reason="canary-failure")
            return
        if self._slo_fast_burning(model):
            self.rollback(model, reason="slo-fast-burn")
            return
        with self._lock:
            dep = self._active.get(model)
            if dep is None or dep.state != CANARY:
                return
            cfg = self._config
            if (
                ok
                and cfg.deploy_auto_promote
                and dep.failures == 0
                and dep.requests >= cfg.deploy_canary_min_requests
            ):
                self._promote_locked(dep)

    def observe_shadow(
        self,
        model: str,
        version: str,
        compared: int,
        diverged: int,
        ok: bool,
        error: BaseException | None = None,
    ) -> None:
        """Record one mirrored call's comparison; maybe advance/rollback."""
        with self._lock:
            dep = self._active.get(model)
            if dep is None or dep.version != version or dep.state != SHADOWING:
                return
            dep.shadow_compared += compared
            dep.shadow_diverged += diverged
            if not ok:
                dep.failures += 1
        breaker = self.breaker_for(model, version)
        if breaker is not None:
            if ok:
                breaker.record_success()
            else:
                breaker.record_failure()
                if breaker.state == OPEN:
                    self.rollback(model, reason="breaker-open")
                    return
        with self._lock:
            dep = self._active.get(model)
            if dep is None or dep.state != SHADOWING:
                return
            cfg = self._config
            if dep.shadow_compared < cfg.deploy_shadow_min_requests:
                return
            rate = dep.shadow_diverged / dep.shadow_compared
            if rate > cfg.deploy_shadow_divergence_threshold:
                self._recorder().emit(
                    "deploy.shadow_diverged",
                    deploy_id=dep.deploy_id,
                    model=model,
                    version=version,
                    compared=dep.shadow_compared,
                    diverged=dep.shadow_diverged,
                    rate=round(rate, 6),
                )
                self.rollback(model, reason="shadow-divergence")
                return
            if not cfg.deploy_auto_promote:
                return
            # Shadow verdict passed: advance to canary when one was
            # requested, otherwise promote outright.
            if dep.canary_percent is not None:
                gen = self._catalog.route_canary(
                    model, dep.version, dep.canary_percent
                )
                dep.transition(CANARY, gen)
                self._emit_state(dep)
            else:
                self._promote_locked(dep)

    def _slo_fast_burning(self, model: str) -> bool:
        telemetry = self._db._telemetry
        slo = getattr(telemetry, "slo", None)
        if slo is None:
            return False
        state = slo.snapshot().get(model)
        return bool(state and state.get("burning_fast"))

    # -- introspection ---------------------------------------------------

    def active(self) -> list[Deployment]:
        with self._lock:
            return list(self._active.values())

    def rows(self) -> list[tuple]:
        """``SHOW DEPLOYMENTS`` rows, oldest deployment first."""
        with self._lock:
            return [dep.as_row() for dep in self._deployments]

    def snapshot(self) -> dict:
        """JSON-safe state for the diagnostics bundle's lifecycle section."""
        with self._lock:
            rows = [list(dep.as_row()) for dep in self._deployments]
        breaker_rows = (
            [list(row) for row in self.breakers.rows()]
            if self.breakers is not None
            else []
        )
        return {
            "generation": self._catalog.generation,
            "history": [
                [gen, change] for gen, change in self._catalog.history()[-64:]
            ],
            "columns": list(DEPLOYMENT_COLUMNS),
            "deployments": rows,
            "breakers": breaker_rows,
        }
