"""The versioned, copy-on-write model catalog.

Serving reads and catalog writes are decoupled MVCC-style: every mutation
(register a version, start a canary, promote, roll back) builds a brand
new immutable :class:`CatalogSnapshot` off to the side and publishes it
with a single pointer assignment.  Readers call :meth:`ModelCatalog.
snapshot` once at query start and route against that frozen view for the
rest of the call — they never take a lock, never see a half-applied
routing change, and keep serving the prior version while a deploy is in
flight.  Writers serialize on a private mutation lock that no read path
ever touches, so DEPLOY / ROLLBACK run fully off the session's
writer-preferring ``ReadWriteLock``.

Each published snapshot carries a monotonically increasing ``generation``
stamp; the catalog keeps the publication history so every served response
is attributable to exactly one published generation (the concurrent-DDL
test asserts this).  Fault-injection sites ``lifecycle.swap`` and
``lifecycle.rollback`` fire *before* the pointer swap: a crash at either
site leaves the previous snapshot — and therefore the previous version —
serving untouched.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from ..errors import CatalogError, DeploymentError
from ..telemetry.events import NULL_RECORDER

#: Version lifecycle states tracked per :class:`VersionRecord`.
V_READY = "ready"          # prepared and compiled, not taking traffic
V_SERVING = "serving"      # the stable version, takes non-canary traffic
V_CANARY = "canary"        # taking the deterministic canary slice
V_SHADOW = "shadow"        # mirrored traffic only, outputs compared
V_RETIRED = "retired"      # was serving (or deployed) and was replaced


@dataclass(frozen=True)
class VersionRecord:
    """One immutable version entry: name, executable catalog key, state."""

    version: str
    key: str  # storage-catalog / compiled-model key that executes this version
    state: str
    since_generation: int = 0


@dataclass(frozen=True)
class ModelEntry:
    """Immutable routing state for one model inside a snapshot."""

    model: str
    serving: str
    canary: str | None = None
    canary_percent: float = 0.0
    shadow: str | None = None
    versions: tuple[VersionRecord, ...] = ()

    def record(self, version: str) -> VersionRecord | None:
        for rec in self.versions:
            if rec.version == version:
                return rec
        return None

    def key_of(self, version: str) -> str:
        rec = self.record(version)
        if rec is None:
            raise DeploymentError(
                f"model {self.model!r} has no version {version!r}"
            )
        return rec.key

    def candidates(self) -> list[tuple[str, str]]:
        """``(version, state)`` pairs, for :class:`NoServableVersionError`."""
        return [(rec.version, rec.state) for rec in self.versions]


class CatalogSnapshot:
    """One immutable, generation-stamped view of every model's routing."""

    __slots__ = ("generation", "_entries")

    def __init__(self, generation: int, entries: dict[str, ModelEntry]):
        self.generation = generation
        self._entries = entries

    def entry(self, model: str) -> ModelEntry | None:
        return self._entries.get(model)

    def models(self) -> list[str]:
        return sorted(self._entries)


class ModelCatalog:
    """The mutable head: holds the current snapshot, serializes writers.

    All mutators copy the entry map, fire their fault site, then publish
    the new snapshot atomically.  ``snapshot()`` is the entire read API.
    """

    def __init__(self, injector=None, recorder=NULL_RECORDER):
        self._mutate = threading.Lock()
        self._head = CatalogSnapshot(0, {})
        self._injector = injector
        self._recorder = recorder
        #: Publication history: ``(generation, description)`` per publish.
        self._history: list[tuple[int, str]] = [(0, "empty")]

    # -- read side (lock-free) ------------------------------------------

    def snapshot(self) -> CatalogSnapshot:
        """Pin the current snapshot (a single atomic pointer read)."""
        return self._head

    @property
    def generation(self) -> int:
        return self._head.generation

    def history(self) -> list[tuple[int, str]]:
        """Published ``(generation, description)`` pairs, oldest first."""
        return list(self._history)

    def generations(self) -> set[int]:
        return {gen for gen, _ in self._history}

    # -- write side (serialized on the mutation lock) -------------------

    def register_base(self, model: str, version: str = "v1") -> int:
        """Register a freshly created model as its own serving version."""
        model = model.lower()
        with self._mutate:
            if self._head.entry(model) is not None:
                raise CatalogError(
                    f"model {model!r} already registered in the lifecycle "
                    "catalog"
                )
            gen = self._head.generation + 1
            entry = ModelEntry(
                model=model,
                serving=version,
                versions=(VersionRecord(version, model, V_SERVING, gen),),
            )
            return self._publish_locked(
                model, entry, site=None, change=f"{model}: base {version}"
            )

    def forget(self, model: str) -> None:
        """Drop a model's entry (mirror of ``Catalog.unregister_model``)."""
        model = model.lower()
        with self._mutate:
            if self._head.entry(model) is None:
                return
            entries = dict(self._head._entries)
            del entries[model]
            gen = self._head.generation + 1
            snapshot = CatalogSnapshot(gen, entries)
            self._history.append((gen, f"{model}: forgotten"))
            self._head = snapshot

    def add_version(self, model: str, version: str, key: str) -> int:
        """Publish a prepared (compiled, registered) version as READY."""
        model, version = model.lower(), version.lower()
        with self._mutate:
            entry = self._require_locked(model)
            if entry.record(version) is not None:
                raise DeploymentError(
                    f"model {model!r} already has a version {version!r}"
                )
            gen = self._head.generation + 1
            entry = replace(
                entry,
                versions=entry.versions
                + (VersionRecord(version, key, V_READY, gen),),
            )
            return self._publish_locked(
                model, entry, site=None,
                change=f"{model}: prepared {version}",
            )

    def route_shadow(self, model: str, version: str) -> int:
        """Mirror serving traffic to ``version``; outputs are compared."""
        model, version = model.lower(), version.lower()
        with self._mutate:
            entry = self._require_locked(model)
            gen = self._head.generation + 1
            entry = replace(
                entry,
                shadow=version,
                versions=self._restate_locked(entry, {version: V_SHADOW}, gen),
            )
            return self._publish_locked(
                model, entry, site="lifecycle.swap",
                change=f"{model}: shadow {version}",
            )

    def route_canary(self, model: str, version: str, percent: float) -> int:
        """Send ``percent``% of fingerprint-hashed traffic to ``version``."""
        model, version = model.lower(), version.lower()
        with self._mutate:
            entry = self._require_locked(model)
            gen = self._head.generation + 1
            entry = replace(
                entry,
                canary=version,
                canary_percent=float(percent),
                shadow=None,
                versions=self._restate_locked(entry, {version: V_CANARY}, gen),
            )
            return self._publish_locked(
                model, entry, site="lifecycle.swap",
                change=f"{model}: canary {version} {percent:g}%",
            )

    def promote(self, model: str, version: str) -> int:
        """Re-point all traffic at ``version`` in one swap."""
        model, version = model.lower(), version.lower()
        with self._mutate:
            entry = self._require_locked(model)
            gen = self._head.generation + 1
            states = {version: V_SERVING}
            if entry.serving != version:
                states[entry.serving] = V_RETIRED
            entry = replace(
                entry,
                serving=version,
                canary=None,
                canary_percent=0.0,
                shadow=None,
                versions=self._restate_locked(entry, states, gen),
            )
            return self._publish_locked(
                model, entry, site="lifecycle.swap",
                change=f"{model}: promote {version}",
            )

    def rollback(self, model: str, serving: str | None = None) -> int:
        """Clear any traffic split; optionally re-point serving.

        With ``serving=None`` this cancels an in-flight canary/shadow
        (the stable version never stopped serving); with a version name
        it reverts a promotion, re-pointing serving in the same swap.
        """
        model = model.lower()
        with self._mutate:
            entry = self._require_locked(model)
            gen = self._head.generation + 1
            states: dict[str, str] = {}
            for cancelled in (entry.canary, entry.shadow):
                if cancelled is not None:
                    states[cancelled] = V_RETIRED
            target = entry.serving if serving is None else serving.lower()
            if target != entry.serving:
                states[entry.serving] = V_RETIRED
                states[target] = V_SERVING
            entry = replace(
                entry,
                serving=target,
                canary=None,
                canary_percent=0.0,
                shadow=None,
                versions=self._restate_locked(entry, states, gen),
            )
            return self._publish_locked(
                model, entry, site="lifecycle.rollback",
                change=f"{model}: rollback to {target}",
            )

    # -- internals -------------------------------------------------------

    def _require_locked(self, model: str) -> ModelEntry:
        entry = self._head.entry(model)
        if entry is None:
            raise CatalogError(
                f"no model named {model!r} in the lifecycle catalog"
            )
        return entry

    @staticmethod
    def _restate_locked(
        entry: ModelEntry, states: dict[str, str], generation: int
    ) -> tuple[VersionRecord, ...]:
        return tuple(
            replace(rec, state=states[rec.version], since_generation=generation)
            if rec.version in states and rec.state != states[rec.version]
            else rec
            for rec in entry.versions
        )

    def _publish_locked(
        self, model: str, entry: ModelEntry, site: str | None, change: str
    ) -> int:
        # The fault site fires BEFORE the pointer swap: an injected crash
        # here aborts the publish and the old snapshot keeps serving.
        if site is not None and self._injector is not None:
            self._injector.fire(site, model=model, change=change)
        entries = dict(self._head._entries)
        entries[model] = entry
        snapshot = CatalogSnapshot(self._head.generation + 1, entries)
        self._history.append((snapshot.generation, change))
        self._head = snapshot  # the atomic publication point
        self._recorder.emit(
            "lifecycle.publish", generation=snapshot.generation, change=change
        )
        return snapshot.generation
