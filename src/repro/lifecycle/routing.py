"""Deterministic canary/shadow request routing.

Canary routing is *fingerprint-hashed*: each feature row is hashed
(CRC-32 of its raw bytes) and lands in the canary slice iff
``hash % 10_000 < percent * 100``.  The split is therefore a pure
function of the row — the same input routes the same way on every
replica, across batches, and across runs — which is what makes the
deploy-chaos CI job's two-run diff meaningful.

Both canary and shadow execution are wrapped so that a failing *new*
version can never surface to a client: canary rows fall back to the
stable version, shadow failures only feed the deployment controller.
The controller (per-version breaker, SLO burn, divergence counters)
decides whether the deployment advances or rolls back.
"""

from __future__ import annotations

import zlib

import numpy as np


def routing_hashes(features: np.ndarray) -> np.ndarray:
    """Stable per-row fingerprints (CRC-32 over the row's raw bytes)."""
    rows = np.ascontiguousarray(features)
    if rows.ndim == 1:
        rows = rows.reshape(1, -1)
    return np.fromiter(
        (zlib.crc32(row.tobytes()) for row in rows),
        dtype=np.uint64,
        count=rows.shape[0],
    )


def canary_mask(hashes: np.ndarray, percent: float) -> np.ndarray:
    """Boolean mask of the rows whose fingerprint lands in the canary."""
    return (hashes % 10_000) < int(round(percent * 100))


def routed_predict(controller, entry, features, execute, snapshot):
    """Execute one prediction call against a pinned snapshot's routing.

    ``execute(key, features)`` runs the underlying engine (in-process
    path or cluster path) for one version key.  Returns the label array;
    the caller already knows the pinned generation from ``snapshot``.
    """
    serving_key = entry.key_of(entry.serving)
    if entry.canary is None and entry.shadow is None:
        return execute(serving_key, features)

    if entry.canary is not None:
        return _canary_predict(controller, entry, features, execute,
                               serving_key)

    # Shadow: the stable version answers; the shadow version sees a copy
    # and its outputs are compared row-for-row (label disagreement is the
    # serving error bound used by the divergence threshold).
    out = execute(serving_key, features)
    shadow_key = entry.key_of(entry.shadow)
    try:
        mirrored = execute(shadow_key, features)
    except Exception as exc:
        controller.observe_shadow(
            entry.model, entry.shadow, compared=0, diverged=0,
            ok=False, error=exc,
        )
        return out
    diverged = int(np.count_nonzero(
        np.asarray(mirrored).reshape(-1) != np.asarray(out).reshape(-1)
    ))
    controller.observe_shadow(
        entry.model, entry.shadow,
        compared=int(np.asarray(out).reshape(-1).shape[0]),
        diverged=diverged, ok=True,
    )
    return out


def _canary_predict(controller, entry, features, execute, serving_key):
    n = int(features.shape[0])
    mask = canary_mask(routing_hashes(features), entry.canary_percent)
    canary_idx = np.flatnonzero(mask)
    stable_idx = np.flatnonzero(~mask)
    canary_key = entry.key_of(entry.canary)

    stable_out = (
        execute(serving_key, features[stable_idx])
        if stable_idx.size
        else None
    )
    canary_out = None
    if canary_idx.size:
        try:
            canary_out = execute(canary_key, features[canary_idx])
            controller.observe_canary(
                entry.model, entry.canary, ok=True,
                canary_rows=int(canary_idx.size), total_rows=n,
            )
        except Exception as exc:
            controller.observe_canary(
                entry.model, entry.canary, ok=False,
                canary_rows=int(canary_idx.size), total_rows=n, error=exc,
            )
            # The stable version absorbs the canary slice: a broken new
            # version costs one extra execute, never a client error.
            canary_out = execute(serving_key, features[canary_idx])
    else:
        controller.observe_canary(
            entry.model, entry.canary, ok=True, canary_rows=0, total_rows=n,
        )

    if stable_out is None:
        return canary_out
    if canary_out is None:
        return stable_out
    stable_out = np.asarray(stable_out)
    canary_out = np.asarray(canary_out)
    out = np.empty(n, dtype=stable_out.dtype)
    out[stable_idx] = stable_out
    out[canary_idx] = canary_out
    return out
