"""System-wide configuration.

The paper's experiments run on an AWS r4.2xlarge (8 cores, 61 GB RAM) with a
2 GB memory-threshold for the rule-based optimizer and a 20 GB buffer pool.
We reproduce the same *ratios* at laptop scale: the defaults below keep the
relationship ``operator memory  >  optimizer threshold  >  what the
whole-tensor engines can hold`` for the large workloads, and the reverse for
the small ones, which is all the paper's conclusions depend on.

All knobs live in one immutable dataclass so a :class:`repro.session.Database`
can be spun up with a single object and experiments can sweep parameters
without global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def mb(n: float) -> int:
    """Convert megabytes to bytes (convenience for configuration literals)."""
    return int(n * MB)


def gb(n: float) -> int:
    """Convert gigabytes to bytes (convenience for configuration literals)."""
    return int(n * GB)


@dataclass(frozen=True)
class ConnectorCostModel:
    """Cost model for the ConnectorX-style cross-system transfer.

    The serialize/deserialize work performed by
    :class:`repro.dlruntime.connector.Connector` is real CPU work; this model
    adds the *wire* component (the paper's deployments move data between
    PostgreSQL and a separate DL process, sometimes across hosts).  The
    defaults approximate a loopback socket: ~2 GB/s effective bandwidth and
    a small fixed per-batch latency.
    """

    bandwidth_bytes_per_s: float = 2.0 * GB
    per_row_overhead_s: float = 2.0e-7
    per_batch_latency_s: float = 5.0e-4

    def wire_time(self, nbytes: int, nrows: int, nbatches: int = 1) -> float:
        """Modeled wire time in seconds for moving ``nbytes`` / ``nrows``."""
        return (
            nbytes / self.bandwidth_bytes_per_s
            + nrows * self.per_row_overhead_s
            + nbatches * self.per_batch_latency_s
        )


@dataclass(frozen=True)
class SystemConfig:
    """Every tunable of the reproduced system in one place.

    Attributes mirror the paper's experimental knobs:

    * ``memory_threshold_bytes`` — the rule-based optimizer's threshold
      (2 GB in the paper; 2 MB at our default scale).
    * ``dl_memory_limit_bytes`` — what the whole-tensor engines (DL-centric
      and UDF-centric) may allocate before raising OOM (the paper's 61 GB
      instance memory; 64 MB at our scale).
    * ``buffer_pool_bytes`` — RDBMS buffer pool (the paper's 20 GB; spilling
      to disk beyond it is what lets relation-centric execution survive).
    """

    page_size: int = 64 * KB
    buffer_pool_bytes: int = 32 * MB
    dl_memory_limit_bytes: int = 64 * MB
    memory_threshold_bytes: int = 2 * MB
    tensor_block_rows: int = 128
    tensor_block_cols: int = 128
    default_batch_size: int = 256
    # Buffer pool replacement policy: "lru", "clock", or "2q" (the
    # scan-resistant policy Sec. 5.1 calls for when tensor-block sweeps
    # share the pool with relational working sets).
    eviction_policy: str = "lru"
    seed: int = 2024
    connector: ConnectorCostModel = field(default_factory=ConnectorCostModel)
    # Calibrated compute-efficiency factors for the external-framework
    # stand-ins (Sec. 7.1 notes TF/PyTorch win on raw compute when operators
    # fit memory; numpy is numpy everywhere, so the stand-ins report a
    # modeled latency of measured_compute / efficiency).
    framework_compute_efficiency: float = 2.5
    num_cores: int = 8
    # Unified telemetry (repro.telemetry): metrics registry, query spans,
    # per-query stats.  Disabling swaps in no-op collectors so the hot
    # paths pay only a null method call.
    telemetry_enabled: bool = True
    # Bound on retained finished spans (oldest kept, newest dropped).
    telemetry_max_spans: int = 65536
    # Ring size of retained plan-quality audit records (estimate-vs-actual
    # memory per executed inference stage; backs ``SHOW AUDIT``).
    audit_max_records: int = 1024
    # Ring size of the flight recorder (structured lifecycle events;
    # backs ``SHOW EVENTS`` / ``SHOW TIMELINE`` and diagnostics bundles).
    telemetry_max_events: int = 4096
    # When non-empty, unhandled server worker errors automatically write
    # a postmortem bundle (``Database.dump_diagnostics``) into this
    # directory; empty disables auto-dump.
    diagnostics_dir: str = ""
    # -- concurrent serving front-end (repro.server) ---------------------
    # Worker threads draining per-model request queues into batched
    # engine invocations.
    server_workers: int = 2
    # Hard cap on rows coalesced into one batched engine invocation.
    server_max_batch_size: int = 64
    # How long the micro-batcher waits for more requests once one is
    # queued, before dispatching a partial batch.
    server_max_queue_delay_ms: float = 2.0
    # Per-model bound on queued (not yet executing) requests; submits
    # beyond it raise ServerOverloadedError (backpressure).
    server_queue_capacity: int = 256
    # Default per-request deadline in milliseconds; 0 means no deadline.
    server_default_deadline_ms: float = 0.0
    # How many times a server worker re-runs a batch that failed with a
    # *transient* fault (repro.faults.is_transient) before isolating the
    # batch into per-request executions; 0 disables retries.
    server_retry_limit: int = 2
    # Base backoff between retries; attempt k sleeps k * this.
    server_retry_backoff_ms: float = 1.0
    # -- deterministic fault injection (repro.faults) --------------------
    # Seed for the session's FaultInjector (probabilistic triggers, bit
    # positions); 0 means "derive from `seed`" so a plain config is still
    # fully deterministic.
    faults_seed: int = 0
    # -- runtime resilience (repro.resilience) ---------------------------
    # Master switch for execution-time recovery: with it off, an OOM or
    # stage timeout kills the query exactly as before.
    resilience_enabled: bool = True
    # How many rescue attempts (re-lowering or batch splits) one query may
    # spend before the executor gives up and re-raises.
    resilience_max_recoveries_per_query: int = 3
    # Batch-split recovery halves the batch recursively; stop splitting
    # once a half would drop below this many rows.
    resilience_split_floor_rows: int = 16
    # A (model, operator) pair rescued at least this many times is lowered
    # to relation-centric up-front by the optimizer on the next plan.
    resilience_ledger_threshold: int = 1
    # Cooperative per-stage wall-clock deadline, checked at layer/stripe/
    # stage boundaries; 0 disables the watchdog.
    resilience_stage_timeout_ms: float = 0.0
    # -- circuit breakers (repro.resilience.breaker) ---------------------
    # Per-model (serving front-end) and per-engine (executor) breakers.
    breaker_enabled: bool = True
    # Sliding window of most-recent request outcomes a breaker evaluates.
    breaker_window: int = 8
    # The breaker opens when the window's failure rate reaches this, ...
    breaker_failure_threshold: float = 0.5
    # ... but only once the window holds at least this many outcomes.
    breaker_min_samples: int = 4
    # An open breaker moves to half-open after rejecting this many
    # requests (request-count based, so scenarios replay deterministically
    # regardless of wall-clock speed).
    breaker_cooldown_requests: int = 4
    # In half-open, each arrival becomes the probe with this probability,
    # drawn from the breaker's seeded RNG (1.0 = first arrival probes).
    breaker_probe_probability: float = 1.0
    # -- workload intelligence (repro.telemetry.workload) ----------------
    # Bound on distinct query fingerprints tracked; least-recently-seen
    # shapes are evicted beyond it (backs ``SHOW WORKLOAD``).
    workload_max_fingerprints: int = 512
    # A fresh execution slower than factor * the fingerprint's rolling
    # baseline flags a latency regression ...
    workload_regression_factor: float = 3.0
    # ... once the fingerprint has at least this many baseline calls ...
    workload_regression_warmup: int = 8
    # ... and the absolute slowdown is at least this many milliseconds
    # (suppresses microsecond-scale noise on trivially fast shapes).
    workload_regression_min_ms: float = 5.0
    # -- service-level objectives (repro.telemetry.slo) ------------------
    # Default per-model latency objective applied to models without an
    # explicit ``Database.set_slo`` policy; 0 disables auto-tracking.
    slo_latency_ms: float = 0.0
    # Tolerated bad-request fraction (0.01 = 99% of requests good).
    slo_error_budget: float = 0.01
    # Multi-window burn-rate evaluation: the fast window catches acute
    # incidents, the slow window confirms sustained burns.
    slo_fast_window_s: float = 60.0
    slo_slow_window_s: float = 3600.0
    # Burn rates are 0 until a window holds this many outcomes.
    slo_min_samples: int = 8
    # An objective is "burning" when burn rate reaches this (1.0 spends
    # the error budget exactly as fast as allowed).
    slo_burn_threshold: float = 1.0
    # -- process-parallel serving (repro.cluster) ------------------------
    # Worker *processes* hosting sharded model replicas behind the
    # serving front-end.  0 disables the cluster entirely: serving stays
    # on the in-process thread path and none of the knobs below matter.
    cluster_workers: int = 0
    # How many workers each model is placed on (hot-model replication);
    # clamped to the worker count at placement time.
    cluster_replication: int = 2
    # Virtual nodes per worker on the consistent-hash placement ring.
    cluster_vnodes: int = 32
    # Tensor payloads up to this size cross the process boundary via
    # shared-memory segments (zero pickling); larger batches fall back to
    # pickling through the control pipe (cluster_shm_fallback_total).
    cluster_shm_max_bytes: int = 8 * MB
    # How often an idle worker process emits a heartbeat.
    cluster_heartbeat_interval_ms: float = 25.0
    # A worker whose last heartbeat is older than this is declared
    # wedged/crashed: its in-flight requests are re-routed to a replica
    # and the process is respawned with its placement restored.
    cluster_heartbeat_timeout_ms: float = 2000.0
    # Upper bound on one cluster PREDICT, covering reroutes and the wait
    # for a respawning worker.
    cluster_request_timeout_ms: float = 30000.0
    # multiprocessing start method: "fork", "spawn", or "" to pick fork
    # where the platform offers it (Linux) and spawn elsewhere.
    cluster_start_method: str = ""
    # -- sampling stage profiler (repro.telemetry.profiler) --------------
    # Start the background stage sampler with the Database (opt-in; it
    # can also be toggled at runtime via Database.start_profiler()).
    profiler_enabled: bool = False
    # Sampling period of the profiler's daemon thread.
    profiler_interval_ms: float = 5.0
    # Bound on distinct stage frames tracked; overflow attributes to a
    # catch-all "<other>" frame.
    profiler_max_stages: int = 256
    # -- online model lifecycle (repro.lifecycle) ------------------------
    # Bound on graceful drain: how long Database.close(), ModelServer
    # shutdown, and ClusterPool rolling restarts wait for in-flight and
    # queued requests to finish before abandoning them.
    lifecycle_drain_timeout_s: float = 30.0
    # Default traffic percentage for canary deployments when the DEPLOY
    # statement (or Database API call) does not give one.
    deploy_canary_percent: float = 10.0
    # Canary-routed rows that must complete with zero failures before an
    # auto-promote fires (when deploy_auto_promote is on).
    deploy_canary_min_requests: int = 64
    # Shadow-compared rows required before the divergence verdict.
    deploy_shadow_min_requests: int = 64
    # Fraction of shadow-compared rows allowed to disagree with the
    # serving version (the label-disagreement serving error bound)
    # before the deployment auto-rolls-back.
    deploy_shadow_divergence_threshold: float = 0.02
    # Whether shadow/canary deployments advance on their own once their
    # minimums are met; False leaves the traffic split in place until an
    # explicit DEPLOY (promote) or ROLLBACK.
    deploy_auto_promote: bool = True

    def __post_init__(self) -> None:
        if self.page_size < 4 * KB:
            raise ConfigError(f"page_size must be >= 4 KiB, got {self.page_size}")
        if self.buffer_pool_bytes < 4 * self.page_size:
            raise ConfigError("buffer pool must hold at least four pages")
        for name in (
            "dl_memory_limit_bytes",
            "memory_threshold_bytes",
            "tensor_block_rows",
            "tensor_block_cols",
            "default_batch_size",
            "num_cores",
            "telemetry_max_spans",
            "audit_max_records",
            "telemetry_max_events",
            "server_workers",
            "server_max_batch_size",
            "server_queue_capacity",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.server_max_queue_delay_ms < 0:
            raise ConfigError("server_max_queue_delay_ms must be >= 0")
        if self.server_retry_limit < 0:
            raise ConfigError("server_retry_limit must be >= 0")
        if self.server_retry_backoff_ms < 0:
            raise ConfigError("server_retry_backoff_ms must be >= 0")
        if self.faults_seed < 0:
            raise ConfigError("faults_seed must be >= 0")
        if self.resilience_max_recoveries_per_query < 0:
            raise ConfigError("resilience_max_recoveries_per_query must be >= 0")
        if self.resilience_split_floor_rows < 1:
            raise ConfigError("resilience_split_floor_rows must be >= 1")
        if self.resilience_ledger_threshold < 1:
            raise ConfigError("resilience_ledger_threshold must be >= 1")
        if self.resilience_stage_timeout_ms < 0:
            raise ConfigError("resilience_stage_timeout_ms must be >= 0")
        if self.breaker_window < 1:
            raise ConfigError("breaker_window must be >= 1")
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ConfigError("breaker_failure_threshold must be in (0, 1]")
        if self.breaker_min_samples < 1:
            raise ConfigError("breaker_min_samples must be >= 1")
        if self.breaker_min_samples > self.breaker_window:
            raise ConfigError("breaker_min_samples cannot exceed breaker_window")
        if self.breaker_cooldown_requests < 1:
            raise ConfigError("breaker_cooldown_requests must be >= 1")
        if not 0.0 < self.breaker_probe_probability <= 1.0:
            raise ConfigError("breaker_probe_probability must be in (0, 1]")
        if self.server_default_deadline_ms < 0:
            raise ConfigError("server_default_deadline_ms must be >= 0")
        if self.framework_compute_efficiency <= 0:
            raise ConfigError("framework_compute_efficiency must be positive")
        if self.eviction_policy not in ("lru", "clock", "2q"):
            raise ConfigError(
                f"eviction_policy must be 'lru', 'clock', or '2q', "
                f"got {self.eviction_policy!r}"
            )
        for name in ("workload_max_fingerprints", "workload_regression_warmup",
                     "slo_min_samples", "profiler_max_stages"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.workload_regression_factor <= 1.0:
            raise ConfigError("workload_regression_factor must be > 1")
        if self.workload_regression_min_ms < 0:
            raise ConfigError("workload_regression_min_ms must be >= 0")
        if self.slo_latency_ms < 0:
            raise ConfigError("slo_latency_ms must be >= 0")
        if not 0.0 < self.slo_error_budget <= 1.0:
            raise ConfigError("slo_error_budget must be in (0, 1]")
        if self.slo_fast_window_s <= 0 or self.slo_slow_window_s <= 0:
            raise ConfigError("slo windows must be positive")
        if self.slo_slow_window_s < self.slo_fast_window_s:
            raise ConfigError(
                "slo_slow_window_s must be >= slo_fast_window_s"
            )
        if self.slo_burn_threshold <= 0:
            raise ConfigError("slo_burn_threshold must be positive")
        if self.profiler_interval_ms <= 0:
            raise ConfigError("profiler_interval_ms must be positive")
        if self.cluster_workers < 0:
            raise ConfigError("cluster_workers must be >= 0")
        for name in ("cluster_replication", "cluster_vnodes",
                     "cluster_shm_max_bytes"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.cluster_heartbeat_interval_ms <= 0:
            raise ConfigError("cluster_heartbeat_interval_ms must be positive")
        if self.cluster_heartbeat_timeout_ms <= self.cluster_heartbeat_interval_ms:
            raise ConfigError(
                "cluster_heartbeat_timeout_ms must exceed "
                "cluster_heartbeat_interval_ms"
            )
        if self.cluster_request_timeout_ms <= 0:
            raise ConfigError("cluster_request_timeout_ms must be positive")
        if self.cluster_start_method not in ("", "fork", "spawn"):
            raise ConfigError(
                f"cluster_start_method must be '', 'fork', or 'spawn', "
                f"got {self.cluster_start_method!r}"
            )
        if self.lifecycle_drain_timeout_s < 0:
            raise ConfigError("lifecycle_drain_timeout_s must be >= 0")
        if not 0 < self.deploy_canary_percent <= 100:
            raise ConfigError(
                "deploy_canary_percent must be in (0, 100], "
                f"got {self.deploy_canary_percent}"
            )
        for name in ("deploy_canary_min_requests", "deploy_shadow_min_requests"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if not 0 <= self.deploy_shadow_divergence_threshold <= 1:
            raise ConfigError(
                "deploy_shadow_divergence_threshold must be in [0, 1], "
                f"got {self.deploy_shadow_divergence_threshold}"
            )

    @property
    def buffer_pool_pages(self) -> int:
        """Number of page frames the buffer pool can hold."""
        return self.buffer_pool_bytes // self.page_size

    def with_options(self, **overrides: object) -> "SystemConfig":
        """Return a copy with the given fields replaced (validates again)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


DEFAULT_CONFIG = SystemConfig()
