"""Sharded model placement: consistent hashing with replication.

Models are assigned to worker processes by a consistent-hash ring:
every worker contributes ``vnodes`` virtual points (CRC32 of
``worker-<id>#<v>``), and a model lands on the first ``replication``
distinct workers clockwise from its shard key.  Respawning a worker
keeps its id, so placement survives crashes verbatim; growing the pool
moves only the models whose arc a new worker's vnodes split — the
standard consistent-hashing bound.

The shard key reuses the data/model co-partitioning machinery of
:class:`repro.dedup.copartition.CoPartitioner` (Sec. 4.2): a model's
key is derived from its first-layer feature *chunk list* — the same
chunking that co-locates feature partitions with weight row-blocks —
so models whose first matmuls share a chunk layout hash from the same
key space the storage layer already shards by.
"""

from __future__ import annotations

import zlib

from ..dedup.copartition import CoPartitioner


def shard_key(model_name: str, in_features: int, block_rows: int) -> int:
    """The placement key for one model.

    ``in_features``/``block_rows`` feed :class:`CoPartitioner` to get
    the model's feature-chunk count — the co-partitioning key its first
    matmul joins on — which is mixed with the model name so two models
    with identical layouts still spread across the ring.
    """
    chunks = CoPartitioner(
        num_partitions=1, block_rows=max(1, block_rows)
    ).feature_chunks(max(1, in_features))
    token = f"{model_name.lower()}:chunks={len(chunks)}"
    return zlib.crc32(token.encode("utf-8")) & 0xFFFFFFFF


class Placement:
    """A consistent-hash ring mapping models onto worker ids."""

    def __init__(
        self,
        worker_ids: list[int] | tuple[int, ...],
        replication: int = 2,
        vnodes: int = 32,
        block_rows: int = 128,
    ):
        if not worker_ids:
            raise ValueError("placement needs at least one worker")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.worker_ids = tuple(sorted(worker_ids))
        self.replication = min(replication, len(self.worker_ids))
        self.vnodes = vnodes
        self.block_rows = block_rows
        points: list[tuple[int, int]] = []
        for wid in self.worker_ids:
            for v in range(vnodes):
                token = f"worker-{wid}#{v}".encode("utf-8")
                points.append((zlib.crc32(token) & 0xFFFFFFFF, wid))
        points.sort()
        self._ring = points

    def replicas(self, model_name: str, in_features: int) -> tuple[int, ...]:
        """The ordered worker ids hosting this model (primary first)."""
        key = shard_key(model_name, in_features, self.block_rows)
        start = self._bisect(key)
        chosen: list[int] = []
        for i in range(len(self._ring)):
            wid = self._ring[(start + i) % len(self._ring)][1]
            if wid not in chosen:
                chosen.append(wid)
                if len(chosen) == self.replication:
                    break
        return tuple(chosen)

    def _bisect(self, key: int) -> int:
        import bisect

        idx = bisect.bisect_left(self._ring, (key, -1))
        return idx % len(self._ring)
