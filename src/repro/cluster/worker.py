"""One cluster worker: a model-hosting child process and its handle.

``_worker_main`` is the child's entire life: build a private in-memory
:class:`~repro.session.Database` (telemetry off — the parent owns
observability), register the models the placement layer assigns, and
drain the control pipe.  Inference requests arrive as
:class:`~repro.cluster.shm.TensorRef` descriptors, the features are
mapped straight out of shared memory, and the labels are written back
into the parent's pre-sized response slot — the pipe only ever carries
descriptors and heartbeats, never tensor payloads.

Heartbeats come from a dedicated thread, not the serve loop: a model
load or a long inference must not look like a wedge to the parent's
monitor, whose heartbeat timeout is far shorter than the request
timeout.  The serve loop and the heartbeat thread share the pipe's send
side under one lock.

The function is module-level and its arguments picklable, so both
``fork`` and ``spawn`` start methods work.

:class:`WorkerHandle` is the parent-side view: the process, its pipe,
the heartbeat clock, the set of models acked as loaded, and the
liveness state the router folds into replica choice.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass, field

from . import shm as shm_transport

#: Parent -> worker message tags.
MSG_LOAD = "load"  # (MSG_LOAD, model_name, pickled_model_bytes)
MSG_PREDICT = "predict"  # (MSG_PREDICT, req_id, model, in_ref, out_name, out_cap)
MSG_STOP = "stop"  # (MSG_STOP,)

#: Worker -> parent message tags.
MSG_READY = "ready"  # (MSG_READY, pid)
MSG_LOADED = "loaded"  # (MSG_LOADED, model_name)
MSG_LOAD_ERR = "load_err"  # (MSG_LOAD_ERR, model_name, payload)
MSG_HEARTBEAT = "hb"  # (MSG_HEARTBEAT, inflight)
MSG_OK = "ok"  # (MSG_OK, req_id, out_ref)
MSG_ERR = "err"  # (MSG_ERR, req_id, payload) payload: pickled exc | (type, msg)

#: Worker liveness states surfaced by SHOW CLUSTER / SHOW SERVER.
STARTING = "starting"
READY = "ready"
DEAD = "dead"
STOPPED = "stopped"


def _worker_main(conn, worker_id: int, config) -> None:
    """Child-process entry point: serve until MSG_STOP or parent EOF."""
    from multiprocessing import resource_tracker

    from ..session import Database

    # Shed the parent's resource tracker.  A worker forked after the
    # parent has created segments inherits the parent's tracker pipe;
    # the unregister each attach performs would then erase the *parent's*
    # registration, and the parent's own unlink would double-unregister
    # (KeyError tracebacks in the shared tracker).  The state must be
    # reset *in place* — ``shared_memory`` binds the module-level
    # register/unregister to the original instance — so the first attach
    # spawns a tracker private to this process.
    try:
        tracker = resource_tracker._resource_tracker
        if tracker._fd is not None:
            os.close(tracker._fd)
        tracker._fd = None
        tracker._pid = None
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    shm_transport.IN_WORKER = True

    hb_interval_s = config.cluster_heartbeat_interval_ms / 1e3
    send_lock = threading.Lock()
    stopping = threading.Event()

    def _send(msg: tuple) -> None:
        with send_lock:
            conn.send(msg)

    def _heartbeat_loop() -> None:
        # Independent of the serve loop so a multi-second model load or
        # inference never starves the parent of heartbeats.
        while not stopping.wait(hb_interval_s):
            try:
                _send((MSG_HEARTBEAT, 0))
            except (BrokenPipeError, OSError, ValueError):
                return  # parent went away; the serve loop will exit too

    heartbeat = threading.Thread(
        target=_heartbeat_loop, name="repro-cluster-hb", daemon=True
    )
    heartbeat.start()
    db = Database(config=config)
    try:
        _send((MSG_READY, os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent went away; nothing left to serve
            tag = msg[0]
            if tag == MSG_STOP:
                break
            if tag == MSG_LOAD:
                _send(_load_one(db, msg[1], msg[2]))
            elif tag == MSG_PREDICT:
                __, req_id, model, in_ref, out_name, out_cap = msg
                _send(_serve_one(db, req_id, model, in_ref, out_name, out_cap))
    finally:
        stopping.set()
        heartbeat.join(timeout=hb_interval_s * 2 + 1.0)
        try:
            db.close()
        except Exception:  # pragma: no cover - best-effort shutdown
            pass
        conn.close()


def _load_one(db, name: str, model_bytes: bytes) -> tuple:
    """Unpickle + register one placed model; returns the ack message.

    A load failure must not kill the process: the parent would respawn
    it and replay the identical load forever, and the caller would only
    ever see a request timeout.  Instead the real error travels back as
    ``MSG_LOAD_ERR`` and the pool stops placing the model here.
    """
    try:
        db.register_model(pickle.loads(model_bytes), name=name)
        return (MSG_LOADED, name)
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            payload = pickle.dumps(exc)
        except Exception:
            payload = (type(exc).__name__, str(exc))
        return (MSG_LOAD_ERR, name, payload)


def _serve_one(db, req_id: int, model: str, in_ref, out_name, out_cap) -> tuple:
    """Run one inference; returns the response message tuple."""
    try:
        features = shm_transport.read_array(in_ref)
        labels = db.predict_labels(model, features)
        if out_name is None:
            out_ref = shm_transport.TensorRef(
                shm_transport.INLINE,
                str(labels.dtype),
                tuple(int(d) for d in labels.shape),
                payload=pickle.dumps(labels),
            )
            if labels.nbytes == 0:
                out_ref = shm_transport.TensorRef(
                    shm_transport.EMPTY,
                    str(labels.dtype),
                    tuple(int(d) for d in labels.shape),
                )
        else:
            out_ref = shm_transport.write_into(out_name, out_cap, labels)
        return (MSG_OK, req_id, out_ref)
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            payload = pickle.dumps(exc)
        except Exception:
            payload = (type(exc).__name__, str(exc))
        return (MSG_ERR, req_id, payload)


@dataclass
class WorkerHandle:
    """Parent-side state for one worker slot.

    The slot's ``worker_id`` is stable across respawns; ``generation``
    counts process incarnations so late messages from a dead process
    can be discarded.
    """

    worker_id: int
    process: object = None  # multiprocessing.Process
    conn: object = None  # parent end of the duplex pipe
    generation: int = 0
    state: str = STARTING
    pid: int | None = None
    restarts: int = 0
    inflight: int = 0
    draining: bool = False  # rolling restart: stop admitting, finish in-flight
    last_heartbeat: float = field(default_factory=time.monotonic)
    loaded: set = field(default_factory=set)
    send_lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def alive(self) -> bool:
        return (
            self.state == READY
            and self.process is not None
            and self.process.is_alive()
        )

    def heartbeat_age_s(self, now: float | None = None) -> float:
        return max(0.0, (now or time.monotonic()) - self.last_heartbeat)

    def send(self, msg: tuple) -> bool:
        """Ship one message; False when the pipe is already broken."""
        with self.send_lock:
            try:
                self.conn.send(msg)
                return True
            except (BrokenPipeError, OSError, ValueError):
                return False
