"""The multi-process worker pool behind the serving front-end.

``ClusterPool`` owns N child processes (:mod:`repro.cluster.worker`),
the consistent-hash :class:`~repro.cluster.placement.Placement` that
shards models onto them, and the health-aware
:class:`~repro.cluster.router.ClusterRouter` that picks a replica per
request.  The serving front-end calls :meth:`predict` exactly where the
thread path calls ``Database.predict_labels`` — everything above (the
micro-batcher, admission control, per-model breakers, SLO tracking)
stays unchanged.

Failure semantics:

* a worker that exits (or is SIGKILLed) is detected via its process
  sentinel or heartbeat timeout; its in-flight requests are marked
  crashed, and each blocked caller *reroutes* to another live replica
  (``cluster.reroute``), failing with
  :class:`~repro.errors.WorkerCrashedError` only when no replica can
  take the request before the cluster request timeout;
* the dead slot is respawned with the same worker id, and every model
  the placement layer had assigned to it is re-loaded
  (``cluster.respawn`` — placement is restored, not recomputed);
* a worker that is alive but silent past the heartbeat timeout is
  treated as wedged: killed, then respawned through the same path.

All tensor payloads cross via :mod:`repro.cluster.shm`; the parent owns
every segment (inputs and pre-sized response slots) so crashed workers
cannot leak ``/dev/shm`` entries.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import sys
import threading
import time
from dataclasses import replace
from multiprocessing.connection import wait as conn_wait

import numpy as np

from ..errors import (
    ClusterError,
    ClusterUnavailableError,
    WorkerCrashedError,
    WorkerExecutionError,
    WorkerLoadError,
)
from ..resources.threads import worker_thread_budget
from . import shm as shm_transport
from .placement import Placement
from .router import ClusterRouter
from .worker import (
    DEAD,
    MSG_ERR,
    MSG_HEARTBEAT,
    MSG_LOAD,
    MSG_LOAD_ERR,
    MSG_LOADED,
    MSG_OK,
    MSG_PREDICT,
    MSG_READY,
    MSG_STOP,
    READY,
    STARTING,
    STOPPED,
    WorkerHandle,
    _worker_main,
)

#: Request outcomes tracked under ``cluster_requests_total``.
CLUSTER_OUTCOMES: tuple[str, ...] = ("completed", "failed", "rerouted")

#: Bytes per label slot in the pre-sized response segment (int64).
_LABEL_BYTES = 8


class _Pending:
    """One in-flight request awaiting its worker's response.

    ``abandoned`` marks a request whose caller gave up (request
    timeout) while the worker is still chewing on it: the slot stays in
    the pending map — and counted against the worker's ``inflight`` —
    until the worker's late response (or death) retires it, so routing
    and SHOW CLUSTER never under-report queued work on a slow worker.
    """

    __slots__ = (
        "event",
        "worker_id",
        "generation",
        "ref",
        "error",
        "crashed",
        "abandoned",
    )

    def __init__(self, worker_id: int, generation: int):
        self.event = threading.Event()
        self.worker_id = worker_id
        self.generation = generation
        self.ref = None
        self.error: BaseException | None = None
        self.crashed = False
        self.abandoned = False


class ClusterPool:
    """Process-parallel model serving with shared-memory transport."""

    #: Distinguishes pools within one parent process: segment names must
    #: be unique across *every* live pool (two Databases each serving
    #: with a cluster would otherwise mint colliding ``rc<pid>-<req>``
    #: names and fail with FileExistsError).
    _pool_seq = itertools.count()

    def __init__(self, db, workers: int | None = None, replication: int | None = None):
        config = db.config
        self.workers = int(
            workers if workers is not None else config.cluster_workers
        )
        if self.workers < 1:
            raise ClusterError("a cluster pool needs at least one worker")
        self.replication = int(
            replication if replication is not None else config.cluster_replication
        )
        self._db = db
        self._config = config
        self.shm_max_bytes = int(config.cluster_shm_max_bytes)
        self._hb_interval_s = config.cluster_heartbeat_interval_ms / 1e3
        self._hb_timeout_s = config.cluster_heartbeat_timeout_ms / 1e3
        self._request_timeout_s = config.cluster_request_timeout_ms / 1e3
        method = config.cluster_start_method or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self.start_method = method
        self._ctx = multiprocessing.get_context(method)
        # Per-worker thread budget: each child's BLAS/engine threading is
        # sized from its share of the cores, not the whole machine.
        self._worker_config = replace(
            config,
            telemetry_enabled=False,
            profiler_enabled=False,
            diagnostics_dir="",
            cluster_workers=0,
            num_cores=worker_thread_budget(config.num_cores, self.workers),
        )
        self._recorder = db.telemetry.events
        registry = db.telemetry.registry
        self._m_requests = {
            outcome: registry.counter(
                "cluster_requests_total",
                "Requests through the process pool, by outcome",
                outcome=outcome,
            )
            for outcome in CLUSTER_OUTCOMES
        }
        self._m_shm_fallback = registry.counter(
            "cluster_shm_fallback_total",
            "Tensor payloads that fell back to pickling (oversized batch "
            "or mismatched response slot)",
        )
        self._m_reroutes = registry.counter(
            "cluster_reroutes_total",
            "In-flight requests moved to a replica after a worker crash",
        )
        self._m_spawns = registry.counter(
            "cluster_spawns_total", "Worker processes started (incl. respawns)"
        )
        self._m_crashes = registry.counter(
            "cluster_crashes_total", "Workers declared dead (exit or wedge)"
        )
        self._m_respawns = registry.counter(
            "cluster_respawns_total", "Dead workers restarted with placement restored"
        )
        self._m_alive = registry.gauge(
            "cluster_workers_alive", "Worker processes currently serving"
        )

        self._lock = threading.RLock()
        self._loaded_cond = threading.Condition(self._lock)
        self._handles: dict[int, WorkerHandle] = {
            wid: WorkerHandle(worker_id=wid) for wid in range(self.workers)
        }
        self._placement = Placement(
            list(self._handles),
            replication=self.replication,
            vnodes=config.cluster_vnodes,
            block_rows=config.tensor_block_rows,
        )
        self.replication = self._placement.replication
        self.router = ClusterRouter(self._handles, config, slo=db.telemetry.slo)
        self._placed: dict[str, tuple[int, ...]] = {}
        self._model_bytes: dict[str, bytes] = {}
        self._load_failures: dict[str, WorkerLoadError] = {}
        self._pending: dict[int, _Pending] = {}
        self._ids = itertools.count(1)
        self._seg_prefix = f"rc{os.getpid()}p{next(ClusterPool._pool_seq)}"
        self._closing = False
        self.closed = False

        for wid in self._handles:
            self._spawn_locked(self._handles[wid], initial=True)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()
        # Attach so SHOW CLUSTER / diagnostics see the pool even when it
        # is constructed directly rather than via Database.serve().
        if getattr(db, "_cluster", None) is None:
            db._cluster = self

    # -- client API ------------------------------------------------------

    def predict(self, model: str, features: np.ndarray) -> np.ndarray:
        """Run one batched inference on a placed replica.

        Drop-in for ``Database.predict_labels`` on the serving hot path;
        blocks the calling (server worker) thread, never the client.
        Reroutes transparently on worker crashes; raises
        :class:`WorkerCrashedError` / :class:`ClusterUnavailableError`
        when the placement cannot serve within the request timeout.
        """
        if self._closing:
            raise ClusterError("cluster pool is closed")
        name = model.lower()
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[np.newaxis, :]
        deadline = time.monotonic() + self._request_timeout_s
        replicas = self._ensure_placed(name)
        tried: set[int] = set()
        last_crash: WorkerCrashedError | None = None
        while True:
            load_error = self._load_failures.get(name)
            if load_error is not None:
                # Deterministic: the same bytes would fail everywhere.
                # Fail fast with the real worker-side error instead of
                # burning the request timeout on doomed replicas.
                self._m_requests["failed"].inc()
                raise load_error
            wid = self.router.choose(name, replicas, exclude=tried)
            if wid is None:
                if time.monotonic() >= deadline or self._closing:
                    if last_crash is not None:
                        raise last_crash
                    raise ClusterUnavailableError(
                        f"no live replica for model {name!r} "
                        f"(placement {list(replicas)})"
                    )
                # Every replica is down; wait out the respawn and retry
                # the full placement.
                time.sleep(self._hb_interval_s)
                tried.clear()
                continue
            handle = self._handles[wid]
            if not self._await_loaded(handle, name, deadline):
                tried.add(wid)
                continue
            outcome = self._predict_on(handle, name, features, deadline)
            if isinstance(outcome, WorkerCrashedError):
                last_crash = outcome
                tried.add(wid)
                self._m_requests["rerouted"].inc()
                self._m_reroutes.inc()
                self._recorder.emit(
                    "cluster.reroute",
                    model=name,
                    from_worker=wid,
                    rows=int(features.shape[0]),
                )
                continue
            if isinstance(outcome, BaseException):
                self._m_requests["failed"].inc()
                raise outcome
            self._m_requests["completed"].inc()
            return outcome

    def _predict_on(
        self, handle: WorkerHandle, model: str, features: np.ndarray, deadline: float
    ):
        """One attempt on one worker: returns labels, or an exception
        value (``WorkerCrashedError`` means the caller should reroute)."""
        req_id = next(self._ids)
        in_ref, in_seg = shm_transport.share_array(
            features, f"{self._seg_prefix}-{req_id}i", self.shm_max_bytes
        )
        if in_ref.kind == shm_transport.INLINE:
            self._m_shm_fallback.inc()
            self._recorder.emit(
                "cluster.shm_fallback",
                model=model,
                rows=int(features.shape[0]),
                nbytes=int(features.nbytes),
            )
        out_seg = None
        out_name = None
        out_cap = 0
        rows = int(features.shape[0])
        if rows > 0:
            out_cap = rows * _LABEL_BYTES
            out_seg = shm_transport.shared_memory.SharedMemory(
                create=True, size=out_cap, name=f"{self._seg_prefix}-{req_id}o"
            )
            out_name = out_seg.name
        pending = _Pending(handle.worker_id, handle.generation)
        with self._lock:
            self._pending[req_id] = pending
            handle.inflight += 1
        try:
            sent = handle.alive and handle.send(
                (MSG_PREDICT, req_id, model, in_ref, out_name, out_cap)
            )
            if not sent:
                return WorkerCrashedError(
                    handle.worker_id, model, detail="send failed"
                )
            answered = pending.event.wait(max(0.0, deadline - time.monotonic()))
            if not answered:
                with self._lock:
                    # Re-check under the lock: the response may have
                    # landed between the wait timing out and here.
                    if pending.event.is_set():
                        answered = True
                    else:
                        # The worker is still busy with this request.
                        # Leave it pending (and counted in ``inflight``)
                        # until the late response or the worker's death
                        # retires it — see _dispatch/_declare_dead.
                        pending.abandoned = True
            if not answered:
                return ClusterUnavailableError(
                    f"worker {handle.worker_id} did not answer for model "
                    f"{model!r} within the cluster request timeout"
                )
            if pending.crashed:
                self.router.record_outcome(handle.worker_id, ok=False)
                return WorkerCrashedError(handle.worker_id, model)
            if pending.error is not None:
                # The worker is healthy — it executed and reported an
                # engine-level failure.  Health-wise that is a success.
                self.router.record_outcome(handle.worker_id, ok=True)
                return pending.error
            self.router.record_outcome(handle.worker_id, ok=True)
            ref = pending.ref
            if (
                ref.kind == shm_transport.INLINE
                and ref.nbytes > 0
                and out_seg is not None
            ):
                # The response did not fit its pre-sized slot.
                self._m_shm_fallback.inc()
            if ref.kind == shm_transport.SHM and out_seg is not None:
                view = np.ndarray(
                    ref.shape, dtype=np.dtype(ref.dtype), buffer=out_seg.buf
                )
                return view.copy()
            return shm_transport.read_array(ref)
        finally:
            with self._lock:
                if not pending.abandoned:
                    self._pending.pop(req_id, None)
                    handle.inflight = max(0, handle.inflight - 1)
            shm_transport.release(in_seg)
            shm_transport.release(out_seg)

    # -- placement -------------------------------------------------------

    def ensure_model(self, model: str) -> tuple[int, ...]:
        """Place (and start loading) a model; returns its replica ids."""
        return self._ensure_placed(model.lower())

    def _ensure_placed(self, name: str) -> tuple[int, ...]:
        with self._lock:
            placed = self._placed.get(name)
            if placed is not None:
                return placed
            info = self._db.model_info(name)  # raises CatalogError if unknown
            in_features = int(np.prod(info.model.input_shape))
            replicas = self._placement.replicas(name, in_features)
            self._model_bytes[name] = pickle.dumps(info.model)
            self._placed[name] = replicas
            for wid in replicas:
                self._send_load_locked(self._handles[wid], name)
            return replicas

    def _send_load_locked(self, handle: WorkerHandle, name: str) -> None:
        if name in handle.loaded or name in self._load_failures:
            return
        handle.send((MSG_LOAD, name, self._model_bytes[name]))

    def _await_loaded(
        self, handle: WorkerHandle, name: str, deadline: float
    ) -> bool:
        """Wait until the worker acks the model (False: gave up/crashed)."""
        with self._loaded_cond:
            while name not in handle.loaded:
                if name in self._load_failures:
                    return False  # the caller raises the recorded error
                if handle.state in (DEAD, STOPPED) or self._closing:
                    return False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._loaded_cond.wait(min(remaining, 0.05))
            return True

    def placement_map(self) -> dict[str, list[int]]:
        with self._lock:
            return {name: list(wids) for name, wids in sorted(self._placed.items())}

    def worker_pids(self) -> dict[int, int | None]:
        with self._lock:
            # Before the READY handshake lands, the OS-level pid is
            # already known from the spawned process object.
            return {
                wid: (
                    h.pid
                    if h.pid is not None
                    else getattr(h.process, "pid", None)
                )
                for wid, h in sorted(self._handles.items())
            }

    # -- lifecycle -------------------------------------------------------

    def _spawn_locked(self, handle: WorkerHandle, initial: bool) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        handle.generation += 1
        handle.conn = parent_conn
        handle.state = STARTING
        handle.pid = None
        handle.loaded = set()
        handle.last_heartbeat = time.monotonic()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, handle.worker_id, self._worker_config),
            name=f"repro-cluster-w{handle.worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        self._m_spawns.inc()
        self._recorder.emit(
            "cluster.spawn",
            worker=handle.worker_id,
            pid=process.pid,
            generation=handle.generation,
            initial=initial,
        )
        reader = threading.Thread(
            target=self._reader_loop,
            args=(handle, handle.generation),
            name=f"repro-cluster-r{handle.worker_id}",
            daemon=True,
        )
        reader.start()

    def _reader_loop(self, handle: WorkerHandle, generation: int) -> None:
        conn = handle.conn
        process = handle.process
        while not self._closing and handle.generation == generation:
            try:
                ready = conn_wait([conn, process.sentinel], timeout=0.2)
            except OSError:
                break
            if self._closing or handle.generation != generation:
                return
            if conn in ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    break
                self._dispatch(handle, generation, msg)
                continue
            if process.sentinel in ready:
                break
        if not self._closing and handle.generation == generation:
            self._declare_dead(handle, generation, reason="exit")

    def _dispatch(self, handle: WorkerHandle, generation: int, msg: tuple) -> None:
        handle.last_heartbeat = time.monotonic()
        tag = msg[0]
        if tag == MSG_READY:
            handle.pid = msg[1]
            handle.state = READY
            self._refresh_alive_gauge()
        elif tag == MSG_LOADED:
            with self._loaded_cond:
                handle.loaded.add(msg[1])
                self._loaded_cond.notify_all()
        elif tag == MSG_HEARTBEAT:
            pass  # the timestamp update above is the whole point
        elif tag == MSG_LOAD_ERR:
            __, name, payload = msg
            error = WorkerLoadError(
                handle.worker_id, name, self._unpickle_error(payload)
            )
            with self._loaded_cond:
                # First failure wins; every replica would fail the same
                # way, so one record retires the model pool-wide.
                self._load_failures.setdefault(name, error)
                self._loaded_cond.notify_all()
            self._recorder.emit(
                "cluster.load_error",
                worker=handle.worker_id,
                model=name,
                error=type(error.__cause__).__name__,
            )
        elif tag in (MSG_OK, MSG_ERR):
            __, req_id, payload = msg
            with self._lock:
                pending = self._pending.get(req_id)
                if pending is not None and pending.abandoned:
                    # The caller timed out and moved on; the worker has
                    # now finished, so retire the slot it was holding.
                    self._pending.pop(req_id, None)
                    handle.inflight = max(0, handle.inflight - 1)
            if pending is None or pending.generation != generation:
                return  # raced with a reroute; the caller moved on
            if tag == MSG_OK:
                pending.ref = payload
            else:
                pending.error = self._unpickle_error(payload)
            pending.event.set()

    @staticmethod
    def _unpickle_error(payload) -> BaseException:
        if isinstance(payload, tuple):
            return WorkerExecutionError(payload[0], payload[1])
        try:
            error = pickle.loads(payload)
            if isinstance(error, BaseException):
                return error
        except Exception:
            pass
        return WorkerExecutionError("UnknownError", repr(payload))

    def _declare_dead(
        self, handle: WorkerHandle, generation: int, reason: str
    ) -> None:
        """Mark one incarnation dead and fail its in-flight requests."""
        with self._lock:
            if handle.generation != generation or handle.state in (DEAD, STOPPED):
                return
            handle.state = DEAD
            victims = []
            for req_id, p in list(self._pending.items()):
                if p.worker_id != handle.worker_id or p.generation != generation:
                    continue
                victims.append(p)
                if p.abandoned:
                    # The caller already gave up; nobody else will retire
                    # this slot now that the worker died holding it.
                    self._pending.pop(req_id)
                    handle.inflight = max(0, handle.inflight - 1)
        self._m_crashes.inc()
        self._refresh_alive_gauge()
        self.router.record_outcome(handle.worker_id, ok=False)
        self._recorder.emit(
            "cluster.crash",
            worker=handle.worker_id,
            pid=handle.pid,
            reason=reason,
            inflight=len(victims),
        )
        for pending in victims:
            pending.crashed = True
            pending.event.set()
        with self._loaded_cond:
            self._loaded_cond.notify_all()

    def _monitor_loop(self) -> None:
        while not self._closing:
            time.sleep(self._hb_interval_s)
            if self._closing:
                return
            now = time.monotonic()
            for handle in self._handles.values():
                if self._closing:
                    return
                if handle.state == DEAD:
                    self._respawn(handle)
                    continue
                if handle.state not in (READY, STARTING):
                    continue
                process = handle.process
                if process is not None and not process.is_alive():
                    self._declare_dead(handle, handle.generation, reason="exit")
                    self._respawn(handle)
                elif handle.heartbeat_age_s(now) > self._hb_timeout_s:
                    # Alive but silent: wedged.  Kill, then respawn.
                    try:
                        process.kill()
                    except Exception:  # pragma: no cover - already gone
                        pass
                    self._declare_dead(handle, handle.generation, reason="wedged")
                    self._respawn(handle)

    def _respawn(self, handle: WorkerHandle) -> None:
        with self._lock:
            if self._closing or handle.state != DEAD:
                return
            old_generation = handle.generation
            try:
                handle.conn.close()
            except Exception:  # pragma: no cover
                pass
            self._spawn_locked(handle, initial=False)
            handle.restarts += 1
            # Placement restored, not recomputed: every model this slot
            # hosted is re-loaded into the fresh process.  Models whose
            # load already failed are left retired — replaying the same
            # bytes would fail identically.
            restored = [
                name
                for name, wids in self._placed.items()
                if handle.worker_id in wids and name not in self._load_failures
            ]
            for name in restored:
                self._send_load_locked(handle, name)
        self._m_respawns.inc()
        self._recorder.emit(
            "cluster.respawn",
            worker=handle.worker_id,
            pid=handle.process.pid,
            generation=handle.generation,
            replaced_generation=old_generation,
            models=len(restored),
        )

    def _refresh_alive_gauge(self) -> None:
        self._m_alive.set(
            sum(1 for h in self._handles.values() if h.alive)
        )

    def rolling_restart(self, drain_timeout_s: float | None = None) -> int:
        """Restart every worker one at a time, draining each first.

        Per worker: mark the slot draining (the router stops picking it),
        wait — bounded by ``drain_timeout_s``, default
        ``config.lifecycle_drain_timeout_s`` — for its in-flight requests
        to finish, then stop the process and let the existing
        crash-detection path respawn the slot with its placement
        restored.  Traffic keeps flowing through the other replicas the
        whole time, which is what makes deploys on the cluster
        zero-client-visible-error.  Returns the number of workers
        restarted.
        """
        timeout = (
            drain_timeout_s
            if drain_timeout_s is not None
            else self._db.config.lifecycle_drain_timeout_s
        )
        restarted = 0
        for wid in sorted(self._handles):
            handle = self._handles[wid]
            with self._lock:
                if self._closing or handle.state != READY:
                    continue
                handle.draining = True
                generation = handle.generation
            try:
                deadline = time.monotonic() + timeout
                while handle.inflight > 0 and time.monotonic() < deadline:
                    time.sleep(0.005)
                self._recorder.emit(
                    "cluster.rolling_restart",
                    worker=wid,
                    generation=generation,
                    abandoned_inflight=handle.inflight,
                )
                process = handle.process
                handle.send((MSG_STOP,))
                if process is not None:
                    process.join(timeout=5.0)
                # The reader/monitor declare the exit and respawn the slot
                # with placement restored; wait for it to come back.
                deadline = time.monotonic() + max(timeout, 10.0)
                while time.monotonic() < deadline:
                    if handle.state == READY and handle.generation > generation:
                        break
                    if self._closing:
                        break
                    time.sleep(0.01)
            finally:
                handle.draining = False
            restarted += 1
        return restarted

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker and fail whatever is still in flight."""
        with self._lock:
            if self.closed:
                return
            self._closing = True
            pendings = list(self._pending.values())
        for pending in pendings:
            pending.crashed = True
            pending.event.set()
        with self._loaded_cond:
            self._loaded_cond.notify_all()
        for handle in self._handles.values():
            handle.send((MSG_STOP,))
        end = time.monotonic() + timeout
        for handle in self._handles.values():
            process = handle.process
            if process is None:
                continue
            process.join(max(0.1, end - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(1.0)
            handle.state = STOPPED
            try:
                handle.conn.close()
            except Exception:  # pragma: no cover
                pass
        if self._monitor.is_alive():
            self._monitor.join(timeout=2.0)
        self._refresh_alive_gauge()
        self.closed = True
        if getattr(self._db, "_cluster", None) is self:
            self._db._cluster = None

    def __enter__(self) -> "ClusterPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- observability ---------------------------------------------------

    def stats_rows(self) -> list[tuple[str, object]]:
        """(stat, value) rows for ``SHOW CLUSTER``."""
        now = time.monotonic()
        rows: list[tuple[str, object]] = [
            ("cluster.workers", self.workers),
            ("cluster.replication", self.replication),
            ("cluster.start_method", self.start_method),
            ("cluster.shm_max_bytes", self.shm_max_bytes),
            ("cluster.closed", self.closed),
        ]
        for outcome in CLUSTER_OUTCOMES:
            rows.append(
                (f"cluster.requests.{outcome}",
                 int(self._m_requests[outcome].value))
            )
        rows.extend(
            [
                ("cluster.reroutes", int(self._m_reroutes.value)),
                ("cluster.shm_fallbacks", int(self._m_shm_fallback.value)),
                ("cluster.spawns", int(self._m_spawns.value)),
                ("cluster.crashes", int(self._m_crashes.value)),
                ("cluster.respawns", int(self._m_respawns.value)),
            ]
        )
        rows.extend(self.worker_rows(prefix="cluster"))
        with self._lock:
            for name, wids in sorted(self._placed.items()):
                rows.append(
                    (f"cluster.placement.{name}",
                     ",".join(str(w) for w in wids))
                )
            for name, error in sorted(self._load_failures.items()):
                rows.append((f"cluster.load_failure.{name}", str(error)))
        for row in self.router.rows():
            rows.append((f"cluster.breaker.{row[0]}.state", row[1]))
            rows.append((f"cluster.breaker.{row[0]}.failure_rate", row[2]))
        del now
        return rows

    def worker_rows(self, prefix: str = "server") -> list[tuple[str, object]]:
        """Per-worker (stat, value) rows; shared by SHOW CLUSTER and the
        worker section SHOW SERVER grows when a cluster is attached."""
        now = time.monotonic()
        rows: list[tuple[str, object]] = []
        with self._lock:
            for wid, handle in sorted(self._handles.items()):
                models = sorted(handle.loaded)
                base = f"{prefix}.worker.{wid}"
                rows.extend(
                    [
                        (f"{base}.pid", handle.pid),
                        (f"{base}.state", handle.state),
                        (f"{base}.models", ",".join(models)),
                        (f"{base}.inflight", handle.inflight),
                        (
                            f"{base}.heartbeat_age_ms",
                            round(handle.heartbeat_age_s(now) * 1e3, 1),
                        ),
                        (f"{base}.restarts", handle.restarts),
                    ]
                )
        return rows

    def snapshot(self) -> dict:
        """The ``cluster`` section of a diagnostics bundle (JSON-safe)."""
        now = time.monotonic()
        with self._lock:
            workers = [
                {
                    "worker_id": wid,
                    "pid": handle.pid,
                    "state": handle.state,
                    "restarts": handle.restarts,
                    "inflight": handle.inflight,
                    "heartbeat_age_ms": round(
                        handle.heartbeat_age_s(now) * 1e3, 1
                    ),
                    "models": sorted(handle.loaded),
                }
                for wid, handle in sorted(self._handles.items())
            ]
            placement = {
                name: list(wids) for name, wids in sorted(self._placed.items())
            }
            load_failures = {
                name: str(error)
                for name, error in sorted(self._load_failures.items())
            }
        return {
            "workers": workers,
            "placement": placement,
            "load_failures": load_failures,
            "replication": self.replication,
            "start_method": self.start_method,
            "counters": {
                "completed": int(self._m_requests["completed"].value),
                "failed": int(self._m_requests["failed"].value),
                "rerouted": int(self._m_requests["rerouted"].value),
                "reroutes": int(self._m_reroutes.value),
                "shm_fallbacks": int(self._m_shm_fallback.value),
                "spawns": int(self._m_spawns.value),
                "crashes": int(self._m_crashes.value),
                "respawns": int(self._m_respawns.value),
            },
        }
