"""Shared-memory tensor transport for the process-parallel serving tier.

Tensor blocks cross the process boundary as *named shared-memory
segments* (``multiprocessing.shared_memory``): the sender copies the
array into a segment and ships only a tiny :class:`TensorRef` descriptor
(segment name, dtype, shape) over the control pipe; the receiver maps a
numpy view over the same physical pages.  No tensor payload is pickled
on the hot path.

Two edge cases deliberately leave the shared-memory path:

* **zero-row batches** — a POSIX shm segment cannot be empty, so a
  0-byte array travels as an ``empty`` descriptor with no segment;
* **oversized batches** — payloads beyond ``max_shm_bytes`` fall back to
  pickling through the pipe (an ``inline`` descriptor carrying the
  bytes) so one huge request cannot exhaust ``/dev/shm``; callers count
  these under ``cluster_shm_fallback_total``.

Ownership protocol: the *parent* creates every segment (inputs and the
pre-sized output slot) and is the only side that ever ``unlink``\\ s, so
a SIGKILL'd worker can never leak a segment — its attachments die with
the process and the parent's cleanup still runs.  Worker-side attaches
go through :func:`attach`, which unregisters the mapping from the
``resource_tracker`` (on CPython < 3.13 every attach is tracked, and a
tracked segment the parent already unlinked produces spurious
"leaked shared_memory" warnings at worker exit).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: Descriptor kinds (see module docstring for when each is used).
SHM = "shm"  # payload lives in the named segment
INLINE = "inline"  # payload pickled into the descriptor itself
EMPTY = "empty"  # zero-byte array; no payload at all


@dataclass(frozen=True)
class TensorRef:
    """A picklable descriptor for one tensor crossing the boundary."""

    kind: str  # SHM | INLINE | EMPTY
    dtype: str
    shape: tuple[int, ...]
    segment: str | None = None  # SHM: the shared-memory segment name
    payload: bytes | None = None  # INLINE: the pickled ndarray

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


#: True inside a cluster worker process (set by ``_worker_main``).  A
#: worker's attaches must not stay registered with its resource tracker:
#: the parent owns and unlinks every segment, and a tracked-but-foreign
#: name makes the tracker warn about (and try to unlink) "leaked"
#: segments at worker exit.  In the parent the registration balance is
#: already correct, so unregistering there would erase the *creator's*
#: registration instead.
IN_WORKER = False


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment (untracked inside worker processes)."""
    seg = shared_memory.SharedMemory(name=name)
    if IN_WORKER:
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    return seg


def share_array(
    arr: np.ndarray, name: str, max_shm_bytes: int
) -> tuple[TensorRef, shared_memory.SharedMemory | None]:
    """Publish ``arr`` for another process; returns (ref, owned segment).

    The returned segment (when non-None) is owned by the caller, who
    must ``close()`` and ``unlink()`` it once the peer has responded.
    Zero-byte arrays return an ``empty`` ref; arrays beyond
    ``max_shm_bytes`` return an ``inline`` ref (pickle fallback).
    """
    arr = np.ascontiguousarray(arr)
    shape = tuple(int(d) for d in arr.shape)
    dtype = str(arr.dtype)
    if arr.nbytes == 0:
        return TensorRef(EMPTY, dtype, shape), None
    if arr.nbytes > max_shm_bytes:
        return (
            TensorRef(INLINE, dtype, shape, payload=pickle.dumps(arr)),
            None,
        )
    seg = shared_memory.SharedMemory(create=True, size=arr.nbytes, name=name)
    np.ndarray(shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
    return TensorRef(SHM, dtype, shape, segment=seg.name), seg


def read_array(ref: TensorRef) -> np.ndarray:
    """Materialize the tensor a :class:`TensorRef` describes (a copy).

    The copy decouples the caller from the segment's lifetime: the
    sender may unlink the moment the response lands.
    """
    if ref.kind == EMPTY:
        return np.empty(ref.shape, dtype=np.dtype(ref.dtype))
    if ref.kind == INLINE:
        return pickle.loads(ref.payload)
    seg = attach(ref.segment)
    try:
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
        return view.copy()
    finally:
        seg.close()


def write_into(segment: str, capacity: int, arr: np.ndarray) -> TensorRef:
    """Write ``arr`` into a pre-created segment (the response slot).

    The parent sizes the output slot for the expected label payload; a
    result that does not fit (unexpected dtype or shape) falls back to
    an ``inline`` ref rather than corrupting the slot.
    """
    arr = np.ascontiguousarray(arr)
    shape = tuple(int(d) for d in arr.shape)
    dtype = str(arr.dtype)
    if arr.nbytes == 0:
        return TensorRef(EMPTY, dtype, shape)
    if arr.nbytes > capacity:
        return TensorRef(INLINE, dtype, shape, payload=pickle.dumps(arr))
    seg = attach(segment)
    try:
        seg.buf[: arr.nbytes] = arr.tobytes()
        return TensorRef(SHM, dtype, shape, segment=segment)
    finally:
        seg.close()


def release(seg: shared_memory.SharedMemory | None) -> None:
    """Close and unlink one parent-owned segment (idempotent-ish)."""
    if seg is None:
        return
    try:
        seg.close()
    except Exception:  # pragma: no cover - buffer already released
        pass
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
