"""Process-parallel model serving (cluster tier).

The thread-based server keeps every model in one Python process; on
multi-core hosts the GIL caps the relation-centric engine's throughput
no matter how many server threads run.  This package shards models
across worker *processes* instead:

* :mod:`~repro.cluster.shm` — shared-memory tensor transport (numpy
  views over named segments; no payload pickling on the hot path);
* :mod:`~repro.cluster.placement` — consistent-hash model placement
  with replication, keyed off the co-partitioning chunk layout;
* :mod:`~repro.cluster.worker` — the child-process serving loop and
  its parent-side handle;
* :mod:`~repro.cluster.router` — health-aware replica choice
  (liveness, breakers, heartbeat staleness, SLO burn);
* :mod:`~repro.cluster.pool` — the orchestrator tying them together,
  with crash detection, rerouting, and respawn.

Opt in with ``Database.serve(cluster_workers=N)`` or the ``cluster_*``
config knobs; ``cluster_workers=0`` (the default) keeps the pure
thread path byte-for-byte unchanged.
"""

from .placement import Placement, shard_key
from .pool import CLUSTER_OUTCOMES, ClusterPool
from .router import ClusterRouter
from .shm import EMPTY, INLINE, SHM, TensorRef, read_array, release, share_array, write_into
from .worker import DEAD, READY, STARTING, STOPPED, WorkerHandle

__all__ = [
    "CLUSTER_OUTCOMES",
    "ClusterPool",
    "ClusterRouter",
    "DEAD",
    "EMPTY",
    "INLINE",
    "Placement",
    "READY",
    "SHM",
    "STARTING",
    "STOPPED",
    "TensorRef",
    "WorkerHandle",
    "read_array",
    "release",
    "shard_key",
    "share_array",
    "write_into",
]
