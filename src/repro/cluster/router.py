"""Replica choice with worker health folded in.

The :class:`ClusterRouter` sits between the serving front-end's worker
threads and the process pool: given a model's placed replicas it picks
the worker the next request should land on, demoting replicas that are
unhealthy on any of three signals:

* **liveness** — the handle must be READY with a live process;
* **breaker state** — each worker slot has a deterministic
  :class:`~repro.resilience.CircuitBreaker` (``worker:<id>``) fed by
  request outcomes; an open breaker drops the replica out of rotation
  until its half-open probe succeeds;
* **heartbeat staleness** — a replica whose heartbeat is older than
  half the crash timeout is *suspect* and used only when nothing
  healthier exists;
* **SLO burn** — while the model's fast SLO window is burning
  (:class:`~repro.telemetry.slo.SloTracker`), routing switches from
  round-robin to least-inflight so a slow replica stops accumulating
  queue.

All demotions are soft orderings, never hard failures: if every
replica looks sick the router still returns the least-bad live one —
failing a request the pool could have served is worse than routing to
a suspect worker.
"""

from __future__ import annotations

import threading

from ..resilience import BreakerBoard
from ..resilience.breaker import CLOSED


class ClusterRouter:
    """Health-aware replica selection over :class:`WorkerHandle` slots."""

    def __init__(self, handles: dict, config, slo=None):
        self._handles = handles  # worker_id -> WorkerHandle (pool-owned)
        self._slo = slo
        self._suspect_age_s = config.cluster_heartbeat_timeout_ms / 2e3
        self.breakers = (
            BreakerBoard.from_config(config) if config.breaker_enabled else None
        )
        self._lock = threading.Lock()
        self._rotation: dict[str, int] = {}

    def breaker(self, worker_id: int):
        if self.breakers is None:
            return None
        return self.breakers.get(f"worker:{worker_id}")

    def record_outcome(self, worker_id: int, ok: bool) -> None:
        breaker = self.breaker(worker_id)
        if breaker is None:
            return
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def choose(
        self, model: str, replicas: tuple[int, ...], exclude: set[int] = frozenset()
    ) -> int | None:
        """The worker id for the next request, or None if none is live."""
        live = [
            wid
            for wid in replicas
            if wid not in exclude
            and self._handles[wid].alive
            and not self._handles[wid].draining
        ]
        if not live:
            return None
        healthy = [wid for wid in live if self._healthy(wid)]
        if not healthy:
            # Every replica is demoted.  Give each tripped breaker its
            # allow() call — in the open state that call *is* the
            # cooldown clock, and the first half-open grant becomes the
            # probe this request carries.
            for wid in live:
                breaker = self.breaker(wid)
                if breaker is not None and breaker.state != CLOSED:
                    allowed, __ = breaker.allow()
                    if allowed:
                        return wid
            # No probe granted: serve anyway on the least-loaded live
            # replica — the front-end's per-model breaker still protects
            # clients, and starving the pool helps nobody.
            return min(live, key=lambda wid: self._handles[wid].inflight)
        if len(healthy) == 1:
            return healthy[0]
        if self._burning(model):
            # Acute latency incident: stop spreading evenly, drain onto
            # the replica with the least queued work.
            return min(healthy, key=lambda wid: self._handles[wid].inflight)
        with self._lock:
            slot = self._rotation.get(model, 0)
            self._rotation[model] = slot + 1
        return healthy[slot % len(healthy)]

    def _healthy(self, worker_id: int) -> bool:
        handle = self._handles[worker_id]
        if handle.heartbeat_age_s() > self._suspect_age_s:
            return False
        breaker = self.breaker(worker_id)
        if breaker is not None and breaker.state != CLOSED:
            return False
        return True

    def _burning(self, model: str) -> bool:
        if self._slo is None:
            return False
        try:
            state = self._slo.snapshot().get(model.lower())
        except Exception:  # pragma: no cover - null tracker variants
            return False
        return bool(state and state.get("burning_fast"))

    def rows(self) -> list[tuple]:
        """Breaker rows (for SHOW CLUSTER), empty when breakers are off."""
        if self.breakers is None:
            return []
        return [breaker.as_row() for breaker in self.breakers]
