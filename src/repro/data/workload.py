"""Inference-query workload generators (for the Sec. 7.2.2 cache study).

Result caching only pays off when the query stream revisits similar
inputs.  Real serving traffic is skewed; we model it two ways:

* :func:`zipf_query_stream` — queries draw from a catalog of base items
  under a Zipf popularity law, each arrival perturbed slightly (the "same
  user, same photo, new crop" effect);
* :func:`repeated_query_stream` — an exact-repetition stream with a
  controlled repeat fraction, the simplest hit-rate dial.
"""

from __future__ import annotations

import numpy as np


def zipf_query_stream(
    base_items: np.ndarray,
    n_queries: int,
    skew: float = 1.1,
    jitter: float = 0.01,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``n_queries`` from ``base_items`` with Zipf-skewed popularity.

    Returns ``(queries, base_indices)``; each query is its base item plus
    gaussian jitter, so cache lookups are *near* matches, not exact ones.
    """
    if skew <= 1.0:
        raise ValueError("Zipf skew must be > 1.0")
    rng = np.random.default_rng(seed)
    n_items = base_items.shape[0]
    ranks = rng.zipf(skew, size=n_queries * 4)
    ranks = ranks[ranks <= n_items][:n_queries]
    while ranks.shape[0] < n_queries:  # top up after rejection
        extra = rng.zipf(skew, size=n_queries)
        extra = extra[extra <= n_items]
        ranks = np.concatenate([ranks, extra])[:n_queries]
    indices = ranks - 1
    queries = base_items[indices].astype(np.float64)
    if jitter:
        queries = queries + rng.normal(scale=jitter, size=queries.shape)
    return queries, indices


def repeated_query_stream(
    base_items: np.ndarray,
    n_queries: int,
    repeat_fraction: float = 0.8,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """A stream where ``repeat_fraction`` of arrivals revisit earlier items.

    The first arrivals are unique items; afterwards each arrival repeats a
    previously seen item with the given probability, otherwise introduces
    the next unseen item.  Returns ``(queries, base_indices)``.
    """
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ValueError("repeat_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    indices: list[int] = []
    next_fresh = 0
    n_items = base_items.shape[0]
    for __ in range(n_queries):
        repeat = indices and (rng.uniform() < repeat_fraction or next_fresh >= n_items)
        if repeat:
            indices.append(int(rng.choice(indices)))
        else:
            indices.append(next_fresh)
            next_fresh += 1
    index_array = np.asarray(indices)
    return base_items[index_array].astype(np.float64), index_array
