"""A synthetic MNIST stand-in (Sec. 7.2.2 substitution).

The inference-result-caching experiment needs an image classification task
where (a) a small model reaches high accuracy and (b) queries contain many
near-duplicate inputs, so an approximate nearest-neighbour cache hits
often.  Real MNIST is unavailable offline; we render ten parametric digit
glyphs on a 28×28 grid with per-sample jitter, elastic-ish distortion, and
pixel noise.  Samples of the same class are near-duplicates in pixel
space — the same property that makes HNSW caching effective on MNIST.
"""

from __future__ import annotations

import numpy as np

# Each glyph is a set of strokes; a stroke is ((y0, x0), (y1, x1)) on a
# 28×28 canvas.  The shapes are digit-like, but what matters is that the
# ten classes are visually distinct and intra-class variation is small.
_GLYPHS: dict[int, list[tuple[tuple[float, float], tuple[float, float]]]] = {
    0: [((6, 9), (6, 18)), ((6, 18), (21, 18)), ((21, 18), (21, 9)), ((21, 9), (6, 9))],
    1: [((6, 14), (21, 14)), ((6, 14), (9, 11))],
    2: [((6, 9), (6, 18)), ((6, 18), (13, 18)), ((13, 18), (13, 9)), ((13, 9), (21, 9)), ((21, 9), (21, 18))],
    3: [((6, 9), (6, 18)), ((13, 10), (13, 18)), ((21, 9), (21, 18)), ((6, 18), (21, 18))],
    4: [((6, 9), (13, 9)), ((13, 9), (13, 18)), ((6, 18), (21, 18))],
    5: [((6, 18), (6, 9)), ((6, 9), (13, 9)), ((13, 9), (13, 18)), ((13, 18), (21, 18)), ((21, 18), (21, 9))],
    6: [((6, 16), (6, 9)), ((6, 9), (21, 9)), ((21, 9), (21, 18)), ((21, 18), (13, 18)), ((13, 18), (13, 9))],
    7: [((6, 9), (6, 18)), ((6, 18), (21, 12))],
    8: [((6, 9), (6, 18)), ((13, 9), (13, 18)), ((21, 9), (21, 18)), ((6, 9), (21, 9)), ((6, 18), (21, 18))],
    9: [((13, 9), (6, 9)), ((6, 9), (6, 18)), ((6, 18), (21, 18)), ((13, 9), (13, 18))],
}


def _render_glyph(label: int, rng: np.random.Generator) -> np.ndarray:
    """Rasterise one jittered glyph onto a 28×28 canvas."""
    canvas = np.zeros((28, 28))
    dy, dx = rng.normal(scale=1.0, size=2)
    scale = rng.uniform(0.85, 1.15)
    for (y0, x0), (y1, x1) in _GLYPHS[label]:
        y0 = (y0 - 14) * scale + 14 + dy
        y1 = (y1 - 14) * scale + 14 + dy
        x0 = (x0 - 14) * scale + 14 + dx
        x1 = (x1 - 14) * scale + 14 + dx
        steps = int(max(abs(y1 - y0), abs(x1 - x0)) * 2) + 2
        for t in np.linspace(0.0, 1.0, steps):
            y = y0 + t * (y1 - y0) + rng.normal(scale=0.2)
            x = x0 + t * (x1 - x0) + rng.normal(scale=0.2)
            yi, xi = int(round(y)), int(round(x))
            if 0 <= yi < 28 and 0 <= xi < 28:
                canvas[yi, xi] = 1.0
                if yi + 1 < 28:
                    canvas[yi + 1, xi] = max(canvas[yi + 1, xi], 0.6)
                if xi + 1 < 28:
                    canvas[yi, xi + 1] = max(canvas[yi, xi + 1], 0.6)
    canvas += rng.normal(scale=0.05, size=(28, 28))
    return np.clip(canvas, 0.0, 1.0)


def synthetic_mnist(
    n_train: int, n_test: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``(x_train, y_train, x_test, y_test)``; images are (N, 28, 28, 1)."""
    rng = np.random.default_rng(seed)
    total = n_train + n_test
    labels = rng.integers(0, 10, size=total)
    images = np.stack([_render_glyph(int(label), rng) for label in labels])
    images = images[..., None]
    return (
        images[:n_train],
        labels[:n_train],
        images[n_train:],
        labels[n_train:],
    )
