"""Synthetic datasets standing in for the paper's proprietary workloads."""

from .fraud import feature_column_names, fraud_schema, fraud_transactions
from .bosch import bosch_wide_table, most_correlated_pair, vertical_split
from .landcover import landcover_tiles, tiles_as_rows
from .mnist import synthetic_mnist
from .deepbench import deepbench_inputs
from .workload import repeated_query_stream, zipf_query_stream

__all__ = [
    "fraud_transactions",
    "fraud_schema",
    "feature_column_names",
    "bosch_wide_table",
    "vertical_split",
    "most_correlated_pair",
    "landcover_tiles",
    "tiles_as_rows",
    "synthetic_mnist",
    "deepbench_inputs",
    "zipf_query_stream",
    "repeated_query_stream",
]
