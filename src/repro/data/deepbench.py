"""Input generator for the DeepBench-CONV1 workload (Table 2)."""

from __future__ import annotations

import numpy as np


def deepbench_inputs(
    n: int, side: int = 112, channels: int = 64, seed: int = 0
) -> np.ndarray:
    """Generate ``(n, side, side, channels)`` activation-like inputs.

    DeepBench's conv benchmarks run on intermediate activations, which are
    non-negative and sparse-ish after a ReLU; we mimic that distribution.
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, side, side, channels))
    return np.maximum(x, 0.0)
