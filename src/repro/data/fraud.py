"""Synthetic credit-card transactions (the Fraud-FC workload).

The paper's fraud models take 28 features (the shape of the public
credit-card fraud dataset: 28 PCA components).  We generate transactions
whose label follows a planted noisy linear rule so trained models have
signal to find, and tables load directly into the RDBMS.
"""

from __future__ import annotations

import numpy as np

from ..relational.schema import ColumnType, Schema

NUM_FEATURES = 28


def fraud_schema() -> Schema:
    """``(id INT, f0..f27 DOUBLE, label INT)``."""
    columns: list[tuple[str, ColumnType]] = [("id", ColumnType.INT)]
    columns += [(f"f{i}", ColumnType.DOUBLE) for i in range(NUM_FEATURES)]
    columns.append(("label", ColumnType.INT))
    return Schema.of(*columns)


def fraud_transactions(
    n: int, seed: int = 0, fraud_rate: float = 0.05
) -> tuple[np.ndarray, np.ndarray, list[tuple]]:
    """Generate ``n`` transactions.

    Returns ``(features, labels, rows)`` where ``rows`` matches
    :func:`fraud_schema` and can be bulk-inserted.
    """
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, NUM_FEATURES))
    direction = rng.normal(size=NUM_FEATURES)
    direction /= np.linalg.norm(direction)
    scores = features @ direction + rng.normal(scale=0.3, size=n)
    threshold = np.quantile(scores, 1.0 - fraud_rate)
    labels = (scores > threshold).astype(np.int64)
    rows = [
        (int(i), *map(float, features[i]), int(labels[i])) for i in range(n)
    ]
    return features, labels, rows


def feature_column_names() -> list[str]:
    return [f"f{i}" for i in range(NUM_FEATURES)]
