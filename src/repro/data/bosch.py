"""A Bosch-production-line-style wide table (Sec. 7.2.1 substitution).

The paper vertically partitions the proprietary Bosch dataset (1.18 M rows,
968 features) into two 484-feature halves and joins them back with a
similarity join on the most-correlated column pair.  We synthesise a wide
numeric table with a *planted* highly-correlated pair straddling the split
(one column in each half equals a shared latent value plus small noise), so
the correlation search and the similarity join behave as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..relational.schema import ColumnType, Schema


def bosch_wide_table(
    n_rows: int,
    n_features: int = 968,
    seed: int = 0,
    noise: float = 0.01,
) -> tuple[np.ndarray, Schema, list[tuple]]:
    """Generate the wide table.

    Returns ``(features, schema, rows)`` with schema
    ``(id INT, c0..c<n-1> DOUBLE)``.  Columns ``n_features//2 - 1`` (last of
    the left half) and ``n_features - 1`` (last of the right half) share a
    latent value, making them the most-correlated cross-partition pair.
    """
    if n_features < 4 or n_features % 2:
        raise ValueError("n_features must be an even number >= 4")
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n_rows, n_features))
    latent = rng.normal(size=n_rows)
    half = n_features // 2
    features[:, half - 1] = latent + rng.normal(scale=noise, size=n_rows)
    features[:, n_features - 1] = latent + rng.normal(scale=noise, size=n_rows)
    columns: list[tuple[str, ColumnType]] = [("id", ColumnType.INT)]
    columns += [(f"c{i}", ColumnType.DOUBLE) for i in range(n_features)]
    schema = Schema.of(*columns)
    rows = [(int(i), *map(float, features[i])) for i in range(n_rows)]
    return features, schema, rows


def vertical_split(
    features: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Split a feature matrix into equal left/right halves (D1, D2)."""
    half = features.shape[1] // 2
    return features[:, :half], features[:, half:]


def most_correlated_pair(
    left: np.ndarray, right: np.ndarray, sample: int | None = 4096, seed: int = 0
) -> tuple[int, int, float]:
    """Find the (left column, right column) pair with highest |correlation|.

    This is the paper's join-key selection step.  Computed on a row sample
    for speed; exact when ``sample is None``.
    """
    if sample is not None and left.shape[0] > sample:
        idx = np.random.default_rng(seed).choice(left.shape[0], sample, replace=False)
        left, right = left[idx], right[idx]
    left_std = (left - left.mean(axis=0)) / (left.std(axis=0) + 1e-12)
    right_std = (right - right.mean(axis=0)) / (right.std(axis=0) + 1e-12)
    corr = np.abs(left_std.T @ right_std) / left.shape[0]
    flat = int(np.argmax(corr))
    i, j = divmod(flat, corr.shape[1])
    return i, j, float(corr[i, j])
