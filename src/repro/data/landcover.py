"""Synthetic land-cover imagery tiles (Table 2 / Table 3 substitution).

The paper's LandCover workload convolves 2500×2500×3 satellite tiles.  We
generate tiles with smooth spatial structure (a few gaussian "land
patches" per channel over a noise floor) so the data is image-like rather
than white noise; the experiments only depend on the tensor shapes.
"""

from __future__ import annotations

import numpy as np


def landcover_tiles(
    n_tiles: int, spatial: int = 2500, seed: int = 0, patches: int = 4
) -> np.ndarray:
    """Generate ``(n_tiles, spatial, spatial, 3)`` float64 imagery."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:spatial, 0:spatial]
    tiles = rng.normal(scale=0.05, size=(n_tiles, spatial, spatial, 3))
    for t in range(n_tiles):
        for __ in range(patches):
            cy, cx = rng.uniform(0, spatial, size=2)
            radius = rng.uniform(spatial / 8, spatial / 3)
            blob = np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * radius**2)))
            channel = rng.integers(0, 3)
            tiles[t, :, :, channel] += rng.uniform(0.5, 1.5) * blob
    return tiles


def tiles_as_rows(tiles: np.ndarray) -> list[tuple[int, bytes]]:
    """Encode tiles for an ``(id INT, image BLOB)`` table."""
    return [
        (int(i), np.ascontiguousarray(tiles[i], dtype=np.float64).tobytes())
        for i in range(tiles.shape[0])
    ]
