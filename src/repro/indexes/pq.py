"""Product quantization (Jégou, Douze & Schmid, 2011).

Vectors are split into ``num_subspaces`` contiguous sub-vectors; each
subspace learns a 2^bits-entry codebook via k-means.  A stored vector
becomes one code per subspace; search uses asymmetric distance
computation (ADC): the query precomputes a distance table per subspace
and candidate distances are table-lookup sums.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnnIndexError
from .base import SearchResult, VectorIndex
from .ivf import kmeans


class PqIndex(VectorIndex):
    """PQ with ADC search (optionally exact re-ranking of the top-R)."""

    def __init__(
        self,
        dim: int,
        num_subspaces: int = 4,
        bits: int = 6,
        rerank: int = 0,
        seed: int = 0,
    ):
        super().__init__(dim)
        if dim % num_subspaces:
            raise AnnIndexError(
                f"dimension {dim} is not divisible into {num_subspaces} subspaces"
            )
        if not 1 <= bits <= 12:
            raise AnnIndexError("bits must be in [1, 12]")
        self.num_subspaces = num_subspaces
        self.sub_dim = dim // num_subspaces
        self.num_codes = 1 << bits
        self.rerank = rerank
        self._seed = seed
        self._codebooks: np.ndarray | None = None  # (subspaces, codes, sub_dim)
        self._codes = np.empty((0, num_subspaces), dtype=np.int32)
        self._ids: list[int] = []
        self._raw: list[np.ndarray] = []  # kept only when rerank > 0
        self._pending: list[np.ndarray] = []
        self._pending_ids: list[int] = []

    @property
    def is_trained(self) -> bool:
        return self._codebooks is not None

    def train(self, data: np.ndarray) -> None:
        data = self._check_vectors(data)
        k = min(self.num_codes, data.shape[0])
        books = []
        for s in range(self.num_subspaces):
            sub = data[:, s * self.sub_dim : (s + 1) * self.sub_dim]
            centers, __ = kmeans(sub, k, seed=self._seed + s)
            if k < self.num_codes:  # pad unused codes with copies
                centers = np.vstack(
                    [centers, np.repeat(centers[:1], self.num_codes - k, axis=0)]
                )
            books.append(centers)
        self._codebooks = np.array(books)
        if self._pending:
            vectors = np.array(self._pending)
            ids = np.array(self._pending_ids, dtype=np.int64)
            self._pending = []
            self._pending_ids = []
            self._encode_and_store(vectors, ids)

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        assert self._codebooks is not None
        codes = np.empty((vectors.shape[0], self.num_subspaces), dtype=np.int32)
        for s in range(self.num_subspaces):
            sub = vectors[:, s * self.sub_dim : (s + 1) * self.sub_dim]
            d2 = (
                (sub[:, None, :] - self._codebooks[s][None, :, :]) ** 2
            ).sum(axis=2)
            codes[:, s] = d2.argmin(axis=1)
        return codes

    def _encode_and_store(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        self._codes = np.vstack([self._codes, self._encode(vectors)])
        self._ids.extend(int(v) for v in ids)
        if self.rerank:
            self._raw.extend(vector.copy() for vector in vectors)

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        vectors = self._check_vectors(vectors)
        if ids is None:
            ids = np.arange(self._size, self._size + vectors.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape[0] != vectors.shape[0]:
                raise AnnIndexError("ids and vectors must have equal length")
        self._size += vectors.shape[0]
        if self.is_trained:
            self._encode_and_store(vectors, ids)
        else:
            self._pending.extend(v.copy() for v in vectors)
            self._pending_ids.extend(int(v) for v in ids)
            if len(self._pending) >= 4 * self.num_codes:
                self.train(np.array(self._pending))
        return ids

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        query = self._check_query(query)
        if not self.is_trained:
            if not self._pending:
                return self._pad([], [], k)
            matrix = np.array(self._pending)
            distances = np.linalg.norm(matrix - query, axis=1)
            order = np.argsort(distances, kind="stable")[:k]
            return self._pad(
                [self._pending_ids[i] for i in order],
                [float(distances[i]) for i in order],
                k,
            )
        if self._codes.shape[0] == 0:
            return self._pad([], [], k)
        # ADC: per-subspace distance tables.
        tables = np.empty((self.num_subspaces, self.num_codes))
        for s in range(self.num_subspaces):
            sub = query[s * self.sub_dim : (s + 1) * self.sub_dim]
            tables[s] = ((self._codebooks[s] - sub) ** 2).sum(axis=1)
        approx = tables[np.arange(self.num_subspaces)[None, :], self._codes].sum(axis=1)
        if self.rerank:
            top = np.argsort(approx, kind="stable")[: max(self.rerank, k)]
            matrix = np.array([self._raw[i] for i in top])
            exact = np.linalg.norm(matrix - query, axis=1)
            order = np.argsort(exact, kind="stable")[:k]
            return self._pad(
                [self._ids[top[i]] for i in order],
                [float(exact[i]) for i in order],
                k,
            )
        order = np.argsort(approx, kind="stable")[:k]
        return self._pad(
            [self._ids[i] for i in order],
            [float(np.sqrt(approx[i])) for i in order],
            k,
        )
