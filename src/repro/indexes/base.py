"""The shared vector-index interface."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnnIndexError


@dataclass
class SearchResult:
    """k-NN results: ids and L2 distances, both ``(k,)`` arrays sorted by
    distance (padded with ``-1`` / ``inf`` when fewer than k hits exist)."""

    ids: np.ndarray
    distances: np.ndarray

    @property
    def nearest_id(self) -> int:
        return int(self.ids[0])

    @property
    def nearest_distance(self) -> float:
        return float(self.distances[0])


class VectorIndex:
    """Base class: stores float64 vectors under integer ids."""

    def __init__(self, dim: int):
        if dim < 1:
            raise AnnIndexError("vector dimension must be >= 1")
        self.dim = dim
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        """Insert vectors; returns the assigned ids."""
        raise NotImplementedError

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """k nearest neighbours of one query vector (L2)."""
        raise NotImplementedError

    def _check_vectors(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self.dim:
            raise AnnIndexError(
                f"index expects dimension {self.dim}, got {vectors.shape[1]}"
            )
        return vectors

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise AnnIndexError(
                f"query has dimension {query.shape[0]}, index expects {self.dim}"
            )
        return query

    @staticmethod
    def _pad(ids: list[int], distances: list[float], k: int) -> SearchResult:
        out_ids = np.full(k, -1, dtype=np.int64)
        out_dist = np.full(k, np.inf)
        n = min(k, len(ids))
        out_ids[:n] = ids[:n]
        out_dist[:n] = distances[:n]
        return SearchResult(out_ids, out_dist)
