"""Hierarchical Navigable Small World graphs (Malkov & Yashunin, 2018).

This is the index the paper's Sec. 7.2.2 caching experiment uses (via
Faiss there; from scratch here).  Standard construction:

* each element draws a top layer ``l ~ floor(-ln(U) · mL)``;
* insertion greedily descends from the entry point to layer ``l+1``, then
  runs ``ef_construction``-wide beam searches on the way down, connecting
  to the ``M`` closest candidates per layer (``2M`` on layer 0);
* search descends greedily to layer 1, then beam-searches layer 0 with
  width ``ef_search``.

Distances to a node's whole neighbour list are evaluated as one vectorised
numpy operation (as Faiss does with SIMD); vectors live in a geometrically
grown contiguous array to make that cheap.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ..errors import AnnIndexError
from .base import SearchResult, VectorIndex


class HnswIndex(VectorIndex):
    """An HNSW graph over float64 vectors with L2 distance."""

    def __init__(
        self,
        dim: int,
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 50,
        seed: int = 0,
    ):
        super().__init__(dim)
        if m < 2:
            raise AnnIndexError("HNSW requires M >= 2")
        self.m = m
        self.max_m0 = 2 * m
        self.ef_construction = max(ef_construction, m)
        self.ef_search = ef_search
        self._ml = 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)
        self._matrix = np.empty((16, dim))
        self._count = 0
        self._ids: list[int] = []
        self._levels: list[int] = []
        # _graph[level][node] -> list of neighbour node indices
        self._graph: list[dict[int, list[int]]] = []
        self._entry_point: int | None = None

    # -- storage helpers ----------------------------------------------------

    def _append_vector(self, vector: np.ndarray) -> int:
        if self._count == self._matrix.shape[0]:
            grown = np.empty((2 * self._matrix.shape[0], self.dim))
            grown[: self._count] = self._matrix[: self._count]
            self._matrix = grown
        self._matrix[self._count] = vector
        self._count += 1
        return self._count - 1

    def _distance(self, node: int, query: np.ndarray) -> float:
        diff = self._matrix[node] - query
        return float(diff @ diff)  # squared L2; monotone, cheaper

    def _distances(self, nodes: list[int], query: np.ndarray) -> np.ndarray:
        diff = self._matrix[nodes] - query
        return np.einsum("ij,ij->i", diff, diff)

    # -- construction -----------------------------------------------------

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        vectors = self._check_vectors(vectors)
        if ids is None:
            ids = np.arange(self._size, self._size + vectors.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape[0] != vectors.shape[0]:
                raise AnnIndexError("ids and vectors must have equal length")
        for vector, vid in zip(vectors, ids):
            self._insert(vector, int(vid))
        return ids

    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.uniform(), 1e-12)) * self._ml)

    def _insert(self, vector: np.ndarray, vid: int) -> None:
        node = self._append_vector(np.asarray(vector, dtype=np.float64))
        level = self._random_level()
        self._ids.append(vid)
        self._levels.append(level)
        while len(self._graph) <= level:
            self._graph.append({})
        for l in range(level + 1):
            self._graph[l][node] = []
        self._size += 1

        if self._entry_point is None:
            self._entry_point = node
            return

        entry = self._entry_point
        top_level = self._levels[entry]
        # Greedy descent above the new node's level.
        for l in range(top_level, level, -1):
            entry = self._greedy_step(vector, entry, l)
        # Beam search + connect on the shared levels.
        for l in range(min(level, top_level), -1, -1):
            candidates = self._search_layer(vector, [entry], l, self.ef_construction)
            max_links = self.max_m0 if l == 0 else self.m
            neighbours = self._select_neighbours(vector, candidates, self.m)
            self._graph[l][node] = list(neighbours)
            for neighbour in neighbours:
                links = self._graph[l][neighbour]
                links.append(node)
                if len(links) > max_links:
                    self._graph[l][neighbour] = self._shrink(
                        neighbour, links, max_links
                    )
            if candidates:
                entry = min(candidates)[1]
        if level > top_level:
            self._entry_point = node

    def _select_neighbours(
        self,
        base: np.ndarray,
        candidates: list[tuple[float, int]],
        m: int,
    ) -> list[int]:
        """Malkov's diversity heuristic (Algorithm 4).

        A candidate joins the neighbour list only if it is closer to the
        base point than to every already-selected neighbour; otherwise it
        is dominated (reachable through that neighbour).  This keeps edges
        pointing *between* clusters, preserving graph connectivity on
        clustered data — plain nearest-M selection builds intra-cluster
        cliques that greedy search cannot escape.  Dominated candidates
        backfill remaining slots (keep-pruned-connections).
        """
        ordered = sorted(candidates)
        selected: list[int] = []
        pruned: list[int] = []
        for dist, cand in ordered:
            if len(selected) >= m:
                break
            if not selected:
                selected.append(cand)
                continue
            to_selected = self._distances(selected, self._matrix[cand])
            if dist < float(to_selected.min()):
                selected.append(cand)
            else:
                pruned.append(cand)
        for cand in pruned:
            if len(selected) >= m:
                break
            selected.append(cand)
        return selected

    def _shrink(self, node: int, links: list[int], max_links: int) -> list[int]:
        """Re-select a node's neighbour list with the diversity heuristic."""
        unique = list(set(links))
        dists = self._distances(unique, self._matrix[node])
        candidates = [(float(d), n) for d, n in zip(dists, unique)]
        return self._select_neighbours(self._matrix[node], candidates, max_links)

    def _greedy_step(self, query: np.ndarray, entry: int, level: int) -> int:
        current = entry
        current_dist = self._distance(current, query)
        improved = True
        while improved:
            improved = False
            neighbours = self._graph[level].get(current, ())
            if not neighbours:
                break
            dists = self._distances(list(neighbours), query)
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = neighbours[best]
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer(
        self,
        query: np.ndarray,
        entries: list[int],
        level: int,
        ef: int,
        stop_below: float = -1.0,
    ) -> list[tuple[float, int]]:
        """Beam search one layer; returns (distance, node) pairs.

        ``stop_below`` (squared distance) terminates the beam as soon as
        any result within it is found — the threshold-aware fast path for
        cache lookups, where *any* neighbour inside the serving threshold
        answers the query.
        """
        visited = set(entries)
        entry_dists = self._distances(entries, query)
        candidates = [(float(d), e) for d, e in zip(entry_dists, entries)]
        heapq.heapify(candidates)
        # Max-heap of the current best ef results (negated distances).
        results = [(-d, n) for d, n in candidates]
        heapq.heapify(results)
        if candidates and candidates[0][0] <= stop_below:
            return [(-negd, n) for negd, n in results]
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -results[0][0] and len(results) >= ef:
                break
            fresh = [
                n for n in self._graph[level].get(node, ()) if n not in visited
            ]
            if not fresh:
                continue
            visited.update(fresh)
            dists = self._distances(fresh, query)
            worst = -results[0][0]
            early_hit = False
            for d, neighbour in zip(dists, fresh):
                d = float(d)
                if len(results) < ef or d < worst:
                    heapq.heappush(candidates, (d, neighbour))
                    heapq.heappush(results, (-d, neighbour))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = -results[0][0]
                if d <= stop_below:
                    early_hit = True
            if early_hit:
                break
        return [(-negd, n) for negd, n in results]

    # -- queries -----------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int = 1,
        early_stop_distance: float | None = None,
    ) -> SearchResult:
        """k-NN search.

        ``early_stop_distance`` (L2, unsquared) turns on the threshold-
        aware fast path: the beam stops as soon as any point within that
        distance is found, returning it first.  Used by the result cache,
        where any in-threshold neighbour is an acceptable answer.
        """
        query = self._check_query(query)
        if self._entry_point is None:
            return self._pad([], [], k)
        entry = self._entry_point
        for level in range(self._levels[entry], 0, -1):
            entry = self._greedy_step(query, entry, level)
        ef = max(self.ef_search, k)
        stop_below = (
            early_stop_distance**2 if early_stop_distance is not None else -1.0
        )
        found = self._search_layer(query, [entry], 0, ef, stop_below=stop_below)
        found.sort()
        ids = [self._ids[n] for __, n in found[:k]]
        distances = [math.sqrt(max(d, 0.0)) for d, __ in found[:k]]
        return self._pad(ids, distances, k)
