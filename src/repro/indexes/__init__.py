"""Approximate nearest-neighbour indexes (Sec. 5.1).

The paper proposes using the vector-database index families — HNSW, LSH,
IVF, and product quantization — *inside* the RDBMS to cache inference
results.  All four are implemented from scratch here, behind one
interface, plus an exact :class:`FlatIndex` used as the recall baseline.
"""

from .base import SearchResult, VectorIndex
from .flat import FlatIndex
from .hnsw import HnswIndex
from .lsh import LshIndex
from .ivf import IvfIndex, kmeans
from .pq import PqIndex

__all__ = [
    "VectorIndex",
    "SearchResult",
    "FlatIndex",
    "HnswIndex",
    "LshIndex",
    "IvfIndex",
    "kmeans",
    "PqIndex",
]
