"""Random-hyperplane locality-sensitive hashing.

Multiple hash tables, each hashing a vector to the sign pattern of
``num_bits`` random projections.  A query probes its bucket in every
table, unions the candidates, and re-ranks them exactly.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnnIndexError
from .base import SearchResult, VectorIndex


class LshIndex(VectorIndex):
    """Sign-random-projection LSH with exact re-ranking."""

    def __init__(
        self,
        dim: int,
        num_tables: int = 8,
        num_bits: int = 12,
        seed: int = 0,
    ):
        super().__init__(dim)
        if num_tables < 1 or num_bits < 1:
            raise AnnIndexError("LSH needs at least one table and one bit")
        rng = np.random.default_rng(seed)
        self._planes = rng.normal(size=(num_tables, num_bits, dim))
        self._tables: list[dict[int, list[int]]] = [{} for __ in range(num_tables)]
        self._vectors: list[np.ndarray] = []
        self._ids: list[int] = []
        self._powers = 1 << np.arange(num_bits)

    def _hashes(self, vector: np.ndarray) -> np.ndarray:
        signs = (self._planes @ vector) > 0  # (tables, bits)
        return signs @ self._powers

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        vectors = self._check_vectors(vectors)
        if ids is None:
            ids = np.arange(self._size, self._size + vectors.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape[0] != vectors.shape[0]:
                raise AnnIndexError("ids and vectors must have equal length")
        for vector, vid in zip(vectors, ids):
            node = len(self._vectors)
            self._vectors.append(vector.copy())
            self._ids.append(int(vid))
            for table, bucket in zip(self._tables, self._hashes(vector)):
                table.setdefault(int(bucket), []).append(node)
            self._size += 1
        return ids

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        query = self._check_query(query)
        candidates: set[int] = set()
        for table, bucket in zip(self._tables, self._hashes(query)):
            candidates.update(table.get(int(bucket), ()))
        if not candidates:
            return self._pad([], [], k)
        nodes = sorted(candidates)
        matrix = np.array([self._vectors[n] for n in nodes])
        distances = np.linalg.norm(matrix - query, axis=1)
        order = np.argsort(distances, kind="stable")[:k]
        return self._pad(
            [self._ids[nodes[i]] for i in order],
            [float(distances[i]) for i in order],
            k,
        )
