"""Inverted-file indexing (IVF) over a k-means coarse quantizer.

Vectors are assigned to their nearest centroid's inverted list; a query
probes the ``nprobe`` nearest lists and re-ranks their members exactly.
Includes a from-scratch Lloyd's k-means (with k-means++ seeding), reused
by the product-quantization index.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnnIndexError
from .base import SearchResult, VectorIndex


def kmeans(
    data: np.ndarray,
    k: int,
    iterations: int = 25,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm with k-means++ initialisation.

    Returns ``(centroids (k, dim), assignments (n,))``.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if k < 1:
        raise AnnIndexError("k must be >= 1")
    if n < k:
        raise AnnIndexError(f"cannot fit {k} centroids to {n} points")
    rng = np.random.default_rng(seed)
    # k-means++ seeding.
    centroids = [data[rng.integers(n)]]
    for __ in range(k - 1):
        d2 = np.min(
            [np.sum((data - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(data[rng.integers(n)])
            continue
        centroids.append(data[rng.choice(n, p=d2 / total)])
    centers = np.array(centroids)
    assignments = np.zeros(n, dtype=np.int64)
    for __ in range(iterations):
        distances = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments
        for c in range(k):
            members = data[assignments == c]
            if members.shape[0]:
                centers[c] = members.mean(axis=0)
            else:  # re-seed an empty cluster at the farthest point
                d2 = ((data - centers[assignments]) ** 2).sum(axis=1)
                centers[c] = data[int(d2.argmax())]
    return centers, assignments


class IvfIndex(VectorIndex):
    """IVF with exact re-ranking within probed lists.

    Training is lazy: the coarse quantizer fits on the first
    ``train_size`` vectors seen (or on an explicit :meth:`train` call).
    """

    def __init__(
        self,
        dim: int,
        num_lists: int = 16,
        nprobe: int = 2,
        seed: int = 0,
    ):
        super().__init__(dim)
        if nprobe < 1 or num_lists < 1 or nprobe > num_lists:
            raise AnnIndexError("need 1 <= nprobe <= num_lists")
        self.num_lists = num_lists
        self.nprobe = nprobe
        self._seed = seed
        self._centroids: np.ndarray | None = None
        self._lists: list[list[int]] = [[] for __ in range(num_lists)]
        self._vectors: list[np.ndarray] = []
        self._ids: list[int] = []
        self._pending: list[int] = []

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def train(self, data: np.ndarray) -> None:
        data = self._check_vectors(data)
        self._centroids, __ = kmeans(data, self.num_lists, seed=self._seed)
        for node in self._pending:
            self._assign(node)
        self._pending = []

    def _assign(self, node: int) -> None:
        assert self._centroids is not None
        d2 = ((self._centroids - self._vectors[node]) ** 2).sum(axis=1)
        self._lists[int(d2.argmin())].append(node)

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        vectors = self._check_vectors(vectors)
        if ids is None:
            ids = np.arange(self._size, self._size + vectors.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape[0] != vectors.shape[0]:
                raise AnnIndexError("ids and vectors must have equal length")
        for vector, vid in zip(vectors, ids):
            node = len(self._vectors)
            self._vectors.append(vector.copy())
            self._ids.append(int(vid))
            self._size += 1
            if self.is_trained:
                self._assign(node)
            else:
                self._pending.append(node)
        if not self.is_trained and len(self._pending) >= 4 * self.num_lists:
            self.train(np.array(self._vectors))
        return ids

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        query = self._check_query(query)
        if not self.is_trained:
            # Fall back to exact scan over the small pending set.
            nodes = list(range(len(self._vectors)))
        else:
            d2 = ((self._centroids - query) ** 2).sum(axis=1)
            probe = np.argsort(d2)[: self.nprobe]
            nodes = [n for p in probe for n in self._lists[int(p)]]
        if not nodes:
            return self._pad([], [], k)
        matrix = np.array([self._vectors[n] for n in nodes])
        distances = np.linalg.norm(matrix - query, axis=1)
        order = np.argsort(distances, kind="stable")[:k]
        return self._pad(
            [self._ids[nodes[i]] for i in order],
            [float(distances[i]) for i in order],
            k,
        )
