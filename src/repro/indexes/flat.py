"""Exact brute-force index (the recall/latency baseline)."""

from __future__ import annotations

import numpy as np

from ..errors import AnnIndexError
from .base import SearchResult, VectorIndex


class FlatIndex(VectorIndex):
    """Exact k-NN by full scan (vectorised numpy)."""

    def __init__(self, dim: int):
        super().__init__(dim)
        self._vectors = np.empty((0, dim))
        self._ids = np.empty(0, dtype=np.int64)

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> np.ndarray:
        vectors = self._check_vectors(vectors)
        if ids is None:
            ids = np.arange(self._size, self._size + vectors.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape[0] != vectors.shape[0]:
                raise AnnIndexError("ids and vectors must have equal length")
        self._vectors = np.vstack([self._vectors, vectors])
        self._ids = np.concatenate([self._ids, ids])
        self._size += vectors.shape[0]
        return ids

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        query = self._check_query(query)
        if self._size == 0:
            return self._pad([], [], k)
        distances = np.linalg.norm(self._vectors - query, axis=1)
        order = np.argsort(distances, kind="stable")[:k]
        return self._pad(
            [int(self._ids[i]) for i in order],
            [float(distances[i]) for i in order],
            k,
        )
