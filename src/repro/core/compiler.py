"""Ahead-of-time plan compilation (Sec. 2's AoT suggestion).

When a model is loaded into the RDBMS, the compiler pre-plans it for a
grid of candidate batch sizes.  At query time, plan selection is a lookup
(the smallest pre-planned batch size that covers the query's batch), so
the optimizer does not run on the latency-critical path.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..dlruntime.layers import Model
from ..errors import PlanError
from ..telemetry import Telemetry
from .ir import InferencePlan
from .optimizer import RuleBasedOptimizer

DEFAULT_BATCH_GRID = (1, 8, 64, 256, 1024, 8192)


@dataclass
class CompiledModel:
    """Pre-planned variants for one model."""

    model: Model
    batch_grid: tuple[int, ...]
    plans: dict[int, InferencePlan]
    selections: int = 0
    plan_hits: dict[int, int] = field(default_factory=dict)
    #: Recovery-ledger generation this model was compiled under; when the
    #: ledger has advanced past it, the session recompiles so runtime
    #: rescues become up-front lowering decisions.
    ledger_generation: int = 0

    def select(self, batch_size: int) -> InferencePlan:
        """Pick the pre-compiled plan covering ``batch_size``.

        Uses the smallest grid point >= the requested batch (memory
        estimates are monotone in batch size, so the covering plan is
        always safe); falls back to the largest grid plan beyond the grid.
        """
        if batch_size < 1:
            raise PlanError("batch_size must be >= 1")
        idx = bisect.bisect_left(self.batch_grid, batch_size)
        grid_batch = self.batch_grid[min(idx, len(self.batch_grid) - 1)]
        self.selections += 1
        self.plan_hits[grid_batch] = self.plan_hits.get(grid_batch, 0) + 1
        return self.plans[grid_batch]


class AotCompiler:
    """Compiles models against a batch-size grid at load time."""

    def __init__(
        self,
        config: SystemConfig,
        batch_grid: tuple[int, ...] = DEFAULT_BATCH_GRID,
        telemetry: "Telemetry | None" = None,
        ledger=None,
    ):
        if not batch_grid or list(batch_grid) != sorted(set(batch_grid)):
            raise PlanError("batch grid must be a sorted set of batch sizes")
        self._optimizer = RuleBasedOptimizer(config, telemetry=telemetry, ledger=ledger)
        self._ledger = ledger
        self._batch_grid = tuple(batch_grid)

    def compile(self, model: Model) -> CompiledModel:
        plans = {
            batch: self._optimizer.plan_model(model, batch)
            for batch in self._batch_grid
        }
        generation = (
            self._ledger.generation(model.name) if self._ledger is not None else 0
        )
        return CompiledModel(
            model=model,
            batch_grid=self._batch_grid,
            plans=plans,
            ledger_generation=generation,
        )
