"""The paper's primary contribution: a unified IR over relational and
linear-algebra operators, a rule-based adaptive optimizer that assigns each
operator a DL-centric, UDF-centric, or relation-centric representation, and
co-optimization rules such as model decomposition & push-down."""

from .ir import (
    InferencePlan,
    LinAlgNode,
    LinAlgOp,
    ModelUdfNode,
    PlanStage,
    Representation,
)
from .lowering import lower_model
from .cost import (
    estimate_stage_latency,
    node_flops,
    node_memory_requirement,
    plan_peak_memory,
)
from .optimizer import DeviceAwareOptimizer, RuleBasedOptimizer
from .compiler import AotCompiler, CompiledModel
from .rules import DecomposePushDownRule, decompose_first_layer
from .training import RelationalGradients, RelationalTrainer

__all__ = [
    "Representation",
    "LinAlgOp",
    "LinAlgNode",
    "ModelUdfNode",
    "PlanStage",
    "InferencePlan",
    "lower_model",
    "node_memory_requirement",
    "node_flops",
    "estimate_stage_latency",
    "plan_peak_memory",
    "RuleBasedOptimizer",
    "DeviceAwareOptimizer",
    "AotCompiler",
    "CompiledModel",
    "DecomposePushDownRule",
    "decompose_first_layer",
    "RelationalTrainer",
    "RelationalGradients",
]
