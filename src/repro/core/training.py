"""Relation-centric training (the Sec. 6.1 extension).

The paper leaves open how to extend the relation-centric representation
from inference to training and sketches one answer: implement the
backward computation of each forward operator as fine-grained relational
UDFs scheduled by the engine.  This module does exactly that for FFNN
stacks (Linear / ReLU / Softmax):

* forward: each Linear runs as the usual matmul → join + SUM_BLOCK
  pipeline, ReLU as an element-wise block map; pre-activations are kept
  as block relations;
* backward: ``dW = Xᵀ × dZ`` and ``dX = dZ × Wᵀ`` reuse the same matmul
  pipeline after a relational block *transpose* (a pure map);
  ``db = Σ_rows dZ`` is a block aggregation; the ReLU mask is a
  coordinate-join of two block relations;
* the fused softmax + cross-entropy at the logits is computed in memory
  (its operands are batch × classes, tiny by construction).

Every tensor that scales with the data therefore flows through the same
relational operators as inference — gradients validated against the
autodiff tape to machine precision in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dlruntime.layers import Linear, Model, ReLU, Softmax
from ..errors import PlanError
from ..tensor.blocked import BlockedMatrix
from ..tensor.linalg import (
    bias_add_pipeline,
    block_scan_from_matrix,
    column_sum_pipeline,
    drain_to_matrix,
    elementwise_binary_pipeline,
    elementwise_pipeline,
    matmul_pipeline,
    transpose_pipeline,
)


@dataclass
class RelationalGradients:
    """Per-layer gradients produced by one relational backward pass."""

    weight_grads: dict[str, np.ndarray]
    bias_grads: dict[str, np.ndarray]
    loss: float


class RelationalTrainer:
    """SGD training where data-sized tensors move as block relations."""

    def __init__(self, model: Model, block_shape: tuple[int, int] = (64, 64)):
        if block_shape[0] != block_shape[1]:
            raise PlanError("relational training requires square blocks")
        for layer in model.layers:
            if not isinstance(layer, (Linear, ReLU, Softmax)):
                raise PlanError(
                    "relational training supports Linear/ReLU/Softmax stacks, "
                    f"got {type(layer).__name__}"
                )
        self.model = model
        self.block_shape = block_shape
        self._linears = [l for l in model.layers if isinstance(l, Linear)]

    # -- forward -----------------------------------------------------------

    def _scan(self, matrix: BlockedMatrix, prefix: str):
        return block_scan_from_matrix(matrix, prefix)

    def _linear_forward(
        self, x: BlockedMatrix, layer: Linear
    ) -> BlockedMatrix:
        weights = BlockedMatrix.from_dense(layer.weight.data, self.block_shape)
        pipeline = bias_add_pipeline(
            matmul_pipeline(self._scan(x, "a"), self._scan(weights, "b")),
            layer.bias.data,
            block_cols=self.block_shape[1],
        )
        return drain_to_matrix(
            pipeline,
            (x.shape[0], layer.out_features),
            self.block_shape,
        )

    # -- one training step -----------------------------------------------

    def compute_gradients(
        self, x: np.ndarray, labels: np.ndarray
    ) -> RelationalGradients:
        """Forward + backward through relational pipelines."""
        batch = x.shape[0]
        activations: list[BlockedMatrix] = [
            BlockedMatrix.from_dense(np.asarray(x, dtype=np.float64), self.block_shape)
        ]
        pre_activations: dict[int, BlockedMatrix] = {}
        current = activations[0]
        for i, layer in enumerate(self.model.layers):
            if isinstance(layer, Linear):
                current = self._linear_forward(current, layer)
                pre_activations[i] = current
            elif isinstance(layer, ReLU):
                current = drain_to_matrix(
                    elementwise_pipeline(
                        self._scan_unprefixed(current),
                        lambda v: np.maximum(v, 0.0),
                        "relu",
                    ),
                    current.shape,
                    self.block_shape,
                )
            # Softmax is folded into the loss below.
            activations.append(current)

        logits = current.to_dense()  # batch × classes: small by construction
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        loss = float(
            -np.log(probs[np.arange(batch), labels] + 1e-12).mean()
        )
        delta = probs.copy()
        delta[np.arange(batch), labels] -= 1.0
        grad = BlockedMatrix.from_dense(delta / batch, self.block_shape)

        weight_grads: dict[str, np.ndarray] = {}
        bias_grads: dict[str, np.ndarray] = {}
        for i in range(len(self.model.layers) - 1, -1, -1):
            layer = self.model.layers[i]
            if isinstance(layer, Softmax):
                continue  # fused into the loss gradient above
            if isinstance(layer, ReLU):
                # dZ = dA ⊙ 1[Z > 0]; Z is the producing Linear's output.
                z = activations[i]
                masked = elementwise_binary_pipeline(
                    self._scan_unprefixed(grad),
                    self._scan_unprefixed(z),
                    lambda g, z_block: g * (z_block > 0),
                    "relu-grad",
                )
                grad = drain_to_matrix(masked, grad.shape, self.block_shape)
                continue
            assert isinstance(layer, Linear)
            x_in = activations[i]
            # dW = Xᵀ × dZ — transpose is a relational map, matmul the
            # usual join + aggregation.
            dw_pipeline = matmul_pipeline(
                _reprefix(transpose_pipeline(self._scan_unprefixed(x_in)), "a"),
                _reprefix(self._scan_unprefixed(grad), "b"),
            )
            dw = drain_to_matrix(
                dw_pipeline,
                (layer.in_features, layer.out_features),
                self.block_shape,
            ).to_dense()
            db = drain_to_matrix(
                column_sum_pipeline(self._scan_unprefixed(grad)),
                (1, layer.out_features),
                (1, self.block_shape[1]),
            ).to_dense()[0]
            weight_grads[layer.name] = dw
            bias_grads[layer.name] = db
            if i > 0:
                # dX = dZ × Wᵀ.
                weights = BlockedMatrix.from_dense(
                    layer.weight.data, self.block_shape
                )
                dx_pipeline = matmul_pipeline(
                    _reprefix(self._scan_unprefixed(grad), "a"),
                    _reprefix(transpose_pipeline(self._scan_unprefixed(weights)), "b"),
                )
                grad = drain_to_matrix(
                    dx_pipeline,
                    (batch, layer.in_features),
                    self.block_shape,
                )
        return RelationalGradients(weight_grads, bias_grads, loss)

    def step(self, x: np.ndarray, labels: np.ndarray, lr: float) -> float:
        """One SGD step; returns the batch loss."""
        grads = self.compute_gradients(x, labels)
        for layer in self._linears:
            layer.weight.data -= lr * grads.weight_grads[layer.name]
            layer.bias.data -= lr * grads.bias_grads[layer.name]
        return grads.loss

    def _scan_unprefixed(self, matrix: BlockedMatrix):
        from ..tensor.block import block_to_row
        from ..relational.operators import GeneratorScan
        from ..tensor.block import block_table_schema

        def factory():
            for block in matrix.iter_blocks():
                yield block_to_row(block)

        return GeneratorScan(block_table_schema(), factory, label="blocks")


def _reprefix(op, prefix: str):
    from ..relational.expressions import ColumnRef
    from ..relational.operators import Project
    from ..tensor.linalg import BLOCK_COLUMNS

    return Project(op, [(ColumnRef(c), f"{prefix}_{c}") for c in BLOCK_COLUMNS])
