"""The rule-based adaptive optimizer (Sec. 7.1).

For each lowered operator the optimizer estimates memory as
``input + parameters + output`` and compares it against the configurable
threshold (2 GB in the paper, megabytes at our scale):

* over the threshold → ``RELATION_CENTRIC`` (join + aggregation over
  tensor blocks, bounded memory, spills through the buffer pool);
* under it → ``UDF_CENTRIC`` (fused into an in-process UDF).

Contiguous same-representation operators are fused into one stage, so a
model whose every operator fits becomes a single whole-model UDF — exactly
the behaviour the paper reports for the small Table 1/2 models.

When a :class:`~repro.resilience.RecoveryLedger` is wired in, the
estimate-based rule gains a feedback loop: an operator the executor has
had to rescue at runtime (OOM or deadline, despite an under-threshold
estimate) is lowered to relation-centric *up-front* on the next plan,
so the failed attempt is never paid for twice.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..dlruntime.layers import Model
from ..errors import PlanError
from ..telemetry import DISABLED, Telemetry, get_logger
from .cost import node_memory_requirement
from .ir import (
    VECTOR_SAFE_OPS,
    InferencePlan,
    LinAlgNode,
    PlanStage,
    Representation,
)
from .lowering import lower_model

log = get_logger("optimizer")


class RuleBasedOptimizer:
    """Assigns representations per operator and fuses stages."""

    def __init__(
        self,
        config: SystemConfig,
        telemetry: Telemetry | None = None,
        ledger=None,
    ):
        self._config = config
        self._telemetry = telemetry if telemetry is not None else DISABLED
        #: Optional :class:`~repro.resilience.RecoveryLedger` — runtime
        #: rescues recorded there lower the rescued operator up-front.
        self._ledger = ledger
        registry = self._telemetry.registry
        self._m_decisions = {
            rep: registry.counter(
                "optimizer_decisions_total",
                "Per-operator representation decisions at plan time",
                representation=rep.value,
            )
            for rep in Representation
        }
        self._m_plans = registry.counter(
            "optimizer_plans_total", "Inference plans produced"
        )

    @property
    def threshold_bytes(self) -> int:
        return self._config.memory_threshold_bytes

    def plan_model(
        self,
        model: Model,
        batch_size: int,
        force: Representation | str | None = None,
    ) -> InferencePlan:
        """Produce an :class:`InferencePlan` for one model invocation.

        ``force`` pins every operator to one representation — used to run
        the paper's fixed-architecture baselines through the same executor.
        """
        if batch_size < 1:
            raise PlanError("batch_size must be >= 1")
        if isinstance(force, str):
            force = Representation.parse(force)
        with self._telemetry.tracer.span(
            f"optimize:{model.name}", category="optimizer", batch_size=batch_size
        ):
            nodes = lower_model(model)
            notes: list[str] = []
            self._assign_representations(nodes, model, batch_size, force, notes)
            # Decisions are counted once per operator, after every
            # assignment pass has run — a node reassigned by a subclass
            # (e.g. UDF -> DL offload) must not be billed to both
            # representations.
            for node in nodes:
                self._m_decisions[node.representation].inc()
            self._m_plans.inc()
            return InferencePlan(
                model=model,
                batch_size=batch_size,
                stages=fuse_stages(nodes),
                threshold_bytes=self.threshold_bytes,
                notes=notes,
                forced=force,
            )

    def _assign_representations(
        self,
        nodes: list[LinAlgNode],
        model: Model,
        batch_size: int,
        force: Representation | None,
        notes: list[str],
    ) -> None:
        """Set each node's representation (and its memory estimate)."""
        for i, node in enumerate(nodes):
            node.estimated_bytes = node_memory_requirement(node, batch_size)
            if force is not None:
                node.representation = force
                continue
            if (
                self._ledger is not None
                and node.op in VECTOR_SAFE_OPS
                and self._ledger.should_lower(model.name, i)
            ):
                node.representation = Representation.RELATION_CENTRIC
                notes.append(
                    f"{node.op.value} rescued "
                    f"{self._ledger.rescue_count(model.name, i)}x at runtime "
                    "-> relation-centric (recovery ledger)"
                )
                continue
            if node.estimated_bytes > self.threshold_bytes:
                node.representation = Representation.RELATION_CENTRIC
                notes.append(
                    f"{node.op.value} needs {node.estimated_bytes:,} bytes "
                    f"(> threshold {self.threshold_bytes:,}) -> relation-centric"
                )
            else:
                node.representation = Representation.UDF_CENTRIC
            log.debug(
                "model=%s batch=%d op=%s memory=%d threshold=%d -> %s",
                model.name,
                batch_size,
                node.op.value,
                node.estimated_bytes,
                self.threshold_bytes,
                node.representation.value,
            )


class DeviceAwareOptimizer(RuleBasedOptimizer):
    """The memory rule plus Sec. 3's device-allocation decision.

    After the threshold rule assigns UDF-centric vs relation-centric,
    every UDF-centric operator is priced on each available device with
    the producer-transfer-consumer model; operators whose best device is
    an accelerator are re-assigned ``DL_CENTRIC`` (offloaded), since GPU
    execution happens in the external runtime.  Relation-centric
    assignments are never overridden — they exist precisely because the
    operator does not fit any single device.
    """

    def __init__(
        self,
        config: SystemConfig,
        devices: list | None = None,
        telemetry: Telemetry | None = None,
    ):
        super().__init__(config, telemetry=telemetry)
        from ..dlruntime.device import cpu_device
        from ..resources.allocator import DeviceAllocator

        self._devices = devices if devices else [cpu_device()]
        self._allocator = DeviceAllocator(self._devices)

    def _assign_representations(
        self,
        nodes: list[LinAlgNode],
        model: Model,
        batch_size: int,
        force: Representation | None,
        notes: list[str],
    ) -> None:
        super()._assign_representations(nodes, model, batch_size, force, notes)
        if force is not None:
            return
        for node in nodes:
            if node.representation is not Representation.UDF_CENTRIC:
                continue
            try:
                decision = self._allocator.place(node, batch_size)
            except Exception:  # no device fits: keep the in-DB assignment
                continue
            if decision.device.kind == "gpu":
                node.representation = Representation.DL_CENTRIC
                notes.append(
                    f"{node.op.value} offloaded to {decision.device.name} "
                    f"(modeled {decision.estimates[decision.device.name]:.2e}s "
                    "beats CPU)"
                )
                log.debug(
                    "model=%s op=%s offloaded to %s -> dl-centric",
                    model.name,
                    node.op.value,
                    decision.device.name,
                )


def fuse_stages(nodes: list[LinAlgNode]) -> list[PlanStage]:
    """Group consecutive nodes with equal representations into stages."""
    if not nodes:
        raise PlanError("cannot build a plan from zero operators")
    stages: list[PlanStage] = []
    current: list[LinAlgNode] = [nodes[0]]
    for node in nodes[1:]:
        if node.representation is current[-1].representation:
            current.append(node)
        else:
            stages.append(PlanStage(current[-1].representation, current))
            current = [node]
    stages.append(PlanStage(current[-1].representation, current))
    return stages
