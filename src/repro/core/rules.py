"""Co-optimization transformation rules (Sec. 2 / Sec. 7.2.1).

The flagship rule is **model decomposition & push-down**: for a pipeline
``model(D1 ⋈ D2)`` whose first layer is a dimension-reducing matmul with
weight ``W``, split ``W`` row-wise into ``W1``/``W2`` (one part per join
input) and push each partial matmul below the join::

    W × (D1 ⋈ D2)  =  (W1 × D1) ⊕⋈ (W2 × D2)

The join then carries 256-dimensional partial activations instead of 968
raw features, shrinking the intermediate result — the paper measures a
5.7× speedup on the Bosch pipeline.

Both the baseline and the rewritten pipeline are built from the same
physical operators, so benchmarks compare executions, not simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dlruntime.layers import Linear, Model
from ..errors import PlanError
from ..relational.expressions import ColumnRef
from ..relational.operators import MapRows, Operator, SimilarityJoin
from ..relational.schema import ColumnType, Schema


@dataclass
class DecomposedWeights:
    """First-layer weights split at the join boundary."""

    w1: np.ndarray  # (left features, hidden)
    w2: np.ndarray  # (right features, hidden)
    bias: np.ndarray


def decompose_first_layer(model: Model, split: int) -> DecomposedWeights:
    """Split the first (Linear) layer's weights row-wise at ``split``."""
    first = model.layers[0]
    if not isinstance(first, Linear):
        raise PlanError(
            "decomposition push-down requires the model's first layer to be "
            f"Linear, got {type(first).__name__}"
        )
    if not 0 < split < first.in_features:
        raise PlanError(
            f"split {split} out of range for {first.in_features} input features"
        )
    weight = first.weight.data
    return DecomposedWeights(
        w1=weight[:split, :], w2=weight[split:, :], bias=first.bias.data
    )


@dataclass
class DecomposedPipelines:
    """The two alternatives the benchmark compares."""

    baseline: Operator
    pushed_down: Operator
    join_key_correlation: float | None = None


class DecomposePushDownRule:
    """Builds baseline and pushed-down pipelines for a join-then-model query.

    ``left`` / ``right`` produce rows containing the two vertical feature
    partitions; ``left_feature_cols`` / ``right_feature_cols`` name the
    feature columns (in model input order: left features first), and
    ``left_key`` / ``right_key`` name the similarity-join columns.
    """

    def __init__(
        self,
        model: Model,
        left_feature_cols: list[str],
        right_feature_cols: list[str],
        left_key: str,
        right_key: str,
        epsilon: float,
        batch_size: int = 1024,
    ):
        first = model.layers[0]
        if not isinstance(first, Linear):
            raise PlanError("rule requires a Linear first layer")
        total = len(left_feature_cols) + len(right_feature_cols)
        if total != first.in_features:
            raise PlanError(
                f"model expects {first.in_features} features but the join "
                f"provides {total}"
            )
        self._model = model
        self._left_cols = list(left_feature_cols)
        self._right_cols = list(right_feature_cols)
        self._left_key = left_key
        self._right_key = right_key
        self._epsilon = epsilon
        self._batch_size = batch_size
        self._weights = decompose_first_layer(model, len(left_feature_cols))

    # -- baseline: join first, model on the joined wide rows --------------

    def build_baseline(self, left: Operator, right: Operator) -> Operator:
        join = SimilarityJoin(
            left,
            right,
            ColumnRef(self._left_key),
            ColumnRef(self._right_key),
            self._epsilon,
        )
        schema = join.schema
        feature_idx = [schema.index_of(c) for c in self._left_cols] + [
            schema.index_of(c) for c in self._right_cols
        ]
        model = self._model

        def model_udf(batch: list[tuple]):
            features = np.array(
                [[row[i] for i in feature_idx] for row in batch], dtype=np.float64
            )
            predictions = model.predict(features)
            for pred in predictions:
                yield (int(pred),)

        return MapRows(
            join,
            model_udf,
            Schema.of(("prediction", ColumnType.INT)),
            batch_size=self._batch_size,
            label=f"model:{model.name}",
        )

    # -- rewritten: partial matmuls pushed below the join ------------------

    def build_pushed_down(self, left: Operator, right: Operator) -> Operator:
        left_partial = self._partial_stage(
            left, self._left_cols, self._left_key, self._weights.w1, "left"
        )
        right_partial = self._partial_stage(
            right, self._right_cols, self._right_key, self._weights.w2, "right"
        )
        join = SimilarityJoin(
            left_partial,
            right_partial,
            ColumnRef("left_key"),
            ColumnRef("right_key"),
            self._epsilon,
        )
        schema = join.schema
        part1_idx = schema.index_of("left_part")
        part2_idx = schema.index_of("right_part")
        bias = self._weights.bias
        rest = self._model.layers[1:]

        def combine_udf(batch: list[tuple]):
            part1 = np.vstack(
                [np.frombuffer(row[part1_idx], dtype=np.float64) for row in batch]
            )
            part2 = np.vstack(
                [np.frombuffer(row[part2_idx], dtype=np.float64) for row in batch]
            )
            hidden = part1 + part2 + bias
            out = hidden
            for layer in rest:
                out = layer.forward(out)
            predictions = np.argmax(out, axis=-1)
            for pred in predictions:
                yield (int(pred),)

        return MapRows(
            join,
            combine_udf,
            Schema.of(("prediction", ColumnType.INT)),
            batch_size=self._batch_size,
            label="combine+rest",
        )

    def _partial_stage(
        self,
        source: Operator,
        feature_cols: list[str],
        key_col: str,
        weight: np.ndarray,
        side: str,
    ) -> Operator:
        schema = source.schema
        feature_idx = [schema.index_of(c) for c in feature_cols]
        key_idx = schema.index_of(key_col)

        def partial_udf(batch: list[tuple]):
            features = np.array(
                [[row[i] for i in feature_idx] for row in batch], dtype=np.float64
            )
            partial = features @ weight
            for row, vec in zip(batch, partial):
                yield (float(row[key_idx]), vec.tobytes())

        out_schema = Schema.of(
            (f"{side}_key", ColumnType.DOUBLE), (f"{side}_part", ColumnType.BLOB)
        )
        return MapRows(
            source,
            partial_udf,
            out_schema,
            batch_size=self._batch_size,
            label=f"pushdown:{side}",
        )

    def build(self, left: Operator, right: Operator) -> DecomposedPipelines:
        """Both pipelines over fresh scans of the same inputs."""
        return DecomposedPipelines(
            baseline=self.build_baseline(left, right),
            pushed_down=self.build_pushed_down(left, right),
        )
