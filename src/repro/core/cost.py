"""Cost estimation for the optimizer, the AoT compiler, and the device
allocator.

The memory model is exactly the paper's (Sec. 7.1): an operator's
requirement is the sum of its input, parameter, and output sizes — e.g.
for a matmul with shapes ``m×k`` and ``k×n`` the estimate is
``m·k + k·n + m·n`` elements.  Latency estimates are analytic: flops over
device throughput, plus representation-specific overheads (connector wire
time for DL-centric, block chunking overhead for relation-centric).
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..dlruntime.device import Device
from .ir import InferencePlan, LinAlgNode, PlanStage, Representation

FLOAT_BYTES = 8


def node_memory_requirement(node: LinAlgNode, batch_size: int) -> int:
    """The paper's estimate: (input + parameters + output) bytes."""
    input_elems = batch_size * int(np.prod(node.input_shape))
    output_elems = batch_size * int(np.prod(node.output_shape))
    return (input_elems + output_elems) * FLOAT_BYTES + node.param_bytes


def node_flops(node: LinAlgNode, batch_size: int) -> int:
    """Floating point operations for one batch through one node."""
    return batch_size * node.layer.flops(node.input_shape)


def stage_io_bytes(stage: PlanStage, batch_size: int) -> tuple[int, int]:
    """(input bytes, output bytes) crossing a stage boundary."""
    input_bytes = batch_size * int(np.prod(stage.input_shape)) * FLOAT_BYTES
    output_bytes = batch_size * int(np.prod(stage.output_shape)) * FLOAT_BYTES
    return input_bytes, output_bytes


# Calibrated per-block relational overhead: each block that flows through
# the join + aggregation pipeline pays Python-level operator costs.
RELATIONAL_PER_BLOCK_SECONDS = 2.0e-4
UDF_DISPATCH_SECONDS = 5.0e-5


def estimate_stage_latency(
    stage: PlanStage,
    batch_size: int,
    config: SystemConfig,
    device: Device,
) -> float:
    """Analytic latency of one stage under its assigned representation."""
    flops = sum(node_flops(node, batch_size) for node in stage.nodes)
    compute = device.compute_time(flops)
    input_bytes, output_bytes = stage_io_bytes(stage, batch_size)
    if stage.representation is Representation.DL_CENTRIC:
        wire = config.connector.wire_time(input_bytes + output_bytes, batch_size)
        return compute / config.framework_compute_efficiency + wire
    if stage.representation is Representation.RELATION_CENTRIC:
        block_bytes = (
            config.tensor_block_rows * config.tensor_block_cols * FLOAT_BYTES
        )
        touched = sum(
            node_memory_requirement(node, batch_size) for node in stage.nodes
        )
        num_blocks = max(1, touched // block_bytes)
        return compute + num_blocks * RELATIONAL_PER_BLOCK_SECONDS
    # UDF-centric: in-process, one dispatch per stage.
    return compute + UDF_DISPATCH_SECONDS


def plan_peak_memory(plan: InferencePlan) -> int:
    """Worst single-operator memory requirement across the plan.

    For UDF- and DL-centric stages this is what the engine must hold at
    once; relation-centric stages are excluded because they run at block
    granularity.
    """
    peak = 0
    for stage in plan.stages:
        if stage.representation is Representation.RELATION_CENTRIC:
            continue
        for node in stage.nodes:
            peak = max(peak, node_memory_requirement(node, plan.batch_size))
    return peak


def estimate_plan_latency(
    plan: InferencePlan, config: SystemConfig, device: Device
) -> float:
    """Analytic end-to-end latency of a plan on one device."""
    return sum(
        estimate_stage_latency(stage, plan.batch_size, config, device)
        for stage in plan.stages
    )
