"""Lowering a model UDF into the linear-algebra IR."""

from __future__ import annotations

from ..dlruntime.layers import (
    Conv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    Model,
    ReLU,
    Sigmoid,
    Softmax,
)
from ..errors import PlanError
from .ir import LinAlgNode, LinAlgOp

_LAYER_OPS: list[tuple[type[Layer], LinAlgOp]] = [
    (Linear, LinAlgOp.MATMUL),
    (Conv2d, LinAlgOp.CONV2D),
    (ReLU, LinAlgOp.RELU),
    (Sigmoid, LinAlgOp.SIGMOID),
    (Softmax, LinAlgOp.SOFTMAX),
    (MaxPool2d, LinAlgOp.MAXPOOL),
    (Flatten, LinAlgOp.FLATTEN),
]


def _op_for(layer: Layer) -> LinAlgOp:
    for layer_type, op in _LAYER_OPS:
        if isinstance(layer, layer_type):
            return op
    raise PlanError(f"no lowering for layer type {type(layer).__name__}")


def lower_model(model: Model) -> list[LinAlgNode]:
    """Expand a model into one :class:`LinAlgNode` per layer, in order."""
    shapes = model.layer_shapes
    nodes = []
    for layer, in_shape, out_shape in zip(model.layers, shapes, shapes[1:]):
        nodes.append(
            LinAlgNode(
                op=_op_for(layer),
                layer=layer,
                input_shape=in_shape,
                output_shape=out_shape,
            )
        )
    return nodes
