"""The unified intermediate representation (Sec. 2).

An inference query's model part enters the IR as a :class:`ModelUdfNode`
("run this model as one UDF").  Lowering expands it into a chain of
:class:`LinAlgNode` operators (matmul, bias add, relu, conv2d, …), each of
which can independently be assigned one of the three representations:

* ``DL_CENTRIC`` — offload to the external framework,
* ``UDF_CENTRIC`` — run inside the RDBMS as (part of) a fused UDF,
* ``RELATION_CENTRIC`` — rewrite to join + aggregation over tensor blocks.

The optimizer groups contiguous same-representation nodes into
:class:`PlanStage`\\ s; an :class:`InferencePlan` is the ordered stage list
plus the batch size it was planned for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..dlruntime.layers import Layer, Model


class Representation(enum.Enum):
    """Which architecture executes an operator."""

    UNASSIGNED = "unassigned"
    DL_CENTRIC = "dl-centric"
    UDF_CENTRIC = "udf-centric"
    RELATION_CENTRIC = "relation-centric"

    @classmethod
    def parse(cls, name: str) -> "Representation":
        for member in cls:
            if member.value == name.lower():
                return member
        raise ValueError(
            f"unknown representation {name!r}; expected one of "
            f"{[m.value for m in cls if m is not cls.UNASSIGNED]}"
        )


class LinAlgOp(enum.Enum):
    """Linear-algebra operator kinds a model lowers into."""

    MATMUL = "matmul"  # Linear layer: x @ W + b
    CONV2D = "conv2d"  # convolution (im2col + matmul in relational form)
    RELU = "relu"
    SIGMOID = "sigmoid"
    SOFTMAX = "softmax"
    MAXPOOL = "maxpool"
    FLATTEN = "flatten"


#: Operators the relation-centric *vector* pipeline can execute.  A
#: whole-tensor stage built only from these can be lowered (at plan time
#: by the optimizer, or at runtime by the executor's recovery path) to a
#: stripe-at-a-time relational pipeline with bounded peak memory.
VECTOR_SAFE_OPS = frozenset(
    {LinAlgOp.MATMUL, LinAlgOp.RELU, LinAlgOp.SIGMOID, LinAlgOp.SOFTMAX}
)


@dataclass
class LinAlgNode:
    """One lowered linear-algebra operator.

    ``input_shape`` / ``output_shape`` are per-sample shapes; ``layer`` is
    the owning layer (which holds the parameters), or None for shape-only
    ops that were synthesised during rewrites.
    """

    op: LinAlgOp
    layer: Layer
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]
    representation: Representation = Representation.UNASSIGNED
    #: The optimizer's memory estimate (input + params + output bytes) for
    #: the batch size the plan was built for; 0 until the node is planned.
    #: Carried in the IR so runtime peaks can be audited against the
    #: number that actually routed the operator.
    estimated_bytes: int = 0

    @property
    def param_bytes(self) -> int:
        return self.layer.param_bytes

    def describe(self) -> str:
        text = (
            f"{self.op.value}[{self.input_shape} -> {self.output_shape}, "
            f"params={self.layer.param_count:,}"
        )
        if self.estimated_bytes:
            text += f", est={self.estimated_bytes:,}B"
        return f"{text}] :: {self.representation.value}"


@dataclass
class ModelUdfNode:
    """A whole-model inference operator, before lowering."""

    model: Model
    representation: Representation = Representation.UNASSIGNED

    def describe(self) -> str:
        return f"model_udf[{self.model.name}] :: {self.representation.value}"


@dataclass
class PlanStage:
    """A maximal run of consecutive operators sharing a representation."""

    representation: Representation
    nodes: list[LinAlgNode]

    @property
    def layers(self) -> list[Layer]:
        return [node.layer for node in self.nodes]

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.nodes[0].input_shape

    @property
    def output_shape(self) -> tuple[int, ...]:
        return self.nodes[-1].output_shape

    @property
    def estimated_bytes(self) -> int:
        """The stage's planned memory requirement: the worst node estimate.

        This is the number the threshold rule compared against — stages
        fuse same-representation nodes, so the binding constraint is the
        single largest operator.
        """
        return max((node.estimated_bytes for node in self.nodes), default=0)

    @property
    def ops(self) -> str:
        return ", ".join(node.op.value for node in self.nodes)

    def describe(self) -> str:
        return f"stage[{self.representation.value}]({self.ops})"


@dataclass
class InferencePlan:
    """The optimizer's output for one (model, batch size) pair."""

    model: Model
    batch_size: int
    stages: list[PlanStage]
    threshold_bytes: int
    notes: list[str] = field(default_factory=list)
    #: The representation every operator was pinned to (``force=`` at plan
    #: time), or None for adaptive plans.  Forced plans reproduce the
    #: paper's fixed-architecture baselines, so the executor must *not*
    #: rescue their failures — a forced DL-centric plan that OOMs is the
    #: measurement (Table 3), not an incident.
    forced: Representation | None = None

    @property
    def representations(self) -> list[Representation]:
        return [stage.representation for stage in self.stages]

    @property
    def is_single_udf(self) -> bool:
        return (
            len(self.stages) == 1
            and self.stages[0].representation is Representation.UDF_CENTRIC
        )

    def explain(self) -> str:
        lines = [
            f"InferencePlan(model={self.model.name}, batch={self.batch_size}, "
            f"threshold={self.threshold_bytes} bytes)"
        ]
        for stage in self.stages:
            lines.append(f"  {stage.describe()}")
            for node in stage.nodes:
                lines.append(f"    {node.describe()}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
