"""Inference-result caching backed by RDBMS-resident ANN indexing
(Sec. 5.1 / Sec. 7.2.2).

The cache keeps a table of ``(feature vector, prediction)`` pairs and a
nearest-neighbour index over the features.  Serving a query batch:

1. probe the index per query; any neighbour within ``distance_threshold``
   is a *hit* — return its cached prediction without touching the model;
2. run the model once over the concatenated misses;
3. insert the fresh (features, prediction) pairs into the table and index.

The threshold trades accuracy for latency — the trade the paper measures
(10.3× speedup at 98.75% → 93.65% accuracy for the CNN).  The optional
``catalog`` persists cache entries to a heap table, making the cache an
ordinary relation the RDBMS can manage, index, and evict.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..dlruntime.layers import Model
from ..errors import AnnIndexError, InjectedFaultError
from ..faults import NULL_INJECTOR, FaultInjector
from ..indexes.base import VectorIndex
from ..relational.schema import ColumnType, Schema
from ..storage.catalog import Catalog, TableInfo
from ..telemetry.registry import NULL_REGISTRY, MetricsRegistry


def _cache_metrics(metrics: MetricsRegistry | None, model: Model, kind: str):
    """Counter/histogram handles for one cache instance."""
    registry = metrics if metrics is not None else NULL_REGISTRY
    labels = {"model": model.name, "kind": kind}
    return (
        registry.counter(
            "result_cache_hits_total", "Queries answered from the cache", **labels
        ),
        registry.counter(
            "result_cache_misses_total", "Queries that ran the model", **labels
        ),
        registry.counter(
            "result_cache_inserts_total", "Entries inserted into the cache", **labels
        ),
        registry.histogram(
            "result_cache_lookup_seconds", "Per-batch cache probe time", **labels
        ),
        registry.histogram(
            "result_cache_model_seconds", "Per-batch model time on misses", **labels
        ),
    )


@dataclass
class CacheServeReport:
    """Accounting for one :meth:`InferenceResultCache.serve` call."""

    hits: int
    misses: int
    model_seconds: float
    lookup_seconds: float

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class CacheStats:
    """Lifetime counters."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    model_seconds: float = 0.0
    lookup_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class InferenceResultCache:
    """An ANN-indexed cache in front of a model.

    Thread-safe: lookup, model execution on misses, and insertion run
    under one reentrant lock, so the serving front-end's worker pool can
    share a single cache without racing the index against the
    ``_predictions`` map (an unlocked interleaving can index a vector
    whose prediction is not yet recorded, or double-run the model).
    """

    CACHE_SCHEMA = Schema.of(
        ("entry_id", ColumnType.INT),
        ("features", ColumnType.BLOB),
        ("prediction", ColumnType.INT),
    )

    def __init__(
        self,
        model: Model,
        index: VectorIndex,
        distance_threshold: float,
        catalog: Catalog | None = None,
        table_name: str | None = None,
        insert_on_miss: bool = True,
        metrics: MetricsRegistry | None = None,
        injector: FaultInjector | None = None,
        recorder=None,
    ):
        self.model = model
        self.index = index
        self.distance_threshold = float(distance_threshold)
        self.insert_on_miss = insert_on_miss
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._recorder = recorder
        self.stats = CacheStats()
        (
            self._m_hits,
            self._m_misses,
            self._m_inserts,
            self._m_lookup_seconds,
            self._m_model_seconds,
        ) = _cache_metrics(metrics, model, "ann")
        self._predictions: dict[int, int] = {}
        self._next_id = 0
        self._lock = threading.RLock()
        self._table: TableInfo | None = None
        if catalog is not None:
            name = table_name or f"__cache_{model.name}"
            self._table = catalog.create_table(name, self.CACHE_SCHEMA)

    @property
    def table(self) -> TableInfo | None:
        return self._table

    def __len__(self) -> int:
        return len(self._predictions)

    # -- population --------------------------------------------------------

    def warm(self, features: np.ndarray) -> None:
        """Precompute and cache predictions for a set of inputs."""
        flat = _flatten(features)
        predictions = self.model.predict(features)
        with self._lock:
            self._insert(flat, predictions)

    def _insert(self, flat: np.ndarray, predictions: np.ndarray) -> None:
        # Callers hold self._lock.
        ids = np.arange(self._next_id, self._next_id + flat.shape[0], dtype=np.int64)
        self._next_id += flat.shape[0]
        self.index.add(flat, ids)
        for vid, pred, vector in zip(ids, predictions, flat):
            self._predictions[int(vid)] = int(pred)
            if self._table is not None:
                self._table.heap.insert(
                    (int(vid), vector.tobytes(), int(pred))
                )
                self._table.row_count += 1
        self.stats.inserts += flat.shape[0]
        self._m_inserts.inc(flat.shape[0])

    # -- serving ---------------------------------------------------------

    def serve(self, features: np.ndarray) -> tuple[np.ndarray, CacheServeReport]:
        """Predictions for a batch, via cache where possible."""
        flat = _flatten(features)
        n = flat.shape[0]
        predictions = np.empty(n, dtype=np.int64)
        miss_rows: list[int] = []

        # HNSW supports a threshold-aware fast path: any neighbour within
        # the serving threshold answers the lookup, so the beam can stop
        # at the first in-threshold point.
        from ..indexes.hnsw import HnswIndex

        threshold_aware = isinstance(self.index, HnswIndex)
        degraded = False
        with self._lock:
            lookup_start = time.perf_counter()
            try:
                self._injector.fire(
                    "result_cache.lookup", model=self.model.name, rows=n
                )
                for i in range(n):
                    if threshold_aware:
                        result = self.index.search(
                            flat[i], k=1, early_stop_distance=self.distance_threshold
                        )
                    else:
                        result = self.index.search(flat[i], k=1)
                    if (
                        result.ids[0] >= 0
                        and result.nearest_distance <= self.distance_threshold
                    ):
                        predictions[i] = self._predictions[result.nearest_id]
                    else:
                        miss_rows.append(i)
            except (InjectedFaultError, AnnIndexError):
                # The cache is an accelerator, never a correctness
                # dependency: a failed lookup degrades the whole batch to
                # a recompute and skips insertion (the index may be in an
                # unknown state mid-probe).
                degraded = True
                miss_rows = list(range(n))
            lookup_seconds = time.perf_counter() - lookup_start

            model_seconds = 0.0
            if miss_rows:
                miss_idx = np.array(miss_rows)
                model_start = time.perf_counter()
                fresh = self.model.predict(features[miss_idx])
                model_seconds = time.perf_counter() - model_start
                predictions[miss_idx] = fresh
                if self.insert_on_miss and not degraded:
                    self._insert(flat[miss_idx], fresh)

            hits = n - len(miss_rows)
            self.stats.hits += hits
            self.stats.misses += len(miss_rows)
            self.stats.model_seconds += model_seconds
            self.stats.lookup_seconds += lookup_seconds
        if degraded:
            self._injector.record_recovery("result_cache.lookup")
        self._m_hits.inc(hits)
        self._m_misses.inc(len(miss_rows))
        self._m_lookup_seconds.observe(lookup_seconds)
        if miss_rows:
            self._m_model_seconds.observe(model_seconds)
        return predictions, CacheServeReport(
            hits=hits,
            misses=len(miss_rows),
            model_seconds=model_seconds,
            lookup_seconds=lookup_seconds,
        )

    def serve_exact(self, features: np.ndarray) -> tuple[np.ndarray, float]:
        """Bypass the cache (the no-cache baseline); returns (preds, secs)."""
        start = time.perf_counter()
        predictions = self.model.predict(features)
        return predictions, time.perf_counter() - start


class ExactResultCache:
    """Exact inference-result caching via hash indexing (Sec. 5.1).

    The paper's alternative to approximate ANN caching for
    accuracy-critical applications: keys are the exact feature bytes, so
    a hit is byte-identical and the cached answer can never disagree with
    the model.  The trade: only exact repeats hit.
    """

    def __init__(
        self,
        model: Model,
        max_entries: int | None = None,
        metrics: MetricsRegistry | None = None,
        injector: FaultInjector | None = None,
        recorder=None,
    ):
        self.model = model
        self.max_entries = max_entries
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._recorder = recorder
        self._entries: dict[bytes, int] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()
        (
            self._m_hits,
            self._m_misses,
            self._m_inserts,
            self._m_lookup_seconds,
            self._m_model_seconds,
        ) = _cache_metrics(metrics, model, "exact")

    def __len__(self) -> int:
        return len(self._entries)

    def serve(self, features: np.ndarray) -> tuple[np.ndarray, CacheServeReport]:
        flat = _flatten(features)
        n = flat.shape[0]
        predictions = np.empty(n, dtype=np.int64)
        miss_rows: list[int] = []
        keys: list[bytes] = []
        degraded = False
        with self._lock:
            lookup_start = time.perf_counter()
            try:
                self._injector.fire(
                    "result_cache.lookup", model=self.model.name, rows=n
                )
                for i in range(n):
                    key = flat[i].tobytes()
                    keys.append(key)
                    cached = self._entries.get(key)
                    if cached is not None:
                        predictions[i] = cached
                    else:
                        miss_rows.append(i)
            except InjectedFaultError:
                # Degrade to a full recompute rather than failing the
                # batch; skip insertion for this degraded pass.
                degraded = True
                miss_rows = list(range(n))
            lookup_seconds = time.perf_counter() - lookup_start
            model_seconds = 0.0
            if miss_rows:
                miss_idx = np.array(miss_rows)
                model_start = time.perf_counter()
                fresh = self.model.predict(features[miss_idx])
                model_seconds = time.perf_counter() - model_start
                predictions[miss_idx] = fresh
                if not degraded:
                    for i, pred in zip(miss_rows, fresh):
                        if (
                            self.max_entries is None
                            or len(self._entries) < self.max_entries
                        ):
                            self._entries[keys[i]] = int(pred)
                    self.stats.inserts += len(miss_rows)
                    self._m_inserts.inc(len(miss_rows))
            hits = n - len(miss_rows)
            self.stats.hits += hits
            self.stats.misses += len(miss_rows)
            self.stats.model_seconds += model_seconds
            self.stats.lookup_seconds += lookup_seconds
        if degraded:
            self._injector.record_recovery("result_cache.lookup")
        self._m_hits.inc(hits)
        self._m_misses.inc(len(miss_rows))
        self._m_lookup_seconds.observe(lookup_seconds)
        if miss_rows:
            self._m_model_seconds.observe(model_seconds)
        if self._recorder is not None:
            self._recorder.emit(
                "cache.hit" if hits >= len(miss_rows) else "cache.miss",
                model=self.model.name,
                kind="exact",
                hits=hits,
                misses=len(miss_rows),
                degraded=degraded,
            )
        return predictions, CacheServeReport(
            hits=hits,
            misses=len(miss_rows),
            model_seconds=model_seconds,
            lookup_seconds=lookup_seconds,
        )


def _flatten(features: np.ndarray) -> np.ndarray:
    features = np.asarray(features, dtype=np.float64)
    return features.reshape(features.shape[0], -1)
