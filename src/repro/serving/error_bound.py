"""Probabilistic error bounds for approximate result caching (Sec. 5.1).

The paper proposes deciding *whether* to cache by estimating, via Monte
Carlo sampling, how often a cached (approximate) prediction disagrees
with the exact model, and bounding that disagreement probability.  We
report both a Hoeffding bound and the exact Clopper–Pearson binomial
upper bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .result_cache import InferenceResultCache


@dataclass
class ErrorBoundEstimate:
    """Outcome of a Monte-Carlo disagreement estimate."""

    samples: int
    disagreements: int
    confidence: float

    @property
    def observed_disagreement(self) -> float:
        return self.disagreements / self.samples if self.samples else 0.0

    @property
    def hoeffding_upper(self) -> float:
        """P(disagree) <= observed + sqrt(ln(1/δ) / 2n), w.p. confidence."""
        if not self.samples:
            return 1.0
        delta = 1.0 - self.confidence
        slack = math.sqrt(math.log(1.0 / delta) / (2.0 * self.samples))
        return min(1.0, self.observed_disagreement + slack)

    @property
    def clopper_pearson_upper(self) -> float:
        """Exact binomial upper confidence bound."""
        if not self.samples:
            return 1.0
        if self.disagreements >= self.samples:
            return 1.0
        try:
            from scipy.stats import beta
        except ImportError:  # pragma: no cover - scipy is installed in CI
            return self.hoeffding_upper
        alpha = 1.0 - self.confidence
        return float(
            beta.ppf(1.0 - alpha, self.disagreements + 1, self.samples - self.disagreements)
        )


def monte_carlo_error_bound(
    cache: InferenceResultCache,
    sample_features: np.ndarray,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
    max_samples: int | None = None,
) -> ErrorBoundEstimate:
    """Estimate how often cache lookups disagree with exact inference.

    Probes the cache *read-only* (misses are not inserted, so the estimate
    does not mutate the cache) and compares each answered query against
    the exact model output.  Queries that miss the cache are exact by
    construction and therefore never disagree.
    """
    features = np.asarray(sample_features, dtype=np.float64)
    if max_samples is not None and features.shape[0] > max_samples:
        rng = rng if rng is not None else np.random.default_rng(0)
        pick = rng.choice(features.shape[0], max_samples, replace=False)
        features = features[pick]
    original_insert = cache.insert_on_miss
    cache.insert_on_miss = False
    try:
        approx, __ = cache.serve(features)
    finally:
        cache.insert_on_miss = original_insert
    exact = cache.model.predict(features)
    disagreements = int(np.sum(approx != exact))
    return ErrorBoundEstimate(
        samples=features.shape[0],
        disagreements=disagreements,
        confidence=confidence,
    )
