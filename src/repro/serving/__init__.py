"""Model-serving techniques adapted for the RDBMS (Sec. 5)."""

from .result_cache import CacheServeReport, ExactResultCache, InferenceResultCache
from .error_bound import ErrorBoundEstimate, monte_carlo_error_bound
from .policy import AdaptiveCachePolicy, CacheDecision, ServiceTimeEstimator
from .pipeline import (
    PipelineExecutor,
    PipelineStage,
    partition_layers,
    simulate_pipeline_makespan,
    simulate_sequential_time,
)

__all__ = [
    "InferenceResultCache",
    "ExactResultCache",
    "CacheServeReport",
    "monte_carlo_error_bound",
    "ErrorBoundEstimate",
    "AdaptiveCachePolicy",
    "CacheDecision",
    "ServiceTimeEstimator",
    "PipelineStage",
    "partition_layers",
    "PipelineExecutor",
    "simulate_pipeline_makespan",
    "simulate_sequential_time",
]
