"""Pipelined DL execution across devices (Sec. 5.2).

When a model exceeds one device's memory, DL serving systems partition
its layers into stages, place each stage on a device, and stream
micro-batches through the stage chain.  We provide:

* :func:`partition_layers` — greedy partitioning under per-device memory
  limits (weights + working activations must fit the stage's device);
* :class:`PipelineExecutor` — a real threaded streaming executor (each
  stage runs in its own worker thread connected by queues), which both
  verifies correctness and exhibits genuine overlap;
* :func:`simulate_pipeline_makespan` / :func:`simulate_sequential_time` —
  the deterministic analytic schedule used by the ablation benchmark,
  based on the device cost model (compute + inter-stage transfer).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..core.cost import FLOAT_BYTES
from ..dlruntime.device import Device
from ..dlruntime.layers import Layer, Model
from ..errors import PlanError


@dataclass
class PipelineStage:
    """A contiguous slice of layers placed on one device."""

    layers: list[Layer]
    device: Device
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def flops(self, batch: int) -> int:
        total = 0
        shape = self.input_shape
        for layer in self.layers:
            total += layer.flops(shape)
            shape = layer.output_shape(shape)
        return total * batch

    def memory_bytes(self, batch: int) -> int:
        weights = sum(layer.param_bytes for layer in self.layers)
        shape = self.input_shape
        activations = batch * int(np.prod(shape)) * FLOAT_BYTES
        for layer in self.layers:
            shape = layer.output_shape(shape)
            activations = max(
                activations, batch * int(np.prod(shape)) * FLOAT_BYTES
            )
        return weights + 2 * activations  # input + output live together


def partition_layers(
    model: Model, devices: list[Device], micro_batch: int
) -> list[PipelineStage]:
    """Greedily pack layers into per-device stages under memory limits.

    Walks the layer list, extending the current stage while it still fits
    its device's memory; starts a new stage on the next device otherwise.
    Raises :class:`PlanError` if the model cannot fit the device list.
    """
    if not devices:
        raise PlanError("pipelining requires at least one device")
    stages: list[PipelineStage] = []
    shapes = model.layer_shapes
    device_idx = 0
    current: list[Layer] = []
    stage_input = shapes[0]
    for layer, out_shape in zip(model.layers, shapes[1:]):
        candidate = current + [layer]
        probe = PipelineStage(candidate, devices[device_idx], stage_input, out_shape)
        if probe.memory_bytes(micro_batch) <= devices[device_idx].memory_bytes:
            current = candidate
            continue
        if not current:
            raise PlanError(
                f"layer {layer.describe()} alone exceeds device "
                f"{devices[device_idx].name}'s memory"
            )
        stages.append(
            PipelineStage(
                current,
                devices[device_idx],
                stage_input,
                _chain_shape(current, stage_input),
            )
        )
        stage_input = stages[-1].output_shape
        device_idx += 1
        if device_idx >= len(devices):
            raise PlanError("model does not fit on the available devices")
        current = [layer]
        probe = PipelineStage(current, devices[device_idx], stage_input, out_shape)
        if probe.memory_bytes(micro_batch) > devices[device_idx].memory_bytes:
            raise PlanError(
                f"layer {layer.describe()} alone exceeds device "
                f"{devices[device_idx].name}'s memory"
            )
    if current:
        stages.append(
            PipelineStage(
                current, devices[device_idx], stage_input, _chain_shape(current, stage_input)
            )
        )
    return stages


def _chain_shape(layers: list[Layer], input_shape: tuple[int, ...]) -> tuple[int, ...]:
    shape = input_shape
    for layer in layers:
        shape = layer.output_shape(shape)
    return shape


class PipelineExecutor:
    """Threaded streaming execution of a stage chain."""

    def __init__(self, stages: list[PipelineStage], queue_depth: int = 4):
        if not stages:
            raise PlanError("pipeline needs at least one stage")
        self.stages = stages
        self.queue_depth = queue_depth

    def run(self, x: np.ndarray, micro_batch: int) -> tuple[np.ndarray, float]:
        """Stream ``x`` through the pipeline; returns (outputs, seconds)."""
        if micro_batch < 1:
            raise PlanError("micro_batch must be >= 1")
        num_micro = -(-x.shape[0] // micro_batch)
        queues: list[queue.Queue] = [
            queue.Queue(maxsize=self.queue_depth) for __ in range(len(self.stages) + 1)
        ]
        outputs: list[np.ndarray | None] = [None] * num_micro
        errors: list[BaseException] = []

        def worker(stage_idx: int) -> None:
            stage = self.stages[stage_idx]
            while True:
                item = queues[stage_idx].get()
                if item is None:
                    queues[stage_idx + 1].put(None)
                    return
                micro_idx, data = item
                try:
                    queues[stage_idx + 1].put((micro_idx, stage.forward(data)))
                except BaseException as exc:  # propagate to the caller
                    errors.append(exc)
                    queues[stage_idx + 1].put(None)
                    return

        def sink() -> None:
            while True:
                item = queues[-1].get()
                if item is None:
                    return
                micro_idx, data = item
                outputs[micro_idx] = data

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(len(self.stages))
        ]
        sink_thread = threading.Thread(target=sink, daemon=True)
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        sink_thread.start()
        for micro_idx in range(num_micro):
            lo = micro_idx * micro_batch
            queues[0].put((micro_idx, x[lo : lo + micro_batch]))
        queues[0].put(None)
        for thread in threads:
            thread.join()
        sink_thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        return np.concatenate([o for o in outputs if o is not None]), elapsed


def _stage_times(
    stages: list[PipelineStage], micro_batch: int
) -> list[float]:
    """Per-micro-batch time of each stage: compute + incoming transfer."""
    times = []
    for stage in stages:
        compute = stage.device.compute_time(stage.flops(micro_batch))
        transfer = stage.device.transfer_time(
            micro_batch * int(np.prod(stage.input_shape)) * FLOAT_BYTES
        )
        times.append(compute + transfer)
    return times


def simulate_pipeline_makespan(
    stages: list[PipelineStage], total_rows: int, micro_batch: int
) -> float:
    """Analytic makespan of the pipelined schedule.

    Classic pipeline timing: with per-stage per-micro-batch times ``t_s``
    and ``m`` micro-batches, finish time obeys
    ``F[i][s] = max(F[i-1][s], F[i][s-1]) + t_s``.
    """
    times = _stage_times(stages, micro_batch)
    num_micro = -(-total_rows // micro_batch)
    finish = [0.0] * len(stages)  # rolling row of the finish-time table
    for __ in range(num_micro):
        for s, t in enumerate(times):
            upstream = finish[s - 1] if s > 0 else 0.0
            finish[s] = max(finish[s], upstream) + t
    return finish[-1]


def simulate_sequential_time(
    stages: list[PipelineStage], total_rows: int, micro_batch: int
) -> float:
    """Analytic time if stages run one micro-batch fully at a time."""
    times = _stage_times(stages, micro_batch)
    num_micro = -(-total_rows // micro_batch)
    return num_micro * sum(times)
