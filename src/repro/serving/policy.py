"""SLA-driven adaptive caching policy (Sec. 5.1 / Sec. 7.2.2).

Whether approximate result caching is acceptable depends on the
application's SLA.  The policy searches candidate distance thresholds
from loosest to tightest, estimating a Monte-Carlo disagreement bound for
each, and enables the cache at the loosest threshold whose bound stays
within the SLA's accuracy-drop allowance.  If none qualifies, caching is
disabled and queries run exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SlaViolationError
from .error_bound import ErrorBoundEstimate, monte_carlo_error_bound
from .result_cache import InferenceResultCache


@dataclass
class CacheDecision:
    """The policy's verdict for one (cache, workload) pair."""

    enabled: bool
    threshold: float
    bound: ErrorBoundEstimate | None
    candidates_tried: list[tuple[float, float]] = field(default_factory=list)
    # (threshold, disagreement upper bound) per candidate, loosest first


class AdaptiveCachePolicy:
    """Chooses a caching threshold under an accuracy SLA."""

    def __init__(
        self,
        max_accuracy_drop: float,
        confidence: float = 0.95,
        bound: str = "hoeffding",
    ):
        if not 0.0 <= max_accuracy_drop <= 1.0:
            raise SlaViolationError("max_accuracy_drop must be within [0, 1]")
        if bound not in ("hoeffding", "clopper-pearson"):
            raise SlaViolationError(f"unknown bound type {bound!r}")
        self.max_accuracy_drop = max_accuracy_drop
        self.confidence = confidence
        self.bound = bound

    def _upper(self, estimate: ErrorBoundEstimate) -> float:
        if self.bound == "hoeffding":
            return estimate.hoeffding_upper
        return estimate.clopper_pearson_upper

    def decide(
        self,
        cache: InferenceResultCache,
        validation_features: np.ndarray,
        candidate_thresholds: list[float],
    ) -> CacheDecision:
        """Pick the loosest SLA-compliant threshold (loosest = most hits)."""
        tried: list[tuple[float, float]] = []
        original = cache.distance_threshold
        try:
            for threshold in sorted(candidate_thresholds, reverse=True):
                cache.distance_threshold = threshold
                estimate = monte_carlo_error_bound(
                    cache, validation_features, confidence=self.confidence
                )
                upper = self._upper(estimate)
                tried.append((threshold, upper))
                if upper <= self.max_accuracy_drop:
                    cache.distance_threshold = threshold
                    return CacheDecision(
                        enabled=True,
                        threshold=threshold,
                        bound=estimate,
                        candidates_tried=tried,
                    )
        finally:
            if not tried or tried[-1][1] > self.max_accuracy_drop:
                cache.distance_threshold = original
        return CacheDecision(
            enabled=False, threshold=original, bound=None, candidates_tried=tried
        )
