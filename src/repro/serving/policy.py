"""SLA-driven serving policies (Sec. 5.1 / Sec. 7.2.2).

Two SLA dimensions live here:

* **accuracy** — :class:`AdaptiveCachePolicy` searches candidate cache
  distance thresholds from loosest to tightest, estimating a Monte-Carlo
  disagreement bound for each, and enables the cache at the loosest
  threshold whose bound stays within the SLA's accuracy-drop allowance.
  If none qualifies, caching is disabled and queries run exact.
* **latency** — :class:`ServiceTimeEstimator` maintains an online
  (exponentially weighted) linear fit of batched-inference service time,
  ``seconds ≈ overhead + rows × per_row``.  The serving front-end's
  admission controller uses it to predict whether the work already queued
  ahead of a request leaves enough time to meet the request's deadline,
  and sheds the request up front if not.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..errors import SlaViolationError
from .error_bound import ErrorBoundEstimate, monte_carlo_error_bound
from .result_cache import InferenceResultCache


@dataclass
class CacheDecision:
    """The policy's verdict for one (cache, workload) pair."""

    enabled: bool
    threshold: float
    bound: ErrorBoundEstimate | None
    candidates_tried: list[tuple[float, float]] = field(default_factory=list)
    # (threshold, disagreement upper bound) per candidate, loosest first


class ServiceTimeEstimator:
    """Online estimate of batched-inference service time for one model.

    Fits ``seconds ≈ overhead + rows × per_row`` by exponentially
    weighted least squares over observed ``(rows, seconds)`` batch
    executions, so both the fixed per-invocation cost (plan dispatch,
    connector latency) and the marginal per-row cost are learned from
    the traffic itself.  Thread-safe: the serving workers observe and
    the admission controller estimates concurrently.

    Estimates are unreliable until a few batches have been observed;
    callers gate shedding decisions on :attr:`confident`.
    """

    def __init__(self, alpha: float = 0.25, min_observations: int = 3):
        if not 0.0 < alpha <= 1.0:
            raise SlaViolationError("alpha must be within (0, 1]")
        self.alpha = alpha
        self.min_observations = min_observations
        self._lock = threading.Lock()
        self._count = 0
        self._mean_rows = 0.0
        self._mean_seconds = 0.0
        self._cov = 0.0  # EW covariance of (rows, seconds)
        self._var = 0.0  # EW variance of rows

    @property
    def observations(self) -> int:
        return self._count

    @property
    def confident(self) -> bool:
        """True once enough batches back the fit to act on it."""
        return self._count >= self.min_observations

    def observe(self, rows: int, seconds: float) -> None:
        """Record one executed batch of ``rows`` taking ``seconds``."""
        if rows < 1 or seconds < 0:
            return
        a = self.alpha
        with self._lock:
            self._count += 1
            if self._count == 1:
                self._mean_rows = float(rows)
                self._mean_seconds = float(seconds)
                return
            dx = rows - self._mean_rows
            dy = seconds - self._mean_seconds
            self._mean_rows += a * dx
            self._mean_seconds += a * dy
            # EW moment updates (Welford-style with decay).
            self._cov = (1 - a) * (self._cov + a * dx * dy)
            self._var = (1 - a) * (self._var + a * dx * dx)

    def _fit(self) -> tuple[float, float]:
        """(overhead seconds, per-row seconds) from the current moments."""
        if self._var > 1e-12:
            per_row = max(0.0, self._cov / self._var)
        elif self._mean_rows > 0:
            # All observed batches were the same size: amortise evenly.
            per_row = self._mean_seconds / self._mean_rows
        else:
            per_row = 0.0
        overhead = max(0.0, self._mean_seconds - per_row * self._mean_rows)
        return overhead, per_row

    def estimate_seconds(self, rows: int, batches: int = 1) -> float:
        """Predicted service time for ``rows`` split over ``batches``."""
        with self._lock:
            if self._count == 0:
                return 0.0
            overhead, per_row = self._fit()
        return max(0, batches) * overhead + max(0, rows) * per_row

    def estimate_wait_seconds(self, queued_rows: int, max_batch_size: int) -> float:
        """Predicted time to drain ``queued_rows`` already ahead in queue."""
        if queued_rows <= 0:
            return 0.0
        batches = -(-queued_rows // max(1, max_batch_size))
        return self.estimate_seconds(queued_rows, batches=batches)


class AdaptiveCachePolicy:
    """Chooses a caching threshold under an accuracy SLA."""

    def __init__(
        self,
        max_accuracy_drop: float,
        confidence: float = 0.95,
        bound: str = "hoeffding",
    ):
        if not 0.0 <= max_accuracy_drop <= 1.0:
            raise SlaViolationError("max_accuracy_drop must be within [0, 1]")
        if bound not in ("hoeffding", "clopper-pearson"):
            raise SlaViolationError(f"unknown bound type {bound!r}")
        self.max_accuracy_drop = max_accuracy_drop
        self.confidence = confidence
        self.bound = bound

    def _upper(self, estimate: ErrorBoundEstimate) -> float:
        if self.bound == "hoeffding":
            return estimate.hoeffding_upper
        return estimate.clopper_pearson_upper

    def decide(
        self,
        cache: InferenceResultCache,
        validation_features: np.ndarray,
        candidate_thresholds: list[float],
    ) -> CacheDecision:
        """Pick the loosest SLA-compliant threshold (loosest = most hits)."""
        tried: list[tuple[float, float]] = []
        original = cache.distance_threshold
        try:
            for threshold in sorted(candidate_thresholds, reverse=True):
                cache.distance_threshold = threshold
                estimate = monte_carlo_error_bound(
                    cache, validation_features, confidence=self.confidence
                )
                upper = self._upper(estimate)
                tried.append((threshold, upper))
                if upper <= self.max_accuracy_drop:
                    cache.distance_threshold = threshold
                    return CacheDecision(
                        enabled=True,
                        threshold=threshold,
                        bound=estimate,
                        candidates_tried=tried,
                    )
        finally:
            if not tried or tried[-1][1] > self.max_accuracy_drop:
                cache.distance_threshold = original
        return CacheDecision(
            enabled=False, threshold=original, bound=None, candidates_tried=tried
        )
