"""Deterministic, seed-driven fault injection (``repro.faults``).

The paper's central claim is that relation-centric execution survives
where whole-tensor engines fail because blocks live under a buffer pool
that spills to disk.  That story is only credible if the disk path — and
every hot path above it — can be *proven* to fail safely.  This module
makes failure a first-class, replayable input:

* **Injection sites** are named chokepoints threaded through the system
  (:data:`KNOWN_SITES`): disk page reads/writes/sync, buffer-pool
  eviction, engine stage execution, result-cache lookup, server worker
  batches, and catalog-sidecar persistence.  Each site calls
  :meth:`FaultInjector.fire` once per event; with nothing armed the call
  is a single attribute check.

* A :class:`FaultSpec` arms one site with a *kind* (raise an error,
  tear a write in half, flip one bit) and a *trigger* (the Nth hit of
  the site, a seeded probability per hit, or every hit), optionally
  one-shot.  A :class:`FaultPlan` bundles specs plus a seed so an entire
  failure scenario replays bit-for-bit: the same plan and workload
  produce the same faults, in the same order, twice.

* The injector mirrors its activity into telemetry
  (``fault_injected_total`` / ``retry_total`` / ``recovery_total``, all
  labelled by site) and backs the ``SHOW FAULTS`` SQL statement.

Error kinds raise :class:`~repro.errors.InjectedFaultError` at the site.
Corruption kinds (``torn_write`` / ``bit_flip``) return the fired spec to
the caller, which applies :func:`corrupt` to the bytes in flight — the
checksummed page format of :class:`~repro.storage.disk.FileDiskManager`
then detects the damage on a later read, exactly like real bit rot or a
power cut mid-write.

Determinism: every spec owns a ``random.Random`` seeded from the
injector seed, the site name (via CRC32, not ``hash`` — stable across
processes), and the spec's arm index.  Probabilistic triggers and bit
positions never depend on interleaving with other sites.
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass, field, replace

from .errors import ConfigError, InjectedFaultError
from .telemetry.registry import NULL_REGISTRY, MetricsRegistry

#: Fault kinds.  ``ERROR`` raises at the site; the corruption kinds damage
#: bytes in flight and rely on page checksums for later detection.
ERROR = "error"
TORN_WRITE = "torn_write"
BIT_FLIP = "bit_flip"
FAULT_KINDS = (ERROR, TORN_WRITE, BIT_FLIP)

#: Every injection site threaded through the system.  ``SHOW FAULTS``
#: lists these even when unarmed so the operator sees the full surface.
KNOWN_SITES = (
    "disk.read_page",
    "disk.write_page",
    "disk.sync",
    "bufferpool.evict",
    "engine.stage",
    "result_cache.lookup",
    "server.batch",
    "persist.sidecar",
    "persist.sidecar_replace",
    "lifecycle.prepare",
    "lifecycle.swap",
    "lifecycle.rollback",
)


@dataclass
class FaultSpec:
    """One armed fault: where, what kind, and when it fires.

    Triggers (first match wins):

    * ``nth`` — fire on exactly the Nth hit of the site after arming
      (1-based); deterministic regardless of seed.
    * ``probability`` — fire on each hit with this probability, drawn
      from the spec's own seeded RNG.
    * neither — fire on every hit.

    ``one_shot`` (default) disarms the spec after its first firing;
    ``max_fires`` caps total firings for non-one-shot specs.
    ``transient`` marks the resulting error as retry-worthy (the server's
    bounded retry loop only retries transient faults).
    """

    site: str
    kind: str = ERROR
    nth: int | None = None
    probability: float = 0.0
    one_shot: bool = True
    max_fires: int | None = None
    transient: bool = True
    message: str = ""
    # Runtime state, owned by the injector the spec is armed on (not
    # constructor arguments: copying a template spec resets them).
    hits: int = field(default=0, compare=False, init=False)
    fires: int = field(default=0, compare=False, init=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.nth is not None and self.nth < 1:
            raise ConfigError(f"fault nth trigger must be >= 1, got {self.nth}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigError(f"max_fires must be >= 1, got {self.max_fires}")
        self._rng: random.Random | None = None

    @property
    def exhausted(self) -> bool:
        """True once this spec can never fire again."""
        if self.one_shot and self.fires > 0:
            return True
        if self.max_fires is not None and self.fires >= self.max_fires:
            return True
        # An nth trigger is spent once the Nth hit has passed.
        return self.nth is not None and self.hits >= self.nth

    @property
    def trigger(self) -> str:
        """Human-readable trigger description (``SHOW FAULTS``)."""
        if self.nth is not None:
            base = f"nth={self.nth}"
        elif self.probability > 0:
            base = f"p={self.probability}"
        else:
            base = "always"
        if self.one_shot:
            base += ",one-shot"
        elif self.max_fires is not None:
            base += f",max={self.max_fires}"
        return base


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded bundle of fault specs — one replayable scenario.

    Specs are templates: arming a plan on an injector copies them, so the
    same plan object can drive many runs (the determinism check in the
    fault-matrix suite arms one plan twice and diffs the outcomes).
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int | None = None

    def __init__(self, specs=(), seed: int | None = None):
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "seed", seed)


def is_transient(error: BaseException) -> bool:
    """True when retrying the failed operation may succeed.

    Duck-typed on a ``transient`` attribute so the set is extensible:
    :class:`~repro.errors.InjectedFaultError` carries the armed spec's
    flag, while persistent damage (e.g.
    :class:`~repro.errors.CorruptPageError`) has no such attribute and is
    never retried.
    """
    return getattr(error, "transient", False) is True


def corrupt(data: bytes, spec: FaultSpec) -> bytes:
    """Apply a corruption-kind spec to bytes in flight.

    ``torn_write`` keeps only the first half (a power cut mid-write);
    ``bit_flip`` flips one bit at a spec-RNG-chosen position (media rot).
    """
    if not data:
        return data
    if spec.kind == TORN_WRITE:
        return data[: max(1, len(data) // 2)]
    if spec.kind == BIT_FLIP:
        rng = spec._rng if spec._rng is not None else random.Random(0)
        buf = bytearray(data)
        buf[rng.randrange(len(buf))] ^= 1 << rng.randrange(8)
        return bytes(buf)
    return data


class FaultInjector:
    """Arms fault specs on named sites and fires them deterministically.

    Thread-safe: server workers and the storage layer hit sites
    concurrently; all spec state is guarded by one lock.  The disabled
    fast path (nothing armed) is a single boolean check with no lock.
    """

    def __init__(self, seed: int = 0, metrics: MetricsRegistry | None = None):
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._specs: dict[str, list[FaultSpec]] = {}
        self._site_hits: dict[str, int] = {}
        self._site_fires: dict[str, int] = {}
        self._retries: dict[str, int] = {}
        self._recoveries: dict[str, int] = {}
        self._armed = 0
        self._enabled = False
        self._registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_injected: dict[str, object] = {}
        self._m_retries: dict[str, object] = {}
        self._m_recoveries: dict[str, object] = {}
        #: Optional flight recorder; every fired fault is logged as a
        #: ``fault.injected`` event with its site and call context.
        self.recorder = None

    # -- arming ----------------------------------------------------------

    def arm(self, spec: FaultSpec | None = None, /, **kwargs: object) -> FaultSpec:
        """Arm one fault; returns the live (tracked) spec.

        Accepts either a :class:`FaultSpec` (copied, so callers can reuse
        templates) or the spec fields as keyword arguments::

            db.faults.arm(site="disk.read_page", nth=3)
        """
        if spec is None:
            spec = FaultSpec(**kwargs)  # type: ignore[arg-type]
        else:
            spec = replace(spec)
        with self._lock:
            index = sum(len(v) for v in self._specs.values())
            spec._rng = random.Random(
                (self.seed * 1_000_003)
                ^ zlib.crc32(f"{spec.site}#{index}".encode("utf-8"))
            )
            self._specs.setdefault(spec.site, []).append(spec)
            self._armed += 1
            self._enabled = True
        return spec

    def load_plan(self, plan: FaultPlan) -> list[FaultSpec]:
        """Arm every spec of a plan; the plan's seed overrides the
        injector's for specs armed from it (by re-seeding the injector
        when the plan carries one)."""
        if plan.seed is not None:
            self.seed = int(plan.seed)
        return [self.arm(spec) for spec in plan.specs]

    def disarm(self, site: str | None = None) -> None:
        """Remove armed specs for one site (or all sites)."""
        with self._lock:
            if site is None:
                self._specs.clear()
            else:
                self._specs.pop(site, None)
            self._armed = sum(len(v) for v in self._specs.values())
            self._enabled = self._armed > 0

    @property
    def armed_count(self) -> int:
        return self._armed

    @property
    def active(self) -> bool:
        """True when anything is armed or any fault activity was recorded."""
        return (
            self._enabled
            or bool(self._site_fires)
            or bool(self._retries)
            or bool(self._recoveries)
        )

    # -- firing ----------------------------------------------------------

    def fire(self, site: str, **context: object) -> FaultSpec | None:
        """One hit of an injection site.

        Returns ``None`` (no fault), raises
        :class:`~repro.errors.InjectedFaultError` (``error`` kind), or
        returns the fired spec (corruption kinds) for the caller to apply
        via :func:`corrupt`.
        """
        if not self._enabled:
            return None
        with self._lock:
            self._site_hits[site] = self._site_hits.get(site, 0) + 1
            specs = self._specs.get(site)
            if not specs:
                return None
            for spec in specs:
                if spec.exhausted:
                    spec.hits += 1
                    continue
                spec.hits += 1
                if spec.nth is not None:
                    should_fire = spec.hits == spec.nth
                elif spec.probability > 0:
                    assert spec._rng is not None
                    should_fire = spec._rng.random() < spec.probability
                else:
                    should_fire = True
                if not should_fire:
                    continue
                spec.fires += 1
                self._site_fires[site] = self._site_fires.get(site, 0) + 1
                self._counter(self._m_injected, "fault_injected_total", site).inc()
                if self.recorder is not None:
                    self.recorder.emit(
                        "fault.injected",
                        site=site,
                        fault=spec.kind,
                        transient=spec.transient,
                        **{
                            k: v
                            for k, v in context.items()
                            if k not in ("site", "fault", "transient")
                        },
                    )
                if spec.kind == ERROR:
                    raise InjectedFaultError(
                        site,
                        transient=spec.transient,
                        message=spec.message,
                        context=context,
                    )
                return spec
        return None

    # -- recovery accounting --------------------------------------------

    def record_retry(self, site: str) -> None:
        """Count one retry attempt provoked by a (transient) fault."""
        with self._lock:
            self._retries[site] = self._retries.get(site, 0) + 1
        self._counter(self._m_retries, "retry_total", site).inc()

    def record_recovery(self, site: str) -> None:
        """Count one transparent recovery (retry succeeded, recompute
        served the request, backup catalog restored, ...)."""
        with self._lock:
            self._recoveries[site] = self._recoveries.get(site, 0) + 1
        self._counter(self._m_recoveries, "recovery_total", site).inc()

    # -- introspection (SHOW FAULTS) ------------------------------------

    @property
    def injected_total(self) -> int:
        return sum(self._site_fires.values())

    @property
    def retry_total(self) -> int:
        return sum(self._retries.values())

    @property
    def recovery_total(self) -> int:
        return sum(self._recoveries.values())

    def hit_count(self, site: str) -> int:
        return self._site_hits.get(site, 0)

    def rows(self) -> list[tuple]:
        """``SHOW FAULTS`` rows: one per armed spec, plus one per known
        (or previously active) unarmed site."""
        with self._lock:
            out: list[tuple] = []
            sites = sorted(set(KNOWN_SITES) | set(self._specs) | set(self._site_hits))
            for site in sites:
                specs = self._specs.get(site, [])
                hits = self._site_hits.get(site, 0)
                fires = self._site_fires.get(site, 0)
                retries = self._retries.get(site, 0)
                recoveries = self._recoveries.get(site, 0)
                if specs:
                    for spec in specs:
                        out.append(
                            (
                                site,
                                spec.kind,
                                spec.trigger,
                                spec.transient,
                                True,
                                spec.hits,
                                spec.fires,
                                retries,
                                recoveries,
                            )
                        )
                else:
                    out.append(
                        (site, "-", "-", False, False, hits, fires, retries, recoveries)
                    )
            return out

    def _counter(self, cache: dict[str, object], name: str, site: str):
        counter = cache.get(site)
        if counter is None:
            counter = self._registry.counter(
                name, f"{name} by injection site", site=site
            )
            cache[site] = counter
        return counter


#: Shared disabled injector: components constructed without explicit
#: fault wiring (unit tests, benchmarks) pay one boolean check per site.
NULL_INJECTOR = FaultInjector()

#: Column names for ``SHOW FAULTS``.
FAULT_COLUMNS = (
    "site",
    "kind",
    "trigger",
    "transient",
    "armed",
    "hits",
    "fires",
    "retries",
    "recoveries",
)
