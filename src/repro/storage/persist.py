"""Catalog persistence: tables *and models* survive close/reopen.

Heap pages already live in the disk file; what is lost on close is the
catalog — which table owns which first page, and the registered models.
This module serializes that metadata to a JSON sidecar next to the page
file:

* tables — name, column list, first page id, row count;
* models — the architecture (layer specs) plus references to the weight
  block tables, which are ordinary heap tables in the same page file.

Model weights therefore persist *as relations*, exactly the paper's
storage story (Sec. 4): reopening a database rebuilds each model by
scanning its block tables back into layer parameters.

Crash consistency: :func:`save_sidecar` writes a temp file, flushes and
fsyncs it, snapshots the previous sidecar generation to ``<path>.bak``,
then atomically renames the temp file over the primary.  At every
instant there is a parseable sidecar on disk: a crash before the rename
leaves the old primary, a crash after leaves the new one, and a corrupt
primary (detected as a JSON error on load) falls back to the ``.bak``
generation.  :func:`load_sidecar` never leaks a raw
``json.JSONDecodeError``; unrecoverable corruption raises
:class:`~repro.errors.StorageError` naming the path(s) involved.

Fault sites ``persist.sidecar`` (before the temp write) and
``persist.sidecar_replace`` (between fsync and rename) simulate crashes
in each window of the protocol.
"""

from __future__ import annotations

import json
import logging
import os
import shutil

import numpy as np

from ..dlruntime.layers import (
    Conv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    Model,
    ReLU,
    Sigmoid,
    Softmax,
)
from ..errors import StorageError
from ..faults import NULL_INJECTOR, FaultInjector
from ..relational.schema import Column, ColumnType, Schema
from ..tensor.blocked import BlockedMatrix
from .catalog import Catalog, ModelInfo
from .heap import HeapFile
from .serde import RowSerde

# Version 2: the page file switched to checksummed slots
# (magic + crc32 header per page — see repro.storage.disk).
FORMAT_VERSION = 2

logger = logging.getLogger(__name__)

_SIMPLE_LAYERS: dict[str, type[Layer]] = {
    "ReLU": ReLU,
    "Sigmoid": Sigmoid,
    "Softmax": Softmax,
    "Flatten": Flatten,
}


def sidecar_path(page_file_path: str) -> str:
    return page_file_path + ".catalog"


def backup_path(page_file_path_sidecar: str) -> str:
    """Path of the previous-generation sidecar kept for recovery."""
    return page_file_path_sidecar + ".bak"


# -- layer (de)serialization ---------------------------------------------


def _layer_spec(layer: Layer) -> dict:
    if isinstance(layer, Linear):
        return {
            "type": "Linear",
            "name": layer.name,
            "in_features": layer.in_features,
            "out_features": layer.out_features,
            "bias": layer.bias.data.tolist(),
        }
    if isinstance(layer, Conv2d):
        return {
            "type": "Conv2d",
            "name": layer.name,
            "in_channels": layer.in_channels,
            "out_channels": layer.out_channels,
            "kernel_size": list(layer.kernel_size),
            "stride": layer.stride,
            "padding": layer.padding,
            "bias": layer.bias.data.tolist(),
        }
    if isinstance(layer, MaxPool2d):
        return {"type": "MaxPool2d", "name": layer.name, "pool": layer.pool}
    for type_name, layer_type in _SIMPLE_LAYERS.items():
        if isinstance(layer, layer_type):
            return {"type": type_name, "name": layer.name}
    raise StorageError(f"cannot persist layer type {type(layer).__name__}")


def _rebuild_layer(
    spec: dict,
    catalog: Catalog,
    block_tables: dict[str, str],
    block_shape: tuple[int, int],
) -> Layer:
    layer_type = spec["type"]
    if layer_type in _SIMPLE_LAYERS:
        layer = _SIMPLE_LAYERS[layer_type]()
        layer.name = spec["name"]
        return layer
    if layer_type == "MaxPool2d":
        return MaxPool2d(spec["pool"], name=spec["name"])
    if layer_type == "Linear":
        weight = _load_blocks(
            catalog,
            block_tables[spec["name"]],
            (spec["in_features"], spec["out_features"]),
            block_shape,
        )
        return Linear(
            spec["in_features"],
            spec["out_features"],
            weight=weight,
            bias=np.array(spec["bias"]),
            name=spec["name"],
        )
    if layer_type == "Conv2d":
        kh, kw = spec["kernel_size"]
        out_ch = spec["out_channels"]
        in_ch = spec["in_channels"]
        kernel_matrix = _load_blocks(
            catalog,
            block_tables[spec["name"]],
            (kh * kw * in_ch, out_ch),
            block_shape,
        )
        kernels = kernel_matrix.T.reshape(out_ch, kh, kw, in_ch)
        return Conv2d(
            in_ch,
            out_ch,
            (kh, kw),
            stride=spec["stride"],
            padding=spec["padding"],
            kernels=kernels,
            bias=np.array(spec["bias"]),
            name=spec["name"],
        )
    raise StorageError(f"unknown persisted layer type {layer_type!r}")


def _load_blocks(
    catalog: Catalog, table: str, shape: tuple[int, int], block_shape: tuple[int, int]
) -> np.ndarray:
    return BlockedMatrix.load(catalog.get_table(table), shape, block_shape).to_dense()


# -- catalog (de)serialization ------------------------------------------


def serialize_catalog(catalog: Catalog, block_shape: tuple[int, int]) -> dict:
    """Snapshot the catalog; ensures every model's weights are in block
    tables first (so only metadata needs the sidecar)."""
    from ..models.store import store_model_blocks

    for info in catalog.models():
        store_model_blocks(catalog, info, block_shape)
    tables = [
        {
            "name": info.name,
            "columns": [[c.name, c.ctype.value] for c in info.schema],
            "first_page_id": info.first_page_id,
            "row_count": info.row_count,
        }
        for info in catalog.tables()
    ]
    models = [
        {
            "name": info.name,
            "input_shape": list(info.model.input_shape),
            "model_name": info.model.name,
            "layers": [_layer_spec(layer) for layer in info.model.layers],
            "block_tables": dict(info.block_tables),
            "metadata": {
                k: v for k, v in info.metadata.items() if _json_safe(v)
            },
        }
        for info in catalog.models()
    ]
    return {
        "version": FORMAT_VERSION,
        "block_shape": list(block_shape),
        "tables": tables,
        "models": models,
    }


def restore_catalog(catalog: Catalog, snapshot: dict) -> None:
    """Rebuild tables and models into an empty catalog.

    A structurally malformed snapshot (missing keys, wrong value types)
    raises :class:`StorageError` rather than leaking ``KeyError`` /
    ``TypeError`` from the guts of the restore.
    """
    if snapshot.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported catalog format version {snapshot.get('version')!r}"
        )
    try:
        _restore_catalog(catalog, snapshot)
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise StorageError(
            f"malformed catalog snapshot: {type(exc).__name__}: {exc}"
        ) from exc


def _restore_catalog(catalog: Catalog, snapshot: dict) -> None:
    from .catalog import TableInfo

    block_shape = tuple(snapshot["block_shape"])
    for table in snapshot["tables"]:
        schema = Schema(
            Column(name, ColumnType(ctype)) for name, ctype in table["columns"]
        )
        heap = HeapFile(
            catalog.pool, RowSerde(schema), first_page_id=table["first_page_id"]
        )
        catalog.attach_table(
            TableInfo(
                name=table["name"],
                schema=schema,
                heap=heap,
                row_count=table["row_count"],
            )
        )
    for model_snapshot in snapshot["models"]:
        block_tables = model_snapshot["block_tables"]
        layers = [
            _rebuild_layer(spec, catalog, block_tables, block_shape)  # type: ignore[arg-type]
            for spec in model_snapshot["layers"]
        ]
        model = Model(
            model_snapshot["model_name"],
            layers,
            input_shape=tuple(model_snapshot["input_shape"]),
        )
        catalog.attach_model(
            ModelInfo(
                name=model_snapshot["name"],
                model=model,
                block_tables=dict(block_tables),
                metadata=dict(model_snapshot["metadata"]),
            )
        )


def _json_safe(value: object) -> bool:
    try:
        json.dumps(value)
        return True
    except TypeError:
        return False


def save_sidecar(
    path: str,
    snapshot: dict,
    injector: FaultInjector | None = None,
    recorder=None,
) -> None:
    """Atomically persist the catalog snapshot with a backup generation.

    Protocol: write+fsync a temp file, copy the current primary to
    ``<path>.bak``, then ``os.replace`` the temp over the primary.  A
    crash at any step leaves at least one parseable generation on disk.
    """
    injector = injector if injector is not None else NULL_INJECTOR
    injector.fire("persist.sidecar", path=path)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(snapshot, f)
        f.flush()
        os.fsync(f.fileno())
    injector.fire("persist.sidecar_replace", path=path)
    if os.path.exists(path):
        shutil.copyfile(path, backup_path(path))
    os.replace(tmp, path)
    if recorder is not None:
        recorder.emit(
            "sidecar.commit", path=path, tables=len(snapshot.get("tables", ()))
        )


def _read_sidecar(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def load_sidecar(
    path: str, injector: FaultInjector | None = None, recorder=None
) -> dict | None:
    """Load the catalog sidecar, falling back to the ``.bak`` generation.

    Returns ``None`` when no generation exists (a fresh database).  A
    corrupt primary with a readable backup logs a warning, records a
    recovery on the ``persist.sidecar`` site, and returns the backup;
    when neither generation parses, raises :class:`StorageError` naming
    every path that was tried — never a raw ``json.JSONDecodeError``.
    """
    injector = injector if injector is not None else NULL_INJECTOR
    bak = backup_path(path)
    primary_error: Exception | None = None
    if os.path.exists(path):
        try:
            return _read_sidecar(path)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            primary_error = exc
    elif not os.path.exists(bak):
        return None
    if os.path.exists(bak):
        try:
            snapshot = _read_sidecar(bak)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            raise StorageError(
                f"catalog sidecar {path!r} is corrupt "
                f"({primary_error or 'missing'}) and backup {bak!r} is "
                f"unreadable too ({exc})"
            ) from exc
        logger.warning(
            "catalog sidecar %r unreadable (%s); recovered from backup %r",
            path,
            primary_error or "missing",
            bak,
        )
        injector.record_recovery("persist.sidecar")
        if recorder is not None:
            recorder.emit(
                "sidecar.restored",
                path=path,
                backup=bak,
                reason=str(primary_error or "missing"),
            )
        return snapshot
    raise StorageError(
        f"catalog sidecar {path!r} is corrupt ({primary_error}) and no "
        f"backup generation exists at {bak!r}"
    ) from primary_error
