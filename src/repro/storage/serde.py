"""Schema-driven row (de)serialization.

Encoding per row:

* a null bitmap of ``ceil(ncols / 8)`` bytes, then
* for each non-null column, a fixed- or length-prefixed value:
  INT → 8-byte little-endian signed, DOUBLE → 8-byte IEEE, BOOL → 1 byte,
  TEXT → u32 length + UTF-8 bytes, BLOB → u32 length + raw bytes.

BLOBs carry tensor blocks in the relation-centric representation, so rows
can be far larger than a page; the heap file handles that with overflow
chains — the serde itself is size-agnostic.
"""

from __future__ import annotations

import struct
from typing import Sequence

from ..errors import StorageError
from ..relational.schema import ColumnType, Schema

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")


class RowSerde:
    """Serialize/deserialize rows for one schema."""

    def __init__(self, schema: Schema):
        self._schema = schema
        self._bitmap_len = (len(schema) + 7) // 8

    @property
    def schema(self) -> Schema:
        return self._schema

    def serialize(self, row: Sequence[object]) -> bytes:
        if len(row) != len(self._schema):
            raise StorageError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self._schema)}"
            )
        bitmap = bytearray(self._bitmap_len)
        body = bytearray()
        for i, (value, col) in enumerate(zip(row, self._schema)):
            if value is None:
                bitmap[i // 8] |= 1 << (i % 8)
                continue
            ctype = col.ctype
            if ctype is ColumnType.INT:
                body += _I64.pack(int(value))
            elif ctype is ColumnType.DOUBLE:
                body += _F64.pack(float(value))
            elif ctype is ColumnType.BOOL:
                body.append(1 if value else 0)
            elif ctype is ColumnType.TEXT:
                encoded = str(value).encode("utf-8")
                body += _U32.pack(len(encoded))
                body += encoded
            elif ctype is ColumnType.BLOB:
                payload = bytes(value)
                body += _U32.pack(len(payload))
                body += payload
            else:  # pragma: no cover - exhaustive over ColumnType
                raise StorageError(f"unsupported column type {ctype}")
        return bytes(bitmap) + bytes(body)

    def deserialize(self, data: bytes) -> tuple[object, ...]:
        bitmap = data[: self._bitmap_len]
        offset = self._bitmap_len
        values: list[object] = []
        for i, col in enumerate(self._schema):
            if bitmap[i // 8] & (1 << (i % 8)):
                values.append(None)
                continue
            ctype = col.ctype
            if ctype is ColumnType.INT:
                values.append(_I64.unpack_from(data, offset)[0])
                offset += 8
            elif ctype is ColumnType.DOUBLE:
                values.append(_F64.unpack_from(data, offset)[0])
                offset += 8
            elif ctype is ColumnType.BOOL:
                values.append(data[offset] != 0)
                offset += 1
            elif ctype is ColumnType.TEXT:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                values.append(data[offset : offset + length].decode("utf-8"))
                offset += length
            elif ctype is ColumnType.BLOB:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                values.append(bytes(data[offset : offset + length]))
                offset += length
            else:  # pragma: no cover
                raise StorageError(f"unsupported column type {ctype}")
        if offset != len(data):
            raise StorageError(
                f"trailing bytes after row: consumed {offset} of {len(data)}"
            )
        return tuple(values)
