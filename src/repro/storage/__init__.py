"""Paged storage substrate: disk manager, buffer pool, heap files, catalog.

This package plays the role netsDB plays in the paper: a storage engine
whose buffer pool can spill tensor-block relations to disk, which is what
lets the relation-centric representation execute operators far larger than
memory (Table 3 of the paper).
"""

from .page import Page, PageId, INVALID_PAGE_ID
from .disk import DiskManager, InMemoryDiskManager, FileDiskManager
from .buffer_pool import (
    BufferPool,
    ClockPolicy,
    EvictionPolicy,
    LruPolicy,
    TwoQueuePolicy,
)
from .serde import RowSerde
from .heap import HeapFile, RowId
from .catalog import Catalog, TableInfo, ModelInfo

__all__ = [
    "Page",
    "PageId",
    "INVALID_PAGE_ID",
    "DiskManager",
    "InMemoryDiskManager",
    "FileDiskManager",
    "BufferPool",
    "EvictionPolicy",
    "LruPolicy",
    "ClockPolicy",
    "TwoQueuePolicy",
    "RowSerde",
    "HeapFile",
    "RowId",
    "Catalog",
    "TableInfo",
    "ModelInfo",
]
