"""Disk managers: where evicted pages go.

Two implementations share one interface:

* :class:`FileDiskManager` writes pages to a real file (the default for a
  :class:`repro.session.Database` with a path) so spilling is genuine I/O.
* :class:`InMemoryDiskManager` keeps pages in a dict, for fast unit tests.

Both count reads and writes; the relation-centric benchmarks report these
to show how much of a large operator was served from disk versus the pool.

Durability (:class:`FileDiskManager`): each on-disk slot is
``magic(4) + crc32(4) + page`` (:data:`PAGE_MAGIC`,
:data:`PAGE_HEADER`).  Reads verify the checksum and raise a typed
:class:`~repro.errors.CorruptPageError` on a torn write, bit rot, or a
foreign file — the disk path is never trusted blindly.  An all-zero slot
is an allocated-but-never-written page (a sparse hole) and reads as
zeros.  Reopening a file whose size is not a whole number of slots means
the final write was torn mid-page; that raises
:class:`~repro.errors.StorageError` naming the byte offset rather than
silently truncating the tail.

Both managers are fault-injection points (sites ``disk.read_page``,
``disk.write_page``, ``disk.sync`` — see :mod:`repro.faults`).  Error
kinds raise at the site; corruption kinds damage the slot bytes in
flight so the checksum machinery detects them later, exactly like real
media faults.  The in-memory manager has no checksums, so only error
kinds are meaningful there.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib

from dataclasses import dataclass

from ..errors import CorruptPageError, StorageError
from ..faults import ERROR, NULL_INJECTOR, FaultInjector, corrupt
from .page import PageId

#: On-disk slot header: 4-byte magic + CRC32 of the page payload.
PAGE_HEADER = struct.Struct("<4sI")
PAGE_MAGIC = b"RPG1"


@dataclass
class DiskStats:
    """I/O counters maintained by every disk manager."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    allocated_pages: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0


class DiskManager:
    """Abstract page-granular persistent store."""

    def __init__(self, page_size: int, injector: FaultInjector | None = None):
        self.page_size = page_size
        self.stats = DiskStats()
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._next_page_id: PageId = 0

    def allocate_page(self) -> PageId:
        """Reserve a new page id (contents undefined until first write)."""
        page_id = self._next_page_id
        self._next_page_id += 1
        self.stats.allocated_pages += 1
        return page_id

    @property
    def num_pages(self) -> int:
        return self._next_page_id

    def read_page(self, page_id: PageId) -> bytes:
        raise NotImplementedError

    def write_page(self, page_id: PageId, data: bytes) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Force written pages onto stable storage (no-op by default)."""

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""

    def _check(self, page_id: PageId, data: bytes | None = None) -> None:
        if page_id < 0 or page_id >= self._next_page_id:
            raise StorageError(f"page {page_id} was never allocated")
        if data is not None and len(data) != self.page_size:
            raise StorageError(
                f"page write must be exactly {self.page_size} bytes, "
                f"got {len(data)}"
            )


class InMemoryDiskManager(DiskManager):
    """Dict-backed disk manager for tests and ephemeral databases.

    Fires the ``disk.*`` fault sites for error kinds; corruption kinds
    are ignored (there is no checksummed slot format to detect them, so
    injecting them here would be silent corruption with no story).
    """

    def __init__(self, page_size: int, injector: FaultInjector | None = None):
        super().__init__(page_size, injector=injector)
        self._pages: dict[PageId, bytes] = {}

    def read_page(self, page_id: PageId) -> bytes:
        self._check(page_id)
        self.injector.fire("disk.read_page", page_id=page_id)
        data = self._pages.get(page_id)
        if data is None:
            data = bytes(self.page_size)
        self.stats.reads += 1
        self.stats.bytes_read += self.page_size
        return data

    def write_page(self, page_id: PageId, data: bytes) -> None:
        self._check(page_id, data)
        self.injector.fire("disk.write_page", page_id=page_id)
        self._pages[page_id] = bytes(data)
        self.stats.writes += 1
        self.stats.bytes_written += self.page_size

    def sync(self) -> None:
        self.injector.fire("disk.sync")


class FileDiskManager(DiskManager):
    """Single-file disk manager, one checksummed slot per page.

    If no path is given, a temporary file is created and deleted on close.
    """

    def __init__(
        self,
        page_size: int,
        path: str | None = None,
        injector: FaultInjector | None = None,
    ):
        super().__init__(page_size, injector=injector)
        self._slot_size = page_size + PAGE_HEADER.size
        if path is None:
            fd, self._path = tempfile.mkstemp(prefix="repro-db-", suffix=".pages")
            self._owns_file = True
            self._file = os.fdopen(fd, "r+b")
        else:
            self._path = path
            self._owns_file = False
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
            existing = os.path.getsize(path)
            torn = existing % self._slot_size
            if torn:
                self._file.close()
                raise StorageError(
                    f"page file {path!r} ends with a torn partial page: "
                    f"{torn} trailing bytes at byte offset {existing - torn} "
                    f"(expected a multiple of {self._slot_size}-byte slots)"
                )
            self._next_page_id = existing // self._slot_size

    @property
    def path(self) -> str:
        return self._path

    @property
    def slot_size(self) -> int:
        """Bytes one page occupies on disk (page + checksum header)."""
        return self._slot_size

    def read_page(self, page_id: PageId) -> bytes:
        self._check(page_id)
        spec = self.injector.fire("disk.read_page", page_id=page_id)
        self._file.seek(page_id * self._slot_size)
        raw = self._file.read(self._slot_size)
        if spec is not None and spec.kind != ERROR:
            # Simulated media damage between the platter and the caller.
            raw = corrupt(raw, spec)
        self.stats.reads += 1
        self.stats.bytes_read += self.page_size
        return self._verify_slot(page_id, raw)

    def _verify_slot(self, page_id: PageId, raw: bytes) -> bytes:
        if not raw.strip(b"\x00"):
            # Allocated but never written (or a sparse hole before a
            # higher page): zero-filled by definition.
            return bytes(self.page_size)
        if len(raw) < self._slot_size:
            raise CorruptPageError(
                f"page {page_id} in {self._path!r} is torn: slot holds "
                f"{len(raw)} of {self._slot_size} bytes",
                page_id=page_id,
                path=self._path,
            )
        magic, crc = PAGE_HEADER.unpack_from(raw)
        data = raw[PAGE_HEADER.size :]
        if magic != PAGE_MAGIC:
            raise CorruptPageError(
                f"page {page_id} in {self._path!r} has a corrupt header "
                f"(magic {magic!r})",
                page_id=page_id,
                path=self._path,
            )
        if zlib.crc32(data) & 0xFFFFFFFF != crc:
            raise CorruptPageError(
                f"page {page_id} in {self._path!r} failed its checksum "
                f"(torn write or bit rot)",
                page_id=page_id,
                path=self._path,
            )
        return data

    def write_page(self, page_id: PageId, data: bytes) -> None:
        self._check(page_id, data)
        spec = self.injector.fire("disk.write_page", page_id=page_id)
        data = bytes(data)
        slot = PAGE_HEADER.pack(PAGE_MAGIC, zlib.crc32(data) & 0xFFFFFFFF) + data
        if spec is not None and spec.kind != ERROR:
            # Torn write / bit flip: the write "succeeds" (as a crashed
            # write would) and the checksum catches it on a later read.
            slot = corrupt(slot, spec)
        self._file.seek(page_id * self._slot_size)
        self._file.write(slot)
        self.stats.writes += 1
        self.stats.bytes_written += self.page_size

    def sync(self) -> None:
        """Flush buffered writes and fsync them onto stable storage."""
        self.injector.fire("disk.sync")
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file.closed:
            return
        self._file.flush()
        self._file.close()
        if self._owns_file:
            try:
                os.unlink(self._path)
            except OSError:
                pass
