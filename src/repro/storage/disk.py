"""Disk managers: where evicted pages go.

Two implementations share one interface:

* :class:`FileDiskManager` writes pages to a real file (the default for a
  :class:`repro.session.Database` with a path) so spilling is genuine I/O.
* :class:`InMemoryDiskManager` keeps pages in a dict, for fast unit tests.

Both count reads and writes; the relation-centric benchmarks report these
to show how much of a large operator was served from disk versus the pool.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

from ..errors import StorageError
from .page import PageId


@dataclass
class DiskStats:
    """I/O counters maintained by every disk manager."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    allocated_pages: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0


class DiskManager:
    """Abstract page-granular persistent store."""

    def __init__(self, page_size: int):
        self.page_size = page_size
        self.stats = DiskStats()
        self._next_page_id: PageId = 0

    def allocate_page(self) -> PageId:
        """Reserve a new page id (contents undefined until first write)."""
        page_id = self._next_page_id
        self._next_page_id += 1
        self.stats.allocated_pages += 1
        return page_id

    @property
    def num_pages(self) -> int:
        return self._next_page_id

    def read_page(self, page_id: PageId) -> bytes:
        raise NotImplementedError

    def write_page(self, page_id: PageId, data: bytes) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""

    def _check(self, page_id: PageId, data: bytes | None = None) -> None:
        if page_id < 0 or page_id >= self._next_page_id:
            raise StorageError(f"page {page_id} was never allocated")
        if data is not None and len(data) != self.page_size:
            raise StorageError(
                f"page write must be exactly {self.page_size} bytes, "
                f"got {len(data)}"
            )


class InMemoryDiskManager(DiskManager):
    """Dict-backed disk manager for tests and ephemeral databases."""

    def __init__(self, page_size: int):
        super().__init__(page_size)
        self._pages: dict[PageId, bytes] = {}

    def read_page(self, page_id: PageId) -> bytes:
        self._check(page_id)
        data = self._pages.get(page_id)
        if data is None:
            data = bytes(self.page_size)
        self.stats.reads += 1
        self.stats.bytes_read += self.page_size
        return data

    def write_page(self, page_id: PageId, data: bytes) -> None:
        self._check(page_id, data)
        self._pages[page_id] = bytes(data)
        self.stats.writes += 1
        self.stats.bytes_written += self.page_size


class FileDiskManager(DiskManager):
    """Single-file disk manager, one page per fixed-size slot.

    If no path is given, a temporary file is created and deleted on close.
    """

    def __init__(self, page_size: int, path: str | None = None):
        super().__init__(page_size)
        if path is None:
            fd, self._path = tempfile.mkstemp(prefix="repro-db-", suffix=".pages")
            self._owns_file = True
            self._file = os.fdopen(fd, "r+b")
        else:
            self._path = path
            self._owns_file = False
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
            existing = os.path.getsize(path)
            self._next_page_id = existing // page_size

    @property
    def path(self) -> str:
        return self._path

    def read_page(self, page_id: PageId) -> bytes:
        self._check(page_id)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:
            # Allocated but never written: zero-filled, like a sparse file.
            data = data.ljust(self.page_size, b"\x00")
        self.stats.reads += 1
        self.stats.bytes_read += self.page_size
        return data

    def write_page(self, page_id: PageId, data: bytes) -> None:
        self._check(page_id, data)
        self._file.seek(page_id * self.page_size)
        self._file.write(data)
        self.stats.writes += 1
        self.stats.bytes_written += self.page_size

    def close(self) -> None:
        if self._file.closed:
            return
        self._file.flush()
        self._file.close()
        if self._owns_file:
            try:
                os.unlink(self._path)
            except OSError:
                pass
