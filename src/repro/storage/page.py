"""Fixed-size pages, the unit of buffering and disk I/O."""

from __future__ import annotations

from ..errors import StorageError

PageId = int

INVALID_PAGE_ID: PageId = -1


class Page:
    """A pinned-counted, fixed-size byte buffer.

    Pages are owned by the buffer pool; operators obtain them through
    :meth:`repro.storage.buffer_pool.BufferPool.fetch_page` and must unpin
    them when done (the heap file does this internally).
    """

    __slots__ = ("page_id", "data", "pin_count", "dirty")

    def __init__(self, page_id: PageId, size: int):
        self.page_id = page_id
        self.data = bytearray(size)
        self.pin_count = 0
        self.dirty = False

    @property
    def size(self) -> int:
        return len(self.data)

    def pin(self) -> None:
        self.pin_count += 1

    def unpin(self, dirty: bool = False) -> None:
        if self.pin_count <= 0:
            raise StorageError(f"page {self.page_id} unpinned more times than pinned")
        self.pin_count -= 1
        if dirty:
            self.dirty = True

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > len(self.data):
            raise StorageError(
                f"read [{offset}, {offset + length}) out of bounds for page of "
                f"size {len(self.data)}"
            )
        return bytes(self.data[offset : offset + length])

    def write(self, offset: int, payload: bytes) -> None:
        if offset < 0 or offset + len(payload) > len(self.data):
            raise StorageError(
                f"write [{offset}, {offset + len(payload)}) out of bounds for "
                f"page of size {len(self.data)}"
            )
        self.data[offset : offset + len(payload)] = payload
        self.dirty = True

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, pins={self.pin_count}, "
            f"dirty={self.dirty}, size={len(self.data)})"
        )
