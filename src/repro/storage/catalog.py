"""The system catalog: tables, registered models, and vector indexes.

The paper argues that managing models *inside* the RDBMS catalog (Sec. 4)
binds each model to its storage representation and training metadata, which
enables the optimizer to pick representations per operator.  Our catalog
therefore tracks, for every registered model, both the in-process object and
the tensor-block tables created for its relation-centric representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..errors import CatalogError
from ..relational.schema import Schema
from .buffer_pool import BufferPool
from .heap import HeapFile
from .page import PageId
from .serde import RowSerde

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..dlruntime.layers import Model


@dataclass
class TableInfo:
    """Catalog entry for one relational table."""

    name: str
    schema: Schema
    heap: HeapFile
    row_count: int = 0

    @property
    def first_page_id(self) -> PageId:
        return self.heap.first_page_id


@dataclass
class ModelInfo:
    """Catalog entry for one registered model.

    ``block_tables`` maps parameter names (e.g. ``"fc1.weight"``) to the
    relational tables holding their tensor blocks, populated lazily the
    first time the relation-centric engine needs them.
    """

    name: str
    model: "Model"
    block_tables: dict[str, str] = field(default_factory=dict)
    versions: dict[str, "Model"] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)


class Catalog:
    """Name → object resolution for tables and models."""

    def __init__(self, pool: BufferPool):
        self._pool = pool
        self._tables: dict[str, TableInfo] = {}
        self._models: dict[str, ModelInfo] = {}

    @property
    def pool(self) -> BufferPool:
        return self._pool

    # -- tables --------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> TableInfo:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        heap = HeapFile(self._pool, RowSerde(schema))
        info = TableInfo(name=key, schema=schema, heap=heap)
        self._tables[key] = info
        return info

    def attach_table(self, info: TableInfo) -> None:
        """Re-register a table restored from a persisted catalog."""
        if info.name in self._tables:
            raise CatalogError(f"table {info.name!r} already exists")
        self._tables[info.name] = info

    def attach_model(self, info: ModelInfo) -> None:
        """Re-register a model restored from a persisted catalog."""
        if info.name in self._models:
            raise CatalogError(f"model {info.name!r} already registered")
        self._models[info.name] = info

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        del self._tables[key]

    def get_table(self, name: str) -> TableInfo:
        key = name.lower()
        info = self._tables.get(key)
        if info is None:
            raise CatalogError(f"no table named {name!r}")
        return info

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Iterator[TableInfo]:
        return iter(self._tables.values())

    # -- models ----------------------------------------------------------

    def register_model(self, name: str, model: "Model", **metadata: object) -> ModelInfo:
        key = name.lower()
        if key in self._models:
            raise CatalogError(f"model {name!r} already registered")
        info = ModelInfo(name=key, model=model, metadata=dict(metadata))
        self._models[key] = info
        return info

    def unregister_model(self, name: str) -> None:
        key = name.lower()
        if key not in self._models:
            raise CatalogError(f"no model named {name!r}")
        del self._models[key]

    def get_model(self, name: str) -> ModelInfo:
        key = name.lower()
        info = self._models.get(key)
        if info is None:
            raise CatalogError(f"no model named {name!r}")
        return info

    def has_model(self, name: str) -> bool:
        return name.lower() in self._models

    def models(self) -> Iterator[ModelInfo]:
        return iter(self._models.values())
