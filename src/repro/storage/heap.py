"""Heap files: slotted pages chained into an append-friendly table store.

Layout of a heap page::

    +--------------------------------------------------------------+
    | u16 slot_count | u32 data_start | i64 next_page_id | slots...|
    |  ...free space...                       records (grow down)  |
    +--------------------------------------------------------------+

Each slot is ``(u32 offset, u32 length, u8 flags)``.  Records larger than
the free space of an empty page are stored in *overflow chains*: the slot
payload then holds ``(i64 first_overflow_page, u32 total_length)`` and the
flag bit ``FLAG_OVERFLOW`` is set.  Tensor-block BLOBs routinely exceed the
page size, so overflow support is load-bearing for the relation-centric
engine, not an edge case.
"""

from __future__ import annotations

import struct
from typing import Iterator, NamedTuple, Sequence

from ..errors import StorageError
from .buffer_pool import BufferPool
from .page import INVALID_PAGE_ID, Page, PageId
from .serde import RowSerde

_HEADER = struct.Struct("<HIq")  # slot_count, data_start, next_page_id
_SLOT = struct.Struct("<IIB")  # offset, length, flags
_OVERFLOW_REF = struct.Struct("<qI")  # first overflow page id, total length
_OVERFLOW_HEADER = struct.Struct("<Iq")  # chunk length, next page id

FLAG_TOMBSTONE = 0x1
FLAG_OVERFLOW = 0x2


class RowId(NamedTuple):
    """Physical address of a row: (page, slot)."""

    page_id: PageId
    slot: int


class HeapFile:
    """An unordered collection of rows with stable :class:`RowId` addresses."""

    def __init__(self, pool: BufferPool, serde: RowSerde, first_page_id: PageId | None = None):
        self._pool = pool
        self._serde = serde
        if first_page_id is None:
            page = pool.new_page()
            try:
                self._init_page(page)
            finally:
                pool.unpin_page(page.page_id, dirty=True)
            self._first_page_id = page.page_id
            self._last_page_id = page.page_id
        else:
            self._first_page_id = first_page_id
            self._last_page_id = self._find_last_page(first_page_id)

    @property
    def first_page_id(self) -> PageId:
        return self._first_page_id

    @property
    def serde(self) -> RowSerde:
        return self._serde

    # -- page helpers ------------------------------------------------------

    @staticmethod
    def _init_page(page: Page) -> None:
        page.write(0, _HEADER.pack(0, page.size, INVALID_PAGE_ID))

    @staticmethod
    def _read_header(page: Page) -> tuple[int, int, PageId]:
        return _HEADER.unpack_from(page.data, 0)

    @staticmethod
    def _write_header(page: Page, slot_count: int, data_start: int, next_page: PageId) -> None:
        page.write(0, _HEADER.pack(slot_count, data_start, next_page))

    @staticmethod
    def _slot_offset(slot: int) -> int:
        return _HEADER.size + slot * _SLOT.size

    @classmethod
    def _read_slot(cls, page: Page, slot: int) -> tuple[int, int, int]:
        return _SLOT.unpack_from(page.data, cls._slot_offset(slot))

    @classmethod
    def _write_slot(cls, page: Page, slot: int, offset: int, length: int, flags: int) -> None:
        page.write(cls._slot_offset(slot), _SLOT.pack(offset, length, flags))

    def _find_last_page(self, first_page_id: PageId) -> PageId:
        page_id = first_page_id
        while True:
            page = self._pool.fetch_page(page_id)
            try:
                __, __, next_page = self._read_header(page)
            finally:
                self._pool.unpin_page(page_id)
            if next_page == INVALID_PAGE_ID:
                return page_id
            page_id = next_page

    def _free_space(self, page: Page) -> int:
        slot_count, data_start, __ = self._read_header(page)
        slots_end = self._slot_offset(slot_count)
        return data_start - slots_end

    # -- insertion ---------------------------------------------------------

    def insert(self, row: Sequence[object]) -> RowId:
        """Serialize and append one row; returns its stable address."""
        payload = self._serde.serialize(row)
        page_capacity = self._pool.disk.page_size - _HEADER.size - _SLOT.size
        if len(payload) > page_capacity:
            # Too big for any page: spill the payload to an overflow chain
            # and store only a reference slot inline.
            first_overflow = self._write_overflow_chain(payload)
            payload = _OVERFLOW_REF.pack(first_overflow, len(payload))
            flags = FLAG_OVERFLOW
        else:
            flags = 0
        page = self._pool.fetch_page(self._last_page_id)
        try:
            if self._free_space(page) < len(payload) + _SLOT.size:
                # _append_page transfers our pin to the fresh page.
                page = self._append_page(page)
            return self._insert_inline(page, payload, flags)
        finally:
            self._pool.unpin_page(page.page_id, dirty=True)

    def _append_page(self, current: Page) -> Page:
        """Link a fresh page after ``current`` and switch to it.

        The caller holds a pin on ``current``; on return the caller's pin is
        transferred to the new page (we unpin ``current`` here).
        """
        new_page = self._pool.new_page()
        self._init_page(new_page)
        slot_count, data_start, __ = self._read_header(current)
        self._write_header(current, slot_count, data_start, new_page.page_id)
        self._pool.unpin_page(current.page_id, dirty=True)
        self._last_page_id = new_page.page_id
        return new_page

    def _insert_inline(self, page: Page, payload: bytes, flags: int = 0) -> RowId:
        slot_count, data_start, next_page = self._read_header(page)
        offset = data_start - len(payload)
        page.write(offset, payload)
        self._write_slot(page, slot_count, offset, len(payload), flags)
        self._write_header(page, slot_count + 1, offset, next_page)
        return RowId(page.page_id, slot_count)

    def _write_overflow_chain(self, payload: bytes) -> PageId:
        chunk_capacity = self._pool.disk.page_size - _OVERFLOW_HEADER.size
        chunks = [
            payload[i : i + chunk_capacity]
            for i in range(0, len(payload), chunk_capacity)
        ] or [b""]
        first_page_id = INVALID_PAGE_ID
        prev: Page | None = None
        for chunk in chunks:
            page = self._pool.new_page()
            page.write(0, _OVERFLOW_HEADER.pack(len(chunk), INVALID_PAGE_ID))
            page.write(_OVERFLOW_HEADER.size, chunk)
            if prev is None:
                first_page_id = page.page_id
            else:
                length, __ = _OVERFLOW_HEADER.unpack_from(prev.data, 0)
                prev.write(0, _OVERFLOW_HEADER.pack(length, page.page_id))
                self._pool.unpin_page(prev.page_id, dirty=True)
            prev = page
        if prev is not None:
            self._pool.unpin_page(prev.page_id, dirty=True)
        return first_page_id

    def _read_overflow_chain(self, first_page_id: PageId, total_length: int) -> bytes:
        parts: list[bytes] = []
        page_id = first_page_id
        remaining = total_length
        while page_id != INVALID_PAGE_ID and remaining > 0:
            page = self._pool.fetch_page(page_id)
            try:
                length, next_page = _OVERFLOW_HEADER.unpack_from(page.data, 0)
                parts.append(page.read(_OVERFLOW_HEADER.size, length))
            finally:
                self._pool.unpin_page(page_id)
            remaining -= length
            page_id = next_page
        data = b"".join(parts)
        if len(data) != total_length:
            raise StorageError(
                f"overflow chain truncated: expected {total_length} bytes, "
                f"got {len(data)}"
            )
        return data

    # -- reads -------------------------------------------------------------

    def fetch(self, rid: RowId) -> tuple[object, ...]:
        """Read one row by address."""
        page = self._pool.fetch_page(rid.page_id)
        try:
            slot_count, __, __ = self._read_header(page)
            if rid.slot >= slot_count:
                raise StorageError(f"no slot {rid.slot} on page {rid.page_id}")
            offset, length, flags = self._read_slot(page, rid.slot)
            if flags & FLAG_TOMBSTONE:
                raise StorageError(f"row {rid} was deleted")
            payload = page.read(offset, length)
        finally:
            self._pool.unpin_page(rid.page_id)
        if flags & FLAG_OVERFLOW:
            first_overflow, total_length = _OVERFLOW_REF.unpack(payload)
            payload = self._read_overflow_chain(first_overflow, total_length)
        return self._serde.deserialize(payload)

    def delete(self, rid: RowId) -> None:
        """Tombstone one row (space is not reclaimed)."""
        page = self._pool.fetch_page(rid.page_id)
        try:
            offset, length, flags = self._read_slot(page, rid.slot)
            self._write_slot(page, rid.slot, offset, length, flags | FLAG_TOMBSTONE)
        finally:
            self._pool.unpin_page(rid.page_id, dirty=True)

    def scan(self) -> Iterator[tuple[RowId, tuple[object, ...]]]:
        """Yield every live row with its address, in physical order."""
        page_id = self._first_page_id
        while page_id != INVALID_PAGE_ID:
            page = self._pool.fetch_page(page_id)
            try:
                slot_count, __, next_page = self._read_header(page)
                slots = [self._read_slot(page, s) for s in range(slot_count)]
                payloads = [
                    (s, page.read(offset, length), flags)
                    for s, (offset, length, flags) in enumerate(slots)
                    if not flags & FLAG_TOMBSTONE
                ]
            finally:
                self._pool.unpin_page(page_id)
            for slot, payload, flags in payloads:
                if flags & FLAG_OVERFLOW:
                    first_overflow, total_length = _OVERFLOW_REF.unpack(payload)
                    payload = self._read_overflow_chain(first_overflow, total_length)
                yield RowId(page_id, slot), self._serde.deserialize(payload)
            page_id = next_page

    def count(self) -> int:
        """Number of live rows (full scan)."""
        return sum(1 for __ in self.scan())
