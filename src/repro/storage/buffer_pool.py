"""Buffer pool with pluggable eviction.

The buffer pool is the mechanism behind the paper's key Table 3 result:
relation-centric execution keeps only a bounded set of tensor-block pages in
memory and spills the rest, so operators whose tensors dwarf RAM still run.
The pool supports LRU and Clock replacement and exposes hit/miss/eviction
counters that the benchmarks report.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..errors import BufferPoolError, StorageError
from ..faults import NULL_INJECTOR, FaultInjector
from ..telemetry.registry import NULL_REGISTRY, MetricsRegistry
from .disk import DiskManager
from .page import Page, PageId


@dataclass
class BufferPoolStats:
    """Counters exposed for benchmark reporting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0


class EvictionPolicy:
    """Chooses a victim among unpinned resident pages."""

    def record_access(self, page_id: PageId) -> None:
        raise NotImplementedError

    def record_removal(self, page_id: PageId) -> None:
        raise NotImplementedError

    def choose_victim(self, pages: dict[PageId, Page]) -> PageId | None:
        """Return an unpinned page id to evict, or None if all are pinned."""
        raise NotImplementedError


class LruPolicy(EvictionPolicy):
    """Least-recently-used eviction."""

    def __init__(self) -> None:
        self._order: OrderedDict[PageId, None] = OrderedDict()

    def record_access(self, page_id: PageId) -> None:
        self._order.pop(page_id, None)
        self._order[page_id] = None

    def record_removal(self, page_id: PageId) -> None:
        self._order.pop(page_id, None)

    def choose_victim(self, pages: dict[PageId, Page]) -> PageId | None:
        for page_id in self._order:
            page = pages.get(page_id)
            if page is not None and page.pin_count == 0:
                return page_id
        return None


class ClockPolicy(EvictionPolicy):
    """Second-chance (clock) eviction."""

    def __init__(self) -> None:
        self._ref_bits: OrderedDict[PageId, bool] = OrderedDict()

    def record_access(self, page_id: PageId) -> None:
        if page_id not in self._ref_bits:
            self._ref_bits[page_id] = True
        else:
            self._ref_bits[page_id] = True

    def record_removal(self, page_id: PageId) -> None:
        self._ref_bits.pop(page_id, None)

    def choose_victim(self, pages: dict[PageId, Page]) -> PageId | None:
        # Sweep at most two full revolutions; clear reference bits as we go.
        candidates = list(self._ref_bits.keys())
        for _ in range(2):
            for page_id in candidates:
                page = pages.get(page_id)
                if page is None or page.pin_count > 0:
                    continue
                if self._ref_bits.get(page_id, False):
                    self._ref_bits[page_id] = False
                else:
                    return page_id
            candidates = list(self._ref_bits.keys())
        # Everything referenced once more: fall back to first unpinned.
        for page_id in candidates:
            page = pages.get(page_id)
            if page is not None and page.pin_count == 0:
                return page_id
        return None


class TwoQueuePolicy(EvictionPolicy):
    """Scan-resistant 2Q eviction (Johnson & Shasha, 1994, simplified).

    The paper's Sec. 5.1 notes that mixing tensor-block scans with
    relational working sets calls for a replacement policy beyond plain
    LRU: one relation-centric matmul sweeps thousands of block pages
    through the pool and, under LRU, flushes the hot relational pages.
    2Q parks first-touch pages in a FIFO probation queue (``A1``); only
    pages referenced *again* are promoted to the protected LRU (``Am``),
    so one-shot scan pages are evicted first and never displace the
    working set.
    """

    def __init__(self, probation_fraction: float = 0.25):
        if not 0.0 < probation_fraction < 1.0:
            raise BufferPoolError("probation_fraction must be in (0, 1)")
        self.probation_fraction = probation_fraction
        self._probation: OrderedDict[PageId, None] = OrderedDict()  # A1 (FIFO)
        self._protected: OrderedDict[PageId, None] = OrderedDict()  # Am (LRU)

    def record_access(self, page_id: PageId) -> None:
        if page_id in self._protected:
            self._protected.move_to_end(page_id)
        elif page_id in self._probation:
            # Second touch: promote out of probation.
            del self._probation[page_id]
            self._protected[page_id] = None
        else:
            self._probation[page_id] = None

    def record_removal(self, page_id: PageId) -> None:
        self._probation.pop(page_id, None)
        self._protected.pop(page_id, None)

    def choose_victim(self, pages: dict[PageId, Page]) -> PageId | None:
        total = len(self._probation) + len(self._protected)
        target_probation = max(1, int(total * self.probation_fraction))
        # Evict from probation first whenever it is at or over target —
        # this is what shields the protected set from scans.
        queues = (
            (self._probation, self._protected)
            if len(self._probation) >= target_probation
            else (self._protected, self._probation)
        )
        for queue in queues:
            for page_id in queue:
                page = pages.get(page_id)
                if page is not None and page.pin_count == 0:
                    return page_id
        return None


class BufferPool:
    """A fixed-capacity page cache over a :class:`DiskManager`."""

    def __init__(
        self,
        disk: DiskManager,
        capacity_pages: int,
        policy: EvictionPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        injector: FaultInjector | None = None,
    ):
        if capacity_pages < 1:
            raise BufferPoolError("buffer pool needs capacity of at least one page")
        self._disk = disk
        self._capacity = capacity_pages
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._policy = policy if policy is not None else LruPolicy()
        self._pages: dict[PageId, Page] = {}
        # One coarse lock over frame management: pin/unpin, eviction, and
        # the replacement policy's bookkeeping must be atomic when the
        # serving front-end runs concurrent readers over one pool.
        self._lock = threading.RLock()
        self.stats = BufferPoolStats()
        self.set_metrics(metrics)

    def set_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Mirror the pool's counters into a telemetry registry.

        The pool holds direct references to its counters, so the per-access
        cost is one no-op call when telemetry is disabled.
        """
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_hits = registry.counter(
            "bufferpool_hits_total", "Page requests served from memory"
        )
        self._m_misses = registry.counter(
            "bufferpool_misses_total", "Page requests that went to disk"
        )
        self._m_evictions = registry.counter(
            "bufferpool_evictions_total", "Pages evicted to free a frame"
        )
        self._m_writebacks = registry.counter(
            "bufferpool_dirty_writebacks_total", "Dirty pages written back on eviction"
        )
        self._m_resident = registry.gauge(
            "bufferpool_resident_pages", "Pages currently held in frames"
        )

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def disk(self) -> DiskManager:
        return self._disk

    def new_page(self) -> Page:
        """Allocate a fresh page on disk and pin it in the pool."""
        with self._lock:
            page_id = self._disk.allocate_page()
            self._ensure_frame_available()
            page = Page(page_id, self._disk.page_size)
            page.pin()
            page.dirty = True  # must reach disk at least once
            self._pages[page_id] = page
            self._policy.record_access(page_id)
            self._m_resident.set(len(self._pages))
            return page

    def fetch_page(self, page_id: PageId) -> Page:
        """Return the page pinned; loads from disk on a miss."""
        with self._lock:
            page = self._pages.get(page_id)
            if page is not None:
                self.stats.hits += 1
                self._m_hits.inc()
                page.pin()
                self._policy.record_access(page_id)
                return page
            self.stats.misses += 1
            self._m_misses.inc()
            self._ensure_frame_available()
            page = Page(page_id, self._disk.page_size)
            page.data[:] = self._disk.read_page(page_id)
            page.pin()
            self._pages[page_id] = page
            self._policy.record_access(page_id)
            self._m_resident.set(len(self._pages))
            return page

    def unpin_page(self, page_id: PageId, dirty: bool = False) -> None:
        with self._lock:
            page = self._pages.get(page_id)
            if page is None:
                raise StorageError(f"cannot unpin non-resident page {page_id}")
            page.unpin(dirty)

    def flush_page(self, page_id: PageId) -> None:
        with self._lock:
            page = self._pages.get(page_id)
            if page is None:
                return
            if page.dirty:
                self._disk.write_page(page_id, bytes(page.data))
                page.dirty = False

    def flush_all(self) -> None:
        with self._lock:
            for page_id in list(self._pages):
                self.flush_page(page_id)

    def _ensure_frame_available(self) -> None:
        if len(self._pages) < self._capacity:
            return
        # Fault site fires before any state changes, so a raised fault
        # leaves the pool exactly as it was (the caller's page request
        # fails but every resident page stays valid).
        self._injector.fire("bufferpool.evict", resident=len(self._pages))
        victim_id = self._policy.choose_victim(self._pages)
        if victim_id is None:
            raise BufferPoolError(
                f"all {self._capacity} buffer frames are pinned; cannot evict"
            )
        victim = self._pages.pop(victim_id)
        self._policy.record_removal(victim_id)
        self.stats.evictions += 1
        self._m_evictions.inc()
        self._m_resident.set(len(self._pages))
        if victim.dirty:
            self._disk.write_page(victim_id, bytes(victim.data))
            self.stats.dirty_writebacks += 1
            self._m_writebacks.inc()

    def pinned_page_count(self) -> int:
        with self._lock:
            return sum(1 for p in self._pages.values() if p.pin_count > 0)
