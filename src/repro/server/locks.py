"""A reentrant readers-writer lock for the Database concurrency contract.

The serving front-end's contract: **concurrent reads** (SELECT, PREDICT,
SHOW, EXPLAIN) share the lock; **DDL/DML and administrative changes**
(CREATE/DROP/INSERT/UPDATE/DELETE, ``set_option``, ``register_model``)
take it exclusively.  The lock is writer-preferring so a steady stream of
PREDICT traffic cannot starve a schema change.

Reentrancy rules, chosen to match how :class:`repro.session.Database`
nests its own calls:

* a thread already holding the read side may re-acquire it freely
  (``execute(SELECT)`` → planner → ``predict``);
* a thread holding the *write* side may acquire the read side as a no-op
  (``CREATE TABLE AS`` plans and runs its SELECT under the write lock);
* upgrading read → write is refused with ``RuntimeError`` (it deadlocks
  two upgraders against each other).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Writer-preferring, per-thread-reentrant readers/writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0  # threads holding the read side (once each)
        self._waiting_writers = 0
        self._writer: int | None = None  # ident of the write holder
        self._writer_depth = 0
        self._local = threading.local()

    # -- read side -------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        if self._writer == me:
            # Reads nested under this thread's own write are no-ops.
            self._local.read_under_write = (
                getattr(self._local, "read_under_write", 0) + 1
            )
            return
        depth = getattr(self._local, "read_depth", 0)
        if depth:
            self._local.read_depth = depth + 1
            return
        with self._cond:
            # Writer preference: new readers queue behind waiting writers.
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._active_readers += 1
        self._local.read_depth = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        if self._writer == me:
            nested = getattr(self._local, "read_under_write", 0)
            if nested <= 0:
                raise RuntimeError("release_read without matching acquire_read")
            self._local.read_under_write = nested - 1
            return
        depth = getattr(self._local, "read_depth", 0)
        if depth <= 0:
            raise RuntimeError("release_read without matching acquire_read")
        self._local.read_depth = depth - 1
        if depth == 1:
            with self._cond:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._cond.notify_all()

    # -- write side ------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if getattr(self._local, "read_depth", 0):
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock "
                    "(release the read side first)"
                )
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._active_readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write by a thread not holding it")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
