"""The concurrent serving front-end over one :class:`~repro.session.Database`.

``ModelServer`` turns the single-caller query engine into a request-level
model server: many client threads ``submit`` point requests and get
futures back; per-model :class:`~repro.server.batcher.MicroBatcher`\\ s
coalesce queued requests into batched engine invocations; an
:class:`~repro.server.admission.AdmissionController` bounds the queues
and sheds deadline-infeasible work; a small worker pool drains batches
through the existing hybrid engine under the database's read lock
(concurrent PREDICTs, serialized DDL/DML — see
:class:`~repro.server.locks.ReadWriteLock`).

Resilience: a per-model :class:`~repro.resilience.CircuitBreaker` gates
``submit`` — after repeated terminal failures the breaker opens and
requests fail fast with :class:`~repro.errors.CircuitOpenError` without
touching a queue or a worker, until a half-open probe succeeds and
closes it again.

Observability: ``server_*`` metrics (queue-depth gauges, batch-size
histogram, shed/expired counters, queue-vs-execute latency histograms),
per-batch tracer spans, and the ``SHOW SERVER`` SQL statement.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ServerClosedError,
    ServerOverloadedError,
)
from ..faults import NULL_INJECTOR, is_transient
from ..resilience import BreakerBoard
from ..serving.policy import ServiceTimeEstimator
from .admission import AdmissionController
from .batcher import Batch, MicroBatcher
from .futures import RequestFuture, RequestState, resolve_all

#: Row-count buckets for the batch-size histogram (1 .. 1024).
BATCH_ROW_BUCKETS: tuple[float, ...] = tuple(float(1 << p) for p in range(0, 11))

#: Request outcomes tracked under ``server_requests_total``.
REQUEST_OUTCOMES: tuple[str, ...] = (
    "submitted",  # accepted into a queue
    "completed",  # future resolved with predictions
    "failed",  # engine raised; error stored on the future
    "rejected",  # queue full: ServerOverloadedError backpressure
    "shed",  # admission predicted the deadline cannot be met
    "expired",  # deadline passed while queued; dropped at batch formation
    "broken",  # circuit breaker open: CircuitOpenError without execution
)


@dataclass
class _ModelState:
    """Everything the server keeps per served model."""

    batcher: MicroBatcher
    estimator: ServiceTimeEstimator
    drops_seen: int = 0  # deadline_drops already mirrored into metrics


class ModelServer:
    """A thread-safe, micro-batching request front-end for PREDICT."""

    def __init__(
        self,
        db,
        workers: int | None = None,
        max_batch_size: int | None = None,
        max_queue_delay_ms: float | None = None,
        queue_capacity: int | None = None,
        default_deadline_ms: float | None = None,
        retry_limit: int | None = None,
        retry_backoff_ms: float | None = None,
        cluster=None,
    ):
        config = db.config
        self._db = db
        #: Optional :class:`~repro.cluster.ClusterPool`.  When attached,
        #: batches execute on its worker processes instead of in-process;
        #: everything above the execute call (batching, admission,
        #: breakers, retries, tracing) is identical on both paths.
        self.cluster = cluster
        # Both paths route through the database's lifecycle catalog, so
        # canary/shadow deployments apply identically whether a batch
        # executes in-process or on cluster workers.
        self._predict_fn = (
            db.route_cluster_predict
            if cluster is not None
            else db.predict_labels
        )
        self._injector = getattr(db, "faults", NULL_INJECTOR)
        self.retry_limit = int(
            retry_limit if retry_limit is not None else config.server_retry_limit
        )
        self.retry_backoff_s = (
            retry_backoff_ms
            if retry_backoff_ms is not None
            else config.server_retry_backoff_ms
        ) / 1e3
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_ms must be >= 0")
        self.workers = int(workers if workers is not None else config.server_workers)
        self.max_batch_size = int(
            max_batch_size if max_batch_size is not None
            else config.server_max_batch_size
        )
        self.max_queue_delay_s = (
            max_queue_delay_ms
            if max_queue_delay_ms is not None
            else config.server_max_queue_delay_ms
        ) / 1e3
        self.queue_capacity = int(
            queue_capacity if queue_capacity is not None
            else config.server_queue_capacity
        )
        self.default_deadline_ms = (
            default_deadline_ms
            if default_deadline_ms is not None
            else config.server_default_deadline_ms
        )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self._admission = AdmissionController(
            self.queue_capacity, self.max_batch_size
        )
        #: Per-model circuit breakers (None when ``breaker_enabled=False``).
        self.breakers = (
            BreakerBoard.from_config(config) if config.breaker_enabled else None
        )
        self._models: dict[str, _ModelState] = {}
        self._work = threading.Condition()
        self._inflight = 0  # batches taken but not yet resolved
        self._stopping = False  # no new submits
        self._shutdown = False  # workers may exit
        self._next_id = itertools.count(1)
        self._rotation = 0  # round-robin start index for batcher picking
        self._postmortem_dumped = False  # first terminal failure only
        self.abandoned_total = 0  # requests failed by drain deadlines

        registry = db.telemetry.registry
        tracer = db.telemetry.tracer
        self._tracer = tracer
        self._recorder = db.telemetry.events
        self._slo = db.telemetry.slo
        if self.breakers is not None:
            self.breakers.recorder = self._recorder
        self._m_requests = {
            outcome: registry.counter(
                "server_requests_total",
                "Requests through the serving front-end, by outcome",
                outcome=outcome,
            )
            for outcome in REQUEST_OUTCOMES
        }
        self._m_batches = registry.counter(
            "server_batches_total", "Batched engine invocations dispatched"
        )
        self._m_batch_rows = registry.histogram(
            "server_batch_rows",
            "Rows coalesced per batched engine invocation",
            buckets=BATCH_ROW_BUCKETS,
        )
        self._m_queue_seconds = registry.histogram(
            "server_queue_seconds", "Per-request time queued before execution"
        )
        self._m_execute_seconds = registry.histogram(
            "server_execute_seconds", "Per-batch engine execution time"
        )
        self._m_cold_admissions = registry.counter(
            "server_cold_admissions_total",
            "Requests admitted without a feasibility check (estimator cold)",
        )
        self._registry = registry
        self._m_depth: dict[str, object] = {}

        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- client API ------------------------------------------------------

    def submit(
        self,
        model: str,
        features: np.ndarray,
        deadline_ms: float | None = None,
    ) -> RequestFuture:
        """Queue one inference request; returns its future.

        ``features`` is one row ``(d,)`` or a small row batch ``(n, d)``.
        ``deadline_ms`` is relative to now (None uses the server default;
        0 means no deadline).  Raises
        :class:`~repro.errors.ServerOverloadedError` when the model's
        queue is full, :class:`~repro.errors.CircuitOpenError` while the
        model's circuit breaker is open, and
        :class:`~repro.errors.ServerClosedError` after :meth:`close`.  A
        request shed for a provably unmeetable deadline returns normally
        — its future fails with
        :class:`~repro.errors.DeadlineExceededError`.
        """
        if self._stopping:
            raise ServerClosedError("server is closed to new requests")
        name = model.lower()
        state = self._model_state(name)
        breaker = self._breaker(name)
        if breaker is not None:
            allowed, breaker_state = breaker.allow()
            if not allowed:
                # Fail fast without touching the queue or a worker.
                self._m_requests["broken"].inc()
                self._recorder.emit(
                    "request.broken", model=name, breaker_state=breaker_state
                )
                raise CircuitOpenError(
                    name,
                    breaker_state,
                    detail=f"{breaker.rejected_total} requests rejected",
                )
        feats = np.asarray(features, dtype=np.float64)
        if feats.ndim == 1:
            feats = feats[np.newaxis, :]
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        now = time.monotonic()
        deadline = now + deadline_ms / 1e3 if deadline_ms else None
        future = RequestFuture(
            next(self._next_id), name, feats, deadline, enqueued_at=now
        )
        # Mint the request's trace root: a detached span closed by the
        # future on resolution (from whichever thread resolves it), plus
        # a TraceContext anchor workers re-enter to parent batch spans.
        span = self._tracer.start_span(
            f"request:{name}",
            category="server",
            model=name,
            request_id=future.request_id,
            rows=future.rows,
            deadline_ms=deadline_ms or 0.0,
        )
        future.span = span
        future.trace = span.context(
            model=name, request_id=future.request_id, deadline_ms=deadline_ms or 0.0
        )
        with self._work:
            if self._stopping:
                raise ServerClosedError("server is closed to new requests")
            batcher = state.batcher
            decision = self._admission.decide(
                state.estimator,
                batcher.queued_requests,
                batcher.queued_rows,
                future.rows,
                deadline,
                trace_id=future.trace_id,
                recorder=self._recorder if self._recorder.enabled else None,
            )
            if decision.action == "reject":
                self._m_requests["rejected"].inc()
                if breaker is not None:
                    # A half-open probe that never ran must not stay
                    # in flight; let a later arrival probe instead.
                    breaker.abandon_probe()
                self._recorder.emit(
                    "request.rejected",
                    trace_id=future.trace_id,
                    model=name,
                    request_id=future.request_id,
                    queued=batcher.queued_requests,
                )
                span.finish(outcome="rejected")
                raise ServerOverloadedError(
                    name, batcher.queued_requests, self.queue_capacity
                )
            if decision.action == "shed":
                self._m_requests["shed"].inc()
                if breaker is not None:
                    breaker.abandon_probe()
                self._recorder.emit(
                    "request.shed",
                    trace_id=future.trace_id,
                    model=name,
                    request_id=future.request_id,
                    reason=decision.reason,
                )
                future._fail(
                    DeadlineExceededError(
                        f"request shed before queuing: {decision.reason}"
                    ),
                    RequestState.SHED,
                )
                return future
            if decision.cold:
                self._m_cold_admissions.inc()
            batcher.put(future, front=decision.action == "fastpath")
            self._m_requests["submitted"].inc()
            self._recorder.emit(
                "request.admitted",
                trace_id=future.trace_id,
                model=name,
                request_id=future.request_id,
                rows=future.rows,
                action=decision.action,
                cold=decision.cold,
            )
            self._depth_gauge(name).set(batcher.queued_requests)
            self._work.notify_all()
        return future

    def predict(
        self,
        model: str,
        features: np.ndarray,
        deadline_ms: float | None = None,
        timeout: float | None = 30.0,
    ) -> np.ndarray:
        """Synchronous convenience: ``submit`` + ``result``."""
        return self.submit(model, features, deadline_ms).result(timeout)

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until every queued request resolved; False on timeout."""
        end = time.monotonic() + timeout
        with self._work:
            while True:
                idle = self._inflight == 0 and all(
                    s.batcher.queued_requests == 0 for s in self._models.values()
                )
                if idle:
                    return True
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._work.wait(min(remaining, 0.05))

    def close(
        self,
        drain: bool = True,
        timeout: float | None = None,
        drain_timeout_s: float | None = None,
    ) -> int:
        """Stop intake, drain queued work (bounded), join the workers.

        Graceful drain: intake stops first, then in-flight and queued
        requests get up to ``drain_timeout_s`` (aliases ``timeout``;
        default ``config.lifecycle_drain_timeout_s``) to finish.  With
        ``drain=False`` — or for whatever is still queued at the
        deadline — requests fail with
        :class:`~repro.errors.ServerClosedError`.  Returns the number of
        requests abandoned that way (0 on a clean drain); a non-zero
        count is also reported via a ``server.drain_abandoned``
        flight-recorder event.
        """
        if drain_timeout_s is not None:
            timeout = drain_timeout_s
        if timeout is None:
            timeout = self._db.config.lifecycle_drain_timeout_s
        with self._work:
            if self._shutdown:
                return 0
            self._stopping = True
            self._work.notify_all()
        drained = self.drain(timeout) if drain else False
        abandoned = 0
        with self._work:
            self._shutdown = True
            for state in self._models.values():
                leftovers = state.batcher.close()
                for request in leftovers:
                    request._fail(ServerClosedError("server closed"))
                    self._m_requests["failed"].inc()
                    abandoned += 1
            self._work.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        if abandoned:
            self.abandoned_total += abandoned
            self._recorder.emit(
                "server.drain_abandoned",
                count=abandoned,
                drained=drained,
                timeout_s=timeout,
            )
        if self.cluster is not None:
            self.cluster.close()
        self._db._detach_server(self)
        return abandoned

    @property
    def closed(self) -> bool:
        return self._shutdown

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- stats (SHOW SERVER / SHOW STATS) --------------------------------

    def stats_rows(self) -> list[tuple[str, object]]:
        """(stat, value) rows for ``SHOW SERVER``."""
        with self._work:
            rows: list[tuple[str, object]] = [
                ("server.workers", self.workers),
                ("server.max_batch_size", self.max_batch_size),
                ("server.max_queue_delay_ms", self.max_queue_delay_s * 1e3),
                ("server.queue_capacity", self.queue_capacity),
                ("server.retry_limit", self.retry_limit),
                ("server.retry_backoff_ms", self.retry_backoff_s * 1e3),
                ("server.retries", self._injector.retry_total),
                ("server.closed", self._shutdown),
                ("server.inflight_batches", self._inflight),
            ]
            for outcome in REQUEST_OUTCOMES:
                # Null metrics (telemetry disabled) report 0 here.
                rows.append(
                    (f"server.requests.{outcome}",
                     int(self._m_requests[outcome].value))
                )
            for name, state in sorted(self._models.items()):
                stats = state.batcher.stats
                rows.extend(
                    [
                        (f"server.model.{name}.queue_depth",
                         state.batcher.queued_requests),
                        (f"server.model.{name}.queued_rows",
                         state.batcher.queued_rows),
                        (f"server.model.{name}.target_batch_size",
                         state.batcher.target_batch_size),
                        (f"server.model.{name}.batches", stats.batches),
                        (f"server.model.{name}.rows_dispatched",
                         stats.rows_dispatched),
                        (f"server.model.{name}.mean_batch_rows",
                         round(stats.mean_batch_rows, 3)),
                        (f"server.model.{name}.largest_batch_rows",
                         stats.largest_batch_rows),
                        (f"server.model.{name}.deadline_drops",
                         stats.deadline_drops),
                        (f"server.model.{name}.estimated_row_seconds",
                         round(state.estimator.estimate_seconds(1), 9)),
                    ]
                )
            rows.append(
                ("server.cold_admissions", int(self._m_cold_admissions.value))
            )
            if self.breakers is not None:
                for breaker in self.breakers:
                    row = breaker.as_row()
                    rows.append((f"server.breaker.{row[0]}.state", row[1]))
                    rows.append(
                        (f"server.breaker.{row[0]}.failure_rate", row[2])
                    )
                    rows.append(
                        (f"server.breaker.{row[0]}.opened_total", row[4])
                    )
            if self.cluster is not None:
                # Worker-process rows appear only in cluster mode; the
                # thread path's output stays byte-for-byte unchanged.
                rows.extend(self.cluster.worker_rows(prefix="server"))
            return rows

    def queue_depths(self) -> dict[str, int]:
        """Queued requests per served model (for the health subsystem)."""
        with self._work:
            return {
                name: state.batcher.queued_requests
                for name, state in self._models.items()
            }

    # -- internals -------------------------------------------------------

    def _breaker(self, name: str):
        if self.breakers is None:
            return None
        return self.breakers.get(f"model:{name}")

    def _record_outcome(
        self, model: str, ok: bool, latency_ms: float = 0.0
    ) -> None:
        """Feed one terminal request outcome to the model's breaker and
        SLO window.  ``latency_ms`` is the client-visible latency (queue +
        execute) for completed requests; failures pass 0 — they count
        against the error budget regardless of how fast they failed."""
        self._slo.observe(model, ok, latency_ms)
        breaker = self._breaker(model)
        if breaker is None:
            return
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def _model_state(self, name: str) -> _ModelState:
        state = self._models.get(name)
        if state is not None:
            return state
        self._db.model_info(name)  # raises CatalogError for unknown models
        with self._work:
            state = self._models.get(name)
            if state is None:
                state = _ModelState(
                    batcher=MicroBatcher(
                        name,
                        self.max_batch_size,
                        self.max_queue_delay_s,
                        recorder=self._recorder,
                    ),
                    estimator=ServiceTimeEstimator(),
                )
                self._models[name] = state
        return state

    def _depth_gauge(self, name: str):
        gauge = self._m_depth.get(name)
        if gauge is None:
            gauge = self._registry.gauge(
                "server_queue_depth", "Requests queued per model", model=name
            )
            self._m_depth[name] = gauge
        return gauge

    def _pick_locked(self) -> MicroBatcher | None:
        """Round-robin over batchers with queued work (fairness across
        models); callers hold ``self._work``."""
        names = sorted(self._models)
        if not names:
            return None
        n = len(names)
        for i in range(n):
            state = self._models[names[(self._rotation + i) % n]]
            batcher = state.batcher
            if not batcher.leased and batcher.queued_requests:
                self._rotation = (self._rotation + i + 1) % n
                return batcher
        return None

    def _worker_loop(self) -> None:
        while True:
            batcher = None
            with self._work:
                while batcher is None:
                    if self._shutdown:
                        return
                    batcher = self._pick_locked()
                    if batcher is None:
                        self._work.wait(0.05)
                batcher.leased = True
                self._inflight += 1
            try:
                batch = batcher.collect(block=False)
            finally:
                with self._work:
                    batcher.leased = False
            if batch is None or not batch.requests:
                with self._work:
                    self._inflight -= 1
                    self._sync_drops_locked(batcher)
                    self._work.notify_all()
                continue
            try:
                self._execute_batch(batch)
            except BaseException as exc:  # unhandled: the postmortem path
                self._handle_worker_error(batch, exc)
            finally:
                with self._work:
                    self._inflight -= 1
                    self._sync_drops_locked(batcher)
                    self._depth_gauge(batch.model).set(batcher.queued_requests)
                    self._work.notify_all()

    def _handle_worker_error(self, batch: Batch, exc: BaseException) -> None:
        """Unhandled worker failure: fail the batch, record the postmortem.

        ``_execute_batch`` resolves expected engine errors onto futures;
        anything that escapes it is a server bug or an unmodeled fault,
        so the flight recorder logs it and — when ``diagnostics_dir`` is
        configured — a diagnostics bundle is written automatically.
        """
        self._recorder.emit(
            "server.worker_error",
            trace_id=batch.requests[0].trace_id if batch.requests else None,
            model=batch.model,
            error=type(exc).__name__,
            detail=str(exc)[:200],
        )
        unresolved = sum(1 for r in batch.requests if not r.done())
        resolve_all(batch.requests, exc)
        if unresolved:
            self._m_requests["failed"].inc(unresolved)
        self._record_outcome(batch.model, ok=False)
        self._db._maybe_dump_diagnostics("server.worker_error", error=exc)

    def _postmortem(self, exc: BaseException) -> None:
        """Auto-dump one bundle on the FIRST terminal request failure.

        A client-visible failure (retries and isolation exhausted) is the
        postmortem moment; later failures are already captured by the
        flight recorder inside that first bundle, so dumping once per
        server lifetime keeps failure storms from flooding
        ``diagnostics_dir``.
        """
        if self._postmortem_dumped:
            return
        self._postmortem_dumped = True
        self._db._maybe_dump_diagnostics("server.request_failed", error=exc)

    def _sync_drops_locked(self, batcher: MicroBatcher) -> None:
        """Mirror the batcher's deadline drops into the outcome counter."""
        state = self._models.get(batcher.model)
        if state is None:
            return
        drops = batcher.stats.deadline_drops
        if drops > state.drops_seen:
            new_drops = drops - state.drops_seen
            self._m_requests["expired"].inc(new_drops)
            state.drops_seen = drops
            # An expired request never completed: each one burns budget.
            for _ in range(new_drops):
                self._slo.observe(batcher.model, False, 0.0)

    def _execute_batch(self, batch: Batch) -> None:
        state = self._models[batch.model]
        features = (
            batch.requests[0].features
            if len(batch.requests) == 1
            else np.vstack([r.features for r in batch.requests])
        )
        started = time.monotonic()
        attempts = 0
        # The worker executes under the FIRST member's trace context: the
        # batch span (and every engine span under it) inherits that
        # request's trace id and parents to its root span; the other
        # members are attached via flow-event links.
        first = batch.requests[0]
        member_traces = tuple(
            r.trace_id for r in batch.requests if r.trace_id is not None
        )
        while True:
            try:
                with self._tracer.context(first.trace):
                    with self._tracer.span(
                        f"serve-batch:{batch.model}",
                        category="server",
                        rows=int(features.shape[0]),
                        requests=len(batch.requests),
                    ) as batch_span:
                        batch_span.link(
                            *(t for t in member_traces if t != first.trace_id)
                        )
                        start = time.perf_counter()
                        self._injector.fire(
                            "server.batch",
                            model=batch.model,
                            rows=int(features.shape[0]),
                            attempt=attempts,
                        )
                        predictions = self._predict_fn(
                            batch.model, features
                        )
                        execute_seconds = time.perf_counter() - start
                break
            except BaseException as exc:
                if is_transient(exc) and attempts < self.retry_limit:
                    attempts += 1
                    self._injector.record_retry("server.batch")
                    self._recorder.emit(
                        "request.retried",
                        trace_id=first.trace_id,
                        model=batch.model,
                        attempt=attempts,
                        error=type(exc).__name__,
                        traces=member_traces,
                    )
                    if self.retry_backoff_s:
                        time.sleep(self.retry_backoff_s * attempts)
                    continue
                if len(batch.requests) > 1:
                    # The batch is poisoned past its retry budget: isolate
                    # so only the poisoned request(s) fail, not all riders.
                    self._recorder.emit(
                        "batch.isolated",
                        trace_id=first.trace_id,
                        model=batch.model,
                        requests=len(batch.requests),
                        error=type(exc).__name__,
                        traces=member_traces,
                    )
                    self._execute_isolated(batch, started)
                    return
                self._recorder.emit(
                    "request.failed",
                    trace_id=first.trace_id,
                    model=batch.model,
                    request_id=first.request_id,
                    error=type(exc).__name__,
                )
                first._fail(exc)
                self._m_requests["failed"].inc()
                self._record_outcome(batch.model, ok=False)
                self._postmortem(exc)
                return
        if attempts:
            # Succeeded only because we retried past a transient fault.
            self._injector.record_recovery("server.batch")
        state.estimator.observe(int(features.shape[0]), execute_seconds)
        self._m_batches.inc()
        self._m_batch_rows.observe(float(features.shape[0]))
        self._m_execute_seconds.observe(execute_seconds)
        self._recorder.emit(
            "batch.executed",
            trace_id=first.trace_id,
            model=batch.model,
            rows=int(features.shape[0]),
            requests=len(batch.requests),
            attempts=attempts,
            execute_ms=round(execute_seconds * 1e3, 3),
            traces=member_traces,
        )
        offset = 0
        for request in batch.requests:
            rows = request.rows
            queue_seconds = max(0.0, started - request.enqueued_at)
            self._m_queue_seconds.observe(queue_seconds)
            request._resolve(
                predictions[offset : offset + rows], queue_seconds, execute_seconds
            )
            offset += rows
            self._recorder.emit(
                "request.completed",
                trace_id=request.trace_id,
                model=batch.model,
                request_id=request.request_id,
                queue_ms=round(queue_seconds * 1e3, 3),
                execute_ms=round(execute_seconds * 1e3, 3),
            )
            self._record_outcome(
                batch.model,
                ok=True,
                latency_ms=(queue_seconds + execute_seconds) * 1e3,
            )
        self._m_requests["completed"].inc(len(batch.requests))

    def _execute_isolated(self, batch: Batch, started: float) -> None:
        """Re-run a failed multi-request batch one request at a time.

        A fault that poisons the coalesced batch (one bad request, or a
        site that keeps firing) must not fail the innocent riders: each
        request gets its own engine invocation and only the ones that
        still fail see the error on their own future.
        """
        state = self._models[batch.model]
        succeeded = 0
        for request in batch.requests:
            try:
                # Each isolated run executes under its OWN request's
                # context, so rescue spans land in the right trace.
                with self._tracer.context(request.trace):
                    with self._tracer.span(
                        f"serve-isolated:{batch.model}",
                        category="server",
                        rows=request.rows,
                        requests=1,
                    ):
                        start = time.perf_counter()
                        self._injector.fire(
                            "server.batch",
                            model=batch.model,
                            rows=request.rows,
                            isolated=True,
                        )
                        predictions = self._predict_fn(
                            batch.model, request.features
                        )
                        execute_seconds = time.perf_counter() - start
            except BaseException as exc:
                self._recorder.emit(
                    "request.failed",
                    trace_id=request.trace_id,
                    model=batch.model,
                    request_id=request.request_id,
                    error=type(exc).__name__,
                    isolated=True,
                )
                request._fail(exc)
                self._m_requests["failed"].inc()
                self._record_outcome(batch.model, ok=False)
                self._postmortem(exc)
                continue
            state.estimator.observe(request.rows, execute_seconds)
            queue_seconds = max(0.0, started - request.enqueued_at)
            self._m_queue_seconds.observe(queue_seconds)
            request._resolve(predictions, queue_seconds, execute_seconds)
            self._recorder.emit(
                "request.completed",
                trace_id=request.trace_id,
                model=batch.model,
                request_id=request.request_id,
                queue_ms=round(queue_seconds * 1e3, 3),
                execute_ms=round(execute_seconds * 1e3, 3),
                isolated=True,
            )
            self._m_requests["completed"].inc()
            self._record_outcome(
                batch.model,
                ok=True,
                latency_ms=(queue_seconds + execute_seconds) * 1e3,
            )
            succeeded += 1
        if succeeded:
            # Isolation salvaged at least part of a poisoned batch.
            self._injector.record_recovery("server.batch")
