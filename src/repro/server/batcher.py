"""Dynamic micro-batching: coalesce point requests into engine batches.

One :class:`MicroBatcher` guards one model's request queue.  A serving
worker calls :meth:`collect`, which blocks until at least one request is
queued, then holds the batch open for up to ``max_queue_delay_s`` (or
until ``target_batch_size`` rows have accumulated) so concurrent point
requests coalesce into a single batched engine invocation.

The target grows adaptively: if requests are still queued after a batch
is taken, the next window aims for twice as many rows (up to
``max_batch_size``); when the queue drains, the target decays back so an
idle stream is served at batch≈1 with no added latency.  This is the
classic dynamic-batching trade — amortise per-invocation overhead under
load, stay latency-optimal when unloaded — applied to PREDICT calls.

Expired requests (deadline already passed) are shed at collection time
instead of wasting engine work; their futures fail with
:class:`~repro.errors.DeadlineExceededError`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..errors import DeadlineExceededError
from ..telemetry.events import NULL_RECORDER
from .futures import RequestFuture, RequestState


@dataclass
class BatcherStats:
    """Lifetime counters for one model's micro-batcher."""

    batches: int = 0
    rows_dispatched: int = 0
    requests_dispatched: int = 0
    deadline_drops: int = 0
    largest_batch_rows: int = 0

    @property
    def mean_batch_rows(self) -> float:
        return self.rows_dispatched / self.batches if self.batches else 0.0


@dataclass
class Batch:
    """One coalesced unit of work handed to a serving worker."""

    model: str
    requests: list[RequestFuture] = field(default_factory=list)

    @property
    def rows(self) -> int:
        return sum(r.rows for r in self.requests)


class MicroBatcher:
    """A bounded-delay, adaptively sized request coalescer for one model."""

    def __init__(
        self,
        model: str,
        max_batch_size: int,
        max_queue_delay_s: float,
        clock=time.monotonic,
        recorder=None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_queue_delay_s < 0:
            raise ValueError("max_queue_delay_s must be >= 0")
        self.model = model
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        self.max_batch_size = max_batch_size
        self.max_queue_delay_s = max_queue_delay_s
        self.stats = BatcherStats()
        self._clock = clock
        self._cond = threading.Condition()
        self._pending: deque[RequestFuture] = deque()
        self._queued_rows = 0
        self._target = 1  # adaptive row target for the next window
        self._closed = False
        #: Worker-lease flag: only one worker drains this model at a time,
        #: so the delay window is not split across workers.
        self.leased = False

    # -- queue state -----------------------------------------------------

    @property
    def queued_requests(self) -> int:
        return len(self._pending)

    @property
    def queued_rows(self) -> int:
        return self._queued_rows

    @property
    def target_batch_size(self) -> int:
        return self._target

    @property
    def closed(self) -> bool:
        return self._closed

    # -- intake ----------------------------------------------------------

    def put(self, request: RequestFuture, front: bool = False) -> None:
        """Enqueue a request (``front=True`` fast-paths a tight deadline)."""
        with self._cond:
            if front:
                self._pending.appendleft(request)
            else:
                self._pending.append(request)
            self._queued_rows += request.rows
            self._cond.notify_all()

    # -- batch formation -------------------------------------------------

    def collect(
        self, block: bool = True, poll_interval_s: float = 0.05
    ) -> Batch | None:
        """The next batch; None once closed and drained.

        Returns a non-empty :class:`Batch` whose requests are removed
        from the queue.  Expired requests encountered while forming the
        batch are failed (deadline drop) and never returned.  With
        ``block=False`` an empty queue returns None immediately instead
        of waiting for the first request (the serving workers use this so
        a queue emptied by shedding never wedges a worker).
        """
        with self._cond:
            while True:
                while not self._pending and not self._closed:
                    if not block:
                        return None
                    self._cond.wait(poll_interval_s)
                if not self._pending:
                    return None  # closed and drained
                self._shed_expired_locked()
                if not self._pending:
                    if not block or self._closed:
                        return None
                    continue
                # Hold the window open for stragglers: bounded by the
                # oldest request's enqueue time plus the max delay.
                window_end = self._pending[0].enqueued_at + self.max_queue_delay_s
                now = self._clock()
                while (
                    self._queued_rows < self._target
                    and now < window_end
                    and not self._closed
                ):
                    self._cond.wait(min(window_end - now, poll_interval_s))
                    now = self._clock()
                self._shed_expired_locked()
                if not self._pending:
                    continue
                batch = Batch(self.model)
                rows = 0
                while self._pending:
                    nxt = self._pending[0]
                    if batch.requests and rows + nxt.rows > self.max_batch_size:
                        break
                    self._pending.popleft()
                    self._queued_rows -= nxt.rows
                    batch.requests.append(nxt)
                    rows += nxt.rows
                self._adapt_locked()
                self.stats.batches += 1
                self.stats.requests_dispatched += len(batch.requests)
                self.stats.rows_dispatched += rows
                self.stats.largest_batch_rows = max(
                    self.stats.largest_batch_rows, rows
                )
                self._recorder.emit(
                    "batch.formed",
                    trace_id=batch.requests[0].trace_id,
                    model=self.model,
                    requests=len(batch.requests),
                    rows=rows,
                    traces=tuple(
                        r.trace_id for r in batch.requests
                        if r.trace_id is not None
                    ),
                )
                return batch

    def _shed_expired_locked(self) -> None:
        now = self._clock()
        kept: deque[RequestFuture] = deque()
        while self._pending:
            request = self._pending.popleft()
            if request.expired(now):
                self._queued_rows -= request.rows
                self.stats.deadline_drops += 1
                self._recorder.emit(
                    "request.expired",
                    trace_id=request.trace_id,
                    model=request.model,
                    request_id=request.request_id,
                    queued_s=round(now - request.enqueued_at, 4),
                )
                request._fail(
                    DeadlineExceededError(
                        f"request {request.request_id} for model "
                        f"{request.model!r} expired after "
                        f"{now - request.enqueued_at:.4f}s in queue"
                    ),
                    RequestState.SHED,
                )
            else:
                kept.append(request)
        self._pending = kept

    def _adapt_locked(self) -> None:
        if self._pending:
            # Still backed up: aim bigger next time (batch growth).
            self._target = min(self.max_batch_size, max(2, self._target * 2))
        else:
            # Queue drained: decay toward latency-optimal batch≈1.
            self._target = max(1, self._target // 2)

    # -- shutdown --------------------------------------------------------

    def close(self) -> list[RequestFuture]:
        """Stop intake; returns any requests still queued (unresolved)."""
        with self._cond:
            self._closed = True
            leftovers = list(self._pending)
            self._pending.clear()
            self._queued_rows = 0
            self._cond.notify_all()
        return leftovers
