"""Admission control: bounded queues, backpressure, SLA-aware shedding.

Every ``submit`` passes through :meth:`AdmissionController.decide` before
touching a queue.  Three outcomes:

* **reject** — the model's queue is at capacity.  The caller raises
  :class:`~repro.errors.ServerOverloadedError` synchronously; this is the
  backpressure signal that tells well-behaved clients to slow down.
* **shed** — the request carries a deadline that the current queue
  provably cannot meet: predicted wait (from the model's
  :class:`~repro.serving.policy.ServiceTimeEstimator`) plus predicted
  execution time already exceeds the remaining slack.  The request is
  dropped *before* queuing — its future fails immediately with
  :class:`~repro.errors.DeadlineExceededError` — so doomed work never
  occupies a batch slot.  Shedding only kicks in once the estimator has
  seen enough batches to be trusted.
* **admit** — queued normally, or **fast-pathed** to the queue front when
  the deadline is meetable but too tight to survive waiting behind the
  whole queue.

Cold start: before the estimator has seen ``min_observations`` batches
its predictions cannot be trusted, so feasibility checks are skipped and
the request is admitted with ``cold=True`` (``reason="estimator cold"``)
— a conservative default the server counts under
``server_cold_admissions_total``.  An already-expired deadline is shed
even cold: no estimate is needed to know slack <= 0 is unmeetable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..serving.policy import ServiceTimeEstimator


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict for one submit."""

    action: str  # "admit" | "fastpath" | "reject" | "shed"
    reason: str
    estimated_wait_s: float = 0.0
    estimated_execute_s: float = 0.0
    #: Admitted without a feasibility check because the service-time
    #: estimator had too few observations to be trusted.
    cold: bool = False

    @property
    def admitted(self) -> bool:
        return self.action in ("admit", "fastpath")


class AdmissionController:
    """Per-model queue bounds plus deadline-feasibility shedding."""

    def __init__(
        self,
        queue_capacity: int,
        max_batch_size: int,
        clock=time.monotonic,
    ):
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.queue_capacity = queue_capacity
        self.max_batch_size = max_batch_size
        self._clock = clock

    def decide(
        self,
        estimator: ServiceTimeEstimator,
        queued_requests: int,
        queued_rows: int,
        rows: int,
        deadline: float | None,
        trace_id: int | None = None,
        recorder=None,
    ) -> AdmissionDecision:
        """Admit, fast-path, reject, or shed one incoming request.

        When a flight ``recorder`` is supplied the verdict is logged as
        an ``admission.decision`` event under the request's trace id.
        """
        decision = self._decide(
            estimator, queued_requests, queued_rows, rows, deadline
        )
        if recorder is not None:
            recorder.emit(
                "admission.decision",
                trace_id=trace_id,
                action=decision.action,
                reason=decision.reason,
                queued_requests=queued_requests,
                queued_rows=queued_rows,
                cold=decision.cold,
            )
        return decision

    def _decide(
        self,
        estimator: ServiceTimeEstimator,
        queued_requests: int,
        queued_rows: int,
        rows: int,
        deadline: float | None,
    ) -> AdmissionDecision:
        if queued_requests >= self.queue_capacity:
            return AdmissionDecision(
                action="reject",
                reason=(
                    f"queue full: {queued_requests} requests "
                    f"(capacity {self.queue_capacity})"
                ),
            )
        if deadline is None:
            return AdmissionDecision(action="admit", reason="no deadline check")
        now = self._clock()
        slack = deadline - now
        execute = estimator.estimate_seconds(rows)
        if slack <= 0:
            return AdmissionDecision(
                action="shed",
                reason="deadline already passed at submission",
                estimated_execute_s=execute,
            )
        if not estimator.confident:
            return AdmissionDecision(
                action="admit", reason="estimator cold", cold=True
            )
        wait = estimator.estimate_wait_seconds(queued_rows, self.max_batch_size)
        if execute > slack:
            # Not even an empty queue could save it: shed outright.
            return AdmissionDecision(
                action="shed",
                reason=(
                    f"execution alone needs ~{execute * 1e3:.2f}ms, "
                    f"deadline slack is {slack * 1e3:.2f}ms"
                ),
                estimated_wait_s=wait,
                estimated_execute_s=execute,
            )
        if wait + execute > slack:
            # Meetable without the queue ahead of it: fast-path to the
            # front rather than dropping a request we could still serve.
            return AdmissionDecision(
                action="fastpath",
                reason=(
                    f"queue wait ~{wait * 1e3:.2f}ms would blow the "
                    f"{slack * 1e3:.2f}ms slack; jumping the queue"
                ),
                estimated_wait_s=wait,
                estimated_execute_s=execute,
            )
        return AdmissionDecision(
            action="admit",
            reason="deadline feasible at current depth",
            estimated_wait_s=wait,
            estimated_execute_s=execute,
        )
