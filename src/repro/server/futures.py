"""Per-request futures handed back by :meth:`ModelServer.submit`.

A :class:`RequestFuture` is the client's handle to one in-flight
inference request: it blocks on :meth:`result` until the micro-batcher
has executed the batch containing the request, then yields the
per-request slice of the batched prediction.  Failures (deadline drops,
engine errors, server shutdown) surface as the stored exception.

The server also keeps its scheduling metadata here — enqueue time,
deadline, and the measured queue-vs-execute split — so telemetry can
attribute latency without a side table.
"""

from __future__ import annotations

import enum
import threading
import time

import numpy as np

from ..errors import ServerError


class RequestState(enum.Enum):
    """Lifecycle of one submitted request."""

    PENDING = "pending"  # queued, waiting for a batch slot
    DONE = "done"  # prediction available
    FAILED = "failed"  # engine raised; exception stored
    SHED = "shed"  # dropped by admission control or deadline policy


class RequestFuture:
    """A write-once result slot resolved by a serving worker."""

    def __init__(
        self,
        request_id: int,
        model: str,
        features: np.ndarray,
        deadline: float | None,
        enqueued_at: float | None = None,
    ):
        self.request_id = request_id
        self.model = model
        self.features = features
        #: Absolute ``time.monotonic()`` deadline, or None for no SLA.
        self.deadline = deadline
        self.enqueued_at = (
            enqueued_at if enqueued_at is not None else time.monotonic()
        )
        #: Seconds spent queued before its batch started executing.
        self.queue_seconds: float | None = None
        #: Seconds the batch containing this request spent in the engine.
        self.execute_seconds: float | None = None
        #: Trace anchor minted at submit (None when tracing is disabled);
        #: workers execute the batch under a member's context so engine
        #: spans inherit its trace id.
        self.trace = None
        #: Detached request-lifecycle span, closed on resolution from
        #: whichever thread resolves the future.
        self.span = None
        self._event = threading.Event()
        self._state = RequestState.PENDING
        self._result: np.ndarray | None = None
        self._exception: BaseException | None = None

    @property
    def rows(self) -> int:
        return int(self.features.shape[0])

    @property
    def trace_id(self) -> int | None:
        """The request's trace id (None when tracing is disabled)."""
        return self.trace.trace_id if self.trace is not None else None

    @property
    def state(self) -> RequestState:
        return self._state

    def done(self) -> bool:
        return self._event.is_set()

    def shed(self) -> bool:
        return self._state is RequestState.SHED

    def expired(self, now: float | None = None) -> bool:
        """True if the deadline has passed (False when there is none)."""
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) > self.deadline

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until resolved; returns predictions or raises the failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} for model {self.model!r} "
                f"did not resolve within {timeout}s"
            )
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until resolved; returns the stored failure (None if ok)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} for model {self.model!r} "
                f"did not resolve within {timeout}s"
            )
        return self._exception

    # -- resolution (server side) ----------------------------------------

    def _resolve(
        self,
        predictions: np.ndarray,
        queue_seconds: float,
        execute_seconds: float,
    ) -> None:
        self.queue_seconds = queue_seconds
        self.execute_seconds = execute_seconds
        self._result = predictions
        self._state = RequestState.DONE
        self._event.set()
        if self.span is not None:
            self.span.finish(
                outcome="completed",
                queue_ms=round(queue_seconds * 1e3, 3),
                execute_ms=round(execute_seconds * 1e3, 3),
            )

    def _fail(
        self, exc: BaseException, state: RequestState = RequestState.FAILED
    ) -> None:
        self._exception = exc
        self._state = state
        self._event.set()
        if self.span is not None:
            self.span.finish(outcome=state.value, error=type(exc).__name__)

    def __repr__(self) -> str:
        return (
            f"RequestFuture(id={self.request_id}, model={self.model!r}, "
            f"rows={self.rows}, state={self._state.value})"
        )


def resolve_all(
    futures: list[RequestFuture], exc: BaseException | None = None
) -> None:
    """Fail every unresolved future in ``futures`` (shutdown/batch error)."""
    error = exc if exc is not None else ServerError("request abandoned")
    for future in futures:
        if not future.done():
            future._fail(error)
