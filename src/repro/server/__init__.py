"""Concurrent serving front-end: scheduler, micro-batching, admission.

The request-level tier the paper's "serve heavy traffic" goal needs on
top of the query engine: many client threads submit point PREDICT
requests, a dynamic micro-batcher coalesces them into batched engine
invocations, and admission control keeps latency SLAs honest under load.
Construct one via :meth:`repro.Database.serve`.
"""

from .admission import AdmissionController, AdmissionDecision
from .batcher import Batch, BatcherStats, MicroBatcher
from .futures import RequestFuture, RequestState, resolve_all
from .locks import ReadWriteLock
from .server import BATCH_ROW_BUCKETS, REQUEST_OUTCOMES, ModelServer

__all__ = [
    "ModelServer",
    "MicroBatcher",
    "Batch",
    "BatcherStats",
    "AdmissionController",
    "AdmissionDecision",
    "RequestFuture",
    "RequestState",
    "resolve_all",
    "ReadWriteLock",
    "BATCH_ROW_BUCKETS",
    "REQUEST_OUTCOMES",
]
