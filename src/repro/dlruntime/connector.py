"""ConnectorX-style cross-system data transfer.

The paper's DL-centric baselines pull samples out of PostgreSQL through
ConnectorX before handing them to TensorFlow/PyTorch.  This connector does
the analogous *real work*: it scans heap rows through the buffer pool,
serializes them into a columnar byte buffer (the wire format), then
deserializes that buffer into numpy arrays on the "framework side".  The
copy through bytes is genuine CPU cost; on top of it, a
:class:`~repro.config.ConnectorCostModel` supplies the modeled wire time
for the deployment being simulated, which benchmarks report separately.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass

import numpy as np

from ..config import ConnectorCostModel
from ..errors import ExecutionError
from ..relational.operators.base import Operator
from ..relational.schema import ColumnType

_U32 = struct.Struct("<I")


@dataclass
class ExtractResult:
    """Arrays delivered to the framework side, plus transfer accounting."""

    columns: dict[str, np.ndarray]
    num_rows: int
    wire_bytes: int
    serialize_seconds: float
    modeled_wire_seconds: float

    def feature_matrix(self, names: list[str]) -> np.ndarray:
        """Stack named numeric columns into a (rows, features) matrix."""
        return np.column_stack([self.columns[n.lower()] for n in names])


class Connector:
    """Extracts query results across the RDBMS ↔ framework boundary."""

    def __init__(self, cost_model: ConnectorCostModel | None = None):
        self._cost_model = cost_model if cost_model is not None else ConnectorCostModel()
        self.total_bytes_moved = 0
        self.total_rows_moved = 0

    def extract(self, source: Operator, batch_size: int = 8192) -> ExtractResult:
        """Run ``source`` and move its output to the framework side.

        Only numeric and BLOB columns can cross the boundary (matching the
        arrays a DL framework consumes).  BLOB columns are delivered as
        float64 matrices with one row per tuple.
        """
        schema = source.schema
        for col in schema:
            if col.ctype is ColumnType.TEXT:
                raise ExecutionError(
                    f"connector cannot transfer TEXT column {col.name!r}; "
                    "project it away first"
                )
        start = time.perf_counter()
        wire_chunks: list[bytes] = []
        num_rows = 0
        for batch in _batched(source, batch_size):
            wire_chunks.append(self._serialize_batch(schema, batch))
            num_rows += len(batch)
        wire = b"".join(
            _U32.pack(len(chunk)) + chunk for chunk in wire_chunks
        )
        columns = self._deserialize(schema, wire, num_rows)
        elapsed = time.perf_counter() - start
        wire_bytes = len(wire)
        self.total_bytes_moved += wire_bytes
        self.total_rows_moved += num_rows
        modeled = self._cost_model.wire_time(
            wire_bytes, num_rows, nbatches=max(1, len(wire_chunks))
        )
        return ExtractResult(
            columns=columns,
            num_rows=num_rows,
            wire_bytes=wire_bytes,
            serialize_seconds=elapsed,
            modeled_wire_seconds=modeled,
        )

    # -- wire format -----------------------------------------------------

    @staticmethod
    def _serialize_batch(schema, batch: list[tuple]) -> bytes:
        """Columnar batch: for each column, a contiguous value array."""
        parts: list[bytes] = [_U32.pack(len(batch))]
        for idx, col in enumerate(schema):
            values = [row[idx] for row in batch]
            if col.ctype is ColumnType.BLOB:
                for value in values:
                    payload = value if value is not None else b""
                    parts.append(_U32.pack(len(payload)))
                    parts.append(bytes(payload))
            else:
                array = np.array(
                    [0.0 if v is None else float(v) for v in values], dtype=np.float64
                )
                parts.append(array.tobytes())
        return b"".join(parts)

    @staticmethod
    def _deserialize(schema, wire: bytes, total_rows: int) -> dict[str, np.ndarray]:
        columns: dict[str, list[np.ndarray]] = {col.name: [] for col in schema}
        offset = 0
        while offset < len(wire):
            (chunk_len,) = _U32.unpack_from(wire, offset)
            offset += 4
            chunk_end = offset + chunk_len
            (nrows,) = _U32.unpack_from(wire, offset)
            offset += 4
            for col in schema:
                if col.ctype is ColumnType.BLOB:
                    blobs = []
                    for __ in range(nrows):
                        (blen,) = _U32.unpack_from(wire, offset)
                        offset += 4
                        blobs.append(
                            np.frombuffer(wire[offset : offset + blen], dtype=np.float64)
                        )
                        offset += blen
                    if blobs:
                        columns[col.name].append(np.vstack(blobs))
                else:
                    nbytes = nrows * 8
                    columns[col.name].append(
                        np.frombuffer(wire[offset : offset + nbytes], dtype=np.float64)
                    )
                    offset += nbytes
            if offset != chunk_end:
                raise ExecutionError("connector wire format corrupted")
        out: dict[str, np.ndarray] = {}
        for col in schema:
            chunks = columns[col.name]
            if not chunks:
                out[col.name] = np.zeros(0)
            elif col.ctype is ColumnType.BLOB:
                out[col.name] = np.vstack(chunks)
            else:
                out[col.name] = np.concatenate(chunks)
            if col.ctype is ColumnType.INT:
                out[col.name] = out[col.name].astype(np.int64)
        return out


def _batched(source: Operator, batch_size: int):
    batch: list[tuple] = []
    for row in source:
        batch.append(row)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
