"""Layers and models.

A :class:`Model` is an ordered stack of layers with named parameters.  The
same parameter arrays serve three execution paths:

* ``forward`` — whole-tensor numpy inference with memory accounting (used
  by the DL-centric stand-in and the UDF-centric engine),
* ``forward_ad`` — the autodiff tape (training extension, Sec. 6.1),
* the relation-centric engine, which reads the parameters through
  :meth:`Model.layers` and lowers each layer to join+aggregation pipelines.

Layouts: vector inputs are ``(batch, features)``; image inputs are
``(batch, H, W, C)``.  Linear weights are ``(in_features, out_features)``
so that ``y = x @ W + b`` (the paper's ``X × Wᵀ`` with ``W`` stored
pre-transposed).
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

from ..errors import ModelError, ShapeError
from ..tensor.im2col import conv_output_shape
from .autodiff import ADTensor, _batch_im2col
from .memory import MemoryBudget


class Layer:
    """Base layer: shape algebra, parameters, and both forward paths."""

    name: str = "layer"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward_ad(self, x: ADTensor) -> ADTensor:
        raise NotImplementedError

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Per-sample output shape given a per-sample input shape."""
        raise NotImplementedError

    def parameters(self) -> dict[str, ADTensor]:
        return {}

    @property
    def param_count(self) -> int:
        return sum(p.data.size for p in self.parameters().values())

    @property
    def param_bytes(self) -> int:
        return sum(p.data.nbytes for p in self.parameters().values())

    def flops(self, input_shape: tuple[int, ...]) -> int:
        """Per-sample floating point operations."""
        return int(np.prod(self.output_shape(input_shape)))

    def describe(self) -> str:
        return type(self).__name__


class Linear(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight: np.ndarray | None = None,
        bias: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        name: str = "linear",
    ):
        if in_features <= 0 or out_features <= 0:
            raise ModelError("Linear dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        if weight is None:
            rng = rng if rng is not None else np.random.default_rng(0)
            scale = math.sqrt(2.0 / in_features)
            weight = rng.normal(scale=scale, size=(in_features, out_features))
        if bias is None:
            bias = np.zeros(out_features)
        weight = np.asarray(weight, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if weight.shape != (in_features, out_features):
            raise ShapeError(
                f"Linear weight must be ({in_features}, {out_features}), "
                f"got {weight.shape}"
            )
        if bias.shape != (out_features,):
            raise ShapeError(f"Linear bias must be ({out_features},), got {bias.shape}")
        self.weight = ADTensor(weight, requires_grad=True, name=f"{name}.weight")
        self.bias = ADTensor(bias, requires_grad=True, name=f"{name}.bias")

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name} expects (batch, {self.in_features}), got {x.shape}"
            )
        return x @ self.weight.data + self.bias.data

    def forward_ad(self, x: ADTensor) -> ADTensor:
        return x.matmul(self.weight).add(self.bias)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ShapeError(
                f"{self.name} expects per-sample shape ({self.in_features},), "
                f"got {input_shape}"
            )
        return (self.out_features,)

    def parameters(self) -> dict[str, ADTensor]:
        return {"weight": self.weight, "bias": self.bias}

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 2 * self.in_features * self.out_features

    def describe(self) -> str:
        return f"Linear({self.in_features} -> {self.out_features})"


class ReLU(Layer):
    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def forward_ad(self, x: ADTensor) -> ADTensor:
        return x.relu()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Sigmoid(Layer):
    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    def forward_ad(self, x: ADTensor) -> ADTensor:
        return x.sigmoid()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Softmax(Layer):
    """Row-wise softmax over the last axis (inference only)."""

    name = "softmax"

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def forward_ad(self, x: ADTensor) -> ADTensor:
        # Training uses the fused softmax_cross_entropy on logits instead.
        raise ModelError(
            "Softmax has no standalone autodiff path; train on logits with "
            "softmax_cross_entropy"
        )

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Conv2d(Layer):
    """2-D convolution over (batch, H, W, C) inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: tuple[int, int],
        stride: int = 1,
        padding: int = 0,
        kernels: np.ndarray | None = None,
        bias: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        name: str = "conv",
    ):
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.name = name
        kh, kw = kernel_size
        if kernels is None:
            rng = rng if rng is not None else np.random.default_rng(0)
            scale = math.sqrt(2.0 / (kh * kw * in_channels))
            kernels = rng.normal(scale=scale, size=(out_channels, kh, kw, in_channels))
        if bias is None:
            bias = np.zeros(out_channels)
        kernels = np.asarray(kernels, dtype=np.float64)
        if kernels.shape != (out_channels, kh, kw, in_channels):
            raise ShapeError(
                f"kernels must be ({out_channels}, {kh}, {kw}, {in_channels}), "
                f"got {kernels.shape}"
            )
        self.kernels = ADTensor(kernels, requires_grad=True, name=f"{name}.kernels")
        self.bias = ADTensor(
            np.asarray(bias, dtype=np.float64), requires_grad=True, name=f"{name}.bias"
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[3] != self.in_channels:
            raise ShapeError(
                f"{self.name} expects (batch, H, W, {self.in_channels}), got {x.shape}"
            )
        kh, kw = self.kernel_size
        batch = x.shape[0]
        out_h, out_w = conv_output_shape(
            x.shape[1], x.shape[2], kh, kw, self.stride, self.padding
        )
        patches = _batch_im2col(x, kh, kw, self.stride, self.padding)
        flat = patches @ self.kernels.data.reshape(self.out_channels, -1).T
        return flat.reshape(batch, out_h, out_w, self.out_channels) + self.bias.data

    def forward_ad(self, x: ADTensor) -> ADTensor:
        return x.conv2d(self.kernels, self.stride, self.padding).add(self.bias)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[2] != self.in_channels:
            raise ShapeError(
                f"{self.name} expects per-sample (H, W, {self.in_channels}), "
                f"got {input_shape}"
            )
        kh, kw = self.kernel_size
        out_h, out_w = conv_output_shape(
            input_shape[0], input_shape[1], kh, kw, self.stride, self.padding
        )
        return (out_h, out_w, self.out_channels)

    def parameters(self) -> dict[str, ADTensor]:
        return {"kernels": self.kernels, "bias": self.bias}

    def flops(self, input_shape: tuple[int, ...]) -> int:
        out_h, out_w, __ = self.output_shape(input_shape)
        kh, kw = self.kernel_size
        return 2 * out_h * out_w * kh * kw * self.in_channels * self.out_channels

    def describe(self) -> str:
        kh, kw = self.kernel_size
        return (
            f"Conv2d({self.in_channels} -> {self.out_channels}, {kh}x{kw}, "
            f"stride={self.stride}, padding={self.padding})"
        )


class MaxPool2d(Layer):
    def __init__(self, pool: int = 2, name: str = "maxpool"):
        if pool < 1:
            raise ModelError("pool size must be >= 1")
        self.pool = pool
        self.name = name

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, height, width, channels = x.shape
        pool = self.pool
        out_h, out_w = height // pool, width // pool
        cropped = x[:, : out_h * pool, : out_w * pool, :]
        return cropped.reshape(batch, out_h, pool, out_w, pool, channels).max(
            axis=(2, 4)
        )

    def forward_ad(self, x: ADTensor) -> ADTensor:
        return x.maxpool2d(self.pool)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        height, width, channels = input_shape
        return (height // self.pool, width // self.pool, channels)

    def describe(self) -> str:
        return f"MaxPool2d({self.pool})"


class Flatten(Layer):
    name = "flatten"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def forward_ad(self, x: ADTensor) -> ADTensor:
        return x.reshape((x.shape[0], -1))

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class Model:
    """A named sequential stack of layers plus shape metadata."""

    def __init__(self, name: str, layers: Sequence[Layer], input_shape: tuple[int, ...]):
        if not layers:
            raise ModelError("a model needs at least one layer")
        self.name = name
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        # Validate the shape chain eagerly so bad stacks fail at build time.
        shape = self.input_shape
        self._shapes = [shape]
        for layer in self.layers:
            shape = layer.output_shape(shape)
            self._shapes.append(shape)

    @property
    def output_shape(self) -> tuple[int, ...]:
        return self._shapes[-1]

    @property
    def layer_shapes(self) -> list[tuple[int, ...]]:
        """Per-sample shapes: [input, after layer 0, after layer 1, ...]."""
        return list(self._shapes)

    @property
    def param_count(self) -> int:
        return sum(layer.param_count for layer in self.layers)

    @property
    def param_bytes(self) -> int:
        return sum(layer.param_bytes for layer in self.layers)

    def parameters(self) -> Iterator[tuple[str, ADTensor]]:
        for i, layer in enumerate(self.layers):
            for pname, tensor in layer.parameters().items():
                yield f"{layer.name or i}.{pname}", tensor

    def flops(self, batch_size: int = 1) -> int:
        total = 0
        for layer, shape in zip(self.layers, self._shapes):
            total += layer.flops(shape)
        return total * batch_size

    def forward(
        self,
        x: np.ndarray,
        budget: MemoryBudget | None = None,
        eager_free: bool = True,
        charge_scale: float = 1.0,
        checkpoint=None,
    ) -> np.ndarray:
        """Whole-tensor inference with optional memory accounting.

        With a budget, the pass charges the resident weights, the input,
        and each activation.  ``eager_free=True`` models a framework that
        releases an activation as soon as its consumer has run;
        ``eager_free=False`` models a naive single-UDF implementation that
        keeps every intermediate alive until the UDF returns — the reason
        the UDF-centric column of the paper's Table 3 OOMs earlier than
        TensorFlow does.

        ``charge_scale`` scales every charge: the in-database engines run
        float64 (scale 1.0), while framework stand-ins charge the float32
        footprint the real frameworks would use (scale 0.5, or 0.75 for
        the eager-mode stand-in that holds extra buffers).

        ``checkpoint`` is called before each layer (the executor's
        cooperative stage-deadline hook); whatever it raises unwinds
        through the charge rollback below.
        """
        if budget is None:
            out = x
            for layer in self.layers:
                if checkpoint is not None:
                    checkpoint()
                out = layer.forward(out)
            return out

        def scaled(nbytes: int) -> int:
            return int(nbytes * charge_scale)

        charged: list[int] = []
        weights = scaled(self.param_bytes)
        budget.allocate(weights, tag=f"{self.name}.weights")
        try:
            current = np.asarray(x, dtype=np.float64)
            current_bytes = budget.allocate(
                scaled(current.nbytes), tag=f"{self.name}.input"
            )
            charged.append(current_bytes)
            for layer in self.layers:
                if checkpoint is not None:
                    checkpoint()
                out = layer.forward(current)
                out_bytes = budget.allocate(
                    scaled(out.nbytes), tag=f"{self.name}.{layer.name}"
                )
                charged.append(out_bytes)
                if eager_free:
                    budget.release(current_bytes)
                    charged.pop(-2)
                current = out
                current_bytes = out_bytes
            return current
        finally:
            for nbytes in charged:
                budget.release(nbytes)
            budget.release(weights)

    def forward_ad(self, x: np.ndarray) -> ADTensor:
        """Run the autodiff tape up to the logits (training path)."""
        out = ADTensor(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            if isinstance(layer, Softmax):
                # Training losses fuse softmax; skip the inference-only layer.
                continue
            out = layer.forward_ad(out)
        return out

    def predict(self, x: np.ndarray, budget: MemoryBudget | None = None) -> np.ndarray:
        """Class predictions (argmax over the final axis)."""
        return np.argmax(self.forward(x, budget=budget), axis=-1)

    def describe(self) -> str:
        lines = [f"Model {self.name!r} (input {self.input_shape})"]
        for layer, shape in zip(self.layers, self._shapes[1:]):
            lines.append(f"  {layer.describe()} -> {shape}")
        lines.append(f"  parameters: {self.param_count:,}")
        return "\n".join(lines)
