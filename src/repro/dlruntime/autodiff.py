"""Reverse-mode automatic differentiation (the Sec. 6.1 training extension).

A small tape: every op returns an :class:`ADTensor` that remembers its
parents and a closure that propagates the output gradient.  ``backward``
runs the tape in reverse topological order.  The op set covers exactly
what the paper's model zoo needs: matmul, broadcast add, ReLU, sigmoid,
conv2d (through the same im2col rewrite the inference path uses), max
pooling, reshape, and fused softmax + cross-entropy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ShapeError
from ..tensor.im2col import conv_output_shape


class ADTensor:
    """A node in the autodiff tape."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: np.ndarray,
        requires_grad: bool = False,
        parents: tuple["ADTensor", ...] = (),
        backward: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad or any(p.requires_grad for p in parents)
        self._parents = parents
        self._backward = backward
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Propagate gradients from this tensor back through the tape."""
        if grad is None:
            if self.data.size != 1:
                raise ShapeError(
                    "backward() without an explicit gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        order: list[ADTensor] = []
        seen: set[int] = set()

        def topo(node: "ADTensor") -> None:
            if id(node) in seen or not node.requires_grad:
                return
            seen.add(id(node))
            for parent in node._parents:
                topo(parent)
            order.append(node)

        topo(self)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- ops ---------------------------------------------------------------

    def matmul(self, other: "ADTensor") -> "ADTensor":
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return ADTensor(out_data, parents=(self, other), backward=backward, name="matmul")

    def add(self, other: "ADTensor") -> "ADTensor":
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return ADTensor(out_data, parents=(self, other), backward=backward, name="add")

    def relu(self) -> "ADTensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return ADTensor(out_data, parents=(self,), backward=backward, name="relu")

    def sigmoid(self) -> "ADTensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return ADTensor(out_data, parents=(self,), backward=backward, name="sigmoid")

    def reshape(self, shape: tuple[int, ...]) -> "ADTensor":
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return ADTensor(out_data, parents=(self,), backward=backward, name="reshape")

    def conv2d(self, kernels: "ADTensor", stride: int = 1, padding: int = 0) -> "ADTensor":
        """Batched convolution: self is (N, H, W, C), kernels (O, kh, kw, C)."""
        batch, height, width, in_ch = self.data.shape
        out_ch, kh, kw, k_in = kernels.data.shape
        if in_ch != k_in:
            raise ShapeError(
                f"conv2d channel mismatch: input has {in_ch}, kernels expect {k_in}"
            )
        out_h, out_w = conv_output_shape(height, width, kh, kw, stride, padding)
        patches = _batch_im2col(self.data, kh, kw, stride, padding)  # (N*oh*ow, kh*kw*C)
        kernel_flat = kernels.data.reshape(out_ch, -1)
        out_flat = patches @ kernel_flat.T
        out_data = out_flat.reshape(batch, out_h, out_w, out_ch)

        def backward(grad: np.ndarray) -> None:
            grad_flat = grad.reshape(-1, out_ch)
            if kernels.requires_grad:
                kernels._accumulate((grad_flat.T @ patches).reshape(kernels.data.shape))
            if self.requires_grad:
                grad_patches = grad_flat @ kernel_flat
                self._accumulate(
                    _batch_col2im(
                        grad_patches,
                        (batch, height, width, in_ch),
                        kh,
                        kw,
                        stride,
                        padding,
                    )
                )

        return ADTensor(
            out_data, parents=(self, kernels), backward=backward, name="conv2d"
        )

    def maxpool2d(self, pool: int = 2) -> "ADTensor":
        """(N, H, W, C) max pooling with stride == pool size."""
        batch, height, width, channels = self.data.shape
        out_h, out_w = height // pool, width // pool
        cropped = self.data[:, : out_h * pool, : out_w * pool, :]
        windows = cropped.reshape(batch, out_h, pool, out_w, pool, channels)
        out_data = windows.max(axis=(2, 4))

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            mask = windows == out_data[:, :, None, :, None, :]
            # Ties share the gradient, which is acceptable for training.
            grad_windows = mask * grad[:, :, None, :, None, :]
            grad_full = np.zeros_like(self.data)
            grad_full[:, : out_h * pool, : out_w * pool, :] = grad_windows.reshape(
                batch, out_h * pool, out_w * pool, channels
            )
            self._accumulate(grad_full)

        return ADTensor(out_data, parents=(self,), backward=backward, name="maxpool2d")

    def softmax_cross_entropy(self, labels: np.ndarray) -> "ADTensor":
        """Fused row softmax + mean cross-entropy against integer labels."""
        logits = self.data
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ShapeError("softmax_cross_entropy expects (batch, classes) logits")
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        batch = logits.shape[0]
        losses = -np.log(probs[np.arange(batch), labels] + 1e-12)
        out_data = np.array(losses.mean())

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                delta = probs.copy()
                delta[np.arange(batch), labels] -= 1.0
                self._accumulate(float(grad) * delta / batch)

        return ADTensor(
            out_data, parents=(self,), backward=backward, name="softmax_xent"
        )


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum a gradient back down to a broadcast operand's shape."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _batch_im2col(
    images: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """(N, H, W, C) → (N*out_h*out_w, kh*kw*C) patch matrix."""
    batch, height, width, channels = images.shape
    out_h, out_w = conv_output_shape(height, width, kh, kw, stride, padding)
    if padding:
        images = np.pad(
            images,
            ((0, 0), (padding, padding), (padding, padding), (0, 0)),
            mode="constant",
        )
    strides = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(batch, out_h, out_w, kh, kw, channels),
        strides=(
            strides[0],
            strides[1] * stride,
            strides[2] * stride,
            strides[1],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    return np.ascontiguousarray(windows).reshape(
        batch * out_h * out_w, kh * kw * channels
    )


def _batch_col2im(
    grad_patches: np.ndarray,
    image_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter patch gradients back to image space (inverse of im2col)."""
    batch, height, width, channels = image_shape
    out_h, out_w = conv_output_shape(height, width, kh, kw, stride, padding)
    padded = np.zeros((batch, height + 2 * padding, width + 2 * padding, channels))
    grads = grad_patches.reshape(batch, out_h, out_w, kh, kw, channels)
    for i in range(kh):
        for j in range(kw):
            padded[
                :,
                i : i + out_h * stride : stride,
                j : j + out_w * stride : stride,
                :,
            ] += grads[:, :, :, i, j, :]
    if padding:
        return padded[:, padding:-padding, padding:-padding, :]
    return padded
