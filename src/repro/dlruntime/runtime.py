"""External DL framework stand-ins ("tensorflow-sim", "pytorch-sim").

Identical numpy kernels back every engine in this repo, but the paper's
frameworks hold two real advantages and one weakness that Table 3 turns on:

* they execute operators with highly tuned kernels — modeled by the
  calibrated ``compute_efficiency`` factor applied to the *modeled*
  latency (the measured numpy time is reported untouched);
* they free activations eagerly (``eager_free=True``), so they survive
  some workloads a naive single-UDF implementation cannot;
* they are whole-tensor systems: the batch, the weights, and each
  activation must fit the device budget at once, so large operators raise
  :class:`~repro.errors.OutOfMemoryError` — exactly the paper's OOM cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .layers import Model
from .memory import MemoryBudget


@dataclass
class RunResult:
    """Output plus timing/memory accounting of one inference run."""

    outputs: np.ndarray
    measured_seconds: float
    modeled_seconds: float
    peak_memory_bytes: int

    @property
    def batch_size(self) -> int:
        return self.outputs.shape[0]


class ExternalRuntime:
    """A decoupled inference runtime with its own memory budget."""

    KNOWN_FLAVORS = ("tensorflow-sim", "pytorch-sim", "generic")

    # Calibrated memory-footprint factors relative to float64 in-database
    # execution: both frameworks execute in float32 (0.5×); the eager-mode
    # stand-in ("pytorch-sim") additionally retains dispatcher buffers,
    # matching the paper's Table 3 where PyTorch OOMs on LandCover batch 1
    # while TensorFlow completes it.
    MEMORY_SCALE = {
        "tensorflow-sim": 0.5,
        "pytorch-sim": 0.75,
        "generic": 1.0,
    }

    def __init__(
        self,
        name: str,
        budget: MemoryBudget,
        compute_efficiency: float = 2.5,
        memory_scale: float | None = None,
    ):
        if name not in self.KNOWN_FLAVORS:
            raise ModelError(
                f"unknown runtime flavor {name!r}; expected one of "
                f"{self.KNOWN_FLAVORS}"
            )
        self.name = name
        self.budget = budget
        self.compute_efficiency = compute_efficiency
        self.memory_scale = (
            memory_scale if memory_scale is not None else self.MEMORY_SCALE[name]
        )
        self._models: dict[str, Model] = {}

    def load_model(self, model: Model) -> str:
        """Register a model; returns the handle used by :meth:`run`."""
        self._models[model.name] = model
        return model.name

    def run(self, handle: str, x: np.ndarray) -> RunResult:
        """Whole-tensor inference on the framework's device budget.

        The entire batch ``x`` is processed as one framework call (the
        paper tunes the baseline batch size externally, so callers choose
        the batch).  Raises :class:`~repro.errors.OutOfMemoryError` if the
        batch + weights + activations exceed the budget.
        """
        model = self._models.get(handle)
        if model is None:
            raise ModelError(f"no model loaded under handle {handle!r}")
        self.budget.reset_peak()
        start = time.perf_counter()
        outputs = model.forward(
            x, budget=self.budget, eager_free=True, charge_scale=self.memory_scale
        )
        measured = time.perf_counter() - start
        return RunResult(
            outputs=outputs,
            measured_seconds=measured,
            modeled_seconds=measured / self.compute_efficiency,
            peak_memory_bytes=self.budget.peak,
        )

    def run_batched(self, handle: str, x: np.ndarray, batch_size: int) -> RunResult:
        """Inference in fixed-size sub-batches (lower peak memory)."""
        if batch_size < 1:
            raise ModelError("batch_size must be >= 1")
        model = self._models.get(handle)
        if model is None:
            raise ModelError(f"no model loaded under handle {handle!r}")
        self.budget.reset_peak()
        start = time.perf_counter()
        chunks = [
            model.forward(
                x[i : i + batch_size],
                budget=self.budget,
                eager_free=True,
                charge_scale=self.memory_scale,
            )
            for i in range(0, x.shape[0], batch_size)
        ]
        measured = time.perf_counter() - start
        outputs = np.concatenate(chunks, axis=0) if chunks else np.zeros((0,))
        return RunResult(
            outputs=outputs,
            measured_seconds=measured,
            modeled_seconds=measured / self.compute_efficiency,
            peak_memory_bytes=self.budget.peak,
        )
